#!/bin/sh
# Guard: a public library interface that exposes a raising API must
# also offer a Result- or option-typed counterpart, so consumers can
# choose typed failure over exceptions.
#
# Heuristic (kept deliberately simple — this runs in CI on every push):
# an .mli under lib/ that declares an exception or documents "Raises"
# must mention `result` or `option` somewhere in its signatures.
# A false positive can be silenced the honest way: add the safe
# counterpart.
set -eu
cd "$(dirname "$0")/.."
status=0
for mli in $(find lib -name '*.mli' | sort); do
  if grep -qE '^exception |Raises \[|@raise' "$mli"; then
    if ! grep -qE '\b(option|result)\b' "$mli"; then
      echo "$mli: exposes a raising API but no option/result counterpart" >&2
      status=1
    fi
  fi
done
exit $status
