#!/bin/sh
# Guard: a public library interface that exposes a raising API must
# also offer a Result- or option-typed counterpart, so consumers can
# choose typed failure over exceptions.
#
# Heuristic (kept deliberately simple — this runs in CI on every push):
# an .mli under lib/ that declares an exception or documents "Raises"
# must mention `result` or `option` somewhere in its signatures.
# A false positive can be silenced the honest way: add the safe
# counterpart.
set -eu
cd "$(dirname "$0")/.."
status=0
for mli in $(find lib -name '*.mli' | sort); do
  if grep -qE '^exception |Raises \[|@raise' "$mli"; then
    if ! grep -qE '\b(option|result)\b' "$mli"; then
      echo "$mli: exposes a raising API but no option/result counterpart" >&2
      status=1
    fi
  fi
done

# The robustness interfaces added with the artifact store carry
# stronger promises than raising-vs-typed, and the guard pins them:
#
#  - the store's load/save contract is absorb-everything ("Never
#    raises"); if that phrase disappears from the interface, either the
#    contract was weakened (a bug) or the docs rotted (also a bug);
#  - the fault-injection surface must keep its non-raising arming API
#    (result-typed arm) and keep documenting the store-absorption rule
#    the exit-code matrix is built on.
for must in lib/store/store.mli lib/guard/faultpoint.mli; do
  if [ ! -f "$must" ]; then
    echo "$must: robustness interface missing (guard out of date?)" >&2
    status=1
  fi
done
if [ -f lib/store/store.mli ]; then
  if [ "$(grep -c 'Never raises' lib/store/store.mli)" -lt 2 ]; then
    echo "lib/store/store.mli: load/save must document the 'Never raises' absorption contract" >&2
    status=1
  fi
fi
if [ -f lib/guard/faultpoint.mli ]; then
  if ! grep -q '(unit, string) result' lib/guard/faultpoint.mli; then
    echo "lib/guard/faultpoint.mli: arm must stay result-typed, not raising" >&2
    status=1
  fi
  if ! grep -qi 'absorb' lib/guard/faultpoint.mli; then
    echo "lib/guard/faultpoint.mli: the store-absorption rule must stay documented" >&2
    status=1
  fi
fi
exit $status
