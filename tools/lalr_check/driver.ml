(* File discovery, report assembly and rendering for lalr_check.

   Exit codes follow the lalrgen table (README "Exit codes"), using the
   subset that applies to a static check: 0 ok (no unwaived finding),
   2 diagnostics (findings, unreadable or unparseable input), 4
   internal error. There is no verdict/budget row here. *)

type report = {
  findings : Rules.finding list;  (* waived and unwaived, sorted *)
  cells : Rules.cell list;  (* ambient-state inventory, sorted *)
  failures : (string * string) list;  (* file, why it could not be read *)
}

(* ------------------------------------------------------------------ *)
(* Discovery                                                           *)
(* ------------------------------------------------------------------ *)

let source_file path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let rec files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if entry = "_build" || (entry <> "" && entry.[0] = '.') then []
           else files_under (Filename.concat path entry))
  else if source_file path then [ path ]
  else []

let discover paths =
  List.concat_map
    (fun p ->
      if Sys.file_exists p then files_under p
      else raise (Sys_error (Printf.sprintf "%s: no such file or directory" p)))
    paths
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* Scanning                                                            *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file path =
  match Analyzer.check_source ~path (read_file path) with
  | r -> Ok r
  | exception Sys_error msg -> Error msg
  | exception exn -> Error (Printf.sprintf "parse error: %s"
                              (Printexc.to_string exn))

(* The two robustness interfaces the retired shell guard pinned must
   exist whenever the scan covers lib/ — a deleted store.mli must not
   read as "no finding". *)
let missing_pins files =
  let scanned_lib =
    List.exists (fun f -> Analyzer.has_component f "lib") files
  in
  if not scanned_lib then []
  else
    List.filter_map
      (fun pin ->
        if List.exists (fun f -> Analyzer.under f "lib" (Filename.basename (Filename.dirname pin))
                                 && Filename.basename f = Filename.basename pin)
             files
        then None
        else
          Some
            {
              Rules.code = "D002";
              severity = Rules.Error;
              file = pin;
              line = 1;
              message = "robustness interface missing (contract pin)";
              waiver = None;
            })
      [ "lib/store/store.mli"; "lib/guard/faultpoint.mli" ]

let scan paths =
  let files = discover paths in
  let findings, cells, failures =
    List.fold_left
      (fun (fs, cs, errs) file ->
        match scan_file file with
        | Ok r -> (r.Analyzer.r_findings @ fs, r.Analyzer.r_cells @ cs, errs)
        | Error msg -> (fs, cs, (file, msg) :: errs))
      ([], [], []) files
  in
  {
    findings = List.sort Rules.compare_finding (missing_pins files @ findings);
    cells = List.sort Rules.compare_cell cells;
    failures = List.rev failures;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let unwaived r =
  List.filter (fun (f : Rules.finding) -> f.Rules.waiver = None) r.findings

let exit_code r =
  if r.failures <> [] then 2
  else if
    List.exists (fun (f : Rules.finding) -> f.Rules.severity = Rules.Error)
      (unwaived r)
  then 2
  else 0

let pp_text ?(show_waived = false) ppf r =
  List.iter
    (fun (file, msg) -> Format.fprintf ppf "%s: %s@," file msg)
    r.failures;
  let shown =
    if show_waived then r.findings else unwaived r
  in
  List.iter (fun f -> Format.fprintf ppf "%a@," Rules.pp_finding f) shown;
  let n = List.length (unwaived r) in
  let w = List.length r.findings - n in
  if n = 0 && r.failures = [] then
    Format.fprintf ppf "lalr_check: clean (%d waived finding%s, %d ambient \
                        cell%s)@,"
      w (if w = 1 then "" else "s")
      (List.length r.cells)
      (if List.length r.cells = 1 then "" else "s")
  else
    Format.fprintf ppf "lalr_check: %d finding%s (%d waived), %d unreadable@,"
      n (if n = 1 then "" else "s")
      w (List.length r.failures)

let to_json r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"diagnostics\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  ";
      Rules.finding_to_buffer buf f)
    r.findings;
  if r.findings <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "],\"failures\":[";
  List.iteri
    (fun i (file, msg) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  {\"file\":";
      Rules.json_escape_to_buffer buf file;
      Buffer.add_string buf ",\"error\":";
      Rules.json_escape_to_buffer buf msg;
      Buffer.add_char buf '}')
    r.failures;
  if r.failures <> [] then Buffer.add_char buf '\n';
  let count sev =
    List.length
      (List.filter (fun (f : Rules.finding) -> f.Rules.severity = sev)
         (unwaived r))
  in
  Buffer.add_string buf
    (Printf.sprintf "],\"errors\":%d,\"warnings\":%d,\"waived\":%d}\n"
       (count Rules.Error) (count Rules.Warning)
       (List.length r.findings - List.length (unwaived r)));
  Buffer.contents buf

(* The machine-readable ambient-state inventory (--inventory): every
   structure-level cell, sanctioned and waived alike, in a stable
   order. The serve-daemon work consumes this; CI diffs it against a
   committed golden so new ambient state cannot land silently. *)
let inventory_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"ambient_state\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  ";
      Rules.cell_to_buffer buf c)
    r.cells;
  if r.cells <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "],\"cells\":%d}\n" (List.length r.cells));
  Buffer.contents buf

let pp_rules ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (r : Rules.rule) ->
      Format.fprintf ppf "%s %-9s %s@," r.Rules.code
        (Rules.severity_name r.Rules.severity)
        r.Rules.title)
    Rules.all;
  Format.fprintf ppf "@]"
