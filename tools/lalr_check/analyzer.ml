(* compiler-libs parsetree walker: one pass per file producing findings
   (Rules.finding) and ambient-state inventory cells (Rules.cell).

   Waivers are source-visible attributes —

     let cache = ref []  [@@lalr.allow D001 "mutex-guarded: see lock"]

   — scoped to the item (or expression) they annotate, plus the
   file-scope floating form [@@@lalr.allow CODE "reason"]. Every waiver
   must carry a non-empty reason and must match at least one finding;
   violations are D006 findings, which cannot themselves be waived. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Per-file context                                                    *)
(* ------------------------------------------------------------------ *)

type waiver = {
  w_code : string;
  w_reason : string;
  w_line : int;
  mutable w_used : bool;
}

type ctx = {
  file : string;  (* path as given on the command line, '/'-separated *)
  in_lib : bool;
  in_store : bool;
  mutable mutable_labels : string list;
      (* record labels declared [mutable] in this file; a top-level
         record literal assigning one is module-level mutable state *)
  mutable scopes : waiver list list;  (* innermost first *)
  mutable all_waivers : waiver list;
  mutable findings : Rules.finding list;
  mutable cells : Rules.cell list;
}

let has_component path comp =
  String.split_on_char '/' path |> List.exists (String.equal comp)

let under path dir_a dir_b =
  (* true iff [path] has ".../dir_a/dir_b/..." as consecutive
     components. *)
  let rec go = function
    | a :: (b :: _ as rest) -> (a = dir_a && b = dir_b) || go rest
    | _ -> false
  in
  go (String.split_on_char '/' path)

let make_ctx file =
  {
    file;
    in_lib = has_component file "lib";
    in_store = under file "lib" "store";
    mutable_labels = [];
    scopes = [ [] ];
    all_waivers = [];
    findings = [];
    cells = [];
  }

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let report ctx ~code ~line message =
  let severity =
    match Rules.find code with
    | Some r -> r.Rules.severity
    | None -> Rules.Error
  in
  let waiver =
    if not (Rules.waivable code) then None
    else
      let rec search = function
        | [] -> None
        | scope :: outer -> (
            match List.find_opt (fun w -> w.w_code = code) scope with
            | Some w ->
                w.w_used <- true;
                Some w.w_reason
            | None -> search outer)
      in
      search ctx.scopes
  in
  ctx.findings <-
    { Rules.code; severity; file = ctx.file; line; message; waiver }
    :: ctx.findings

(* ------------------------------------------------------------------ *)
(* Waiver attributes                                                   *)
(* ------------------------------------------------------------------ *)

let string_payload (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* Accepted payloads: [D001 "reason"] (constructor application) and the
   parenthesized [(D001) "reason"] apply form. *)
let parse_allow_payload = function
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
      match e.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident code; _ }, Some arg) ->
          Option.map (fun r -> (code, r)) (string_payload arg)
      | Pexp_apply
          ( { pexp_desc = Pexp_construct ({ txt = Longident.Lident code; _ }, None); _ },
            [ (_, arg) ] ) ->
          Option.map (fun r -> (code, r)) (string_payload arg)
      | _ -> None)
  | _ -> None

(* Turn the lalr.allow attributes of an item into in-scope waivers,
   reporting D006 for malformed/unknown/empty ones on the spot. *)
let waivers_of_attrs ctx (attrs : attributes) =
  List.filter_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "lalr.allow" then None
      else
        let line = line_of a.attr_loc in
        match parse_allow_payload a.attr_payload with
        | None ->
            report ctx ~code:"D006" ~line
              "malformed waiver: expected [@@lalr.allow CODE \"reason\"]";
            None
        | Some (code, _) when not (Rules.waivable code) ->
            report ctx ~code:"D006" ~line
              (Printf.sprintf "waiver names unknown or unwaivable rule %s"
                 code);
            None
        | Some (_, reason) when String.trim reason = "" ->
            report ctx ~code:"D006" ~line "waiver carries an empty reason";
            None
        | Some (code, reason) ->
            let w = { w_code = code; w_reason = reason; w_line = line;
                      w_used = false } in
            ctx.all_waivers <- w :: ctx.all_waivers;
            Some w)
    attrs

let with_waivers ctx ws f =
  if ws = [] then f ()
  else begin
    ctx.scopes <- ws :: ctx.scopes;
    Fun.protect f ~finally:(fun () -> ctx.scopes <- List.tl ctx.scopes)
  end

(* File-scope waiver ([@@@lalr.allow ...]): lives in the outermost
   scope for the rest of the file. *)
let add_file_waivers ctx ws =
  if ws <> [] then
    match List.rev ctx.scopes with
    | outermost :: rest -> ctx.scopes <- List.rev ((ws @ outermost) :: rest)
    | [] -> ctx.scopes <- [ ws ]

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)
(* ------------------------------------------------------------------ *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

let last = Longident.last

(* ------------------------------------------------------------------ *)
(* D001 — module-level mutable state                                   *)
(* ------------------------------------------------------------------ *)

(* What a structure-level RHS may create. [`Unsafe kind] is a D001
   finding; [`Safe kind] is a sanctioned concurrency primitive recorded
   in the inventory only. The walk descends through wrappers that still
   evaluate at module-load time, and deliberately NOT into fun/lazy
   (those defer creation to the call). *)
let classify_head ctx (e : expression) =
  let rec go e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
        match flatten txt with
        | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some (`Unsafe "ref")
        | [ "Hashtbl"; "create" ] -> Some (`Unsafe "hashtbl")
        | [ "Array"; "make" ]
        | [ "Array"; "init" ]
        | [ "Array"; "make_matrix" ]
        | [ "Array"; "create_float" ] ->
            Some (`Unsafe "array")
        | [ "Bytes"; "create" ] | [ "Bytes"; "make" ] -> Some (`Unsafe "bytes")
        | [ "Buffer"; "create" ] -> Some (`Unsafe "buffer")
        | [ "Queue"; "create" ] -> Some (`Unsafe "queue")
        | [ "Stack"; "create" ] -> Some (`Unsafe "stack")
        | [ "Weak"; "create" ] -> Some (`Unsafe "weak")
        | [ "Atomic"; "make" ] -> Some (`Safe "atomic")
        | [ "Mutex"; "create" ] -> Some (`Safe "mutex")
        | [ "Condition"; "create" ] -> Some (`Safe "condition")
        | [ "Semaphore"; "Counting"; "make" ]
        | [ "Semaphore"; "Binary"; "make" ] ->
            Some (`Safe "semaphore")
        | [ "Domain"; "DLS"; "new_key" ] -> Some (`Safe "domain-local")
        | _ -> None)
    | Pexp_array _ -> Some (`Unsafe "array")
    | Pexp_record (fields, _)
      when List.exists
             (fun (({ txt; _ } : Longident.t Location.loc), _) ->
               List.mem (last txt) ctx.mutable_labels)
             fields ->
        Some (`Unsafe "mutable-record")
    | Pexp_let (_, _, body) -> go body
    | Pexp_sequence (_, body) -> go body
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> go e
    | Pexp_open (_, e) -> go e
    | Pexp_tuple es -> List.find_map go es
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> go e
    | Pexp_ifthenelse (c, t, f) ->
        ignore c;
        (match go t with Some k -> Some k | None -> Option.bind f go)
    | Pexp_match (_, cases) | Pexp_try (_, cases) ->
        List.find_map (fun c -> go c.pc_rhs) cases
    | _ -> None
  in
  go e

let binding_name (p : pattern) =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) | Ppat_alias (p, _) -> go p
    | _ -> None
  in
  match go p with Some n -> n | None -> "_"

let check_d001 ctx (vb : value_binding) =
  match classify_head ctx vb.pvb_expr with
  | None -> ()
  | Some head ->
      let line = line_of vb.pvb_loc in
      let name = binding_name vb.pvb_pat in
      let kind = match head with `Unsafe k | `Safe k -> k in
      let reason =
        match head with
        | `Safe _ -> None
        | `Unsafe kind ->
            report ctx ~code:"D001" ~line
              (Printf.sprintf
                 "module-level mutable state: '%s' is a %s (not \
                  Atomic/Domain-local; racy under Domains)"
                 name kind);
            (* The finding we just pushed knows whether a waiver was in
               scope; mirror that into the inventory entry. *)
            (match ctx.findings with
            | f :: _ when f.Rules.code = "D001" -> f.Rules.waiver
            | _ -> None)
      in
      ctx.cells <-
        {
          Rules.c_file = ctx.file;
          c_line = line;
          c_name = name;
          c_kind = kind;
          c_safe = (match head with `Safe _ -> true | `Unsafe _ -> false);
          c_reason = reason;
        }
        :: ctx.cells

(* ------------------------------------------------------------------ *)
(* Expression rules: D003, D004, D005                                  *)
(* ------------------------------------------------------------------ *)

let stdout_idents =
  [
    [ "print_string" ]; [ "print_endline" ]; [ "print_newline" ];
    [ "print_char" ]; [ "print_int" ]; [ "print_float" ]; [ "print_bytes" ];
    [ "Stdlib"; "print_string" ]; [ "Stdlib"; "print_endline" ];
    [ "Printf"; "printf" ]; [ "Format"; "printf" ];
    [ "Format"; "print_string" ]; [ "Format"; "print_int" ];
    [ "Format"; "print_newline" ]; [ "Format"; "print_flush" ];
    [ "stdout" ]; [ "Stdlib"; "stdout" ];
  ]

let check_ident ctx (loc : Location.t) txt =
  let path = flatten txt in
  (match path with
  | "Marshal" :: _ when not ctx.in_store ->
      report ctx ~code:"D003" ~line:(line_of loc)
        (Printf.sprintf
           "Marshal.%s outside lib/store: unframed bytes-to-values is the \
            store's job"
           (last txt))
  | _ -> ());
  if ctx.in_lib && List.mem path stdout_idents then
    report ctx ~code:"D005" ~line:(line_of loc)
      (Printf.sprintf
         "library code writes to stdout (%s); use a formatter argument or \
          a report/trace sink"
         (String.concat "." path))

(* A handler case swallows everything when its pattern matches any
   exception without a guard — unless the body re-raises the bound
   variable (a cleanup-and-rethrow). *)
let rec catch_all_pat (p : pattern) =
  match p.ppat_desc with
  | Ppat_any -> Some "_"
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_alias (p, { txt; _ }) -> (
      match catch_all_pat p with Some _ -> Some txt | None -> None)
  | Ppat_or (a, b) -> (
      match catch_all_pat a with Some n -> Some n | None -> catch_all_pat b)
  | Ppat_constraint (p, _) -> catch_all_pat p
  | _ -> None

let reraises name (body : expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt = f; _ }; _ }, args)
            -> (
              match (flatten f, args) with
              | ( ( [ "raise" ] | [ "raise_notrace" ] | [ "reraise" ]
                  | [ "Printexc"; "raise_with_backtrace" ] ),
                  (_, { pexp_desc = Pexp_ident { txt = Longident.Lident v; _ }; _ })
                  :: _ )
                when v = name ->
                  found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body;
  !found

let check_handler_cases ctx what (cases : case list) =
  List.iter
    (fun c ->
      if c.pc_guard = None then
        match catch_all_pat c.pc_lhs with
        | Some name when name = "_" || not (reraises name c.pc_rhs) ->
            report ctx ~code:"D004" ~line:(line_of c.pc_lhs.ppat_loc)
              (Printf.sprintf
                 "catch-all %s handler can swallow Budget.Exceeded / \
                  Internal_error; match the intended exceptions"
                 what)
        | _ -> ())
    cases

let check_expr_rules ctx (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; loc } -> check_ident ctx loc txt
  | Pexp_try (_, cases) -> check_handler_cases ctx "try" cases
  | Pexp_match (_, cases) ->
      let exception_cases =
        List.filter_map
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_exception p -> Some { c with pc_lhs = p }
            | _ -> None)
          cases
      in
      check_handler_cases ctx "match-exception" exception_cases
  | _ -> ()

let expr_iterator ctx =
  let super = Ast_iterator.default_iterator in
  {
    super with
    expr =
      (fun it e ->
        with_waivers ctx (waivers_of_attrs ctx e.pexp_attributes) (fun () ->
            check_expr_rules ctx e;
            super.expr it e));
    value_binding =
      (fun it vb ->
        with_waivers ctx (waivers_of_attrs ctx vb.pvb_attributes) (fun () ->
            super.value_binding it vb));
  }

let walk_expr ctx e =
  let it = expr_iterator ctx in
  it.expr it e

(* ------------------------------------------------------------------ *)
(* Structures (.ml)                                                    *)
(* ------------------------------------------------------------------ *)

let collect_mutable_labels ctx str =
  let it =
    {
      Ast_iterator.default_iterator with
      label_declaration =
        (fun _ ld ->
          if ld.pld_mutable = Asttypes.Mutable then
            ctx.mutable_labels <- ld.pld_name.txt :: ctx.mutable_labels);
    }
  in
  it.structure it str

(* [top] is true while every enclosing module expression evaluates at
   load time (plain struct ... end nesting); functor bodies and
   first-class modules reset it — their state is per-application. *)
let rec walk_structure ctx ~top str =
  List.iter (walk_structure_item ctx ~top) str

and walk_structure_item ctx ~top (item : structure_item) =
  match item.pstr_desc with
  | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          with_waivers ctx (waivers_of_attrs ctx vb.pvb_attributes)
            (fun () ->
              if top then check_d001 ctx vb;
              walk_expr ctx vb.pvb_expr))
        vbs
  | Pstr_eval (e, attrs) ->
      with_waivers ctx (waivers_of_attrs ctx attrs) (fun () ->
          walk_expr ctx e)
  | Pstr_module mb ->
      with_waivers ctx (waivers_of_attrs ctx mb.pmb_attributes) (fun () ->
          walk_module ctx ~top mb.pmb_expr)
  | Pstr_recmodule mbs ->
      List.iter
        (fun mb ->
          with_waivers ctx (waivers_of_attrs ctx mb.pmb_attributes)
            (fun () -> walk_module ctx ~top mb.pmb_expr))
        mbs
  | Pstr_include { pincl_mod; pincl_attributes; _ } ->
      with_waivers ctx (waivers_of_attrs ctx pincl_attributes) (fun () ->
          walk_module ctx ~top pincl_mod)
  | Pstr_attribute a -> add_file_waivers ctx (waivers_of_attrs ctx [ a ])
  | Pstr_primitive _ | Pstr_type _ | Pstr_typext _ | Pstr_exception _
  | Pstr_modtype _ | Pstr_open _ | Pstr_class _ | Pstr_class_type _
  | Pstr_extension _ ->
      ()

and walk_module ctx ~top (me : module_expr) =
  match me.pmod_desc with
  | Pmod_structure str -> walk_structure ctx ~top str
  | Pmod_functor (_, body) -> walk_module ctx ~top:false body
  | Pmod_constraint (me, _) -> walk_module ctx ~top me
  | Pmod_apply _ | Pmod_apply_unit _ | Pmod_ident _ -> ()
  | Pmod_unpack e -> walk_expr ctx e
  | Pmod_extension _ -> ()

(* ------------------------------------------------------------------ *)
(* Signatures (.mli): D002                                             *)
(* ------------------------------------------------------------------ *)

let doc_strings (attrs : attributes) =
  List.filter_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "ocaml.doc" && a.attr_name.txt <> "ocaml.text"
      then None
      else
        match a.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
            match string_payload e with
            | Some s -> Some (s, line_of a.attr_loc)
            | None -> None)
        | _ -> None)
    attrs

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let mentions_raise doc = contains ~needle:"@raise" doc
                         || contains ~needle:"Raises [" doc

let type_mentions_safe (ty : core_type) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      typ =
        (fun it t ->
          (match t.ptyp_desc with
          | Ptyp_constr ({ txt; _ }, _)
            when last txt = "option" || last txt = "result" ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.typ it t);
    }
  in
  it.typ it ty;
  !found

(* The stronger robustness-contract pins the retired shell guard
   carried (tools/check_raising_mli.sh): the store's absorption
   contract and the faultpoint arming API are load-bearing for the
   fault-injection exit-code matrix, so their interfaces must keep
   saying so. *)
let check_contract_pins ctx ~raw =
  let count_substring s sub =
    let n = String.length s and m = String.length sub in
    if m = 0 then 0
    else begin
      let c = ref 0 in
      for i = 0 to n - m do
        if String.sub s i m = sub then incr c
      done;
      !c
    end
  in
  if Filename.basename ctx.file = "store.mli" && ctx.in_store then begin
    if count_substring raw "Never raises" < 2 then
      report ctx ~code:"D002" ~line:1
        "lib/store/store.mli: load and save must each document the 'Never \
         raises' absorption contract"
  end;
  if Filename.basename ctx.file = "faultpoint.mli" && under ctx.file "lib" "guard"
  then begin
    if not (contains ~needle:"(unit, string) result" raw) then
      report ctx ~code:"D002" ~line:1
        "lib/guard/faultpoint.mli: arm must stay result-typed, not raising";
    if not (contains ~needle:"absorb" (String.lowercase_ascii raw)) then
      report ctx ~code:"D002" ~line:1
        "lib/guard/faultpoint.mli: the store-absorption rule must stay \
         documented"
  end

let walk_signature ctx ~raw (sg : signature) =
  (* First pass: file-scope waivers from floating attributes, so a
     waiver placed anywhere in the interface covers it. *)
  List.iter
    (fun (item : signature_item) ->
      match item.psig_desc with
      | Psig_attribute a -> add_file_waivers ctx (waivers_of_attrs ctx [ a ])
      | Psig_value vd ->
          add_file_waivers ctx (waivers_of_attrs ctx vd.pval_attributes)
      | Psig_exception te ->
          add_file_waivers ctx
            (waivers_of_attrs ctx te.ptyexn_attributes)
      | _ -> ())
    sg;
  let raising = ref [] in
  let safe = ref false in
  let note_docs attrs =
    List.iter
      (fun (doc, line) ->
        if mentions_raise doc then raising := (line, "documents @raise") :: !raising)
      (doc_strings attrs)
  in
  List.iter
    (fun (item : signature_item) ->
      match item.psig_desc with
      | Psig_exception te ->
          raising :=
            ( line_of item.psig_loc,
              Printf.sprintf "declares exception %s" te.ptyexn_constructor.pext_name.txt )
            :: !raising;
          note_docs te.ptyexn_attributes
      | Psig_value vd ->
          if type_mentions_safe vd.pval_type then safe := true;
          note_docs vd.pval_attributes
      | Psig_attribute a -> note_docs [ a ]
      | _ -> ())
    sg;
  (if ctx.in_lib && not !safe then
     match List.rev !raising with
     | [] -> ()
     | (line, what) :: _ ->
         report ctx ~code:"D002" ~line
           (Printf.sprintf
              "%s but no val in this interface offers an option/result \
               counterpart"
              what));
  if ctx.in_lib then check_contract_pins ctx ~raw

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type result = {
  r_findings : Rules.finding list;
  r_cells : Rules.cell list;
}

let finish ctx =
  (* Stale waivers: a waiver that matched nothing is itself a finding —
     fixing the code without removing its waiver must fail CI just as
     removing a needed waiver does. *)
  List.iter
    (fun w ->
      if not w.w_used then
        report ctx ~code:"D006" ~line:w.w_line
          (Printf.sprintf "stale waiver: no %s finding in scope (remove it)"
             w.w_code))
    (List.rev ctx.all_waivers);
  {
    r_findings = List.sort Rules.compare_finding ctx.findings;
    r_cells = List.sort Rules.compare_cell ctx.cells;
  }

let parse_with lexer ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  lexer lexbuf

let check_impl ~path source =
  let str = parse_with Parse.implementation ~path source in
  let ctx = make_ctx path in
  collect_mutable_labels ctx str;
  walk_structure ctx ~top:true str;
  finish ctx

let check_intf ~path source =
  let sg = parse_with Parse.interface ~path source in
  let ctx = make_ctx path in
  walk_signature ctx ~raw:source sg;
  finish ctx

let check_source ~path source =
  if Filename.check_suffix path ".mli" then check_intf ~path source
  else check_impl ~path source
