(* lalr_check — compiler-libs static analyzer for domain-safety and
   API contracts over this repository's OCaml sources.

   Usage: lalr_check [--json] [--inventory] [--show-waived] [--rules]
                     [PATH...]

   PATHs (files or directories; default: lib bin bench) are scanned for
   .ml/.mli files, skipping _build and dot-directories. Exit 0 when the
   tree is clean (every finding carries a source-visible waiver with a
   reason), 2 on findings or unreadable input, 4 on an internal
   error. *)

module Driver = Lalr_check_lib.Driver

let usage =
  "usage: lalr_check [--json] [--inventory] [--show-waived] [--rules] \
   [PATH...]\n\
   default paths: lib bin bench"

let () =
  let json = ref false in
  let inventory = ref false in
  let show_waived = ref false in
  let rules = ref false in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest -> json := true; parse rest
    | "--inventory" :: rest -> inventory := true; parse rest
    | "--show-waived" :: rest -> show_waived := true; parse rest
    | "--rules" :: rest -> rules := true; parse rest
    | ("--help" | "-h") :: _ -> print_endline usage; exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        prerr_endline ("lalr_check: unknown option " ^ arg);
        prerr_endline usage;
        exit 2
    | path :: rest -> paths := path :: !paths; parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !rules then begin
    Format.printf "%a@." Driver.pp_rules ();
    exit 0
  end;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
  in
  match Driver.scan paths with
  | report ->
      if !inventory then print_string (Driver.inventory_json report)
      else if !json then print_string (Driver.to_json report)
      else Format.printf "@[<v>%a@]@?"
             (Driver.pp_text ~show_waived:!show_waived) report;
      exit (Driver.exit_code report)
  | exception Sys_error msg ->
      prerr_endline ("lalr_check: " ^ msg);
      exit 2
  | exception exn ->
      prerr_endline ("lalr_check: internal error: " ^ Printexc.to_string exn);
      exit 4
