(* The domain-safety / API-contract rule registry, in the style of
   lib/lint's pass registry: stable codes, severities, one-line titles
   for --rules and the README table, and the shared finding type the
   walker produces and the driver renders. *)

type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

type rule = {
  code : string;
  title : string;
  severity : severity;
  explain : string;
}

let all =
  [
    {
      code = "D001";
      title = "module-level mutable state";
      severity = Error;
      explain =
        "a structure-level binding creates shared mutable state (ref, \
         Hashtbl.create, Array.make, Bytes/Buffer/Queue/Stack, array \
         literal, or a record with mutable fields). Convert to Atomic.t \
         or Domain.DLS, guard with a mutex, or waive with \
         [@@lalr.allow D001 \"reason\"].";
    };
    {
      code = "D002";
      title = "raising public API without a typed counterpart";
      severity = Error;
      explain =
        "an .mli under lib/ declares an exception or documents @raise \
         but no val in the interface offers an option- or result-typed \
         counterpart; also pins the store/faultpoint robustness \
         contracts (\"Never raises\" absorption, result-typed arm).";
    };
    {
      code = "D003";
      title = "Marshal outside lib/store";
      severity = Error;
      explain =
        "Marshal reads arbitrary bytes as values; every use must sit \
         behind the store's framed, checksummed, version-stamped \
         loader (lib/store).";
    };
    {
      code = "D004";
      title = "catch-all exception handler";
      severity = Error;
      explain =
        "try ... with _ -> (or a catch-all variable that is not \
         re-raised) can swallow Budget.Exceeded and Internal_error, \
         turning a typed failure into silent corruption. Narrow to the \
         intended exceptions or waive with a reason.";
    };
    {
      code = "D005";
      title = "stdout printing from library code";
      severity = Error;
      explain =
        "library code must not write to stdout (print_string, \
         Printf.printf, Format.printf, ...); route output through a \
         formatter argument or the report/trace sinks.";
    };
    {
      code = "D006";
      title = "waiver hygiene";
      severity = Error;
      explain =
        "a [@@lalr.allow] attribute is malformed, names an unknown \
         rule, carries an empty reason, or matched no finding (stale \
         waiver).";
    };
  ]

let find code = List.find_opt (fun r -> r.code = code) all

(* A code that rules can waive; D006 findings are about the waivers
   themselves and cannot be waived away. *)
let waivable code = code <> "D006" && find code <> None

type finding = {
  code : string;
  severity : severity;
  file : string;
  line : int;
  message : string;
  waiver : string option;  (* the waiver's reason when waived *)
}

let compare_finding a b =
  let key f = (f.file, f.line, f.code, f.message) in
  compare (key a) (key b)

(* Ambient-state inventory entry: every structure-level cell the walker
   sees — sanctioned (atomic / domain-local / lock) and waived mutable
   alike. The serve-daemon work consumes this via --inventory. *)
type cell = {
  c_file : string;
  c_line : int;
  c_name : string;
  c_kind : string;  (* "ref", "hashtbl", "atomic", "domain-local", ... *)
  c_safe : bool;  (* true: sanctioned primitive, no waiver needed *)
  c_reason : string option;  (* waiver reason for unsanctioned cells *)
}

let compare_cell a b =
  compare (a.c_file, a.c_line, a.c_name) (b.c_file, b.c_line, b.c_name)

(* ------------------------------------------------------------------ *)
(* JSON (same minimal emitter shape as lib/lint's Diagnostic)          *)
(* ------------------------------------------------------------------ *)

let json_escape_to_buffer buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let finding_to_buffer buf f =
  Buffer.add_string buf "{\"code\":";
  json_escape_to_buffer buf f.code;
  Buffer.add_string buf ",\"severity\":";
  json_escape_to_buffer buf (severity_name f.severity);
  Buffer.add_string buf ",\"file\":";
  json_escape_to_buffer buf f.file;
  Buffer.add_string buf (Printf.sprintf ",\"line\":%d,\"message\":" f.line);
  json_escape_to_buffer buf f.message;
  (match f.waiver with
  | None -> Buffer.add_string buf ",\"waived\":false"
  | Some reason ->
      Buffer.add_string buf ",\"waived\":true,\"reason\":";
      json_escape_to_buffer buf reason);
  Buffer.add_char buf '}'

let cell_to_buffer buf c =
  Buffer.add_string buf "{\"file\":";
  json_escape_to_buffer buf c.c_file;
  Buffer.add_string buf (Printf.sprintf ",\"line\":%d,\"name\":" c.c_line);
  json_escape_to_buffer buf c.c_name;
  Buffer.add_string buf ",\"kind\":";
  json_escape_to_buffer buf c.c_kind;
  Buffer.add_string buf
    (Printf.sprintf ",\"status\":%s"
       (if c.c_safe then "\"safe\""
        else
          match c.c_reason with
          | Some _ -> "\"waived\""
          | None -> "\"unwaived\""));
  (match c.c_reason with
  | Some reason ->
      Buffer.add_string buf ",\"reason\":";
      json_escape_to_buffer buf reason
  | None -> ());
  Buffer.add_char buf '}'

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: %s: %s [%s]%s" f.file f.line
    (severity_name f.severity)
    f.message f.code
    (match f.waiver with
    | Some reason -> Printf.sprintf " (waived: %s)" reason
    | None -> "")
