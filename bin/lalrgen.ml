(* lalrgen — the command-line front end.

   Subcommands:
     classify  FILE      place the grammar in the LR hierarchy
     report    FILE      grammar summary, relations, conflicts, automaton
     conflicts FILE      conflicts only (choose the look-ahead method)
     tables    FILE      print the ACTION/GOTO table
     parse     FILE -- t1 t2 ...   parse a token sequence
     suite                list the built-in grammar suite

   FILE may be "-" for stdin, or "suite:NAME" for a built-in grammar.

   Exit codes (scripting contract, see DESIGN.md):
     0  success
     1  analysis verdict: conflicts / not LALR(1)
     2  input diagnostics: unreadable grammar, lint errors, rejected input
     3  resource budget exhausted (--budget)
     4  internal error (broken invariant in the analysis) *)

open Cmdliner

module G = Lalr_grammar.Grammar
module Reader = Lalr_grammar.Reader
module Transform = Lalr_grammar.Transform
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Engine = Lalr_engine.Engine
module Describe = Lalr_report.Describe
module Driver = Lalr_runtime.Driver
module Token = Lalr_runtime.Token
module Registry = Lalr_suite.Registry
module Budget = Lalr_guard.Budget

(* ------------------------------------------------------------------ *)
(* Common arguments and loading                                       *)
(* ------------------------------------------------------------------ *)

(* Grammars load through the error-recovering readers so one run
   reports every syntax error, not just the first. A grammar that
   produced any diagnostic is never analysed: best-effort recovery is
   for batching error reports, not for silently linting half a file. *)
let load_grammar spec =
  match spec with
  | "-" ->
      let src = In_channel.input_all In_channel.stdin in
      Reader.of_string_tolerant ~name:"stdin" src
  | s when String.length s > 6 && String.sub s 0 6 = "suite:" ->
      let name = String.sub s 6 (String.length s - 6) in
      (Some (Lazy.force (Registry.find name).grammar), [])
  | path when Filename.check_suffix path ".mly" ->
      Lalr_grammar.Menhir_reader.of_file_tolerant path
  | path -> Reader.of_file_tolerant path

let report_reader_error spec (e : Reader.error) =
  (* [pp_error] already prints the file when the error carries one. *)
  match e.Reader.file with
  | Some _ -> Format.eprintf "%a@." Reader.pp_error e
  | None -> Format.eprintf "%s: %a@." spec Reader.pp_error e

let handle_load spec f =
  match load_grammar spec with
  | Some g, [] -> f g
  | g_opt, errors ->
      List.iter (report_reader_error spec) errors;
      (if g_opt = None && errors = [] then
         Format.eprintf "%s: unreadable grammar@." spec);
      exit 2
  | exception Not_found ->
      Format.eprintf "%s: no such suite grammar (try 'lalrgen suite')@." spec;
      exit 2
  | exception Sys_error msg ->
      Format.eprintf "%s@." msg;
      exit 2
  | exception Invalid_argument msg ->
      Format.eprintf "%s: %s@." spec msg;
      exit 2

let grammar_arg =
  let doc =
    "Grammar to analyse: a file in the yacc-like format, $(b,-) for stdin, \
     or $(b,suite:NAME) for a built-in benchmark grammar."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"GRAMMAR" ~doc)

let timings_arg =
  let doc =
    "After the command, print per-stage engine timings (wall time and \
     memoization hit/miss counters) to stderr."
  in
  Arg.(value & flag & info [ "timings" ] ~doc)

let budget_arg =
  let budget_conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Budget.of_spec s) in
    let print ppf _ = Format.pp_print_string ppf "<budget>" in
    Arg.conv (parse, print)
  in
  let doc =
    Printf.sprintf
      "Bound the whole analysis by a resource budget — %s. When any cap \
       is hit the command stops, prints a structured report naming the \
       stage and resource, and exits 3."
      Budget.spec_doc
  in
  Arg.(
    value
    & opt (some budget_conv) None
    & info [ "budget" ] ~docv:"SPEC" ~doc)

(* The failure boundary of the process: installs the budget (if any)
   around [f] so even work outside the engine's memoized slots — the
   LALR(k) search, the parse driver — is bounded, and maps the two
   structured failure outcomes to their exit codes. *)
let with_failure_boundary ?budget f =
  let run () =
    match budget with
    | None -> f ()
    | Some b -> Budget.with_budget b ~stage:"main" f
  in
  match run () with
  | v -> v
  | exception Budget.Exceeded ex ->
      Format.eprintf "lalrgen: %a@." Budget.pp_exceeded ex;
      exit 3
  | exception Budget.Internal_error { stage; invariant } ->
      Format.eprintf "lalrgen: internal error in stage '%s': %s@." stage
        invariant;
      exit 4
  | exception Stack_overflow ->
      Format.eprintf "lalrgen: internal error: stack overflow during \
                      analysis@.";
      exit 4
  | exception Assert_failure (file, line, _) ->
      Format.eprintf "lalrgen: internal error: assertion failed at %s:%d@."
        file line;
      exit 4

(* Every subcommand threads ONE engine per grammar: whatever subset of
   the pipeline it touches — automaton, relations, look-aheads, tables,
   classification — is computed at most once per process.

   The stats are printed via [at_exit] so commands that exit nonzero
   (conflicts, budget exhaustion) still report their timings. *)
let handle_engine spec ~timings ?budget f =
  handle_load spec (fun g ->
      let e = Engine.create ?budget g in
      if timings then
        at_exit (fun () -> Format.eprintf "%a@." Engine.pp_stats e);
      with_failure_boundary ?budget (fun () -> f e))

let method_arg =
  let doc =
    "Look-ahead method: $(b,lalr) (DeRemer–Pennello, default), $(b,slr), or \
     $(b,nqlalr)."
  in
  Arg.(
    value
    & opt (enum [ ("lalr", `Lalr); ("slr", `Slr); ("nqlalr", `Nqlalr) ]) `Lalr
    & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let tables_of_method e m = Engine.tables_for e m

(* ------------------------------------------------------------------ *)
(* classify                                                           *)
(* ------------------------------------------------------------------ *)

let classify_cmd =
  let run spec with_lr1 try_k timings budget =
    handle_engine spec ~timings ?budget (fun e ->
        let g = Engine.grammar e in
        let v =
          Engine.classification
            ~with_lr1:(with_lr1 || G.n_productions g <= Engine.lr1_limit)
            e
        in
        Describe.classification Format.std_formatter v;
        (if try_k > 1 && not v.Lalr_tables.Classify.lalr1 then
           match Lalr_core.Lalr_k.smallest_k ~limit:try_k (Engine.lr0 e) with
           | Some k -> Format.printf "LALR(%d) with a %d-token window@." k k
           | None ->
               Format.printf "not LALR(k) for any k ≤ %d@." try_k);
        (* Exit status mirrors LALR(1)-cleanliness, for scripting. *)
        if not v.Lalr_tables.Classify.lalr1 then exit 1)
  in
  let with_lr1 =
    Arg.(
      value & flag
      & info [ "with-lr1" ]
          ~doc:
            "Force the canonical LR(1) construction even for large grammars.")
  in
  let try_k =
    Arg.(
      value & opt int 1
      & info [ "k" ] ~docv:"K"
          ~doc:
            "When not LALR(1), also search for the least k ≤ $(docv) making \
             the grammar LALR(k) (paper §8 extension).")
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Place a grammar in the LR hierarchy")
    Term.(const run $ grammar_arg $ with_lr1 $ try_k $ timings_arg
          $ budget_arg)

(* ------------------------------------------------------------------ *)
(* report                                                             *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let run spec dump_states timings budget =
    handle_engine spec ~timings ?budget
      (Describe.report ~dump_states Format.std_formatter)
  in
  let dump =
    Arg.(
      value & flag
      & info [ "dump-states" ] ~doc:"Print all states regardless of size.")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Full analysis report (yacc -v style)")
    Term.(const run $ grammar_arg $ dump $ timings_arg $ budget_arg)

(* ------------------------------------------------------------------ *)
(* conflicts                                                          *)
(* ------------------------------------------------------------------ *)

let conflicts_cmd =
  let run spec m timings budget =
    handle_engine spec ~timings ?budget (fun e ->
        let tbl = tables_of_method e m in
        Describe.conflicts Format.std_formatter tbl;
        if Tables.unresolved_conflicts tbl <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "conflicts" ~doc:"Report table conflicts under a chosen method")
    Term.(const run $ grammar_arg $ method_arg $ timings_arg $ budget_arg)

(* ------------------------------------------------------------------ *)
(* tables                                                             *)
(* ------------------------------------------------------------------ *)

let tables_cmd =
  let run spec m compact timings budget =
    handle_engine spec ~timings ?budget (fun e ->
        let tbl = tables_of_method e m in
        if compact then begin
          let module Compact = Lalr_tables.Compact in
          Format.printf "exact:  %a@." Compact.pp_stats
            (Compact.stats (Compact.compress tbl));
          Format.printf "yacc:   %a@." Compact.pp_stats
            (Compact.stats (Compact.compress ~mode:Compact.Yacc tbl))
        end
        else Format.printf "%a@." Tables.pp tbl)
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "Print compression statistics (exact and yacc-style comb \
             packing) instead of the dense table.")
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Print the ACTION/GOTO table")
    Term.(const run $ grammar_arg $ method_arg $ compact $ timings_arg
          $ budget_arg)

(* ------------------------------------------------------------------ *)
(* parse                                                              *)
(* ------------------------------------------------------------------ *)

let parse_cmd =
  let run spec tokens sexp timings budget =
    handle_engine spec ~timings ?budget (fun e ->
        let g = Engine.grammar e in
        let tbl = Engine.tables e in
        match Token.of_names g tokens with
        | exception Invalid_argument msg ->
            Format.eprintf "%s@." msg;
            exit 2
        | toks -> (
            match Driver.parse tbl toks with
            | Ok tree ->
                if sexp then
                  Format.printf "%a@." (Lalr_runtime.Tree.pp_sexp g) tree
                else Format.printf "%a@." (Lalr_runtime.Tree.pp g) tree
            | Error e ->
                Format.printf "%a@." (Driver.pp_error g) e;
                exit 2))
  in
  let tokens =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"TOKEN" ~doc:"Terminal names forming the input.")
  in
  let sexp =
    Arg.(
      value & flag
      & info [ "sexp" ] ~doc:"Print the tree as a compact s-expression.")
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a token sequence and print the tree")
    Term.(const run $ grammar_arg $ tokens $ sexp $ timings_arg $ budget_arg)

(* ------------------------------------------------------------------ *)
(* generate                                                           *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let run spec m output timings budget =
    handle_engine spec ~timings ?budget (fun e ->
        let tbl = tables_of_method e m in
        let source = Lalr_report.Codegen.emit_to_string tbl in
        match output with
        | None -> print_string source
        | Some path -> Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc source))
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the generated module to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Emit a standalone OCaml parser module (tables + engine, no \
          library dependency)")
    Term.(const run $ grammar_arg $ method_arg $ output $ timings_arg
          $ budget_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                               *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let module Lint = Lalr_lint.Engine in
  let module Diagnostic = Lalr_lint.Diagnostic in
  let run spec format severity select ignored self_check list_codes timings
      budget =
    if list_codes then begin
      List.iter
        (fun (p : Lalr_lint.Passes.pass) ->
          Format.printf "%-14s %-12s %s@." p.name
            (String.concat "," p.codes)
            p.doc)
        (Lint.passes ~self_check:true);
      exit 0
    end;
    let min_severity =
      match Diagnostic.severity_of_string severity with
      | Some s -> s
      | None ->
          Format.eprintf
            "invalid --severity %S (expected error, warning or info)@."
            severity;
          exit 2
    in
    let parse_codes what csv =
      let codes =
        List.concat_map (String.split_on_char ',') csv
        |> List.filter (fun s -> s <> "")
      in
      List.iter
        (fun c ->
          if not (List.mem c Lint.known_codes) then begin
            Format.eprintf "unknown lint code %S in %s (known: %s)@." c what
              (String.concat " " Lint.known_codes);
            exit 2
          end)
        codes;
      codes
    in
    let config =
      {
        Lint.select = parse_codes "--select" select;
        ignored = parse_codes "--ignore" ignored;
        min_severity;
        self_check;
      }
    in
    let spec =
      match spec with
      | Some s -> s
      | None ->
          Format.eprintf "lint: a GRAMMAR argument is required@.";
          exit 2
    in
    handle_load spec (fun g ->
        (* The context owns the engine: every pass and the self-check
           oracle share one memoized pipeline over this grammar. *)
        let ctx = Lalr_lint.Context.of_grammar ?budget g in
        (if timings then
           at_exit (fun () ->
               match Lalr_lint.Context.engine ctx with
               | Some e -> Format.eprintf "%a@." Engine.pp_stats e
               | None ->
                   Format.eprintf
                     "engine timings: unavailable (start symbol is \
                      unproductive)@."));
        with_failure_boundary ?budget (fun () ->
            let diags = Lint.run_ctx ~config ctx in
            (match format with
            | `Text -> Format.printf "%a" Lint.pp_report diags
            | `Json -> print_endline (Diagnostic.list_to_json_string diags));
            if Lint.has_errors diags then exit 2))
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: $(b,text) (default) or $(b,json).")
  in
  let severity =
    Arg.(
      value & opt string "info"
      & info [ "severity" ] ~docv:"LEVEL"
          ~doc:
            "Minimum severity to report: $(b,error), $(b,warning) or \
             $(b,info) (default: everything). The exit code reflects only \
             error findings regardless of this filter.")
  in
  let select =
    Arg.(
      value & opt_all string []
      & info [ "select" ] ~docv:"CODES"
          ~doc:
            "Comma-separated diagnostic codes to report (repeatable); \
             default all.")
  in
  let ignored =
    Arg.(
      value & opt_all string []
      & info [ "ignore" ] ~docv:"CODES"
          ~doc:"Comma-separated diagnostic codes to suppress (repeatable).")
  in
  let self_check =
    Arg.(
      value & flag
      & info [ "self-check" ]
          ~doc:
            "Also run the oracle pass auditing the look-ahead computation \
             itself on this grammar (paper cross-validation; slower).")
  in
  let list_codes =
    Arg.(
      value & flag
      & info [ "codes" ]
          ~doc:"List the registered passes and their codes, then exit.")
  in
  let grammar_opt =
    let doc =
      "Grammar to lint: a file, $(b,-) for stdin, or $(b,suite:NAME). \
       Optional only with $(b,--codes)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"GRAMMAR" ~doc)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis of a grammar with structured diagnostics \
          (exit 2 iff an error-severity finding exists)")
    Term.(
      const run $ grammar_opt $ format $ severity $ select $ ignored
      $ self_check $ list_codes $ timings_arg $ budget_arg)

(* ------------------------------------------------------------------ *)
(* suite                                                              *)
(* ------------------------------------------------------------------ *)

let suite_cmd =
  let run () =
    List.iter
      (fun (e : Registry.entry) ->
        Format.printf "%-16s %s@." e.name e.description)
      Registry.all
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"List the built-in benchmark grammars")
    Term.(const run $ const ())

let () =
  let doc =
    "LALR(1) parser generator toolkit (DeRemer–Pennello look-ahead sets)"
  in
  let info = Cmd.info "lalrgen" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            classify_cmd; report_cmd; conflicts_cmd; tables_cmd; parse_cmd;
            generate_cmd; lint_cmd; suite_cmd;
          ]))
