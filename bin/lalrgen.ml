(* lalrgen — the command-line front end.

   Subcommands:
     classify  FILE      place the grammar in the LR hierarchy
     report    FILE      grammar summary, relations, conflicts, automaton
     conflicts FILE      conflicts only (choose the look-ahead method)
     tables    FILE      print the ACTION/GOTO table
     parse     FILE -- t1 t2 ...   parse a token sequence
     batch     FILE...   classify many grammars, isolated per job
     exercise  FILE      force every engine stage (matrix/cache driver)
     faultpoints          list injection sites and documented exits
     suite                list the built-in grammar suite

   FILE may be "-" for stdin, or "suite:NAME" for a built-in grammar.

   Exit codes (scripting contract, see DESIGN.md):
     0  success
     1  analysis verdict: conflicts / not LALR(1)
     2  input diagnostics: unreadable grammar, lint errors, rejected input
     3  resource budget exhausted (--budget)
     4  internal error (broken invariant in the analysis)
   [batch] exits with the maximum per-job code. *)

open Cmdliner

module G = Lalr_grammar.Grammar
module Reader = Lalr_grammar.Reader
module Transform = Lalr_grammar.Transform
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Engine = Lalr_engine.Engine
module Describe = Lalr_report.Describe
module Driver = Lalr_runtime.Driver
module Token = Lalr_runtime.Token
module Registry = Lalr_suite.Registry
module Budget = Lalr_guard.Budget
module Faultpoint = Lalr_guard.Faultpoint
module Retry = Lalr_guard.Retry
module Protocol = Lalr_serve.Protocol
module Pool = Lalr_serve.Pool
module Serve = Lalr_serve.Serve
module Client = Lalr_serve.Client
module Store = Lalr_store.Store
module Classify = Lalr_tables.Classify
module Trace = Lalr_trace.Trace
module Metrics = Lalr_trace.Metrics

(* ------------------------------------------------------------------ *)
(* Common arguments and loading                                       *)
(* ------------------------------------------------------------------ *)

(* Grammars load through the error-recovering readers so one run
   reports every syntax error, not just the first. A grammar that
   produced any diagnostic is never analysed: best-effort recovery is
   for batching error reports, not for silently linting half a file. *)
let load_grammar spec =
  match spec with
  | "-" ->
      let src = In_channel.input_all In_channel.stdin in
      Reader.of_string_tolerant ~name:"stdin" src
  | s when String.length s > 6 && String.sub s 0 6 = "suite:" ->
      let name = String.sub s 6 (String.length s - 6) in
      (Some (Lazy.force (Registry.find name).grammar), [])
  | path when Filename.check_suffix path ".mly" ->
      Lalr_grammar.Menhir_reader.of_file_tolerant path
  | path -> Reader.of_file_tolerant path

let report_reader_error spec (e : Reader.error) =
  (* [pp_error] already prints the file when the error carries one. *)
  match e.Reader.file with
  | Some _ -> Format.eprintf "%a@." Reader.pp_error e
  | None -> Format.eprintf "%s: %a@." spec Reader.pp_error e

let handle_load spec f =
  match load_grammar spec with
  | Some g, [] -> f g
  | g_opt, errors ->
      List.iter (report_reader_error spec) errors;
      (if g_opt = None && errors = [] then
         Format.eprintf "%s: unreadable grammar@." spec);
      exit 2
  | exception Not_found ->
      Format.eprintf "%s: no such suite grammar (try 'lalrgen suite')@." spec;
      exit 2
  | exception Sys_error msg ->
      Format.eprintf "%s@." msg;
      exit 2
  | exception Invalid_argument msg ->
      Format.eprintf "%s: %s@." spec msg;
      exit 2

let grammar_arg =
  let doc =
    "Grammar to analyse: a file in the yacc-like format, $(b,-) for stdin, \
     or $(b,suite:NAME) for a built-in benchmark grammar."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"GRAMMAR" ~doc)

let timings_arg =
  let doc =
    "After the command, print per-stage engine timings (wall time and \
     memoization hit/miss counters) to stderr."
  in
  Arg.(value & flag & info [ "timings" ] ~doc)

let budget_arg =
  let budget_conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Budget.of_spec s) in
    let print ppf _ = Format.pp_print_string ppf "<budget>" in
    Arg.conv (parse, print)
  in
  let doc =
    Printf.sprintf
      "Bound the whole analysis by a resource budget — %s. When any cap \
       is hit the command stops, prints a structured report naming the \
       stage and resource, and exits 3."
      Budget.spec_doc
  in
  Arg.(
    value
    & opt (some budget_conv) None
    & info [ "budget" ] ~docv:"SPEC" ~doc)

let cache_arg =
  let doc =
    "Persistent artifact cache directory (created if needed). Verified \
     entries seed the engine; corrupt or stale entries are quarantined \
     and recomputed. Plays no part in correctness: any store failure is \
     an ordinary cache miss."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let inject_arg =
  let doc =
    Printf.sprintf
      "Arm deterministic fault injections for robustness testing — %s. \
       See $(b,lalrgen faultpoints) for the sites and their documented \
       exit codes."
      Lalr_guard.Faultpoint.spec_doc
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"SPEC" ~doc
        ~env:(Cmd.Env.info "LALRGEN_INJECT"))

let trace_arg =
  let trace_conv =
    let parse s =
      (* FILE[:FORMAT] — a trailing :chrome/:jsonl/:metrics overrides
         the extension-inferred format; any other colon is part of the
         file name. *)
      match String.rindex_opt s ':' with
      | Some i -> (
          let file = String.sub s 0 i in
          let fmt_s = String.sub s (i + 1) (String.length s - i - 1) in
          match Trace.format_of_name fmt_s with
          | Some fmt when file <> "" -> Ok (file, fmt)
          | _ -> Ok (s, Trace.infer_format s))
      | None -> Ok (s, Trace.infer_format s)
    in
    let print ppf (file, fmt) =
      Format.fprintf ppf "%s:%s" file (Trace.format_name fmt)
    in
    Arg.conv (parse, print)
  in
  let doc =
    "Record a structured trace of the run (spans, algorithm counters) to \
     $(docv). FORMAT is $(b,chrome) (trace-event JSON, loadable in \
     Perfetto; the default for $(b,.json)), $(b,jsonl) (one event per \
     line; inferred from $(b,.jsonl)) or $(b,metrics) (flat key/value \
     dump; inferred from $(b,.txt))."
  in
  Arg.(
    value
    & opt (some trace_conv) None
    & info [ "trace" ] ~docv:"FILE[:FORMAT]" ~doc)

(* Arm the ambient trace session and register its flush. The flush is
   registered BEFORE the pp_stats/persist hooks of [handle_engine]:
   at_exit runs LIFO, so it executes last and the trace captures the
   store-save events the persist hook emits. *)
let setup_trace trace =
  match trace with
  | None -> ()
  | Some (file, fmt) ->
      let session = Trace.start () in
      at_exit (fun () ->
          Trace.finish session;
          try
            Out_channel.with_open_bin file (fun oc ->
                Trace.write session fmt oc)
          with Sys_error msg ->
            Format.eprintf "lalrgen: --trace: %s@." msg)

let keep_going_arg =
  let doc =
    "On budget exhaustion or internal failure, render whatever stages \
     completed — clearly marked INCOMPLETE — instead of only the error. \
     The exit code is unchanged (3 or 4)."
  in
  Arg.(value & flag & info [ "keep-going" ] ~doc)

(* The failure boundary of the process: installs the budget (if any)
   around [f] so even work outside the engine's memoized slots — the
   LALR(k) search, the parse driver — is bounded, and maps the two
   structured failure outcomes to their exit codes. *)
let with_failure_boundary ?budget f =
  let run () =
    match budget with
    | None -> f ()
    | Some b -> Budget.with_budget b ~stage:"main" f
  in
  match run () with
  | v -> v
  | exception Budget.Exceeded ex ->
      Format.eprintf "lalrgen: %a@." Budget.pp_exceeded ex;
      exit 3
  | exception Budget.Internal_error { stage; invariant } ->
      Format.eprintf "lalrgen: internal error in stage '%s': %s@." stage
        invariant;
      exit 4
  | exception Stack_overflow ->
      Format.eprintf "lalrgen: internal error: stack overflow during \
                      analysis@.";
      exit 4
  | exception Faultpoint.Injected { site } ->
      (* Only store sites raise [Injected] and the store absorbs them;
         seeing one here means an absorption contract broke. *)
      Format.eprintf "lalrgen: internal error: unabsorbed injected fault \
                      at %s@." site;
      exit 4
  | exception Assert_failure (file, line, _) ->
      Format.eprintf "lalrgen: internal error: assertion failed at %s:%d@."
        file line;
      exit 4

let arm_injection inject =
  match inject with
  | None -> ()
  | Some spec -> (
      match Faultpoint.arm spec with
      | Ok () -> ()
      | Error msg ->
          Format.eprintf "lalrgen: --inject: %s@." msg;
          exit 2)

let open_store cache =
  match cache with
  | None -> None
  | Some dir -> (
      (* A cache directory the user named but that cannot exist at all
         is a configuration error (exit 2), not a miss; everything
         after this point is absorbed by the store itself. *)
      match Store.create ~dir with
      | st -> Some st
      | exception Sys_error msg ->
          Format.eprintf "lalrgen: --cache: %s@." msg;
          exit 2)

(* Every subcommand threads ONE engine per grammar: whatever subset of
   the pipeline it touches — automaton, relations, look-aheads, tables,
   classification — is computed at most once per process.

   The stats are printed via [at_exit] so commands that exit nonzero
   (conflicts, budget exhaustion) still report their timings; the
   store is persisted the same way — and first, being registered last
   — so an interrupted pipeline still saves its completed prefix.

   Loading happens INSIDE the failure boundary: a reader failure
   (including an injected one) maps to the same typed exits as an
   engine failure. *)
let handle_engine spec ~timings ?budget ?cache ?inject ?trace f =
  arm_injection inject;
  setup_trace trace;
  let store = open_store cache in
  with_failure_boundary ?budget (fun () ->
      handle_load spec (fun g ->
          let e = Engine.create ?budget ?store g in
          if timings then
            at_exit (fun () ->
                Format.eprintf "%a@." Engine.pp_stats e;
                match Engine.store e with
                | Some st -> Format.eprintf "%a@." Store.pp_stats st
                | None -> ());
          at_exit (fun () -> Engine.persist e);
          f e))

let exit_of_failure = function
  | Engine.Budget_exceeded _ -> 3
  | Engine.Internal_error _ -> 4

let method_arg =
  let doc =
    "Look-ahead method: $(b,lalr) (DeRemer–Pennello, default), $(b,slr), or \
     $(b,nqlalr)."
  in
  Arg.(
    value
    & opt (enum [ ("lalr", `Lalr); ("slr", `Slr); ("nqlalr", `Nqlalr) ]) `Lalr
    & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let tables_of_method e m = Engine.tables_for e m

(* ------------------------------------------------------------------ *)
(* classify                                                           *)
(* ------------------------------------------------------------------ *)

let classify_cmd =
  let run spec with_lr1 try_k keep_going timings budget cache inject trace =
    handle_engine spec ~timings ?budget ?cache ?inject ?trace (fun e ->
        let g = Engine.grammar e in
        let use_lr1 = with_lr1 || G.n_productions g <= Engine.lr1_limit in
        let finish v =
          Describe.classification Format.std_formatter v;
          (if try_k > 1 && not v.Lalr_tables.Classify.lalr1 then
             match Lalr_core.Lalr_k.smallest_k ~limit:try_k (Engine.lr0 e) with
             | Some k -> Format.printf "LALR(%d) with a %d-token window@." k k
             | None ->
                 Format.printf "not LALR(k) for any k ≤ %d@." try_k);
          (* Exit status mirrors LALR(1)-cleanliness, for scripting. *)
          if not v.Lalr_tables.Classify.lalr1 then exit 1
        in
        if not keep_going then
          finish (Engine.classification ~with_lr1:use_lr1 e)
        else
          let p =
            Engine.run_partial e (fun e ->
                Engine.classification ~with_lr1:use_lr1 e)
          in
          match (p.Engine.pr_value, p.Engine.pr_completeness) with
          | Some v, _ -> finish v
          | None, Engine.Complete -> assert false
          | None, Engine.Incomplete failure ->
              Format.printf "== INCOMPLETE: %a ==@." Engine.pp_failure
                failure;
              Format.printf "completed stages: %s@."
                (match p.Engine.pr_completed with
                | [] -> "(none)"
                | l -> String.concat ", " l);
              (* Whatever per-method tables finished are memory reads
                 now: render their conflict reports as the partial
                 verdict. *)
              List.iter
                (fun (slot, label, m) ->
                  if List.mem slot p.Engine.pr_completed then begin
                    Format.printf "@.%s conflicts (partial):@." label;
                    Describe.conflicts Format.std_formatter
                      (Engine.tables_for e m)
                  end)
                [
                  ("tables", "lalr", `Lalr);
                  ("slr_tables", "slr", `Slr);
                  ("nqlalr_tables", "nqlalr", `Nqlalr);
                ];
              exit (exit_of_failure failure))
  in
  let with_lr1 =
    Arg.(
      value & flag
      & info [ "with-lr1" ]
          ~doc:
            "Force the canonical LR(1) construction even for large grammars.")
  in
  let try_k =
    Arg.(
      value & opt int 1
      & info [ "k" ] ~docv:"K"
          ~doc:
            "When not LALR(1), also search for the least k ≤ $(docv) making \
             the grammar LALR(k) (paper §8 extension).")
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Place a grammar in the LR hierarchy")
    Term.(const run $ grammar_arg $ with_lr1 $ try_k $ keep_going_arg
          $ timings_arg $ budget_arg $ cache_arg $ inject_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* report                                                             *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let run spec dump_states keep_going timings budget cache inject trace =
    handle_engine spec ~timings ?budget ?cache ?inject ?trace (fun e ->
        if not keep_going then
          Describe.report ~dump_states Format.std_formatter e
        else
          let p =
            Engine.run_partial e
              (Describe.report ~dump_states Format.std_formatter)
          in
          match p.Engine.pr_completeness with
          | Engine.Complete -> ()
          | Engine.Incomplete failure ->
              (* The report printed up to the stage that failed; close
                 it with a marker no reader can miss. *)
              Format.printf "@.== INCOMPLETE REPORT: %a ==@."
                Engine.pp_failure failure;
              Format.printf "completed stages: %s@."
                (match p.Engine.pr_completed with
                | [] -> "(none)"
                | l -> String.concat ", " l);
              exit (exit_of_failure failure))
  in
  let dump =
    Arg.(
      value & flag
      & info [ "dump-states" ] ~doc:"Print all states regardless of size.")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Full analysis report (yacc -v style)")
    Term.(const run $ grammar_arg $ dump $ keep_going_arg $ timings_arg
          $ budget_arg $ cache_arg $ inject_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* conflicts                                                          *)
(* ------------------------------------------------------------------ *)

let conflicts_cmd =
  let run spec m timings budget cache inject trace =
    handle_engine spec ~timings ?budget ?cache ?inject ?trace (fun e ->
        let tbl = tables_of_method e m in
        Describe.conflicts Format.std_formatter tbl;
        if Tables.unresolved_conflicts tbl <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "conflicts" ~doc:"Report table conflicts under a chosen method")
    Term.(const run $ grammar_arg $ method_arg $ timings_arg $ budget_arg
          $ cache_arg $ inject_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* tables                                                             *)
(* ------------------------------------------------------------------ *)

let tables_cmd =
  let run spec m compact timings budget cache inject trace =
    handle_engine spec ~timings ?budget ?cache ?inject ?trace (fun e ->
        let tbl = tables_of_method e m in
        if compact then begin
          let module Compact = Lalr_tables.Compact in
          Format.printf "exact:  %a@." Compact.pp_stats
            (Compact.stats (Compact.compress tbl));
          Format.printf "yacc:   %a@." Compact.pp_stats
            (Compact.stats (Compact.compress ~mode:Compact.Yacc tbl))
        end
        else Format.printf "%a@." Tables.pp tbl)
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "Print compression statistics (exact and yacc-style comb \
             packing) instead of the dense table.")
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Print the ACTION/GOTO table")
    Term.(const run $ grammar_arg $ method_arg $ compact $ timings_arg
          $ budget_arg $ cache_arg $ inject_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* parse                                                              *)
(* ------------------------------------------------------------------ *)

let parse_cmd =
  let run spec tokens sexp timings budget cache inject trace =
    handle_engine spec ~timings ?budget ?cache ?inject ?trace (fun e ->
        let g = Engine.grammar e in
        let tbl = Engine.tables e in
        match Token.of_names g tokens with
        | exception Invalid_argument msg ->
            Format.eprintf "%s@." msg;
            exit 2
        | toks -> (
            match Driver.parse tbl toks with
            | Ok tree ->
                if sexp then
                  Format.printf "%a@." (Lalr_runtime.Tree.pp_sexp g) tree
                else Format.printf "%a@." (Lalr_runtime.Tree.pp g) tree
            | Error e ->
                Format.printf "%a@." (Driver.pp_error g) e;
                exit 2))
  in
  let tokens =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"TOKEN" ~doc:"Terminal names forming the input.")
  in
  let sexp =
    Arg.(
      value & flag
      & info [ "sexp" ] ~doc:"Print the tree as a compact s-expression.")
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a token sequence and print the tree")
    Term.(const run $ grammar_arg $ tokens $ sexp $ timings_arg $ budget_arg
          $ cache_arg $ inject_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* generate                                                           *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let run spec m output timings budget cache inject trace =
    handle_engine spec ~timings ?budget ?cache ?inject ?trace (fun e ->
        let tbl = tables_of_method e m in
        let source = Lalr_report.Codegen.emit_to_string tbl in
        match output with
        | None -> print_string source
        | Some path -> Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc source))
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the generated module to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Emit a standalone OCaml parser module (tables + engine, no \
          library dependency)")
    Term.(const run $ grammar_arg $ method_arg $ output $ timings_arg
          $ budget_arg $ cache_arg $ inject_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                               *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let module Lint = Lalr_lint.Engine in
  let module Diagnostic = Lalr_lint.Diagnostic in
  let run spec format severity select ignored self_check list_codes timings
      budget trace =
    if list_codes then begin
      List.iter
        (fun (p : Lalr_lint.Passes.pass) ->
          Format.printf "%-14s %-12s %s@." p.name
            (String.concat "," p.codes)
            p.doc)
        (Lint.passes ~self_check:true);
      exit 0
    end;
    let min_severity =
      match Diagnostic.severity_of_string severity with
      | Some s -> s
      | None ->
          Format.eprintf
            "invalid --severity %S (expected error, warning or info)@."
            severity;
          exit 2
    in
    let parse_codes what csv =
      let codes =
        List.concat_map (String.split_on_char ',') csv
        |> List.filter (fun s -> s <> "")
      in
      List.iter
        (fun c ->
          if not (List.mem c Lint.known_codes) then begin
            Format.eprintf "unknown lint code %S in %s (known: %s)@." c what
              (String.concat " " Lint.known_codes);
            exit 2
          end)
        codes;
      codes
    in
    let config =
      {
        Lint.select = parse_codes "--select" select;
        ignored = parse_codes "--ignore" ignored;
        min_severity;
        self_check;
      }
    in
    let spec =
      match spec with
      | Some s -> s
      | None ->
          Format.eprintf "lint: a GRAMMAR argument is required@.";
          exit 2
    in
    setup_trace trace;
    handle_load spec (fun g ->
        (* The context owns the engine: every pass and the self-check
           oracle share one memoized pipeline over this grammar. *)
        let ctx = Lalr_lint.Context.of_grammar ?budget g in
        (if timings then
           at_exit (fun () ->
               match Lalr_lint.Context.engine ctx with
               | Some e -> Format.eprintf "%a@." Engine.pp_stats e
               | None ->
                   Format.eprintf
                     "engine timings: unavailable (start symbol is \
                      unproductive)@."));
        with_failure_boundary ?budget (fun () ->
            let diags = Lint.run_ctx ~config ctx in
            (match format with
            | `Text -> Format.printf "%a" Lint.pp_report diags
            | `Json -> print_endline (Diagnostic.list_to_json_string diags));
            if Lint.has_errors diags then exit 2))
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: $(b,text) (default) or $(b,json).")
  in
  let severity =
    Arg.(
      value & opt string "info"
      & info [ "severity" ] ~docv:"LEVEL"
          ~doc:
            "Minimum severity to report: $(b,error), $(b,warning) or \
             $(b,info) (default: everything). The exit code reflects only \
             error findings regardless of this filter.")
  in
  let select =
    Arg.(
      value & opt_all string []
      & info [ "select" ] ~docv:"CODES"
          ~doc:
            "Comma-separated diagnostic codes to report (repeatable); \
             default all.")
  in
  let ignored =
    Arg.(
      value & opt_all string []
      & info [ "ignore" ] ~docv:"CODES"
          ~doc:"Comma-separated diagnostic codes to suppress (repeatable).")
  in
  let self_check =
    Arg.(
      value & flag
      & info [ "self-check" ]
          ~doc:
            "Also run the oracle pass auditing the look-ahead computation \
             itself on this grammar (paper cross-validation; slower).")
  in
  let list_codes =
    Arg.(
      value & flag
      & info [ "codes" ]
          ~doc:"List the registered passes and their codes, then exit.")
  in
  let grammar_opt =
    let doc =
      "Grammar to lint: a file, $(b,-) for stdin, or $(b,suite:NAME). \
       Optional only with $(b,--codes)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"GRAMMAR" ~doc)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis of a grammar with structured diagnostics \
          (exit 2 iff an error-severity finding exists)")
    Term.(
      const run $ grammar_opt $ format $ severity $ select $ ignored
      $ self_check $ list_codes $ timings_arg $ budget_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* exercise                                                           *)
(* ------------------------------------------------------------------ *)

(* Forces every slot, in dependency order. [classify] alone never
   touches [propagation] or the lr1-free classification variant, so the
   fault-injection matrix (and cache warming) drives THIS command: an
   armed compute site is guaranteed to be reached. *)
let force_all_stages e =
  ignore (Engine.analysis e);
  ignore (Engine.lr0 e);
  ignore (Engine.relations e);
  ignore (Engine.follow e);
  ignore (Engine.lalr e);
  ignore (Engine.slr e);
  ignore (Engine.nqlalr e);
  ignore (Engine.propagation e);
  ignore (Engine.lr1 e);
  ignore (Engine.tables e);
  ignore (Engine.slr_tables e);
  ignore (Engine.nqlalr_tables e);
  ignore (Engine.classification ~with_lr1:false e);
  ignore (Engine.classification ~with_lr1:true e)

let exercise_cmd =
  let run spec timings budget cache inject trace =
    handle_engine spec ~timings ?budget ?cache ?inject ?trace (fun e ->
        force_all_stages e;
        let stages = Engine.stats e in
        let forced =
          List.length (List.filter (fun (s : Engine.stage) -> s.forced) stages)
        in
        Format.printf "forced %d/%d stages@." forced (List.length stages))
  in
  Cmd.v
    (Cmd.info "exercise"
       ~doc:
         "Force every engine stage — the driver for the fault-injection \
          matrix and for warming a $(b,--cache) directory")
    Term.(const run $ grammar_arg $ timings_arg $ budget_arg $ cache_arg
          $ inject_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* faultpoints                                                        *)
(* ------------------------------------------------------------------ *)

let faultpoints_cmd =
  let run () =
    (* Three machine-readable columns — site, kind, documented exit —
       so the CI matrix iterates with `while read site kind code`. *)
    List.iter
      (fun (s : Faultpoint.site_info) ->
        List.iter
          (fun k ->
            Format.printf "%-20s %-8s %d@." s.si_name (Faultpoint.kind_name k)
              (Faultpoint.expected_exit s k))
          s.si_kinds)
      Faultpoint.sites
  in
  Cmd.v
    (Cmd.info "faultpoints"
       ~doc:
         "List the fault-injection sites, the kinds meaningful at each, \
          and the documented exit code when the injection fires")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* batch                                                              *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The per-response exit code carried in a serve response line; an
   undecodable line counts as the worst outcome (the daemon never
   emits one — seeing it means the transport mangled the stream). *)
let response_exit_of_line line =
  match Protocol.Json.parse line with
  | Ok j -> (
      match Protocol.Json.member "exit" j with
      | Some (Protocol.Json.Num f) -> int_of_float f
      | _ -> 4)
  | Error _ -> 4

(* Print whatever response lines arrived (possibly a partial set, when
   the connection died mid-call) and fold their worst exit code. *)
let print_response_lines lines =
  List.fold_left
    (fun worst l ->
      print_endline l;
      max worst (response_exit_of_line l))
    0 lines

(* batch --via-serve: ship the whole batch to a running daemon over
   one resilient connection instead of analysing in-process. Per-job
   isolation, budgets and retries then happen server-side; the output
   contract (one JSON line per job, worst exit, stderr summary) is
   unchanged. *)
let batch_via_serve endpoint_s files budget_spec =
  let endpoint =
    match Serve.parse_endpoint endpoint_s with
    | Ok e -> e
    | Error m ->
        Format.eprintf "lalrgen: --via-serve: %s@." m;
        exit 2
  in
  let request file =
    let source =
      if file = "-" then
        Protocol.Inline
          { text = In_channel.input_all In_channel.stdin; format = `Cfg }
      else Protocol.File file
    in
    Protocol.encode_request
      (Protocol.Classify
         {
           id = file;
           source;
           budget = budget_spec;
           deadline_ms = None;
           trace_id = None;
         })
  in
  (* Every job ships with a trace id: the daemon stamps it onto the
     request's span tree and access-log line, so a lost or slow job in
     a big batch can be found server-side by grep. *)
  let lines =
    Client.stamp_trace_ids
      ~prefix:(Printf.sprintf "batch-%d" (Unix.getpid ()))
      (List.map request files)
  in
  let client = Client.create endpoint in
  match Client.call client lines with
  | Ok responses ->
      Client.close client;
      let nonzero =
        List.length
          (List.filter (fun l -> response_exit_of_line l <> 0) responses)
      in
      let worst = print_response_lines responses in
      Format.eprintf "batch: %d jobs, %d nonzero@." (List.length responses)
        nonzero;
      exit worst
  | Error err ->
      let partial =
        match err with
        | Client.Unavailable { partial; _ } -> partial
        | Client.Breaker_open _ -> []
      in
      let worst = print_response_lines partial in
      Format.eprintf "lalrgen: batch: %s@." (Client.error_message err);
      Format.eprintf "batch: %d jobs, %d responded@." (List.length lines)
        (List.length partial);
      (* Responses arrive in request order, so the unanswered jobs are
         exactly the suffix past what arrived — echo their trace ids
         for the server-side hunt. *)
      let unanswered =
        Client.trace_ids
          (List.filteri (fun i _ -> i >= List.length partial) lines)
      in
      if unanswered <> [] then
        Format.eprintf "batch: unanswered trace ids: %s@."
          (String.concat " " unanswered);
      exit (max worst 4)

type job_result = {
  j_exit : int;
  j_status : string;  (* ok | verdict | diagnostics | budget | internal *)
  j_detail : string;
  j_lalr1 : bool option;
  j_completed : string list;
  j_wall_ms : float;  (* whole attempt, load included *)
  j_stages : (string * float) list;  (* forced engine stages, seconds *)
  j_lr0_states : int option;  (* peak automaton size, when built *)
}

let batch_cmd =
  let run files budget_spec cache inject timings trace via_serve =
    arm_injection inject;
    setup_trace trace;
    (* Validate the budget spec once; each job then parses its own
       fresh copy, because a Budget.t accumulates consumption and
       isolation means no job pays for another's spending. *)
    (match budget_spec with
    | Some s when Result.is_error (Budget.of_spec s) ->
        (match Budget.of_spec s with
        | Error m ->
            Format.eprintf "lalrgen: --budget: %s@." m;
            exit 2
        | Ok _ -> ())
    | _ -> ());
    (match via_serve with
    | Some ep -> batch_via_serve ep files budget_spec
    | None -> ());
    let store = open_store cache in
    let fresh_budget () =
      match budget_spec with
      | None -> None
      | Some s -> (
          match Budget.of_spec s with Ok b -> Some b | Error _ -> None)
    in
    let diag code status detail =
      { j_exit = code; j_status = status; j_detail = detail; j_lalr1 = None;
        j_completed = []; j_wall_ms = 0.; j_stages = []; j_lr0_states = None }
    in
    (* One isolated attempt: every outcome is data, nothing escapes. *)
    let attempt file =
      match load_grammar file with
      | exception Not_found -> diag 2 "diagnostics" "no such suite grammar"
      | exception Sys_error msg -> diag 2 "diagnostics" msg
      | exception Invalid_argument msg -> diag 2 "diagnostics" msg
      | exception Budget.Exceeded ex ->
          diag 3 "budget" (Format.asprintf "%a" Budget.pp_exceeded ex)
      | exception Budget.Internal_error { stage; invariant } ->
          diag 4 "internal"
            (Printf.sprintf "internal error in stage '%s': %s" stage invariant)
      | Some g, [] -> (
          let e = Engine.create ?budget:(fresh_budget ()) ?store g in
          let p =
            Engine.run_partial e (fun e ->
                Engine.classification
                  ~with_lr1:(G.n_productions g <= Engine.lr1_limit)
                  e)
          in
          Engine.persist e;
          let stages =
            List.filter_map
              (fun (s : Engine.stage) ->
                if s.Engine.forced then Some (s.Engine.stage, s.Engine.wall)
                else None)
              (Engine.stats e)
          in
          let lr0_states = Engine.peek_lr0_states e in
          match (p.Engine.pr_value, p.Engine.pr_completeness) with
          | Some v, _ ->
              let lalr1 = v.Classify.lalr1 in
              {
                j_exit = (if lalr1 then 0 else 1);
                j_status = (if lalr1 then "ok" else "verdict");
                j_detail = "";
                j_lalr1 = Some lalr1;
                j_completed = p.Engine.pr_completed;
                j_wall_ms = 0.;
                j_stages = stages;
                j_lr0_states = lr0_states;
              }
          | None, Engine.Complete -> assert false
          | None, Engine.Incomplete failure ->
              {
                j_exit = exit_of_failure failure;
                j_status =
                  (match failure with
                  | Engine.Budget_exceeded _ -> "budget"
                  | Engine.Internal_error _ -> "internal");
                j_detail = Format.asprintf "%a" Engine.pp_failure failure;
                j_lalr1 = None;
                j_completed = p.Engine.pr_completed;
                j_wall_ms = 0.;
                j_stages = stages;
                j_lr0_states = lr0_states;
              })
      | g_opt, errors ->
          let detail =
            match errors with
            | e :: _ -> Format.asprintf "%a" Reader.pp_error e
            | [] ->
                if g_opt = None then "unreadable grammar" else "no grammar"
          in
          diag 2 "diagnostics" detail
    in
    (* Line schema documented in README ("Batch mode"): keep in sync. *)
    let emit file r ~retries =
      Format.printf
        "{\"file\":\"%s\",\"exit\":%d,\"status\":\"%s\",\"retries\":%d,\"wall_ms\":%.3f%s%s%s%s%s}@."
        (json_escape file) r.j_exit r.j_status retries r.j_wall_ms
        (match r.j_lalr1 with
        | Some b -> Printf.sprintf ",\"lalr1\":%b" b
        | None -> "")
        (match r.j_lr0_states with
        | Some n -> Printf.sprintf ",\"lr0_states\":%d" n
        | None -> "")
        (if r.j_stages = [] then ""
         else
           Printf.sprintf ",\"stages\":{%s}"
             (String.concat ","
                (List.map
                   (fun (name, wall) ->
                     Printf.sprintf "\"%s\":%.3f" (json_escape name)
                       (wall *. 1e3))
                   r.j_stages)))
        (if r.j_detail = "" then ""
         else Printf.sprintf ",\"detail\":\"%s\"" (json_escape r.j_detail))
        (if r.j_completed = [] then ""
         else
           Printf.sprintf ",\"completed\":[%s]"
             (String.concat ","
                (List.map
                   (fun s -> Printf.sprintf "\"%s\"" (json_escape s))
                   r.j_completed)))
    in
    (* One span per attempt, so a trace of a batch run shows a forest of
       per-job trees; the measured wall covers load + analysis. *)
    let timed_attempt file =
      let t0 = Unix.gettimeofday () in
      let r =
        Trace.with_span
          ~attrs:(fun () -> [ ("file", Trace.Str file) ])
          "batch.job"
          (fun () -> attempt file)
      in
      { r with j_wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 }
    in
    let codes =
      List.map
        (fun file ->
          (* Retry on internal faults with capped exponential backoff
             (deterministic jitter): a broken invariant may be a
             transient environmental condition (and the fire-once
             injections model exactly that); when the attempt cap is
             reached the last failure is reported as final. *)
          let r, retries =
            Retry.run
              ~retryable:(fun r -> r.j_exit = 4)
              (fun ~attempt:_ -> timed_attempt file)
          in
          emit file r ~retries;
          r.j_exit)
        files
    in
    let nonzero = List.length (List.filter (fun c -> c <> 0) codes) in
    Format.eprintf "batch: %d jobs, %d nonzero@." (List.length codes) nonzero;
    if timings then (
      match store with
      | Some st -> Format.eprintf "%a@." Store.pp_stats st
      | None -> ());
    (* The aggregate verdict is the worst per-job one. *)
    exit (List.fold_left max 0 codes)
  in
  let files =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"GRAMMAR"
          ~doc:
            "Grammars to process (files, $(b,-), or $(b,suite:NAME)); one \
             JSON line per job on stdout.")
  in
  let budget_spec =
    let doc =
      Printf.sprintf
        "Per-job resource budget, parsed afresh for every job — %s."
        Budget.spec_doc
    in
    Arg.(value & opt (some string) None & info [ "budget" ] ~docv:"SPEC" ~doc)
  in
  let via_serve =
    let doc =
      "Route the batch through a running $(b,lalrgen serve) daemon at \
       $(docv) instead of analysing in-process: one request per grammar \
       over a single resilient connection (health-checked reconnect, \
       circuit breaker). Isolation, budgets and retries happen \
       server-side; $(b,--cache) and $(b,--inject) apply to the daemon's \
       process, not this one. The output contract is unchanged. On \
       connection failure the responses that arrived are printed and the \
       exit code is 4."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "via-serve" ] ~docv:"ENDPOINT" ~doc)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Classify many grammars in one invocation with per-job isolation: \
          a failing job is reported (JSON-lines) and never aborts the \
          batch; internal faults are retried with capped exponential \
          backoff; the exit code is the maximum per-job code. With \
          $(b,--via-serve), the jobs are dispatched to a running daemon \
          instead of analysed in-process")
    Term.(const run $ files $ budget_spec $ cache_arg $ inject_arg
          $ timings_arg $ trace_arg $ via_serve)

(* ------------------------------------------------------------------ *)
(* stats                                                              *)
(* ------------------------------------------------------------------ *)

(* One JSON document profiling the structures the paper's complexity
   argument is about: automaton sizes, relation cardinalities, the
   Digraph solver's work (unions, stack depth, SCCs), plus the ambient
   trace metrics gathered while computing them. CI cross-checks the
   structural members against the metric gauges — two code paths, one
   truth. *)
let stats_cmd =
  let run spec timings budget cache inject trace =
    handle_engine spec ~timings ?budget ?cache ?inject ?trace (fun e ->
        (* Metrics are recorded by the ambient session; arm a private
           one when --trace didn't, so the "metrics" member is always
           populated. It must be armed BEFORE the stages force. *)
        let owned, session =
          match Trace.active () with
          | Some s -> (false, s)
          | None -> (true, Trace.start ())
        in
        let la = Engine.lalr e in
        let a = Engine.lr0 e in
        let g = Engine.grammar e in
        let st = Lalr.stats la in
        let states, kernel_items, transitions = Lr0.size_report a in
        let lalr1 = Lalr.is_lalr1 la in
        if owned then Trace.finish session;
        let buf = Buffer.create 2048 in
        let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
        let scc_sizes sccs =
          String.concat ","
            (List.map
               (fun scc -> string_of_int (List.length scc))
               (List.sort
                  (fun a b -> compare (List.length a) (List.length b))
                  sccs))
        in
        let digraph_member ~unions ~max_depth ~sccs =
          Printf.sprintf
            "{\"unions\":%d,\"max_stack_depth\":%d,\"sccs\":%d,\"scc_sizes\":[%s]}"
            unions max_depth (List.length sccs) (scc_sizes sccs)
        in
        p "{\n";
        p "  \"grammar\": {\"source\":\"%s\",\"terminals\":%d,\"nonterminals\":%d,\"productions\":%d},\n"
          (Trace.json_escape (G.source g))
          (G.n_terminals g) (G.n_nonterminals g) (G.n_productions g);
        p "  \"lr0\": {\"states\":%d,\"kernel_items\":%d,\"transitions\":%d,\"nt_transitions\":%d},\n"
          states kernel_items transitions (Lr0.n_nt_transitions a);
        p "  \"relations\": {\"nt_transitions\":%d,\"dr_total\":%d,\"reads_edges\":%d,\"includes_edges\":%d,\"lookback_edges\":%d,\"reductions\":%d,\"la_total\":%d},\n"
          st.Lalr.n_nt_transitions st.Lalr.dr_total st.Lalr.reads_edges
          st.Lalr.includes_edges st.Lalr.lookback_edges st.Lalr.n_reductions
          st.Lalr.la_total;
        p "  \"digraph\": {\"reads\":%s,\"includes\":%s},\n"
          (digraph_member ~unions:st.Lalr.reads_unions
             ~max_depth:st.Lalr.reads_max_depth ~sccs:st.Lalr.reads_sccs)
          (digraph_member ~unions:st.Lalr.includes_unions
             ~max_depth:st.Lalr.includes_max_depth ~sccs:st.Lalr.includes_sccs);
        let m = st.Lalr.mem in
        p "  \"memory\": {\"reads_offsets_words\":%d,\"reads_cols_words\":%d,\"includes_offsets_words\":%d,\"includes_cols_words\":%d,\"lookback_offsets_words\":%d,\"lookback_cols_words\":%d,\"reduction_index_words\":%d},\n"
          m.Lalr.reads_offsets_words m.Lalr.reads_cols_words
          m.Lalr.includes_offsets_words m.Lalr.includes_cols_words
          m.Lalr.lookback_offsets_words m.Lalr.lookback_cols_words
          m.Lalr.reduction_index_words;
        p "  \"lalr1\": %b,\n" lalr1;
        p "  \"metrics\": %s\n" (Trace.metrics_json session);
        p "}\n";
        print_string (Buffer.contents buf))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print a structural and metric profile of the analysis as one \
          JSON document: automaton sizes, relation cardinalities, Digraph \
          solver work (set unions, stack depth, SCC histogram), the words \
          held by the packed relation arrays, and the trace metrics \
          recorded while computing them")
    Term.(const run $ grammar_arg $ timings_arg $ budget_arg $ cache_arg
          $ inject_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* suite                                                              *)
(* ------------------------------------------------------------------ *)

let suite_cmd =
  let run () =
    List.iter
      (fun (e : Registry.entry) ->
        Format.printf "%-16s %s@." e.name e.description)
      Registry.all
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"List the built-in benchmark grammars")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* serve                                                              *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc =
    "Endpoint to listen on (serve) or connect to (call): a filesystem \
     path for a Unix-domain socket, $(b,HOST:PORT) or a bare $(b,PORT) \
     (host 127.0.0.1) for TCP."
  in
  Arg.(
    value
    & opt string "lalrgen.sock"
    & info [ "socket" ] ~docv:"ENDPOINT" ~doc)

let serve_cmd =
  let run socket domains queue budget_spec cache inject max_line trace_file
      access_log =
    arm_injection inject;
    (match budget_spec with
    | Some s -> (
        match Budget.of_spec s with
        | Ok _ -> ()
        | Error m ->
            Format.eprintf "lalrgen: --budget: %s@." m;
            exit 2)
    | None -> ());
    let endpoint =
      match Serve.parse_endpoint socket with
      | Ok e -> e
      | Error m ->
          Format.eprintf "lalrgen: --socket: %s@." m;
          exit 2
    in
    let store = open_store cache in
    let cfg =
      {
        Serve.endpoint;
        pool =
          {
            Pool.default_config with
            Pool.domains;
            queue_capacity = queue;
            default_budget = budget_spec;
            store;
          };
        max_line;
        trace_file;
        access_log;
        on_ready =
          (fun line ->
            print_endline line;
            flush stdout);
      }
    in
    match Serve.run cfg with
    | Ok () ->
        (match store with
        | Some st -> Format.eprintf "%a@." Store.pp_stats st
        | None -> ());
        exit 0
    | Error m ->
        Format.eprintf "lalrgen: serve: %s@." m;
        exit 2
  in
  let domains =
    let doc =
      "Worker domains in the analysis pool (defaults to the runtime's \
       recommended domain count)."
    in
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "domains" ] ~docv:"N" ~doc)
  in
  let queue =
    let doc =
      "Admission queue capacity; requests beyond it are shed with a typed \
       $(b,overloaded) response instead of queueing without bound."
    in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let budget_spec =
    let doc =
      Printf.sprintf
        "Default per-request resource budget, applied to requests that \
         carry no $(b,budget) field — %s."
        Budget.spec_doc
    in
    Arg.(value & opt (some string) None & info [ "budget" ] ~docv:"SPEC" ~doc)
  in
  let max_line =
    let doc =
      "Request-line byte cap; longer lines are answered with a typed \
       $(b,bad_request) and discarded."
    in
    Arg.(
      value
      & opt int Serve.default_max_line
      & info [ "max-line" ] ~docv:"BYTES" ~doc)
  in
  let trace_file =
    let doc =
      "Write the daemon's trace to $(docv) (format inferred from the \
       extension) and each worker domain's session to $(docv).wN."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let access_log =
    let doc =
      "Append one JSON line per response to $(docv): timestamp, request \
       id, status, exit, delivery flag, latency and queue-wait \
       milliseconds, worker and trace id when known (see README \
       \"Observability\" for the schema). Write failures are absorbed — \
       logging never takes a request down."
    in
    Arg.(
      value & opt (some string) None & info [ "access-log" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the analysis daemon: newline-delimited JSON requests over a \
          Unix or TCP socket, dispatched to a supervised pool of worker \
          domains sharing one artifact store. Degrades under fault and \
          overload with typed per-request responses; SIGTERM drains \
          gracefully (exit 0). See README \"Serving\" for the protocol.")
    Term.(const run $ socket_arg $ domains $ queue $ budget_spec $ cache_arg
          $ inject_arg $ max_line $ trace_file $ access_log)

(* ------------------------------------------------------------------ *)
(* call — the matching line-protocol client                           *)
(* ------------------------------------------------------------------ *)

let call_cmd =
  let run socket trace_prefix requests =
    let endpoint =
      match Serve.parse_endpoint socket with
      | Ok e -> e
      | Error m ->
          Format.eprintf "lalrgen: --socket: %s@." m;
          exit 2
    in
    let lines =
      match requests with
      | [ "-" ] | [] -> In_channel.input_lines stdin
      | rs -> rs
    in
    let lines =
      match trace_prefix with
      | None -> lines
      | Some prefix -> Client.stamp_trace_ids ~prefix lines
    in
    let client = Client.create endpoint in
    match Client.call client lines with
    | Ok responses ->
        Client.close client;
        exit (print_response_lines responses)
    | Error err ->
        (* A failed transport is the client's failure, not the
           daemon's verdict: exit 4 (internal), after delivering every
           response line that DID arrive — the daemon already did that
           work. *)
        let partial =
          match err with
          | Client.Unavailable { partial; _ } -> partial
          | Client.Breaker_open _ -> []
        in
        let worst = print_response_lines partial in
        Format.eprintf "lalrgen: call: %s@." (Client.error_message err);
        let missing = List.length lines - List.length partial in
        if missing > 0 && partial <> [] then
          Format.eprintf "lalrgen: call: %d response(s) missing@." missing;
        (* Responses arrive in request order: the unanswered requests
           are the suffix, and their trace ids are the handle for
           finding them in the daemon's trace files and access log. *)
        let unanswered =
          Client.trace_ids
            (List.filteri (fun i _ -> i >= List.length partial) lines)
        in
        if unanswered <> [] then
          Format.eprintf "lalrgen: call: unanswered trace ids: %s@."
            (String.concat " " unanswered);
        exit (max worst 4)
  in
  let trace_prefix =
    let doc =
      "Stamp every classify request that carries no $(b,trace_id) with \
       $(docv)-$(i,INDEX) before sending. The daemon echoes the id in \
       the response, its access log and the worker trace session; on \
       transport failure the ids of unanswered requests are printed to \
       stderr."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-id" ] ~docv:"PREFIX" ~doc)
  in
  let requests =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Request lines (JSON, see README \"Serving\"); with no \
             arguments or a single $(b,-), lines are read from stdin. One \
             response line is printed per request; the exit code is the \
             maximum per-response $(b,exit) field.")
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Send requests to a running $(b,lalrgen serve) daemon over a \
          resilient connection (health-checked reconnect, circuit \
          breaker) and print its response lines; exits with the worst \
          per-response code, or 4 when the daemon is unreachable (the \
          error names the endpoint and distinguishes a missing socket \
          from a refused connection)")
    Term.(const run $ socket_arg $ trace_prefix $ requests)

(* ------------------------------------------------------------------ *)
(* top — polling terminal view over the metrics scrape                *)
(* ------------------------------------------------------------------ *)

let top_cmd =
  let run endpoint_s interval count no_clear =
    let endpoint =
      match Serve.parse_endpoint endpoint_s with
      | Ok e -> e
      | Error m ->
          Format.eprintf "lalrgen: top: %s@." m;
          exit 2
    in
    let interval = Float.max 0.1 interval in
    let client = Client.create endpoint in
    let req = Protocol.encode_request (Protocol.Metrics { id = "__top__" }) in
    let scrape () =
      match Client.call client [ req ] with
      | Error err ->
          Format.eprintf "lalrgen: top: %s@." (Client.error_message err);
          exit 4
      | Ok [ line ] -> (
          match Protocol.Json.parse line with
          | Ok j -> (
              match Protocol.Json.member "body" j with
              | Some (Protocol.Json.Str body) -> (
                  match Metrics.parse body with
                  | Ok snap -> snap
                  | Error m ->
                      Format.eprintf
                        "lalrgen: top: unparseable exposition: %s@." m;
                      exit 4)
              | _ ->
                  Format.eprintf
                    "lalrgen: top: metrics response carries no body@.";
                  exit 4)
          | Error m ->
              Format.eprintf "lalrgen: top: garbled response: %s@." m;
              exit 4)
      | Ok _ ->
          Format.eprintf "lalrgen: top: expected exactly one response line@.";
          exit 4
    in
    let gauge snap name =
      match Metrics.find snap name with
      | Some (Metrics.Gauge v) -> v
      | _ -> 0.
    in
    (* Per-worker gauges (GC, deadline slack) carry a [worker] label:
       the fleet view is their sum across label sets. *)
    let gauge_sum snap name =
      List.fold_left
        (fun acc (s : Metrics.sample) ->
          match s.Metrics.value with
          | Metrics.Gauge v when s.Metrics.name = name -> acc +. v
          | _ -> acc)
        0. snap
    in
    let quantile_ms snap name q =
      match Metrics.quantile snap name q with
      | Some s -> Printf.sprintf "%.1fms" (s *. 1e3)
      | None -> "-"
    in
    let status_breakdown snap =
      List.filter_map
        (fun (s : Metrics.sample) ->
          match (s.Metrics.name, s.Metrics.value) with
          | "lalr_serve_requests_total", Metrics.Counter n when n > 0 ->
              Some
                (Printf.sprintf "%s=%d"
                   (match List.assoc_opt "status" s.Metrics.labels with
                   | Some v -> v
                   | None -> "?")
                   n)
          | _ -> None)
        snap
    in
    let prev = ref None in
    let frame i =
      let snap = scrape () in
      let now = Unix.gettimeofday () in
      let total = Metrics.counter_total snap "lalr_serve_requests_total" in
      let qps =
        match !prev with
        | Some (t0, n0) when now > t0 ->
            Printf.sprintf "%.1f" (float_of_int (total - n0) /. (now -. t0))
        | _ -> "-"
      in
      prev := Some (now, total);
      if not no_clear then print_string "\027[H\027[2J";
      Format.printf "lalrgen top — %s   up %.0fs   ready %s   workers %.0f@."
        (Serve.endpoint_to_string endpoint)
        (gauge snap "lalr_serve_uptime_seconds")
        (if gauge snap "lalr_serve_ready" >= 1. then "yes" else "NO")
        (gauge snap "lalr_serve_workers");
      Format.printf
        "requests  total %d   qps %s   dropped %d   restarts %d@." total qps
        (Metrics.counter_total snap "lalr_serve_responses_dropped_total")
        (Metrics.counter_total snap "lalr_serve_worker_crashes_total");
      Format.printf "latency   p50 %s   p95 %s   p99 %s@."
        (quantile_ms snap "lalr_serve_request_seconds" 0.50)
        (quantile_ms snap "lalr_serve_request_seconds" 0.95)
        (quantile_ms snap "lalr_serve_request_seconds" 0.99);
      Format.printf "queue     depth %.0f / %.0f   wait p95 %s@."
        (gauge snap "lalr_serve_queue_depth")
        (gauge snap "lalr_serve_queue_capacity")
        (quantile_ms snap "lalr_serve_queue_wait_seconds" 0.95);
      Format.printf
        "gc        minor %.0f   major %.0f   heap %.2f Mwords@."
        (gauge_sum snap "lalr_serve_gc_minor_collections")
        (gauge_sum snap "lalr_serve_gc_major_collections")
        (gauge_sum snap "lalr_serve_gc_heap_words" /. 1e6);
      (match status_breakdown snap with
      | [] -> ()
      | parts -> Format.printf "status    %s@." (String.concat "  " parts));
      Format.print_flush ();
      if count = 0 || i + 1 < count then Unix.sleepf interval
    in
    let rec loop i =
      frame i;
      if count = 0 || i + 1 < count then loop (i + 1)
    in
    loop 0;
    Client.close client;
    exit 0
  in
  let endpoint =
    Arg.(
      value
      & pos 0 string "lalrgen.sock"
      & info [] ~docv:"ENDPOINT"
          ~doc:
            "Daemon endpoint: a Unix-socket path, $(b,HOST:PORT) or a \
             bare $(b,PORT).")
  in
  let interval =
    Arg.(
      value & opt float 2.
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between polls (min 0.1).")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Stop after $(docv) frames; 0 (the default) polls forever.")
  in
  let no_clear =
    Arg.(
      value & flag
      & info [ "no-clear" ]
          ~doc:
            "Append frames instead of redrawing in place — for logs and \
             tests.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Poll a running $(b,lalrgen serve) daemon's $(b,metrics) scrape \
          and render a one-screen live view: request rate, latency \
          quantiles, queue depth, worker restarts and GC pressure. \
          Exits 4 when the daemon is unreachable.")
    Term.(const run $ endpoint $ interval $ count $ no_clear)

let () =
  let doc =
    "LALR(1) parser generator toolkit (DeRemer–Pennello look-ahead sets)"
  in
  let info = Cmd.info "lalrgen" ~version:Protocol.version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            classify_cmd; report_cmd; conflicts_cmd; tables_cmd; parse_cmd;
            generate_cmd; lint_cmd; batch_cmd; exercise_cmd; stats_cmd;
            faultpoints_cmd; suite_cmd; serve_cmd; call_cmd; top_cmd;
          ]))
