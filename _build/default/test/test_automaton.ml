(* Tests for lib/automaton: Item numbering and the LR(0) construction. *)

module G = Lalr_grammar.Grammar
module Symbol = Lalr_grammar.Symbol
module Item = Lalr_automaton.Item
module Lr0 = Lalr_automaton.Lr0
module Randgen = Lalr_suite.Randgen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let expr_grammar () =
  G.make ~name:"expr"
    ~terminals:[ "+"; "*"; "("; ")"; "id" ]
    ~start:"E"
    ~rules:
      [
        ("E", [ "E"; "+"; "T" ], None);
        ("E", [ "T" ], None);
        ("T", [ "T"; "*"; "F" ], None);
        ("T", [ "F" ], None);
        ("F", [ "("; "E"; ")" ], None);
        ("F", [ "id" ], None);
      ]
    ()

(* ------------------------------------------------------------------ *)
(* Item table                                                         *)
(* ------------------------------------------------------------------ *)

let test_item_roundtrip () =
  let g = expr_grammar () in
  let tbl = Item.make g in
  check_int "n_items = |G|" (G.symbols_count g) (Item.n_items tbl);
  for p = 0 to G.n_productions g - 1 do
    for d = 0 to G.rhs_length g p do
      let item = Item.encode tbl ~prod:p ~dot:d in
      check_int "prod" p (Item.prod tbl item);
      check_int "dot" d (Item.dot tbl item)
    done
  done

let test_item_navigation () =
  let g = expr_grammar () in
  let tbl = Item.make g in
  (* production 1: E → E + T *)
  let i0 = Item.initial tbl ~prod:1 in
  check "next is E" true
    (Item.next_symbol tbl i0 = Some (Symbol.N (Option.get (G.find_nonterminal g "E"))));
  let i1 = Item.advance tbl i0 in
  check "next is +" true
    (Item.next_symbol tbl i1 = Some (Symbol.T (Option.get (G.find_terminal g "+"))));
  let i3 = Item.advance tbl (Item.advance tbl i1) in
  check "final" true (Item.is_final tbl i3);
  check "no next" true (Item.next_symbol tbl i3 = None);
  Alcotest.check_raises "advance final" (Invalid_argument "Item.advance: final item")
    (fun () -> ignore (Item.advance tbl i3));
  Alcotest.check_raises "encode bad dot" (Invalid_argument "Item.encode: dot out of range")
    (fun () -> ignore (Item.encode tbl ~prod:1 ~dot:4))

(* ------------------------------------------------------------------ *)
(* LR(0) automaton                                                    *)
(* ------------------------------------------------------------------ *)

let test_expr_states () =
  (* The dragon-book expr grammar has 12 LR(0) states; with our S' → E $
     convention the accept-dead state adds one: 13. *)
  let a = Lr0.build (expr_grammar ()) in
  check_int "states" 13 (Lr0.n_states a)

let test_initial_state () =
  let g = expr_grammar () in
  let a = Lr0.build g in
  let s0 = Lr0.state a 0 in
  check "state 0 has no accessing symbol" true (s0.accessing = None);
  check_int "kernel is the initial item" 1 (Array.length s0.kernel);
  (* closure of state 0: S'→.E$, E→.E+T, E→.T, T→.T*F, T→.F, F→.(E), F→.id *)
  check_int "closure size" 7 (Array.length s0.items)

let test_goto_consistency () =
  let g = expr_grammar () in
  let a = Lr0.build g in
  for s = 0 to Lr0.n_states a - 1 do
    List.iter
      (fun (sym, target) ->
        check "goto matches transitions" true (Lr0.goto a s sym = Some target);
        check "accessing symbol" true
          ((Lr0.state a target).accessing = Some sym))
      (Lr0.transitions a s)
  done

let test_goto_exn () =
  let g = expr_grammar () in
  let a = Lr0.build g in
  match Lr0.goto_exn a 0 (Symbol.T 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "state 0 must not shift $"

let test_traverse () =
  let g = expr_grammar () in
  let a = Lr0.build g in
  (* Walking E + T from state 0 must land in a state reducing E → E + T. *)
  let e = Symbol.N (Option.get (G.find_nonterminal g "E")) in
  let plus = Symbol.T (Option.get (G.find_terminal g "+")) in
  let t = Symbol.N (Option.get (G.find_nonterminal g "T")) in
  let q = Lr0.traverse a 0 [| e; plus; t |] ~from:0 in
  check "reduces E → E + T" true (List.mem 1 (Lr0.reductions a q));
  check_int "traverse from:1 skips E" q
    (Lr0.traverse a (Lr0.goto_exn a 0 e) [| e; plus; t |] ~from:1)

let test_reductions_exclude_augmented () =
  let g = expr_grammar () in
  let a = Lr0.build g in
  for s = 0 to Lr0.n_states a - 1 do
    check "no production-0 reduction" false (List.mem 0 (Lr0.reductions a s))
  done

let test_accept_state () =
  let g = expr_grammar () in
  let a = Lr0.build g in
  let acc = Lr0.accept_state a in
  check "accept shifts $" true (Lr0.goto a acc Symbol.eof <> None)

let test_nt_transitions_dense () =
  let g = expr_grammar () in
  let a = Lr0.build g in
  let n = Lr0.n_nt_transitions a in
  check "some transitions" true (n > 0);
  for x = 0 to n - 1 do
    let p, nt = Lr0.nt_transition a x in
    check_int "index roundtrip" x (Lr0.find_nt_transition a p nt);
    check_int "target consistent"
      (Lr0.goto_exn a p (Symbol.N nt))
      (Lr0.nt_transition_target a x)
  done;
  (* State 0 has transitions on E, T, F. *)
  let count0 =
    List.length
      (List.filter
         (fun (sym, _) -> Symbol.is_nonterminal sym)
         (Lr0.transitions a 0))
  in
  check_int "state 0 nonterminal transitions" 3 count0

let test_lr0_detection () =
  check "expr not LR(0)" false (Lr0.n_conflict_free_lr0 (Lr0.build (expr_grammar ())));
  let g0 =
    G.make ~terminals:[ "a"; "b"; ";" ] ~start:"S"
      ~rules:[ ("S", [ "X"; ";" ], None); ("X", [ "a"; "X" ], None); ("X", [ "b" ], None) ]
      ()
  in
  check "list grammar is LR(0)" true (Lr0.n_conflict_free_lr0 (Lr0.build g0))

let test_size_report () =
  let a = Lr0.build (expr_grammar ()) in
  let states, kernel_items, transitions = Lr0.size_report a in
  check_int "states" (Lr0.n_states a) states;
  check "kernel items >= states - 1 + 1" true (kernel_items >= states);
  check "transitions positive" true (transitions > 0)

(* Structural invariants on random grammars. *)
let arb = Randgen.arbitrary ()

let prop_kernels_sorted_unique =
  QCheck.Test.make ~name:"kernels and closures sorted, kernel ⊆ closure"
    ~count:100 arb (fun g ->
      let a = Lr0.build g in
      let sorted arr =
        let ok = ref true in
        for i = 1 to Array.length arr - 1 do
          if arr.(i - 1) >= arr.(i) then ok := false
        done;
        !ok
      in
      let all_ok = ref true in
      for s = 0 to Lr0.n_states a - 1 do
        let st = Lr0.state a s in
        if not (sorted st.kernel && sorted st.items) then all_ok := false;
        let closure_list = Array.to_list st.items in
        if not (Array.for_all (fun i -> List.mem i closure_list) st.kernel)
        then all_ok := false
      done;
      !all_ok)

let prop_all_states_reachable =
  QCheck.Test.make ~name:"every state reachable from 0 via transitions"
    ~count:100 arb (fun g ->
      let a = Lr0.build g in
      let n = Lr0.n_states a in
      let seen = Array.make n false in
      let rec visit s =
        if not seen.(s) then begin
          seen.(s) <- true;
          List.iter (fun (_, t) -> visit t) (Lr0.transitions a s)
        end
      in
      visit 0;
      Array.for_all (fun b -> b) seen)

let prop_kernel_dots_positive =
  QCheck.Test.make
    ~name:"kernel items have dot > 0 (except the initial item)" ~count:100
    arb (fun g ->
      let a = Lr0.build g in
      let tbl = Lr0.items a in
      let ok = ref true in
      for s = 1 to Lr0.n_states a - 1 do
        Array.iter
          (fun item -> if Item.dot tbl item = 0 then ok := false)
          (Lr0.state a s).kernel
      done;
      !ok)

let prop_deterministic =
  QCheck.Test.make ~name:"construction is deterministic" ~count:50 arb
    (fun g ->
      let a1 = Lr0.build g and a2 = Lr0.build g in
      Lr0.n_states a1 = Lr0.n_states a2
      && List.for_all
           (fun s ->
             (Lr0.state a1 s).kernel = (Lr0.state a2 s).kernel
             && Lr0.transitions a1 s = Lr0.transitions a2 s)
           (List.init (Lr0.n_states a1) Fun.id))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "automaton"
    [
      ( "item",
        [
          Alcotest.test_case "encode/decode roundtrip" `Quick
            test_item_roundtrip;
          Alcotest.test_case "navigation" `Quick test_item_navigation;
        ] );
      ( "lr0",
        [
          Alcotest.test_case "expr state count" `Quick test_expr_states;
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "goto/transitions consistency" `Quick
            test_goto_consistency;
          Alcotest.test_case "goto_exn on missing" `Quick test_goto_exn;
          Alcotest.test_case "traverse" `Quick test_traverse;
          Alcotest.test_case "production 0 never reduces" `Quick
            test_reductions_exclude_augmented;
          Alcotest.test_case "accept state" `Quick test_accept_state;
          Alcotest.test_case "nonterminal transition numbering" `Quick
            test_nt_transitions_dense;
          Alcotest.test_case "LR(0) detection" `Quick test_lr0_detection;
          Alcotest.test_case "size report" `Quick test_size_report;
        ] );
      qsuite "lr0-props"
        [
          prop_kernels_sorted_unique;
          prop_all_states_reachable;
          prop_kernel_dots_positive;
          prop_deterministic;
        ];
    ]
