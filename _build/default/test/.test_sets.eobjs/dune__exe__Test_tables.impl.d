test/test_tables.ml: Alcotest Array Hashtbl Lalr_automaton Lalr_baselines Lalr_core Lalr_grammar Lalr_sets Lalr_suite Lalr_tables Lazy List Option
