test/test_core.ml: Alcotest Array Lalr_automaton Lalr_core Lalr_grammar Lalr_sets Lalr_suite Lazy List Option QCheck QCheck_alcotest
