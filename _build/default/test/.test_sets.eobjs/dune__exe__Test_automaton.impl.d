test/test_automaton.ml: Alcotest Array Fun Lalr_automaton Lalr_grammar Lalr_suite List Option QCheck QCheck_alcotest
