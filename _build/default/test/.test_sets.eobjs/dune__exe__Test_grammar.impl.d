test/test_grammar.ml: Alcotest Array Lalr_grammar Lalr_sets List Option Printexc
