test/test_minilang.ml: Alcotest Lalr_automaton Lalr_core Lalr_grammar Lalr_runtime Lalr_tables List Minilang Random Result String
