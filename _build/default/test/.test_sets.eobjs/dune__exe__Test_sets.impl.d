test/test_sets.ml: Alcotest Array Int Lalr_sets List Printf QCheck QCheck_alcotest String
