test/test_lint.ml: Alcotest Buffer Lalr_grammar Lalr_lint Lalr_suite Lalr_tables Lazy List QCheck QCheck_alcotest String
