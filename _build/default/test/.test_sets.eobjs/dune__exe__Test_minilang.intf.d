test/test_minilang.mli:
