test/test_suite.ml: Alcotest Fun Lalr_automaton Lalr_core Lalr_grammar Lalr_runtime Lalr_suite Lazy List Printexc QCheck QCheck_alcotest Random
