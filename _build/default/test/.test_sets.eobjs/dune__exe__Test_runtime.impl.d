test/test_runtime.ml: Alcotest Array Format Lalr_automaton Lalr_baselines Lalr_core Lalr_grammar Lalr_runtime Lalr_sets Lalr_suite Lalr_tables Lazy List Option QCheck QCheck_alcotest Random String
