test/test_baselines.ml: Alcotest Fun Hashtbl Lalr_automaton Lalr_baselines Lalr_core Lalr_grammar Lalr_sets Lalr_suite Lazy List Option Printf QCheck QCheck_alcotest
