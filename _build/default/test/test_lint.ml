(* Tests for lib/lint: pass findings on crafted grammars, golden JSON
   output, provenance on conflict diagnostics, the self-check oracle,
   and property tests tying the lint passes to the independent
   implementations they mirror (Classify, Transform.reduce). *)

module G = Lalr_grammar.Grammar
module Reader = Lalr_grammar.Reader
module Transform = Lalr_grammar.Transform
module Classify = Lalr_tables.Classify
module Registry = Lalr_suite.Registry
module Randgen = Lalr_suite.Randgen
module D = Lalr_lint.Diagnostic
module Engine = Lalr_lint.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let suite_grammar name = Lazy.force (Registry.find name).Registry.grammar

let codes_of diags =
  List.sort_uniq String.compare (List.map (fun d -> d.D.code) diags)

let with_code code diags = List.filter (fun d -> d.D.code = code) diags

let symbols_with_code code diags =
  with_code code diags
  |> List.filter_map (fun d ->
         match List.assoc_opt "symbol" d.D.data with
         | Some (D.String s) -> Some s
         | _ -> None)
  |> List.sort_uniq String.compare

let run ?config g = Engine.run ?config g

(* ------------------------------------------------------------------ *)
(* Findings on crafted grammars                                       *)
(* ------------------------------------------------------------------ *)

(* One grammar exhibiting most of the declaration-level findings:
   unproductive u (L001), unreachable w (L002), cyclic c (L003), an
   unused token (L006), a dead precedence level (L007), a duplicate
   production (L008) and a reduce/reduce conflict (L102). *)
let messy_text =
  {|%token a b x pt unused
%left pt
%%
s : a c | a b | a b | u ;
c : c | x ;
u : u a ;
w : x ;
|}

let messy () = Reader.of_string ~name:"messy" messy_text

let test_messy_codes () =
  let diags = run (messy ()) in
  check_str "codes" "L001 L002 L003 L006 L007 L008 L102"
    (String.concat " " (codes_of diags));
  check_str "unproductive" "u" (String.concat " " (symbols_with_code "L001" diags));
  check_str "unreachable" "w" (String.concat " " (symbols_with_code "L002" diags));
  check_str "cyclic" "c" (String.concat " " (symbols_with_code "L003" diags));
  check "has errors" true (Engine.has_errors diags)

let test_messy_locations () =
  (* Reader line numbers must survive into the diagnostics. *)
  let diags = run (messy ()) in
  let line_of code =
    match (List.hd (with_code code diags)).D.loc with
    | Some l -> l.G.line
    | None -> -1
  in
  check_int "L001 at u's rule" 6 (line_of "L001");
  check_int "L002 at w's rule" 7 (line_of "L002");
  check_int "L003 at c's rule" 5 (line_of "L003");
  check_int "L006 at %token" 1 (line_of "L006");
  check_int "L007 at %left" 2 (line_of "L007")

let test_clean_grammar () =
  let diags = run (suite_grammar "expr") in
  check_int "no findings" 0 (List.length diags);
  check "no errors" false (Engine.has_errors diags)

let test_reads_cycle_error () =
  let diags = run (suite_grammar "not-lr-k") in
  check "L004 present" true (List.mem "L004" (codes_of diags));
  check "L004 is an error" true
    (List.for_all (fun d -> d.D.severity = D.Error) (with_code "L004" diags))

let test_includes_cycle_warning () =
  let diags = run (suite_grammar "dangling-else") in
  check_str "codes" "L005 L101" (String.concat " " (codes_of diags));
  check "exit clean: warnings only" false (Engine.has_errors diags)

let test_nqlalr_gap () =
  let diags = run (suite_grammar "nqlalr-gap") in
  check "L201 present" true (List.mem "L201" (codes_of diags));
  check "no real conflicts" false
    (List.exists (fun c -> List.mem c (codes_of diags)) [ "L101"; "L102" ])

(* ------------------------------------------------------------------ *)
(* Conflict provenance                                                *)
(* ------------------------------------------------------------------ *)

let provenance_nonempty (d : D.t) =
  match List.assoc_opt "provenance" d.D.data with
  | Some (D.List (_ :: _)) -> true
  | _ -> false

let test_conflicts_carry_provenance () =
  (* Every LALR conflict diagnostic must carry at least one static
     lookback → includes* → reads* → DR witness chain. *)
  List.iter
    (fun name ->
      let diags = run (suite_grammar name) in
      let conflicts = with_code "L101" diags @ with_code "L102" diags in
      check (name ^ " has conflicts") true (conflicts <> []);
      List.iter
        (fun d ->
          check (name ^ " provenance") true (provenance_nonempty d);
          check (name ^ " sample input") true
            (List.exists
               (fun l -> String.length l >= 12 && String.sub l 0 12 = "sample input")
               d.D.detail))
        conflicts)
    [ "dangling-else"; "ambiguous"; "lr1-not-lalr" ]

(* ------------------------------------------------------------------ *)
(* Engine config: severity, select, ignore                            *)
(* ------------------------------------------------------------------ *)

let test_severity_filter () =
  let g = messy () in
  let at sev = { Engine.default_config with min_severity = sev } in
  let all = run ~config:(at D.Info) g in
  let warnings = run ~config:(at D.Warning) g in
  let errors = run ~config:(at D.Error) g in
  check "warning filter monotone" true
    (List.length warnings <= List.length all);
  check "error filter keeps only errors" true
    (List.for_all (fun d -> d.D.severity = D.Error) errors);
  check_str "error codes" "L001 L003" (String.concat " " (codes_of errors))

let test_select_ignore () =
  let g = messy () in
  let sel =
    run ~config:{ Engine.default_config with select = [ "L008" ] } g
  in
  check_str "select L008" "L008" (String.concat " " (codes_of sel));
  let ign =
    run ~config:{ Engine.default_config with ignored = [ "L001"; "L003" ] } g
  in
  check "ignored codes dropped" false
    (List.exists (fun c -> List.mem c (codes_of ign)) [ "L001"; "L003" ]);
  check "ignoring all errors clears the gate" false (Engine.has_errors ign)

let test_known_codes () =
  (* The vocabulary the CLI validates --select/--ignore against. *)
  List.iter
    (fun c -> check (c ^ " known") true (List.mem c Engine.known_codes))
    [ "L001"; "L002"; "L003"; "L004"; "L005"; "L006"; "L007"; "L008";
      "L101"; "L102"; "L201"; "L900"; "L901" ]

(* ------------------------------------------------------------------ *)
(* Self-check oracle                                                  *)
(* ------------------------------------------------------------------ *)

let test_selfcheck_clean () =
  let config = { Engine.default_config with self_check = true } in
  List.iter
    (fun name ->
      let diags = run ~config (suite_grammar name) in
      check (name ^ " L900") true (List.mem "L900" (codes_of diags));
      check (name ^ " no L901") false (List.mem "L901" (codes_of diags)))
    [ "expr"; "lalr2"; "nqlalr-gap"; "dangling-else"; "json" ]

(* ------------------------------------------------------------------ *)
(* Golden JSON                                                        *)
(* ------------------------------------------------------------------ *)

let test_golden_json_clean () =
  check_str "empty report" {|{"diagnostics":[],"errors":0,"warnings":0,"infos":0}|}
    (D.list_to_json_string (run (suite_grammar "expr")))

let golden_dangling_else =
  {|{"diagnostics":[
  {"code":"L005","severity":"warning","file":"<dangling-else>","line":5,"message":"cycle in the 'includes' relation with nonempty Read sets: the grammar is ambiguous (paper §6)","detail":["cycle: (6, stmt) → (8, stmt)"],"cycle":[{"state":6,"symbol":"stmt"},{"state":8,"symbol":"stmt"}]},
  {"code":"L101","severity":"warning","file":"<dangling-else>","line":5,"message":"shift/reduce conflict in state 7 on 'else' (shift vs reduce stmt → if expr then stmt)","detail":["sample input: if expr then other . else   (state 7)","'else' ∈ LA(7, stmt → if expr then stmt):","  lookback  (7, stmt → if expr then stmt) ⇝ (8, stmt)","  includes  (8, stmt) → (6, stmt)","  DR        'else' ∈ DR(6, stmt) — shiftable in state 7"],"state":7,"terminal":"else","provenance":[{"lookback":{"state":8,"symbol":"stmt"},"includes_path":[{"state":6,"symbol":"stmt"}],"reads_path":[],"dr":{"state":6,"symbol":"stmt"}}]}
],"errors":0,"warnings":2,"infos":0}|}

let test_golden_json_dangling_else () =
  check_str "dangling-else report" golden_dangling_else
    (D.list_to_json_string (run (suite_grammar "dangling-else")))

let test_json_escaping () =
  let b = Buffer.create 32 in
  D.json_to_buffer b
    (D.Obj [ ("s", D.String "a\"b\\c\n\t\x01") ]);
  check_str "escaped" {|{"s":"a\"b\\c\n\t\u0001"}|} (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Properties on random grammars                                      *)
(* ------------------------------------------------------------------ *)

(* L004 fires exactly when the independent classifier finds a reads
   cycle (both sides reduce the grammar first; Randgen output is
   already reduced). *)
let prop_reads_cycle_matches_classify =
  QCheck.Test.make ~name:"L004 ⇔ Classify.not_lr_k (random grammars)"
    ~count:150 (Randgen.arbitrary ()) (fun g ->
      let verdict = Classify.classify_no_lr1 g in
      let has_l004 = List.mem "L004" (codes_of (run g)) in
      has_l004 = verdict.Classify.not_lr_k)

(* Plant one reachable-unproductive and one productive-unreachable
   nonterminal in a random reduced grammar; L001/L002 must flag exactly
   those, and they must coincide with what Transform.reduce removes. *)
let prop_reduction_matches_transform =
  QCheck.Test.make ~name:"L001/L002 ⇔ Transform.reduce (random grammars)"
    ~count:100 (Randgen.arbitrary ()) (fun g ->
      let text =
        Reader.to_string g
        ^ "\nn0 : lintU ;\nlintU : lintU t0 ;\nlintW : t0 ;\n"
      in
      let g' = Reader.of_string ~name:"mutated" text in
      let diags = run g' in
      let unproductive = symbols_with_code "L001" diags in
      let unreachable = symbols_with_code "L002" diags in
      let reduced = Transform.reduce g' in
      let removed =
        List.init (G.n_nonterminals g' - 1) (( + ) 1)
        |> List.filter_map (fun n ->
               let name = G.nonterminal_name g' n in
               if G.find_nonterminal reduced name = None then Some name
               else None)
        |> List.sort_uniq String.compare
      in
      unproductive = [ "lintU" ]
      && unreachable = [ "lintW" ]
      && removed = List.sort_uniq String.compare (unproductive @ unreachable))

(* The lint gate agrees with the conflict counts of the classifier:
   error-free ⇒ no reads cycle; L101/L102 ⇔ unresolved LALR
   conflicts. *)
let prop_conflict_codes_match_classify =
  QCheck.Test.make ~name:"L101/L102 ⇔ LALR conflict counts (random grammars)"
    ~count:150 (Randgen.arbitrary ()) (fun g ->
      let verdict = Classify.classify_no_lr1 g in
      let diags = run g in
      let has c = List.mem c (codes_of diags) in
      has "L101" = (verdict.Classify.lalr_sr_conflicts > 0)
      && has "L102" = (verdict.Classify.lalr_rr_conflicts > 0))

(* The self-check oracle never trips on random grammars: the three
   LALR implementations agree and LA ⊆ SLR FOLLOW. *)
let prop_selfcheck_clean =
  QCheck.Test.make ~name:"self-check oracle clean (random grammars)" ~count:60
    (Randgen.arbitrary ()) (fun g ->
      let config = { Engine.default_config with self_check = true } in
      let diags = run ~config g in
      List.mem "L900" (codes_of diags)
      && not (List.mem "L901" (codes_of diags)))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lint"
    [
      ( "passes",
        [
          Alcotest.test_case "messy codes" `Quick test_messy_codes;
          Alcotest.test_case "messy locations" `Quick test_messy_locations;
          Alcotest.test_case "clean grammar" `Quick test_clean_grammar;
          Alcotest.test_case "reads cycle error" `Quick test_reads_cycle_error;
          Alcotest.test_case "includes cycle warning" `Quick
            test_includes_cycle_warning;
          Alcotest.test_case "nqlalr gap" `Quick test_nqlalr_gap;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "conflicts carry traces" `Quick
            test_conflicts_carry_provenance;
        ] );
      ( "engine",
        [
          Alcotest.test_case "severity filter" `Quick test_severity_filter;
          Alcotest.test_case "select/ignore" `Quick test_select_ignore;
          Alcotest.test_case "known codes" `Quick test_known_codes;
        ] );
      ( "selfcheck",
        [ Alcotest.test_case "clean on suite" `Quick test_selfcheck_clean ] );
      ( "golden",
        [
          Alcotest.test_case "clean json" `Quick test_golden_json_clean;
          Alcotest.test_case "dangling-else json" `Quick
            test_golden_json_dangling_else;
          Alcotest.test_case "string escaping" `Quick test_json_escaping;
        ] );
      ( "properties",
        qsuite
          [
            prop_reads_cycle_matches_classify;
            prop_reduction_matches_transform;
            prop_conflict_codes_match_classify;
            prop_selfcheck_clean;
          ] );
    ]
