(* Integration tests for the minilang example application — the whole
   pipeline (lexer → LALR tables → tree → AST → evaluator) exercised
   end to end. *)

module Ast = Minilang.Ast
module Lexer = Minilang.Lexer
module Syntax = Minilang.Syntax
module Interp = Minilang.Interp
module Token = Lalr_runtime.Token
module Tree = Lalr_runtime.Tree
module G = Lalr_grammar.Grammar

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_strs = Alcotest.(check (list string))

let output src =
  match Syntax.parse src with
  | Error e -> Alcotest.failf "parse failed: %a" Syntax.pp_error e
  | Ok p -> (
      match Interp.run_capture p with
      | Ok out -> out
      | Error e ->
          Alcotest.failf "runtime error: %a" Interp.pp_runtime_error e)

let runtime_error src =
  match Syntax.parse src with
  | Error e -> Alcotest.failf "parse failed: %a" Syntax.pp_error e
  | Ok p -> (
      match Interp.run_capture p with
      | Ok _ -> Alcotest.fail "expected a runtime error"
      | Error e -> e)

let parse_fails src =
  match Syntax.parse src with Error _ -> () | Ok _ -> Alcotest.fail "parsed"

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

let test_lexer_basics () =
  let toks = Lexer.tokenize Syntax.grammar "let x1 = 42; # comment\n x1=x1;" in
  let names =
    List.map (fun t -> G.terminal_name Syntax.grammar t.Token.terminal) toks
  in
  check_strs "token kinds"
    [ "let"; "ident"; "assign"; "number"; "semi"; "ident"; "assign"; "ident"; "semi" ]
    names;
  check_strs "lexemes kept"
    [ "x1"; "42" ]
    (List.filter_map
       (fun t ->
         match G.terminal_name Syntax.grammar t.Token.terminal with
         | "ident" | "number" -> Some t.Token.lexeme
         | _ -> None)
       toks
    |> fun l -> [ List.nth l 0; List.nth l 1 ])

let test_lexer_two_char_operators () =
  let names src =
    Lexer.tokenize Syntax.grammar src
    |> List.map (fun t -> G.terminal_name Syntax.grammar t.Token.terminal)
  in
  check_strs "comparisons" [ "le"; "ge"; "eqeq"; "ne"; "lt"; "gt" ]
    (names "<= >= == != < >");
  check_strs "logic" [ "andand"; "oror"; "bang" ] (names "&& || !")

let test_lexer_errors () =
  let fails src =
    match Lexer.tokenize Syntax.grammar src with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.fail "expected lexer error"
  in
  fails "x @ y";
  fails "a & b";
  fails "a | b"

(* ------------------------------------------------------------------ *)
(* Parsing and AST                                                    *)
(* ------------------------------------------------------------------ *)

let test_precedence_shapes () =
  (* 1 + 2 * 3  parses as 1 + (2 * 3). *)
  match Syntax.parse "let x = 1 + 2 * 3;" with
  | Ok { main = [ Ast.Let ("x", e) ]; _ } ->
      check "shape" true
        (e = Ast.Binop (Ast.Add, Ast.Num 1, Ast.Binop (Ast.Mul, Ast.Num 2, Ast.Num 3)))
  | _ -> Alcotest.fail "unexpected parse"

let test_associativity_shape () =
  (* 10 - 4 - 3 parses left: (10 - 4) - 3. *)
  match Syntax.parse "let x = 10 - 4 - 3;" with
  | Ok { main = [ Ast.Let (_, e) ]; _ } ->
      check "left assoc" true
        (e
        = Ast.Binop
            (Ast.Sub, Ast.Binop (Ast.Sub, Ast.Num 10, Ast.Num 4), Ast.Num 3))
  | _ -> Alcotest.fail "unexpected parse"

let test_unary_and_parens () =
  match Syntax.parse "let x = -(1 + 2) * 3;" with
  | Ok { main = [ Ast.Let (_, e) ]; _ } ->
      check "shape" true
        (e
        = Ast.Binop
            (Ast.Mul, Ast.Neg (Ast.Binop (Ast.Add, Ast.Num 1, Ast.Num 2)),
             Ast.Num 3))
  | _ -> Alcotest.fail "unexpected parse"

let test_fundef_ast () =
  match Syntax.parse "fun add(a, b) { return a + b; } print add(1, 2);" with
  | Ok { funs = [ f ]; main = [ Ast.Print _ ] } ->
      Alcotest.(check string) "name" "add" f.Ast.name;
      check_strs "params" [ "a"; "b" ] f.Ast.params;
      check_int "body size" 1 (List.length f.Ast.body)
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_errors () =
  parse_fails "let = 3;";
  parse_fails "print 1 + ;";
  parse_fails "if x { print 1; } else";
  parse_fails "fun f( { }";
  parse_fails "x = 1";
  (* missing semicolon *)
  parse_fails "let x = 1; )"

let test_parse_error_position () =
  match Syntax.parse "let x = 1;\nprint + ;" with
  | Error (Syntax.Syntax e) ->
      (* tokens: let x = 1 ; print + — the + is token 6. *)
      check_int "position" 6 e.Lalr_runtime.Driver.position
  | _ -> Alcotest.fail "expected syntax error"

let test_parse_tree_validates () =
  match Syntax.parse_tree "fun f(x) { return x; } print f(1);" with
  | Ok tree -> check "valid" true (Tree.validate Syntax.grammar tree)
  | Error _ -> Alcotest.fail "parse failed"

let test_empty_program () =
  match Syntax.parse "" with
  | Ok { funs = []; main = [] } -> ()
  | _ -> Alcotest.fail "empty program must parse to nothing"

(* ------------------------------------------------------------------ *)
(* Evaluation                                                         *)
(* ------------------------------------------------------------------ *)

let test_arithmetic () =
  check_strs "arith" [ "14"; "2"; "-6"; "3" ]
    (output
       "print 2 + 3 * 4; print 7 / 3; print 2 - 8; print (1 + 2) * 9 / 9;")

let test_booleans () =
  check_strs "bool" [ "true"; "false"; "true"; "true" ]
    (output
       "print 1 < 2; print 1 == 2; print 1 != 2 && 3 >= 3; print false || true;")

let test_recursion () =
  check_strs "fib" [ "55" ]
    (output
       "fun fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } \
        print fib(10);")

let test_mutual_recursion () =
  check_strs "even/odd" [ "true"; "false" ]
    (output
       "fun even(n) { if n == 0 { return true; } return odd(n - 1); } \
        fun odd(n) { if n == 0 { return false; } return even(n - 1); } \
        print even(10); print even(7);")

let test_while_loop () =
  check_strs "sum 1..10" [ "55" ]
    (output
       "let s = 0; let i = 1; while i <= 10 { s = s + i; i = i + 1; } print s;")

let test_scoping () =
  (* let in a block shadows; assignment reaches outward. *)
  check_strs "shadow and update" [ "1"; "7" ]
    (output
       "let x = 1; if true { let x = 99; x = 100; print 1; } if true { x = 7; } \
        print x;")

let test_function_isolation () =
  (* Functions do not see caller locals. *)
  let e = runtime_error "fun f() { return y; } let y = 1; print f();" in
  check "unbound" true (e = Interp.Unbound_variable "y")

let test_runtime_errors () =
  check "div by zero" true (runtime_error "print 1 / 0;" = Interp.Division_by_zero);
  check "unknown fun" true
    (runtime_error "print nope(1);" = Interp.Unknown_function "nope");
  check "arity" true
    (runtime_error "fun f(a) { return a; } print f(1, 2);"
    = Interp.Arity { func = "f"; expected = 1; got = 2 });
  check "type error" true
    (match runtime_error "print 1 + true;" with
    | Interp.Type_error _ -> true
    | _ -> false);
  check "return at top level" true
    (runtime_error "return 1;" = Interp.Return_outside_function);
  check "unbound assign" true
    (runtime_error "x = 1;" = Interp.Unbound_variable "x")

let test_fuel () =
  match Syntax.parse "while true { }" with
  | Ok p ->
      check "infinite loop trapped" true
        (Interp.run_capture ~fuel:10_000 p = Error Interp.Fuel_exhausted)
  | Error _ -> Alcotest.fail "parse failed"

let test_implicit_return_zero () =
  check_strs "fall-through returns 0" [ "0" ]
    (output "fun f() { } print f();")

let test_short_circuit () =
  (* && and || short-circuit: the division by zero on the right is
     never evaluated. *)
  check_strs "short circuit" [ "false"; "true" ]
    (output "print false && 1 / 0 == 0; print true || 1 / 0 == 0;")

(* ------------------------------------------------------------------ *)
(* Grammar-level properties via the library machinery                 *)
(* ------------------------------------------------------------------ *)

let test_grammar_is_clean_lalr () =
  let a = Lalr_automaton.Lr0.build Syntax.grammar in
  let t = Lalr_core.Lalr.compute a in
  check "LALR(1)" true (Lalr_core.Lalr.is_lalr1 t);
  let tbl =
    Lalr_tables.Tables.build ~lookahead:(Lalr_core.Lalr.lookahead t) a
  in
  check "zero conflicts" true (Lalr_tables.Tables.conflicts tbl = [])

(* Round-trip through the lexer: render random grammar sentences to
   text, re-lex, and require the same terminal sequence. *)
let render_token t =
  match G.terminal_name Syntax.grammar t.Token.terminal with
  | "ident" -> "x"
  | "number" -> "7"
  | "lparen" -> "(" | "rparen" -> ")"
  | "lbrace" -> "{" | "rbrace" -> "}"
  | "semi" -> ";" | "comma" -> ","
  | "assign" -> "=" | "plus" -> "+" | "minus" -> "-"
  | "star" -> "*" | "slash" -> "/"
  | "lt" -> "<" | "le" -> "<=" | "gt" -> ">" | "ge" -> ">="
  | "eqeq" -> "==" | "ne" -> "!="
  | "andand" -> "&&" | "oror" -> "||" | "bang" -> "!"
  | kw -> kw

let test_generated_programs_roundtrip () =
  let prep = Lalr_runtime.Sentence.prepare Syntax.grammar in
  let rng = Random.State.make [| 31 |] in
  for _ = 1 to 100 do
    let sent = Lalr_runtime.Sentence.generate ~max_depth:10 prep rng in
    let text = String.concat " " (List.map render_token sent) in
    let relexed = Lexer.tokenize Syntax.grammar text in
    check "same terminals" true
      (List.map (fun t -> t.Token.terminal) relexed
      = List.map (fun t -> t.Token.terminal) sent);
    (* And the rendered program parses (to a tree; semantics may still
       reject it at runtime, which is fine). *)
    check "parses" true (Result.is_ok (Syntax.parse_tree text))
  done

let () =
  Alcotest.run "minilang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics and comments" `Quick test_lexer_basics;
          Alcotest.test_case "two-char operators" `Quick
            test_lexer_two_char_operators;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "precedence shape" `Quick test_precedence_shapes;
          Alcotest.test_case "left associativity" `Quick
            test_associativity_shape;
          Alcotest.test_case "unary and parens" `Quick test_unary_and_parens;
          Alcotest.test_case "function definitions" `Quick test_fundef_ast;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick
            test_parse_error_position;
          Alcotest.test_case "trees validate" `Quick test_parse_tree_validates;
          Alcotest.test_case "empty program" `Quick test_empty_program;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "booleans" `Quick test_booleans;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "while" `Quick test_while_loop;
          Alcotest.test_case "scoping" `Quick test_scoping;
          Alcotest.test_case "function scope isolation" `Quick
            test_function_isolation;
          Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
          Alcotest.test_case "fuel bounds loops" `Quick test_fuel;
          Alcotest.test_case "implicit return" `Quick
            test_implicit_return_zero;
          Alcotest.test_case "short-circuit && and ||" `Quick
            test_short_circuit;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "grammar clean LALR(1)" `Quick
            test_grammar_is_clean_lalr;
          Alcotest.test_case "generated programs re-lex and parse" `Quick
            test_generated_programs_roundtrip;
        ] );
    ]
