(* Tests for lib/tables: table construction, conflict detection and
   resolution, default reductions, classification. *)

module Bitset = Lalr_sets.Bitset
module G = Lalr_grammar.Grammar
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Slr = Lalr_baselines.Slr
module Tables = Lalr_tables.Tables
module Classify = Lalr_tables.Classify
module Registry = Lalr_suite.Registry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let grammar_of name = Lazy.force (Registry.find name).grammar

let lalr_tables g =
  let a = Lr0.build g in
  let t = Lalr.compute a in
  Tables.build ~lookahead:(Lalr.lookahead t) a

(* ------------------------------------------------------------------ *)
(* Basic table shape                                                  *)
(* ------------------------------------------------------------------ *)

let test_expr_table () =
  let g = grammar_of "expr" in
  let tbl = lalr_tables g in
  let a = Tables.automaton tbl in
  check "no conflicts" true (Tables.conflicts tbl = []);
  (* Accept: state goto(0, e) on $. *)
  let acc = Lr0.accept_state a in
  check "accept action" true (Tables.action tbl ~state:acc ~terminal:0 = Tables.Accept);
  (* State 0 shifts ( and id, errors on + and $. *)
  let term name = Option.get (G.find_terminal g name) in
  (match Tables.action tbl ~state:0 ~terminal:(term "lparen") with
  | Tables.Shift _ -> ()
  | _ -> Alcotest.fail "state 0 must shift (");
  check "error on + in state 0" true
    (Tables.action tbl ~state:0 ~terminal:(term "plus") = Tables.Error);
  check "error on $ in state 0" true
    (Tables.action tbl ~state:0 ~terminal:0 = Tables.Error);
  (* goto mirrors the automaton. *)
  let e = Option.get (G.find_nonterminal g "e") in
  check "goto" true
    (Tables.goto tbl ~state:0 ~nonterminal:e = Lr0.goto a 0 (Lalr_grammar.Symbol.N e))

let test_every_state_has_some_action () =
  let tbl = lalr_tables (grammar_of "json") in
  let a = Tables.automaton tbl in
  let g = Lr0.grammar a in
  for s = 0 to Lr0.n_states a - 1 do
    let any = ref false in
    for t = 0 to G.n_terminals g - 1 do
      if Tables.action tbl ~state:s ~terminal:t <> Tables.Error then any := true
    done;
    (* The dead state after shifting $ has no actions; every other
       state must. *)
    let is_dead =
      Lr0.transitions a s = [] && Lr0.reductions a s = []
    in
    check "live state has actions" true (!any || is_dead)
  done

(* ------------------------------------------------------------------ *)
(* Conflicts and resolution                                           *)
(* ------------------------------------------------------------------ *)

let test_dangling_else_defaults_to_shift () =
  let tbl = lalr_tables (grammar_of "dangling-else") in
  match Tables.unresolved_conflicts tbl with
  | [ c ] -> (
      check_int "s/r count" 1 (Tables.n_shift_reduce tbl);
      check_int "r/r count" 0 (Tables.n_reduce_reduce tbl);
      match (c.kind, c.chosen) with
      | Tables.Shift_reduce _, Tables.Shift _ -> ()
      | _ -> Alcotest.fail "dangling else must default to shift")
  | l -> Alcotest.failf "expected exactly one conflict, got %d" (List.length l)

let test_precedence_resolution () =
  let g = grammar_of "expr-prec" in
  let tbl = lalr_tables g in
  check "no unresolved" true (Tables.unresolved_conflicts tbl = []);
  check "but conflicts were seen" true (Tables.conflicts tbl <> []);
  check "all resolved by precedence" true
    (List.for_all
       (fun (c : Tables.conflict) -> c.resolution = Tables.By_precedence)
       (Tables.conflicts tbl))

let test_precedence_directions () =
  (* e PLUS e . PLUS → %left ⇒ reduce; e POW e . POW → %right ⇒ shift;
     e CMP e . CMP → %nonassoc ⇒ error. *)
  let g =
    G.make
      ~prec:[ (G.Nonassoc, [ "cmp" ]); (G.Left, [ "plus" ]); (G.Right, [ "pow" ]) ]
      ~terminals:[ "plus"; "pow"; "cmp"; "id" ]
      ~start:"e"
      ~rules:
        [
          ("e", [ "e"; "plus"; "e" ], None);
          ("e", [ "e"; "pow"; "e" ], None);
          ("e", [ "e"; "cmp"; "e" ], None);
          ("e", [ "id" ], None);
        ]
      ()
  in
  let tbl = lalr_tables g in
  check "no unresolved" true (Tables.unresolved_conflicts tbl = []);
  let term name = Option.get (G.find_terminal g name) in
  let kinds = Hashtbl.create 8 in
  List.iter
    (fun (c : Tables.conflict) ->
      match c.kind with
      | Tables.Shift_reduce { reduce; _ } ->
          Hashtbl.replace kinds (c.terminal, reduce) c.chosen
      | Tables.Reduce_reduce _ -> Alcotest.fail "no r/r expected")
    (Tables.conflicts tbl);
  (* plus-after-plus reduces (left assoc). *)
  check "left ⇒ reduce" true
    (Hashtbl.find kinds (term "plus", 1) = Tables.Reduce 1);
  (* pow-after-pow shifts (right assoc). *)
  (match Hashtbl.find kinds (term "pow", 2) with
  | Tables.Shift _ -> ()
  | _ -> Alcotest.fail "right ⇒ shift");
  (* cmp-after-cmp errors (nonassoc). *)
  check "nonassoc ⇒ error" true
    (Hashtbl.find kinds (term "cmp", 3) = Tables.Error)

let test_mixed_precedence_levels () =
  (* Higher production precedence beats lower terminal precedence and
     vice versa: id * id . + reduces, id + id . * shifts. *)
  let g = grammar_of "expr-prec" in
  let tbl = lalr_tables g in
  let sr_choice terminal_name reduce_rhs_op =
    let term = Option.get (G.find_terminal g terminal_name) in
    List.find_map
      (fun (c : Tables.conflict) ->
        match c.kind with
        | Tables.Shift_reduce { reduce; _ }
          when c.terminal = term
               && Array.exists
                    (fun s -> G.symbol_name g s = reduce_rhs_op)
                    (G.production g reduce).rhs ->
            Some c.chosen
        | _ -> None)
      (Tables.conflicts tbl)
  in
  (match sr_choice "plus" "star" with
  | Some (Tables.Reduce _) -> ()
  | _ -> Alcotest.fail "star-production . plus must reduce");
  match sr_choice "star" "plus" with
  | Some (Tables.Shift _) -> ()
  | _ -> Alcotest.fail "plus-production . star must shift"

let test_rr_keeps_earlier_production () =
  let tbl = lalr_tables (grammar_of "lr1-not-lalr") in
  check_int "two r/r" 2 (Tables.n_reduce_reduce tbl);
  List.iter
    (fun (c : Tables.conflict) ->
      match (c.kind, c.chosen) with
      | Tables.Reduce_reduce { kept; dropped }, Tables.Reduce chosen ->
          check "kept < dropped" true (kept < dropped);
          check_int "chose kept" kept chosen
      | _ -> Alcotest.fail "expected r/r")
    (Tables.unresolved_conflicts tbl)

let test_slr_tables_conflict_where_lalr_clean () =
  let g = grammar_of "assign" in
  let a = Lr0.build g in
  let lalr_tbl = Tables.build ~lookahead:(Lalr.lookahead (Lalr.compute a)) a in
  let slr_tbl = Tables.build ~lookahead:(Slr.lookahead (Slr.compute a)) a in
  check_int "LALR clean" 0 (List.length (Tables.unresolved_conflicts lalr_tbl));
  check_int "SLR has 1 s/r" 1 (Tables.n_shift_reduce slr_tbl)

(* ------------------------------------------------------------------ *)
(* Default reductions                                                 *)
(* ------------------------------------------------------------------ *)

let test_default_reductions () =
  let g = grammar_of "expr" in
  let tbl = lalr_tables g in
  let a = Tables.automaton tbl in
  let defaults = Tables.default_reductions tbl in
  check_int "one entry per state" (Lr0.n_states a) (Array.length defaults);
  Array.iteri
    (fun s d ->
      if d >= 0 then begin
        (* The state's every non-error action is Reduce d. *)
        for t = 0 to G.n_terminals g - 1 do
          match Tables.action tbl ~state:s ~terminal:t with
          | Tables.Error | Tables.Reduce _ -> ()
          | _ -> Alcotest.fail "default-reduction state with shift/accept"
        done;
        check "d is a reduction of s" true (List.mem d (Lr0.reductions a s))
      end)
    defaults;
  (* expr grammar: the pure-reduce states (e.g. after id) have defaults. *)
  check "some defaults exist" true (Array.exists (fun d -> d >= 0) defaults)

(* ------------------------------------------------------------------ *)
(* Classification                                                     *)
(* ------------------------------------------------------------------ *)

let test_classify_matches_registry () =
  List.iter
    (fun (e : Registry.entry) ->
      let g = Lazy.force e.grammar in
      let v =
        if G.n_productions g <= 60 then Classify.classify g
        else Classify.classify_no_lr1 g
      in
      let exp = e.expected in
      check (e.name ^ ": lr0") true (v.lr0 = exp.lr0);
      check (e.name ^ ": slr1") true (v.slr1 = exp.slr1);
      check (e.name ^ ": lalr1") true (v.lalr1 = exp.lalr1);
      if G.n_productions g <= 60 then
        check (e.name ^ ": lr1") true (v.lr1 = exp.lr1);
      check_int (e.name ^ ": lalr s/r") exp.lalr_sr v.lalr_sr_conflicts;
      check_int (e.name ^ ": lalr r/r") exp.lalr_rr v.lalr_rr_conflicts;
      check (e.name ^ ": not-lr-k") true (v.not_lr_k = exp.not_lr_k);
      (* Hierarchy sanity: lr0 ⇒ slr1 ⇒ lalr1 ⇒ lr1. *)
      check (e.name ^ ": hierarchy") true
        ((not v.lr0 || v.slr1) && (not v.slr1 || v.lalr1)
        && ((not v.lalr1) || v.lr1 || G.n_productions g > 60)))
    Registry.all

let () =
  Alcotest.run "tables"
    [
      ( "shape",
        [
          Alcotest.test_case "expr table" `Quick test_expr_table;
          Alcotest.test_case "live states have actions" `Quick
            test_every_state_has_some_action;
        ] );
      ( "conflicts",
        [
          Alcotest.test_case "dangling else ⇒ shift" `Quick
            test_dangling_else_defaults_to_shift;
          Alcotest.test_case "precedence resolves everything" `Quick
            test_precedence_resolution;
          Alcotest.test_case "left/right/nonassoc directions" `Quick
            test_precedence_directions;
          Alcotest.test_case "mixed levels" `Quick test_mixed_precedence_levels;
          Alcotest.test_case "r/r keeps earlier production" `Quick
            test_rr_keeps_earlier_production;
          Alcotest.test_case "SLR conflicts where LALR clean" `Quick
            test_slr_tables_conflict_where_lalr_clean;
        ] );
      ( "compaction",
        [ Alcotest.test_case "default reductions" `Quick test_default_reductions ] );
      ( "classify",
        [
          Alcotest.test_case "whole registry" `Slow
            test_classify_matches_registry;
        ] );
    ]
