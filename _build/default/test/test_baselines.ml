(* Cross-validation of every look-ahead method — the central correctness
   argument of this reproduction. For every grammar (curated suite and
   random):

     DeRemer–Pennello  =  canonical-LR(1)-merge  =  yacc propagation
                       ⊆  NQLALR  ⊆-in-practice  SLR FOLLOW

   The first line is the paper's Theorem (its sets ARE the LALR(1)
   sets); the second is its §7 story. *)

module Bitset = Lalr_sets.Bitset
module G = Lalr_grammar.Grammar
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Slr = Lalr_baselines.Slr
module Lr1 = Lalr_baselines.Lr1
module Propagation = Lalr_baselines.Propagation
module Nqlalr = Lalr_baselines.Nqlalr
module Registry = Lalr_suite.Registry
module Randgen = Lalr_suite.Randgen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Compare all methods on one grammar; returns an error description or
   None. Skips canonical LR(1) when [with_lr1] is false. *)
let cross_validate ?(with_lr1 = true) g =
  let a = Lr0.build g in
  let t = Lalr.compute a in
  let prop = Propagation.compute a in
  let nq = Nqlalr.compute a in
  let slr = Slr.compute a in
  let merged =
    if with_lr1 then Some (Lr1.merged_lookaheads (Lr1.build g) a) else None
  in
  let err = ref None in
  let fail state prod what =
    if !err = None then
      err := Some (Printf.sprintf "(%d, %d): %s" state prod what)
  in
  for r = 0 to Lalr.n_reductions t - 1 do
    let state, prod = Lalr.reduction t r in
    let dp = Lalr.la t r in
    (match merged with
    | Some m -> (
        match Hashtbl.find_opt m (state, prod) with
        | Some set ->
            if not (Bitset.equal dp set) then fail state prod "dp ≠ lr1-merge"
        | None -> fail state prod "reduction missing from lr1-merge")
    | None -> ());
    let p = Propagation.lookahead prop ~state ~prod in
    if not (Bitset.equal dp p) then fail state prod "dp ≠ propagation";
    let n = Nqlalr.lookahead nq ~state ~prod in
    if not (Bitset.subset dp n) then fail state prod "dp ⊄ nqlalr";
    let s = Slr.lookahead slr ~state ~prod in
    if not (Bitset.subset dp s) then fail state prod "dp ⊄ slr"
  done;
  (* The merged table must not contain extra reductions either. *)
  (match merged with
  | Some m ->
      if Hashtbl.length m <> Lalr.n_reductions t then
        fail (-1) (-1) "lr1-merge has a different reduction count"
  | None -> ());
  !err

let test_cross_validate_suite () =
  List.iter
    (fun (e : Registry.entry) ->
      let g = Lazy.force e.grammar in
      let with_lr1 = G.n_productions g <= 200 in
      match cross_validate ~with_lr1 g with
      | None -> ()
      | Some msg -> Alcotest.failf "%s: %s" e.name msg)
    Registry.all

let prop_cross_validate_random =
  QCheck.Test.make ~name:"dp = lr1-merge = propagation (random grammars)"
    ~count:200 (Randgen.arbitrary ()) (fun g -> cross_validate g = None)

let prop_cross_validate_random_larger =
  let config =
    { Randgen.default with n_terminals = 6; n_nonterminals = 8; max_rhs = 5 }
  in
  QCheck.Test.make ~name:"dp = lr1-merge = propagation (larger random)"
    ~count:60
    (Randgen.arbitrary ~config ())
    (fun g -> cross_validate g = None)

(* ------------------------------------------------------------------ *)
(* SLR                                                                *)
(* ------------------------------------------------------------------ *)

let grammar_of name = Lazy.force (Registry.find name).grammar

let test_slr_classification () =
  List.iter
    (fun (e : Registry.entry) ->
      let slr = Slr.compute (Lr0.build (Lazy.force e.grammar)) in
      check_int
        (e.name ^ ": SLR verdict")
        (if e.expected.slr1 then 1 else 0)
        (if Slr.is_slr1 slr then 1 else 0))
    Registry.all

let test_slr_state_independent () =
  let g = grammar_of "expr" in
  let a = Lr0.build g in
  let slr = Slr.compute a in
  (* Find a production reduced in two states: its SLR set is identical. *)
  let t = Lalr.compute a in
  let by_prod = Hashtbl.create 8 in
  for r = 0 to Lalr.n_reductions t - 1 do
    let state, prod = Lalr.reduction t r in
    Hashtbl.replace by_prod prod
      (state :: Option.value (Hashtbl.find_opt by_prod prod) ~default:[])
  done;
  Hashtbl.iter
    (fun prod states ->
      match states with
      | s1 :: s2 :: _ ->
          check "same FOLLOW set" true
            (Bitset.equal
               (Slr.lookahead slr ~state:s1 ~prod)
               (Slr.lookahead slr ~state:s2 ~prod))
      | _ -> ())
    by_prod

(* ------------------------------------------------------------------ *)
(* Canonical LR(1)                                                    *)
(* ------------------------------------------------------------------ *)

let test_lr1_classification () =
  List.iter
    (fun (e : Registry.entry) ->
      let g = Lazy.force e.grammar in
      if G.n_productions g <= 200 then
        let c = Lr1.build g in
        check_int
          (e.name ^ ": LR(1) verdict")
          (if e.expected.lr1 then 1 else 0)
          (if Lr1.is_lr1 c then 1 else 0))
    Registry.all

let test_lr1_at_least_lr0_states () =
  List.iter
    (fun name ->
      let g = grammar_of name in
      let c = Lr1.build g and a = Lr0.build g in
      check (name ^ ": LR(1) ≥ LR(0) states") true
        (Lr1.n_states c >= Lr0.n_states a))
    [ "expr"; "assign"; "lr1-not-lalr"; "json"; "expr-ll" ]

let test_lr1_cores_are_lr0_states () =
  (* Each LR(1) core equals some LR(0) state's kernel, and all LR(0)
     states are covered. *)
  let g = grammar_of "assign" in
  let c = Lr1.build g and a = Lr0.build g in
  let kernels = Hashtbl.create 32 in
  for s = 0 to Lr0.n_states a - 1 do
    Hashtbl.replace kernels (Lr0.state a s).kernel ()
  done;
  let covered = Hashtbl.create 32 in
  for s = 0 to Lr1.n_states c - 1 do
    let core = Lr1.state_core c s in
    check "core is an LR(0) kernel" true (Hashtbl.mem kernels core);
    Hashtbl.replace covered core ()
  done;
  check_int "all LR(0) states covered" (Lr0.n_states a)
    (Hashtbl.length covered)

let test_lr1_not_lalr_grammar () =
  let g = grammar_of "lr1-not-lalr" in
  let c = Lr1.build g in
  check "canonical is conflict-free" true (Lr1.is_lr1 c);
  let t = Lalr.compute (Lr0.build g) in
  check "LALR is not" false (Lalr.is_lalr1 t);
  check "canonical has more states" true
    (Lr1.n_states c > Lr0.n_states (Lalr.automaton t))

(* ------------------------------------------------------------------ *)
(* Propagation internals                                              *)
(* ------------------------------------------------------------------ *)

let test_propagation_stats () =
  let a = Lr0.build (grammar_of "expr") in
  let p = Propagation.compute a in
  let st = Propagation.stats p in
  check "kernel items counted" true (st.Propagation.n_kernel_items > 0);
  check "some spontaneous" true (st.Propagation.spontaneous > 0);
  check "some propagation edges" true (st.Propagation.propagate_edges > 0);
  check "at least two passes (one changes, one confirms)" true
    (st.Propagation.passes >= 2)

let test_propagation_epsilon_reductions () =
  (* ε-productions reduce with non-kernel final items; the in-state
     closure path must agree with DP. Exercised heavily by
     cross-validation, pinned here on the ε-grammar. *)
  let g = grammar_of "expr-ll" in
  let a = Lr0.build g in
  let t = Lalr.compute a in
  let p = Propagation.compute a in
  let eps_prods =
    List.filter
      (fun pid -> G.rhs_length g pid = 0)
      (List.init (G.n_productions g) Fun.id)
  in
  check "grammar has ε-productions" true (eps_prods <> []);
  let checked = ref 0 in
  for r = 0 to Lalr.n_reductions t - 1 do
    let state, prod = Lalr.reduction t r in
    if List.mem prod eps_prods then begin
      incr checked;
      check "ε-reduction look-ahead agrees" true
        (Bitset.equal (Lalr.la t r) (Propagation.lookahead p ~state ~prod))
    end
  done;
  check "ε-reductions exercised" true (!checked > 0)

let test_propagation_kernel_lookahead_not_found () =
  let a = Lr0.build (grammar_of "expr") in
  let p = Propagation.compute a in
  match Propagation.kernel_lookahead p ~state:0 ~item:999999 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

(* ------------------------------------------------------------------ *)
(* NQLALR                                                             *)
(* ------------------------------------------------------------------ *)

let test_nqlalr_gap_witness () =
  let g = grammar_of "nqlalr-gap" in
  let a = Lr0.build g in
  let t = Lalr.compute a in
  let nq = Nqlalr.compute a in
  check "grammar is LALR(1)" true (Lalr.is_lalr1 t);
  check "NQLALR disagrees" false (Nqlalr.is_nqlalr1 nq);
  (* The polluted reduction: some LA_NQ strictly contains LA. *)
  let strictly_larger = ref 0 in
  for r = 0 to Lalr.n_reductions t - 1 do
    let state, prod = Lalr.reduction t r in
    let exact = Lalr.la t r in
    let approx = Nqlalr.lookahead nq ~state ~prod in
    check "containment" true (Bitset.subset exact approx);
    if not (Bitset.equal exact approx) then incr strictly_larger
  done;
  check "at least one strictly larger set" true (!strictly_larger > 0)

let test_nqlalr_agrees_on_simple () =
  (* On grammars without shared goto targets NQLALR is exact. *)
  List.iter
    (fun name ->
      let a = Lr0.build (grammar_of name) in
      let t = Lalr.compute a in
      let nq = Nqlalr.compute a in
      for r = 0 to Lalr.n_reductions t - 1 do
        let state, prod = Lalr.reduction t r in
        check (name ^ ": nq exact") true
          (Bitset.equal (Lalr.la t r) (Nqlalr.lookahead nq ~state ~prod))
      done)
    [ "expr"; "lr0"; "json" ]

let test_nqlalr_ada_spurious () =
  (* The paper's practical complaint, reproduced on the Ada subset. *)
  let g = grammar_of "ada-subset" in
  let a = Lr0.build g in
  check "ada is LALR(1)" true (Lalr.is_lalr1 (Lalr.compute a));
  check "ada is not NQLALR-clean" false (Nqlalr.is_nqlalr1 (Nqlalr.compute a))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "baselines"
    [
      ( "cross-validation",
        [
          Alcotest.test_case "all methods agree on the whole suite" `Slow
            test_cross_validate_suite;
        ] );
      qsuite "cross-validation-props"
        [ prop_cross_validate_random; prop_cross_validate_random_larger ];
      ( "slr",
        [
          Alcotest.test_case "classification matches registry" `Quick
            test_slr_classification;
          Alcotest.test_case "FOLLOW is state-independent" `Quick
            test_slr_state_independent;
        ] );
      ( "lr1",
        [
          Alcotest.test_case "classification matches registry" `Slow
            test_lr1_classification;
          Alcotest.test_case "state count ≥ LR(0)" `Quick
            test_lr1_at_least_lr0_states;
          Alcotest.test_case "cores bijective with LR(0) states" `Quick
            test_lr1_cores_are_lr0_states;
          Alcotest.test_case "lr1-not-lalr behaves" `Quick
            test_lr1_not_lalr_grammar;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "stats sanity" `Quick test_propagation_stats;
          Alcotest.test_case "ε-reduction look-aheads" `Quick
            test_propagation_epsilon_reductions;
          Alcotest.test_case "kernel_lookahead Not_found" `Quick
            test_propagation_kernel_lookahead_not_found;
        ] );
      ( "nqlalr",
        [
          Alcotest.test_case "gap witness grammar" `Quick
            test_nqlalr_gap_witness;
          Alcotest.test_case "exact on simple grammars" `Quick
            test_nqlalr_agrees_on_simple;
          Alcotest.test_case "spurious conflicts on ada-subset" `Slow
            test_nqlalr_ada_spurious;
        ] );
    ]
