bin/lalrgen.mli:
