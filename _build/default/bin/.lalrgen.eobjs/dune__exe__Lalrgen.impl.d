bin/lalrgen.ml: Arg Cmd Cmdliner Filename Format In_channel Lalr_automaton Lalr_baselines Lalr_core Lalr_grammar Lalr_report Lalr_runtime Lalr_suite Lalr_tables Lazy List Out_channel String Term
