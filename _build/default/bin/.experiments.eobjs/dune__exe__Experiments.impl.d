bin/experiments.ml: Array Format Lalr_bench_tables Sys
