bin/experiments.mli:
