(* Prints the paper-shaped experiment tables (see DESIGN.md §3 and
   EXPERIMENTS.md). Timing-statistics versions of T4/F1–F3 are in
   bench/main.exe; this binary is the quick, dependency-light view.

   Usage: dune exec bin/experiments.exe [-- t1|t2|t3|t4|t5|all] *)

module E = Lalr_bench_tables.Experiments

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let ppf = Format.std_formatter in
  match which with
  | "t1" -> E.t1 ppf
  | "t2" -> E.t2 ppf
  | "t3" -> E.t3 ppf
  | "t4" -> E.t4_wallclock ppf
  | "t5" -> E.t5 ppf
  | "t6" -> E.t6 ppf
  | "all" -> E.run_all ppf
  | other ->
      Format.eprintf "unknown table %S (want t1..t6 or all)@." other;
      exit 2
