(* A calculator: ambiguous expression grammar disambiguated entirely by
   precedence declarations, a small hand lexer, and evaluation by
   walking the parse tree.

   Run with:  dune exec examples/calculator.exe -- "1 + 2 * (3 - 4) ^ 2"
   (defaults to a demo expression without an argument) *)

module G = Lalr_grammar.Grammar
module Reader = Lalr_grammar.Reader
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Token = Lalr_runtime.Token
module Tree = Lalr_runtime.Tree
module Driver = Lalr_runtime.Driver

let grammar_text =
  {|
%token plus minus star slash caret uminus lparen rparen num
%left plus minus
%left star slash
%right caret
%right uminus
%start e
%%
e : e plus e
  | e minus e
  | e star e
  | e slash e
  | e caret e
  | minus e %prec uminus
  | lparen e rparen
  | num ;
|}

let g = Reader.of_string ~name:"calculator" grammar_text

(* ------------------------------------------------------------------ *)
(* Lexer: text → tokens                                               *)
(* ------------------------------------------------------------------ *)

exception Lex_error of int * char

let tokenize text =
  let term name = Option.get (G.find_terminal g name) in
  let toks = ref [] in
  let i = ref 0 in
  let n = String.length text in
  while !i < n do
    let c = text.[!i] in
    (match c with
    | ' ' | '\t' | '\n' -> ()
    | '+' -> toks := Token.make ~lexeme:"+" (term "plus") :: !toks
    | '-' -> toks := Token.make ~lexeme:"-" (term "minus") :: !toks
    | '*' -> toks := Token.make ~lexeme:"*" (term "star") :: !toks
    | '/' -> toks := Token.make ~lexeme:"/" (term "slash") :: !toks
    | '^' -> toks := Token.make ~lexeme:"^" (term "caret") :: !toks
    | '(' -> toks := Token.make ~lexeme:"(" (term "lparen") :: !toks
    | ')' -> toks := Token.make ~lexeme:")" (term "rparen") :: !toks
    | '0' .. '9' ->
        let start = !i in
        while !i + 1 < n && (match text.[!i + 1] with '0' .. '9' | '.' -> true | _ -> false) do
          incr i
        done;
        toks :=
          Token.make ~lexeme:(String.sub text start (!i - start + 1)) (term "num")
          :: !toks
    | c -> raise (Lex_error (!i, c)));
    incr i
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Evaluation by tree walking                                         *)
(* ------------------------------------------------------------------ *)

let rec eval tree =
  match tree with
  | Tree.Leaf tok -> float_of_string tok.Token.lexeme
  | Tree.Node { children; _ } -> (
      match children with
      | [ l; Tree.Leaf op; r ] when op.Token.lexeme <> "(" -> (
          let a = eval l and b = eval r in
          match op.Token.lexeme with
          | "+" -> a +. b
          | "-" -> a -. b
          | "*" -> a *. b
          | "/" -> a /. b
          | "^" -> Float.pow a b
          | _ -> assert false)
      | [ Tree.Leaf _minus; e ] -> -.eval e
      | [ Tree.Leaf _lp; e; Tree.Leaf _rp ] -> eval e
      | [ e ] -> eval e
      | _ -> assert false)

let () =
  let input =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "1 + 2 * (3 - 4) ^ 2 - -5"
  in
  let automaton = Lr0.build g in
  let lookaheads = Lalr.compute automaton in
  let tables = Tables.build ~lookahead:(Lalr.lookahead lookaheads) automaton in
  (* Precedence declarations must have silenced every conflict. *)
  assert (Tables.unresolved_conflicts tables = []);
  Format.printf "%d shift/reduce conflicts, all resolved by precedence@."
    (List.length (Tables.conflicts tables));
  match Driver.parse tables (tokenize input) with
  | Ok tree ->
      Format.printf "%s = %g@." input (eval tree);
      Format.printf "@.Parse tree:@.%a@." (Tree.pp g) tree
  | Error e -> Format.printf "syntax error: %a@." (Driver.pp_error g) e
  | exception Lex_error (pos, c) ->
      Format.printf "lexical error at offset %d: unexpected %C@." pos c
