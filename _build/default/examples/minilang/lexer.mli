(** The minilang lexer: source text to parser tokens. *)

type error = { offset : int; message : string }

exception Error of error

val tokenize : Grammar.t -> string -> Lalr_runtime.Token.t list
(** Tokens carry the matched text as lexeme (numbers and identifiers
    need it downstream). Skips whitespace and [#]-to-end-of-line
    comments; raises {!Error} on unexpected characters. The grammar
    argument supplies terminal ids (it must define the terminals in
    {!Syntax.grammar}). *)
