(** Minilang's grammar, tables and parser: text in, {!Ast.program} out.

    The grammar is brace-delimited (every [if]/[while] body is a block),
    so it is LALR(1) with zero conflicts — asserted at table-build time.
    Operator precedence is expressed structurally (stratified
    nonterminals), the way most real language grammars do it. *)

val grammar : Grammar.t
(** The minilang grammar (also reachable as text via
    {!Lalr_grammar.Reader.to_string} for the curious). *)

val tables : Lalr_tables.Tables.t Lazy.t
(** LALR(1) tables from the DeRemer–Pennello sets. *)

type error =
  | Lexical of Lexer.error
  | Syntax of Lalr_runtime.Driver.error

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ast.program, error) result

val parse_tree :
  string -> (Lalr_runtime.Tree.t, error) result
(** The raw concrete tree, for tooling that wants it. *)
