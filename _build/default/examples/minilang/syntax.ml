module Reader = Lalr_grammar.Reader
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Token = Lalr_runtime.Token
module Tree = Lalr_runtime.Tree
module Driver = Lalr_runtime.Driver

let grammar =
  Reader.of_string ~name:"minilang"
    {|
%token fun let print if else while return true false
%token ident number
%token lparen rparen lbrace rbrace semi comma assign
%token plus minus star slash lt le gt ge eqeq ne andand oror bang
%start program
%%

program : items ;
items : %empty | items item ;
item : fundef | stmt ;

fundef : fun ident lparen params rparen block ;
params : %empty | param_list ;
param_list : ident | param_list comma ident ;

block : lbrace stmts rbrace ;
stmts : %empty | stmts stmt ;

stmt : let ident assign expr semi
     | ident assign expr semi
     | print expr semi
     | if expr block
     | if expr block else block
     | while expr block
     | return semi
     | return expr semi
     | expr semi ;

/* precedence by stratification: || < && < comparisons < + - < * / < unary */
expr : orexpr ;
orexpr : orexpr oror andexpr | andexpr ;
andexpr : andexpr andand cmpexpr | cmpexpr ;
cmpexpr : addexpr
        | addexpr lt addexpr
        | addexpr le addexpr
        | addexpr gt addexpr
        | addexpr ge addexpr
        | addexpr eqeq addexpr
        | addexpr ne addexpr ;
addexpr : addexpr plus mulexpr | addexpr minus mulexpr | mulexpr ;
mulexpr : mulexpr star unary | mulexpr slash unary | unary ;
unary : minus unary | bang unary | postfix ;
postfix : atom | ident lparen args rparen ;
atom : number | ident | true | false | lparen expr rparen ;
args : %empty | arg_list ;
arg_list : expr | arg_list comma expr ;
|}

let tables =
  lazy
    (let a = Lr0.build grammar in
     let t = Lalr.compute a in
     assert (Lalr.is_lalr1 t);
     let tbl = Tables.build ~lookahead:(Lalr.lookahead t) a in
     assert (Tables.unresolved_conflicts tbl = []);
     tbl)

type error = Lexical of Lexer.error | Syntax of Driver.error

let pp_error ppf = function
  | Lexical e ->
      Format.fprintf ppf "lexical error at offset %d: %s" e.Lexer.offset
        e.Lexer.message
  | Syntax e -> Driver.pp_error grammar ppf e

let parse_tree src =
  match Lexer.tokenize grammar src with
  | exception Lexer.Error e -> Error (Lexical e)
  | tokens -> (
      match Driver.parse (Lazy.force tables) tokens with
      | Ok tree -> Ok tree
      | Error e -> Error (Syntax e))

(* ------------------------------------------------------------------ *)
(* Concrete tree → AST                                                *)
(* ------------------------------------------------------------------ *)

let lhs_name tree =
  match tree with
  | Tree.Node { prod; _ } ->
      Grammar.nonterminal_name grammar (Grammar.production grammar prod).lhs
  | Tree.Leaf _ -> "<leaf>"

let leaf_name = function
  | Tree.Leaf tok -> Grammar.terminal_name grammar tok.Token.terminal
  | Tree.Node _ -> "<node>"

let lexeme = function
  | Tree.Leaf tok -> tok.Token.lexeme
  | Tree.Node _ -> assert false

let rec expr tree : Ast.expr =
  match tree with
  | Tree.Leaf tok -> (
      match Grammar.terminal_name grammar tok.Token.terminal with
      | "number" -> Ast.Num (int_of_string tok.Token.lexeme)
      | "ident" -> Ast.Var tok.Token.lexeme
      | "true" -> Ast.Bool true
      | "false" -> Ast.Bool false
      | other -> failwith ("unexpected leaf in expression: " ^ other))
  | Tree.Node { children; _ } -> (
      match (lhs_name tree, children) with
      | _, [ only ] -> expr only
      | ("orexpr" | "andexpr" | "cmpexpr" | "addexpr" | "mulexpr"), [ a; op; b ]
        ->
          let binop =
            match leaf_name op with
            | "oror" -> Ast.Or
            | "andand" -> Ast.And
            | "lt" -> Ast.Lt
            | "le" -> Ast.Le
            | "gt" -> Ast.Gt
            | "ge" -> Ast.Ge
            | "eqeq" -> Ast.Eq
            | "ne" -> Ast.Ne
            | "plus" -> Ast.Add
            | "minus" -> Ast.Sub
            | "star" -> Ast.Mul
            | "slash" -> Ast.Div
            | other -> failwith ("unexpected operator " ^ other)
          in
          Ast.Binop (binop, expr a, expr b)
      | "unary", [ op; e ] ->
          if leaf_name op = "minus" then Ast.Neg (expr e) else Ast.Not (expr e)
      | "postfix", [ f; _lp; args_node; _rp ] ->
          Ast.Call (lexeme f, args args_node)
      | "atom", [ _lp; e; _rp ] -> expr e
      | shape, _ -> failwith ("unexpected expression node " ^ shape))

and args tree : Ast.expr list =
  match tree with
  | Tree.Node { children = []; _ } -> []
  | Tree.Node { children = [ only ]; _ } -> (
      match lhs_name tree with
      | "args" -> args only
      | "arg_list" -> [ expr only ]
      | _ -> [ expr only ])
  | Tree.Node { children = [ more; _comma; e ]; _ } -> args more @ [ expr e ]
  | _ -> assert false

let rec stmt tree : Ast.stmt =
  match tree with
  | Tree.Node { children; _ } -> (
      match children with
      | [ only ] when lhs_name tree = "stmt" -> stmt only
      | _ -> (
          match (List.map leaf_name children, children) with
          | "let" :: _, [ _; name; _; e; _ ] ->
              Ast.Let (lexeme name, expr e)
          | "ident" :: "assign" :: _, [ name; _; e; _ ] ->
              Ast.Assign (lexeme name, expr e)
          | "print" :: _, [ _; e; _ ] -> Ast.Print (expr e)
          | "if" :: _, [ _; c; b ] -> Ast.If (expr c, block b, None)
          | "if" :: _, [ _; c; t; _else; f ] ->
              Ast.If (expr c, block t, Some (block f))
          | "while" :: _, [ _; c; b ] -> Ast.While (expr c, block b)
          | [ "return"; "semi" ], _ -> Ast.Return None
          | "return" :: _, [ _; e; _ ] -> Ast.Return (Some (expr e))
          | _, [ e; _semi ] -> Ast.Expr (expr e)
          | _ -> failwith "unexpected statement shape"))
  | Tree.Leaf _ -> assert false

and block tree : Ast.block =
  (* block : lbrace stmts rbrace *)
  match tree with
  | Tree.Node { children = [ _lb; stmts_node; _rb ]; _ } -> stmts stmts_node
  | _ -> assert false

and stmts tree : Ast.block =
  match tree with
  | Tree.Node { children = []; _ } -> []
  | Tree.Node { children = [ more; s ]; _ } -> stmts more @ [ stmt s ]
  | _ -> assert false

let fundef tree : Ast.fundef =
  match tree with
  | Tree.Node { children = [ _fun; name; _lp; params_node; _rp; body ]; _ } ->
      let rec params t =
        match t with
        | Tree.Node { children = []; _ } -> []
        | Tree.Node { children = [ only ]; _ } -> (
            match only with
            | Tree.Leaf _ -> [ lexeme only ]
            | Tree.Node _ -> params only)
        | Tree.Node { children = [ more; _comma; p ]; _ } ->
            params more @ [ lexeme p ]
        | Tree.Leaf _ -> [ lexeme t ]
        | Tree.Node _ -> assert false
      in
      { Ast.name = lexeme name; params = params params_node; body = block body }
  | _ -> assert false

let program tree : Ast.program =
  let rec items t acc =
    match t with
    | Tree.Node { children = []; _ } -> acc
    | Tree.Node { children = [ more; item ]; _ } ->
        let funs, main = items more acc in
        (* item : fundef | stmt *)
        (match item with
        | Tree.Node { children = [ inner ]; _ } when lhs_name inner = "fundef"
          ->
            (funs @ [ fundef inner ], main)
        | Tree.Node { children = [ inner ]; _ } -> (funs, main @ [ stmt inner ])
        | _ -> assert false)
    | _ -> assert false
  in
  match tree with
  | Tree.Node { children = [ items_node ]; _ } ->
      let funs, main = items items_node ([], []) in
      { Ast.funs; main }
  | _ -> assert false

let parse src =
  match parse_tree src with
  | Error _ as e -> e
  | Ok tree -> Ok (program tree)
