(** Abstract syntax of minilang — the little imperative language that
    serves as this repository's end-to-end demo (text → tokens → LALR
    parse tree → AST → value).

    {v
    fun fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); }
    let x = 0;
    while x < 5 { print fib(x); x = x + 1; }
    v} *)

type binop =
  | Add | Sub | Mul | Div
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type expr =
  | Num of int
  | Var of string
  | Bool of bool
  | Binop of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Call of string * expr list

type stmt =
  | Let of string * expr  (** introduces a variable in the current scope *)
  | Assign of string * expr  (** updates an existing variable *)
  | Print of expr
  | If of expr * block * block option
  | While of expr * block
  | Return of expr option
  | Expr of expr  (** expression statement (e.g. a call) *)

and block = stmt list

type fundef = { name : string; params : string list; body : block }

type program = { funs : fundef list; main : block }

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit
