examples/minilang/syntax.mli: Ast Format Grammar Lalr_runtime Lalr_tables Lazy Lexer
