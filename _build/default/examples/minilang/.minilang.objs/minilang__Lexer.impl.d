examples/minilang/lexer.ml: Grammar Lalr_runtime List Option Printf String
