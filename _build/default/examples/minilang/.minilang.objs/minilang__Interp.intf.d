examples/minilang/interp.mli: Ast Format
