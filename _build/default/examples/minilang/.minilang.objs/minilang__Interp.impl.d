examples/minilang/interp.ml: Ast Format Hashtbl List Option Result
