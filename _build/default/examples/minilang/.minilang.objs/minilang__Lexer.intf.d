examples/minilang/lexer.mli: Grammar Lalr_runtime
