examples/minilang/syntax.ml: Ast Format Grammar Lalr_automaton Lalr_core Lalr_grammar Lalr_runtime Lalr_tables Lazy Lexer List
