examples/minilang/ast.ml: Format List String
