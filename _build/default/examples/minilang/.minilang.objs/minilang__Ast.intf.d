examples/minilang/ast.mli: Format
