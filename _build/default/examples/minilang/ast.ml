type binop = Add | Sub | Mul | Div | Lt | Le | Gt | Ge | Eq | Ne | And | Or

type expr =
  | Num of int
  | Var of string
  | Bool of bool
  | Binop of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Call of string * expr list

type stmt =
  | Let of string * expr
  | Assign of string * expr
  | Print of expr
  | If of expr * block * block option
  | While of expr * block
  | Return of expr option
  | Expr of expr

and block = stmt list

type fundef = { name : string; params : string list; body : block }
type program = { funs : fundef list; main : block }

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"

let rec pp_expr ppf = function
  | Num n -> Format.fprintf ppf "%d" n
  | Var v -> Format.fprintf ppf "%s" v
  | Bool b -> Format.fprintf ppf "%b" b
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Neg e -> Format.fprintf ppf "(-%a)" pp_expr e
  | Not e -> Format.fprintf ppf "(!%a)" pp_expr e
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_expr)
        args

let rec pp_stmt ppf = function
  | Let (v, e) -> Format.fprintf ppf "let %s = %a;" v pp_expr e
  | Assign (v, e) -> Format.fprintf ppf "%s = %a;" v pp_expr e
  | Print e -> Format.fprintf ppf "print %a;" pp_expr e
  | If (c, t, None) ->
      Format.fprintf ppf "@[<v 2>if %a {%a@]@,}" pp_expr c pp_block t
  | If (c, t, Some e) ->
      Format.fprintf ppf "@[<v 2>if %a {%a@]@,@[<v 2>} else {%a@]@,}" pp_expr
        c pp_block t pp_block e
  | While (c, b) ->
      Format.fprintf ppf "@[<v 2>while %a {%a@]@,}" pp_expr c pp_block b
  | Return None -> Format.fprintf ppf "return;"
  | Return (Some e) -> Format.fprintf ppf "return %a;" pp_expr e
  | Expr e -> Format.fprintf ppf "%a;" pp_expr e

and pp_block ppf stmts =
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) stmts

let pp_program ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun f ->
      Format.fprintf ppf "@[<v 2>fun %s(%s) {%a@]@,}@," f.name
        (String.concat ", " f.params)
        pp_block f.body)
    p.funs;
  pp_block ppf p.main;
  Format.fprintf ppf "@]"
