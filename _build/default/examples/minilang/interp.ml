type value = Int of int | Boolv of bool

type runtime_error =
  | Unbound_variable of string
  | Unknown_function of string
  | Arity of { func : string; expected : int; got : int }
  | Type_error of string
  | Division_by_zero
  | Return_outside_function
  | Fuel_exhausted

exception Error of runtime_error

let pp_value ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Boolv b -> Format.fprintf ppf "%b" b

let pp_runtime_error ppf = function
  | Unbound_variable v -> Format.fprintf ppf "unbound variable %s" v
  | Unknown_function f -> Format.fprintf ppf "unknown function %s" f
  | Arity { func; expected; got } ->
      Format.fprintf ppf "%s expects %d arguments, got %d" func expected got
  | Type_error msg -> Format.fprintf ppf "type error: %s" msg
  | Division_by_zero -> Format.fprintf ppf "division by zero"
  | Return_outside_function -> Format.fprintf ppf "return outside a function"
  | Fuel_exhausted -> Format.fprintf ppf "execution budget exhausted"

(* Environments are stacks of mutable scopes ((string, value) Hashtbl.t
   list). Lookups walk outward; [Let] binds in the innermost scope,
   [Assign] updates the nearest binding. *)

exception Returning of value option

let lookup env v =
  let rec go = function
    | [] -> raise (Error (Unbound_variable v))
    | scope :: rest -> (
        match Hashtbl.find_opt scope v with
        | Some value -> value
        | None -> go rest)
  in
  go env

let assign env v value =
  let rec go = function
    | [] -> raise (Error (Unbound_variable v))
    | scope :: rest ->
        if Hashtbl.mem scope v then Hashtbl.replace scope v value else go rest
  in
  go env

let as_int = function
  | Int n -> n
  | Boolv _ -> raise (Error (Type_error "expected an integer"))

let as_bool = function
  | Boolv b -> b
  | Int _ -> raise (Error (Type_error "expected a boolean"))

let run ?(fuel = 1_000_000)
    ?(print = fun v -> Format.printf "%a@." pp_value v) (p : Ast.program) =
  let funs = Hashtbl.create 8 in
  List.iter (fun (f : Ast.fundef) -> Hashtbl.replace funs f.name f) p.funs;
  let fuel = ref fuel in
  let burn () =
    decr fuel;
    if !fuel < 0 then raise (Error Fuel_exhausted)
  in
  let rec eval env (e : Ast.expr) =
    burn ();
    match e with
    | Num n -> Int n
    | Bool b -> Boolv b
    | Var v -> lookup env v
    | Neg e -> Int (-as_int (eval env e))
    | Not e -> Boolv (not (as_bool (eval env e)))
    | Binop (op, a, b) -> (
        match op with
        | And -> Boolv (as_bool (eval env a) && as_bool (eval env b))
        | Or -> Boolv (as_bool (eval env a) || as_bool (eval env b))
        | Add -> Int (as_int (eval env a) + as_int (eval env b))
        | Sub -> Int (as_int (eval env a) - as_int (eval env b))
        | Mul -> Int (as_int (eval env a) * as_int (eval env b))
        | Div ->
            let d = as_int (eval env b) in
            if d = 0 then raise (Error Division_by_zero)
            else Int (as_int (eval env a) / d)
        | Lt -> Boolv (as_int (eval env a) < as_int (eval env b))
        | Le -> Boolv (as_int (eval env a) <= as_int (eval env b))
        | Gt -> Boolv (as_int (eval env a) > as_int (eval env b))
        | Ge -> Boolv (as_int (eval env a) >= as_int (eval env b))
        | Eq -> Boolv (eval env a = eval env b)
        | Ne -> Boolv (eval env a <> eval env b))
    | Call (fname, arg_exprs) -> (
        match Hashtbl.find_opt funs fname with
        | None -> raise (Error (Unknown_function fname))
        | Some f ->
            let n_args = List.length arg_exprs in
            if List.length f.params <> n_args then
              raise
                (Error
                   (Arity
                      { func = fname; expected = List.length f.params;
                        got = n_args }));
            let values = List.map (eval env) arg_exprs in
            let scope = Hashtbl.create 8 in
            List.iter2 (Hashtbl.replace scope) f.params values;
            (* Functions see only their own scope: static, first-order. *)
            let result =
              try
                exec_block [ scope ] f.body;
                Int 0
              with Returning v -> Option.value v ~default:(Int 0)
            in
            result)
  and exec env (s : Ast.stmt) =
    burn ();
    match s with
    | Let (v, e) -> (
        match env with
        | scope :: _ -> Hashtbl.replace scope v (eval env e)
        | [] -> assert false)
    | Assign (v, e) -> assign env v (eval env e)
    | Print e -> print (eval env e)
    | If (c, t, f) ->
        if as_bool (eval env c) then exec_block (Hashtbl.create 8 :: env) t
        else Option.iter (fun f -> exec_block (Hashtbl.create 8 :: env) f) f
    | While (c, body) ->
        while as_bool (eval env c) do
          burn ();
          exec_block (Hashtbl.create 8 :: env) body
        done
    | Return v -> raise (Returning (Option.map (eval env) v))
    | Expr e -> ignore (eval env e)
  and exec_block env stmts = List.iter (exec env) stmts in
  match exec_block [ Hashtbl.create 16 ] p.main with
  | () -> Ok ()
  | exception Error e -> Result.Error e
  | exception Returning _ -> Result.Error Return_outside_function

let run_capture ?fuel p =
  let out = ref [] in
  let print v = out := Format.asprintf "%a" pp_value v :: !out in
  match run ?fuel ~print p with
  | Ok () -> Ok (List.rev !out)
  | Error e -> Error e
