(** The minilang evaluator: tree-walking over {!Ast}, with lexical
    scoping inside blocks, first-order functions, and integer/boolean
    values. *)

type value = Int of int | Boolv of bool

type runtime_error =
  | Unbound_variable of string
  | Unknown_function of string
  | Arity of { func : string; expected : int; got : int }
  | Type_error of string
  | Division_by_zero
  | Return_outside_function
  | Fuel_exhausted  (** execution budget hit — runaway loop/recursion *)

exception Error of runtime_error

val pp_value : Format.formatter -> value -> unit
val pp_runtime_error : Format.formatter -> runtime_error -> unit

val run :
  ?fuel:int -> ?print:(value -> unit) -> Ast.program -> (unit, runtime_error) result
(** Executes the program. [print] receives each [print] statement's
    value (default: stdout). [fuel] bounds the number of statements and
    calls executed (default 1_000_000) so tests cannot hang. *)

val run_capture : ?fuel:int -> Ast.program -> (string list, runtime_error) result
(** Like {!run}, collecting printed values as strings. *)
