module Token = Lalr_runtime.Token

type error = { offset : int; message : string }

exception Error of error

let keywords =
  [
    ("fun", "fun"); ("let", "let"); ("print", "print"); ("if", "if");
    ("else", "else"); ("while", "while"); ("return", "return");
    ("true", "true"); ("false", "false");
  ]

let tokenize (g : Grammar.t) src =
  let term name =
    match Grammar.find_terminal g name with
    | Some t -> t
    | None -> invalid_arg ("Lexer.tokenize: grammar lacks terminal " ^ name)
  in
  let toks = ref [] in
  let push ?lexeme name =
    toks := Token.make ~lexeme:(Option.value lexeme ~default:name) (term name) :: !toks
  in
  let n = String.length src in
  let i = ref 0 in
  let fail message = raise (Error { offset = !i; message }) in
  while !i < n do
    let c = src.[!i] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '#' ->
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
    | '(' -> push "lparen"; incr i
    | ')' -> push "rparen"; incr i
    | '{' -> push "lbrace"; incr i
    | '}' -> push "rbrace"; incr i
    | ';' -> push "semi"; incr i
    | ',' -> push "comma"; incr i
    | '+' -> push "plus"; incr i
    | '-' -> push "minus"; incr i
    | '*' -> push "star"; incr i
    | '/' -> push "slash"; incr i
    | '<' ->
        if !i + 1 < n && src.[!i + 1] = '=' then begin push "le"; i := !i + 2 end
        else begin push "lt"; incr i end
    | '>' ->
        if !i + 1 < n && src.[!i + 1] = '=' then begin push "ge"; i := !i + 2 end
        else begin push "gt"; incr i end
    | '=' ->
        if !i + 1 < n && src.[!i + 1] = '=' then begin push "eqeq"; i := !i + 2 end
        else begin push "assign"; incr i end
    | '!' ->
        if !i + 1 < n && src.[!i + 1] = '=' then begin push "ne"; i := !i + 2 end
        else begin push "bang"; incr i end
    | '&' ->
        if !i + 1 < n && src.[!i + 1] = '&' then begin push "andand"; i := !i + 2 end
        else fail "expected &&"
    | '|' ->
        if !i + 1 < n && src.[!i + 1] = '|' then begin push "oror"; i := !i + 2 end
        else fail "expected ||"
    | '0' .. '9' ->
        let start = !i in
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
          incr i
        done;
        push ~lexeme:(String.sub src start (!i - start)) "number"
    | ('a' .. 'z' | 'A' .. 'Z' | '_') ->
        let start = !i in
        while
          !i < n
          && match src.[!i] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
             | _ -> false
        do
          incr i
        done;
        let word = String.sub src start (!i - start) in
        (match List.assoc_opt word keywords with
        | Some kw -> push kw
        | None -> push ~lexeme:word "ident")
    | c -> fail (Printf.sprintf "unexpected character %C" c));
  done;
  List.rev !toks
