(* The minilang driver: the complete little language built on this
   repository's parser machinery — lexer → LALR(1) tables → parse tree
   → AST → tree-walking evaluator.

   Run with:  dune exec examples/minilang/minilang_main.exe            (demo)
          or  dune exec examples/minilang/minilang_main.exe -- FILE    (a program)
          or  echo 'print 1+2;' | dune exec examples/minilang/minilang_main.exe -- - *)

let demo =
  {|
# minilang demo: functions, recursion, loops, booleans
fun fib(n) {
  if n < 2 { return n; }
  return fib(n - 1) + fib(n - 2);
}

fun max(a, b) {
  if a > b { return a; } else { return b; }
}

let i = 0;
while i < 10 {
  print fib(i);
  i = i + 1;
}
print max(fib(9), 30);
print 2 + 3 * 4 == 14 && !(1 > 2);
|}

let () =
  let src =
    match Sys.argv with
    | [| _ |] -> demo
    | [| _; "-" |] -> In_channel.input_all In_channel.stdin
    | [| _; path |] -> In_channel.with_open_bin path In_channel.input_all
    | _ ->
        prerr_endline "usage: minilang [FILE | -]";
        exit 2
  in
  match Minilang.Syntax.parse src with
  | Error e ->
      Format.eprintf "%a@." Minilang.Syntax.pp_error e;
      exit 1
  | Ok program -> (
      match Minilang.Interp.run program with
      | Ok () -> ()
      | Error e ->
          Format.eprintf "runtime error: %a@." Minilang.Interp.pp_runtime_error
            e;
          exit 1)
