(* Conflict analysis walkthrough: what each look-ahead method says about
   three instructive grammars.

   Run with:  dune exec examples/dangling_else.exe *)

module G = Lalr_grammar.Grammar
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Slr = Lalr_baselines.Slr
module Nqlalr = Lalr_baselines.Nqlalr
module Tables = Lalr_tables.Tables
module Classify = Lalr_tables.Classify
module Describe = Lalr_report.Describe
module Registry = Lalr_suite.Registry

let section title = Format.printf "@.=== %s ===@.@." title

let show name =
  let e = Registry.find name in
  let g = Lazy.force e.grammar in
  Format.printf "%s — %s@." name e.description;
  let v = Classify.classify g in
  Format.printf "%a@." Describe.classification v;
  let a = Lr0.build g in
  let t = Lalr.compute a in
  let tbl = Tables.build ~lookahead:(Lalr.lookahead t) a in
  Describe.conflicts Format.std_formatter tbl

let () =
  section "The dangling else";
  show "dangling-else";
  Format.printf
    "@.The shift default gives the conventional binding: an else pairs@.\
     with the nearest unmatched then. No look-ahead refinement fixes@.\
     this grammar — the ambiguity is real.@.";

  section "SLR's loss: dragon-book 4.34";
  show "assign";
  Format.printf
    "@.FOLLOW(r) contains '=' because '=' follows r somewhere in the@.\
     grammar; the exact LA(q, r → l) does not, because no = can follow@.\
     in THAT state's contexts. The paper's Follow(p,A) sets are per@.\
     nonterminal transition, not per nonterminal.@.";

  section "NQLALR's loss: the §7 witness";
  show "nqlalr-gap";
  let g = Lazy.force (Registry.find "nqlalr-gap").grammar in
  let a = Lr0.build g in
  let nq_tbl =
    Tables.build ~lookahead:(Nqlalr.lookahead (Nqlalr.compute a)) a
  in
  Format.printf "Under NQLALR's state-merged Follow sets instead:@.";
  Describe.conflicts Format.std_formatter nq_tbl;
  Format.printf
    "@.NQLALR attaches one Follow set to each goto TARGET; the two@.\
     contexts reaching the shared target pollute each other and a@.\
     spurious reduce/reduce appears. The exact sets keep them apart.@.";

  section "SLR vs LALR on the language suite";
  List.iter
    (fun (e : Registry.entry) ->
      let g = Lazy.force e.grammar in
      let a = Lr0.build g in
      let t = Lalr.compute a in
      let lalr_tbl = Tables.build ~lookahead:(Lalr.lookahead t) a in
      let slr_tbl = Tables.build ~lookahead:(Slr.lookahead (Slr.compute a)) a in
      let nq_tbl =
        Tables.build ~lookahead:(Nqlalr.lookahead (Nqlalr.compute a)) a
      in
      Format.printf
        "%-12s LALR %d s/r %d r/r   SLR %d s/r %d r/r   NQLALR %d s/r %d r/r@."
        e.name
        (Tables.n_shift_reduce lalr_tbl)
        (Tables.n_reduce_reduce lalr_tbl)
        (Tables.n_shift_reduce slr_tbl)
        (Tables.n_reduce_reduce slr_tbl)
        (Tables.n_shift_reduce nq_tbl)
        (Tables.n_reduce_reduce nq_tbl))
    Registry.languages
