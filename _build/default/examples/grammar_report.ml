(* Full analysis report for a grammar — the library as a yacc -v / menhir
   --explain replacement.

   Run with:  dune exec examples/grammar_report.exe                 (demo grammar)
          or  dune exec examples/grammar_report.exe -- FILE.cfg     (your grammar)
          or  dune exec examples/grammar_report.exe -- --suite NAME (suite grammar) *)

module Reader = Lalr_grammar.Reader
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Classify = Lalr_tables.Classify
module Describe = Lalr_report.Describe
module Registry = Lalr_suite.Registry

let demo =
  {|
%token eq star id
%start s
%%
s : l eq r | r ;
l : star r | id ;
r : l ;
|}

let load () =
  match Sys.argv with
  | [| _ |] -> Reader.of_string ~name:"demo (dragon 4.34)" demo
  | [| _; "--suite"; name |] -> Lazy.force (Registry.find name).grammar
  | [| _; path |] -> Reader.of_file path
  | _ ->
      prerr_endline "usage: grammar_report [FILE.cfg | --suite NAME]";
      exit 2

let () =
  let g =
    match load () with
    | g -> g
    | exception Reader.Error e ->
        Format.eprintf "parse error: %a@." Reader.pp_error e;
        exit 1
    | exception Not_found ->
        Format.eprintf "unknown suite grammar; known:@.";
        List.iter
          (fun (e : Registry.entry) -> Format.eprintf "  %s@." e.name)
          Registry.all;
        exit 1
  in
  Format.printf "── Grammar ──────────────────────────────────────────@.";
  Describe.grammar_summary Format.std_formatter g;

  let a = Lr0.build g in
  let t = Lalr.compute a in

  Format.printf "@.── Classification ──────────────────────────────────@.";
  let verdict =
    if Lalr_grammar.Grammar.n_productions g <= 200 then Classify.classify g
    else Classify.classify_no_lr1 g
  in
  Describe.classification Format.std_formatter verdict;

  Format.printf "@.── Look-ahead relations (DeRemer–Pennello) ─────────@.";
  Describe.relations Format.std_formatter t;

  Format.printf "@.── Conflicts ───────────────────────────────────────@.";
  let tbl = Tables.build ~lookahead:(Lalr.lookahead t) a in
  Describe.conflicts Format.std_formatter tbl;

  if Lr0.n_states a <= 40 then begin
    Format.printf "@.── Automaton ───────────────────────────────────────@.";
    Describe.automaton ~lookaheads:t Format.std_formatter a
  end
  else
    Format.printf
      "@.(automaton dump suppressed: %d states; use the lalrgen CLI with \
       --dump-states to force)@."
      (Lr0.n_states a)
