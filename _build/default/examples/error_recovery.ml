(* Panic-mode error recovery: a tiny statement language with a yacc-style
   [error] production collects every syntax error in one pass and still
   produces a tree.

   Run with:  dune exec examples/error_recovery.exe *)

module G = Lalr_grammar.Grammar
module Reader = Lalr_grammar.Reader
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Token = Lalr_runtime.Token
module Tree = Lalr_runtime.Tree
module Driver = Lalr_runtime.Driver

(* The terminal named "error" opts the grammar into recovery: when a
   statement goes wrong, the parser pops to a state that can shift
   [error], then discards tokens up to the next ';'. *)
let g =
  Reader.of_string ~name:"stmt-lang"
    {|
%token semi id assign num print lparen rparen plus error
%start prog
%%
prog : stmts ;
stmts : stmt | stmts stmt ;
stmt : id assign expr semi
     | print lparen expr rparen semi
     | error semi ;
expr : expr plus term | term ;
term : id | num ;
|}

let tables =
  let a = Lr0.build g in
  let t = Lalr.compute a in
  Tables.build ~lookahead:(Lalr.lookahead t) a

let show_input names =
  Format.printf "input : %s@." (String.concat " " names);
  let out = Driver.parse_with_recovery tables (Token.of_names g names) in
  List.iter
    (fun e -> Format.printf "  error: %a@." (Driver.pp_error g) e)
    out.Driver.errors;
  match out.Driver.tree with
  | Some tree ->
      Format.printf "  tree (%d statements%s):@.    %a@.@."
        (let rec count = function
           | Tree.Node { prod; children; _ }
             when (G.production g prod).lhs
                  = Option.get (G.find_nonterminal g "stmt") ->
               1 + List.fold_left (fun acc c -> acc + count c) 0 children
           | Tree.Node { children; _ } ->
               List.fold_left (fun acc c -> acc + count c) 0 children
           | Tree.Leaf _ -> 0
         in
         count tree)
        (if out.Driver.errors = [] then "" else ", errors patched as <error>")
        (Tree.pp_sexp g) tree
  | None -> Format.printf "  unrecoverable@.@."

let () =
  (* Clean input. *)
  show_input [ "id"; "assign"; "num"; "semi"; "print"; "lparen"; "id"; "rparen"; "semi" ];
  (* One broken statement in the middle: parsing resumes at ';'. *)
  show_input
    [
      "id"; "assign"; "num"; "semi";
      "id"; "assign"; "plus"; "plus"; "semi";  (* nonsense *)
      "print"; "lparen"; "num"; "rparen"; "semi";
    ];
  (* Two independent errors: both reported in a single pass. *)
  show_input
    [
      "assign"; "num"; "semi";                 (* missing id *)
      "id"; "assign"; "num"; "semi";
      "print"; "id"; "semi";                   (* missing parens *)
      "id"; "assign"; "id"; "semi";
    ];
  (* Unrecoverable: nothing to synchronise on. *)
  show_input [ "id"; "assign"; "plus" ]
