(* A JSON parser built on the library: the suite's RFC 8259 grammar, a
   hand-written JSON lexer, and a tree-to-value conversion.

   Run with:  dune exec examples/json_parser.exe
   or:        dune exec examples/json_parser.exe -- '{"a": [1, true]}' *)

module G = Lalr_grammar.Grammar
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Token = Lalr_runtime.Token
module Tree = Lalr_runtime.Tree
module Driver = Lalr_runtime.Driver

let g = Lazy.force Lalr_suite.Json.grammar

type json =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of json list
  | Object of (string * json) list

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

exception Lex_error of int * string

let tokenize text =
  let term name = Option.get (G.find_terminal g name) in
  let toks = ref [] in
  let i = ref 0 in
  let n = String.length text in
  let push name lexeme = toks := Token.make ~lexeme (term name) :: !toks in
  let keyword kw name =
    let l = String.length kw in
    if !i + l <= n && String.sub text !i l = kw then begin
      push name kw;
      i := !i + l
    end
    else raise (Lex_error (!i, "invalid literal"))
  in
  while !i < n do
    (match text.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '{' -> push "lbrace" "{"; incr i
    | '}' -> push "rbrace" "}"; incr i
    | '[' -> push "lbracket" "["; incr i
    | ']' -> push "rbracket" "]"; incr i
    | ':' -> push "colon" ":"; incr i
    | ',' -> push "comma" ","; incr i
    | 't' -> keyword "true" "true"
    | 'f' -> keyword "false" "false"
    | 'n' -> keyword "null" "null"
    | '"' ->
        let buf = Buffer.create 16 in
        incr i;
        let rec scan () =
          if !i >= n then raise (Lex_error (!i, "unterminated string"));
          match text.[!i] with
          | '"' -> incr i
          | '\\' when !i + 1 < n ->
              Buffer.add_char buf
                (match text.[!i + 1] with
                | 'n' -> '\n'
                | 't' -> '\t'
                | c -> c);
              i := !i + 2;
              scan ()
          | c ->
              Buffer.add_char buf c;
              incr i;
              scan ()
        in
        scan ();
        push "string" (Buffer.contents buf)
    | '-' | '0' .. '9' ->
        let start = !i in
        incr i;
        while
          !i < n
          && match text.[!i] with
             | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
             | _ -> false
        do
          incr i
        done;
        push "number" (String.sub text start (!i - start))
    | c -> raise (Lex_error (!i, Printf.sprintf "unexpected %C" c)));
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Tree → value                                                       *)
(* ------------------------------------------------------------------ *)

let prod_lhs tree =
  match tree with
  | Tree.Node { prod; _ } -> G.nonterminal_name g (G.production g prod).lhs
  | Tree.Leaf _ -> "leaf"

let rec to_value tree =
  match tree with
  | Tree.Leaf tok -> (
      match G.terminal_name g tok.Token.terminal with
      | "true" -> Bool true
      | "false" -> Bool false
      | "null" -> Null
      | "number" -> Number (float_of_string tok.Token.lexeme)
      | "string" -> String tok.Token.lexeme
      | _ -> assert false)
  | Tree.Node { children; _ } as node -> (
      match (prod_lhs node, children) with
      | ("json" | "value"), [ c ] -> to_value c
      | "object", [ _; _ ] -> Object []
      | "object", [ _; members; _ ] -> Object (to_members members)
      | "array", [ _; _ ] -> Array []
      | "array", [ _; elements; _ ] -> Array (to_elements elements)
      | _, [ c ] -> to_value c
      | _ -> assert false)

and to_members tree =
  match tree with
  | Tree.Node { children = [ m ]; _ } -> [ to_member m ]
  | Tree.Node { children = [ ms; _comma; m ]; _ } ->
      to_members ms @ [ to_member m ]
  | _ -> assert false

and to_member tree =
  match tree with
  | Tree.Node { children = [ Tree.Leaf key; _colon; v ]; _ } ->
      (key.Token.lexeme, to_value v)
  | _ -> assert false

and to_elements tree =
  match tree with
  | Tree.Node { children = [ v ]; _ } -> [ to_value v ]
  | Tree.Node { children = [ es; _comma; v ]; _ } ->
      to_elements es @ [ to_value v ]
  | _ -> assert false

let rec pp_json ppf = function
  | Null -> Format.fprintf ppf "null"
  | Bool b -> Format.fprintf ppf "%b" b
  | Number f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s
  | Array l ->
      Format.fprintf ppf "@[<hv 2>[%a]@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_json)
        l
  | Object l ->
      Format.fprintf ppf "@[<hv 2>{%a}@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (k, v) -> Format.fprintf ppf "%S: %a" k pp_json v))
        l

let () =
  let input =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else
      {|{"name": "deremer-pennello", "year": 1979,
         "lookaheads": ["DR", "reads", "includes", "lookback"],
         "exact": true, "slr": {"exact": false}, "misc": [null, [1, 2, []]]}|}
  in
  let automaton = Lr0.build g in
  let lookaheads = Lalr.compute automaton in
  let tables = Tables.build ~lookahead:(Lalr.lookahead lookaheads) automaton in
  match Driver.parse tables (tokenize input) with
  | Ok tree ->
      Format.printf "parsed %d-node tree@." (Tree.size tree);
      Format.printf "%a@." pp_json (to_value tree)
  | Error e -> Format.printf "syntax error: %a@." (Driver.pp_error g) e
  | exception Lex_error (pos, msg) ->
      Format.printf "lexical error at offset %d: %s@." pos msg
