(* Quickstart: grammar text → LALR(1) tables → parse → tree.

   Run with:  dune exec examples/quickstart.exe *)

module Reader = Lalr_grammar.Reader
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Driver = Lalr_runtime.Driver
module Tree = Lalr_runtime.Tree

let grammar_text =
  {|
%token plus star lparen rparen id
%start e
%%
e : e plus t | t ;
t : t star f | f ;
f : lparen e rparen | id ;
|}

let () =
  (* 1. Read the grammar (any yacc-like text; see lib/grammar/reader.mli). *)
  let g = Reader.of_string ~name:"quickstart" grammar_text in
  Format.printf "Loaded %s: %d terminals, %d nonterminals, %d productions@.@."
    g.Lalr_grammar.Grammar.name
    (Lalr_grammar.Grammar.n_terminals g)
    (Lalr_grammar.Grammar.n_nonterminals g)
    (Lalr_grammar.Grammar.n_productions g);

  (* 2. Build the LR(0) automaton and the DeRemer–Pennello look-aheads. *)
  let automaton = Lr0.build g in
  let lookaheads = Lalr.compute automaton in
  let stats = Lalr.stats lookaheads in
  Format.printf
    "LR(0) automaton: %d states, %d nonterminal transitions@."
    (Lr0.n_states automaton) stats.Lalr.n_nt_transitions;
  Format.printf
    "Relations: %d reads edges, %d includes edges, %d lookback edges@."
    stats.Lalr.reads_edges stats.Lalr.includes_edges stats.Lalr.lookback_edges;
  Format.printf "Grammar is LALR(1): %b@.@." (Lalr.is_lalr1 lookaheads);

  (* 3. Build parse tables from the look-ahead sets. *)
  let tables = Tables.build ~lookahead:(Lalr.lookahead lookaheads) automaton in

  (* 4. Parse a sentence. *)
  let input = [ "id"; "plus"; "id"; "star"; "lparen"; "id"; "rparen" ] in
  Format.printf "Parsing: %s@." (String.concat " " input);
  (match Driver.parse_names tables input with
  | Ok tree ->
      Format.printf "Parse tree:@.%a@.@." (Tree.pp g) tree;
      Format.printf "(s-expression: %a)@.@." (Tree.pp_sexp g) tree
  | Error e -> Format.printf "error: %a@." (Driver.pp_error g) e);

  (* 5. Errors come with position and expected-token information. *)
  let bad = [ "id"; "plus"; "star" ] in
  Format.printf "Parsing: %s@." (String.concat " " bad);
  match Driver.parse_names tables bad with
  | Ok _ -> assert false
  | Error e -> Format.printf "%a@." (Driver.pp_error g) e
