examples/error_recovery.mli:
