examples/quickstart.mli:
