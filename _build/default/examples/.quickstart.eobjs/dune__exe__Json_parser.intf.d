examples/json_parser.mli:
