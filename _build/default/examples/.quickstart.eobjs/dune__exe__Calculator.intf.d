examples/calculator.mli:
