examples/grammar_report.mli:
