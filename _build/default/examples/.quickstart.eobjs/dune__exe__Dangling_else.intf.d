examples/dangling_else.mli:
