examples/dangling_else.ml: Format Lalr_automaton Lalr_baselines Lalr_core Lalr_grammar Lalr_report Lalr_suite Lalr_tables Lazy List
