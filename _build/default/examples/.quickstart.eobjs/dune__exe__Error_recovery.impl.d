examples/error_recovery.ml: Format Lalr_automaton Lalr_core Lalr_grammar Lalr_runtime Lalr_tables List Option String
