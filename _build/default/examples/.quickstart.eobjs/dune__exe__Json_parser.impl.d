examples/json_parser.ml: Array Buffer Format Lalr_automaton Lalr_core Lalr_grammar Lalr_runtime Lalr_suite Lalr_tables Lazy List Option Printf String Sys
