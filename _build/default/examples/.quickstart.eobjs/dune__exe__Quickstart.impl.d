examples/quickstart.ml: Format Lalr_automaton Lalr_core Lalr_grammar Lalr_runtime Lalr_tables String
