examples/grammar_report.ml: Format Lalr_automaton Lalr_core Lalr_grammar Lalr_report Lalr_suite Lalr_tables Lazy List Sys
