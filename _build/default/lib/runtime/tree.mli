(** Concrete parse trees produced by the driver. *)

type t =
  | Leaf of Token.t
  | Node of { prod : int; children : t list }
      (** [children] are in left-to-right rhs order; an ε-reduction has
          an empty list. *)

val yield : t -> Token.t list
(** The fringe, left to right. *)

val size : t -> int
(** Number of nodes (leaves and interior). *)

val depth : t -> int
(** Leaves have depth 1. *)

val production_count : t -> int
(** Interior nodes — the length of the right-parse (reversed rightmost
    derivation) the tree encodes. *)

val validate : Grammar.t -> t -> bool
(** Every interior node's children match its production's rhs (leaf
    terminals and node lhs in the right positions). *)

val pp : Grammar.t -> Format.formatter -> t -> unit
(** Indented multi-line rendering. *)

val pp_sexp : Grammar.t -> Format.formatter -> t -> unit
(** Compact [(E (T (F id)))] form. *)
