type t = { terminal : int; lexeme : string }

let make ?(lexeme = "") terminal = { terminal; lexeme }

let of_names g names =
  List.map
    (fun name ->
      match Grammar.find_terminal g name with
      | Some t -> { terminal = t; lexeme = name }
      | None ->
          invalid_arg (Printf.sprintf "Token.of_names: unknown terminal %S" name))
    names

let eof = { terminal = 0; lexeme = "$" }

let pp g ppf t =
  let name = Grammar.terminal_name g t.terminal in
  if t.lexeme = "" || t.lexeme = name then Format.pp_print_string ppf name
  else Format.fprintf ppf "%s(%s)" name t.lexeme
