type t = Leaf of Token.t | Node of { prod : int; children : t list }

let rec yield = function
  | Leaf tok -> [ tok ]
  | Node { children; _ } -> List.concat_map yield children

let rec size = function
  | Leaf _ -> 1
  | Node { children; _ } ->
      List.fold_left (fun acc c -> acc + size c) 1 children

let rec depth = function
  | Leaf _ -> 1
  | Node { children; _ } ->
      1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let rec production_count = function
  | Leaf _ -> 0
  | Node { children; _ } ->
      List.fold_left (fun acc c -> acc + production_count c) 1 children

let rec validate g = function
  | Leaf _ -> true
  | Node { prod; children } ->
      let p = Grammar.production g prod in
      List.length children = Array.length p.rhs
      && List.for_all2
           (fun expected child ->
             match (expected, child) with
             | Symbol.T t, Leaf tok -> tok.Token.terminal = t
             | Symbol.N n, Node { prod = cp; _ } ->
                 (Grammar.production g cp).lhs = n
             | Symbol.T _, Node _ | Symbol.N _, Leaf _ -> false)
           (Array.to_list p.rhs) children
      && List.for_all (validate g) children

let rec pp g ppf = function
  | Leaf tok -> Format.fprintf ppf "%a" (Token.pp g) tok
  | Node { prod; children } ->
      let p = Grammar.production g prod in
      Format.fprintf ppf "@[<v 2>%s" (Grammar.nonterminal_name g p.lhs);
      if children = [] then Format.fprintf ppf " (ε)"
      else
        List.iter (fun c -> Format.fprintf ppf "@,%a" (pp g) c) children;
      Format.fprintf ppf "@]"

let rec pp_sexp g ppf = function
  | Leaf tok -> Token.pp g ppf tok
  | Node { prod; children } ->
      let p = Grammar.production g prod in
      Format.fprintf ppf "(%s" (Grammar.nonterminal_name g p.lhs);
      List.iter (fun c -> Format.fprintf ppf " %a" (pp_sexp g) c) children;
      Format.fprintf ppf ")"
