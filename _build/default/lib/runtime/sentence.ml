type t = {
  grammar : Grammar.t;
  min_height : int array;  (* nonterminal -> min derivation height *)
  prod_height : int array;  (* production -> 1 + max child min-height *)
}

let infinity = max_int / 2

let prepare g =
  let n_nt = Grammar.n_nonterminals g in
  let n_prods = Grammar.n_productions g in
  let min_height = Array.make n_nt infinity in
  let prod_height = Array.make n_prods infinity in
  let height_of_rhs (rhs : Symbol.t array) =
    Array.fold_left
      (fun acc s ->
        match s with
        | Symbol.T _ -> max acc 1
        | Symbol.N n -> max acc (min_height.(n) + 1))
      1 rhs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (p : Grammar.production) ->
        let h = height_of_rhs p.rhs in
        if h < prod_height.(p.id) then begin
          prod_height.(p.id) <- h;
          changed := true
        end;
        if h < min_height.(p.lhs) then begin
          min_height.(p.lhs) <- h;
          changed := true
        end)
      g.productions
  done;
  for n = 0 to n_nt - 1 do
    if min_height.(n) >= infinity then
      invalid_arg
        (Printf.sprintf "Sentence.prepare: nonterminal %s is unproductive"
           (Grammar.nonterminal_name g n))
  done;
  { grammar = g; min_height; prod_height }

let min_height t n = t.min_height.(n)

let pick_production t rng ~depth_left nt =
  let g = t.grammar in
  let candidates = Grammar.productions_of g nt in
  if depth_left > 0 then
    candidates.(Random.State.int rng (Array.length candidates))
  else begin
    (* Out of budget: restrict to height-minimising productions. *)
    let best = t.min_height.(nt) in
    let short =
      Array.to_list candidates
      |> List.filter (fun pid -> t.prod_height.(pid) = best)
    in
    List.nth short (Random.State.int rng (List.length short))
  end

let generate_tree ?(max_depth = 20) t rng =
  let g = t.grammar in
  let rec expand depth_left nt =
    let pid = pick_production t rng ~depth_left nt in
    let p = Grammar.production g pid in
    let children =
      Array.to_list p.rhs
      |> List.map (function
           | Symbol.T term ->
               Tree.Leaf (Token.make ~lexeme:(Grammar.terminal_name g term) term)
           | Symbol.N n -> expand (depth_left - 1) n)
    in
    Tree.Node { prod = pid; children }
  in
  expand max_depth g.start

let generate ?max_depth t rng = Tree.yield (generate_tree ?max_depth t rng)
