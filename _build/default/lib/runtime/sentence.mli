(** Random sentence generation — derivations sampled from a grammar.

    Drives the round-trip property tests (every generated sentence must
    parse back to a tree with the same yield) and provides parser input
    for throughput benches. Termination on recursive grammars is ensured
    by precomputing, per nonterminal, the minimum derivation-tree height
    and switching to height-minimising productions once a depth budget
    is exhausted. *)

type t

val prepare : Grammar.t -> t
(** Precomputes the min-height tables. The grammar must be reduced
    (every nonterminal productive) — raises [Invalid_argument]
    otherwise. *)

val generate :
  ?max_depth:int -> t -> Random.State.t -> Token.t list
(** One random sentence from the user start symbol (no trailing eof
    token). [max_depth] (default 20) bounds free recursion; beyond it
    generation finishes along minimum-height productions, so sentences
    are finite but unbounded in principle. *)

val generate_tree :
  ?max_depth:int -> t -> Random.State.t -> Tree.t
(** The derivation tree whose yield {!generate} would return — useful
    to compare parser output against an independently produced tree. *)

val min_height : t -> int -> int
(** The precomputed minimum derivation height of a nonterminal (a
    nonterminal with a production of only terminals has height 1). *)
