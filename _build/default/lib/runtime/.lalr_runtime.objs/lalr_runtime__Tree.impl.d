lib/runtime/tree.ml: Array Format Grammar List Symbol Token
