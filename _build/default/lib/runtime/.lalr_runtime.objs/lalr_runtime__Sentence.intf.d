lib/runtime/sentence.mli: Grammar Random Token Tree
