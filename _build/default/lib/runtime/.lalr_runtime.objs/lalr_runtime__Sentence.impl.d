lib/runtime/sentence.ml: Array Grammar List Printf Random Symbol Token Tree
