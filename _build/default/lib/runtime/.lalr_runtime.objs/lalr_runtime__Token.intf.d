lib/runtime/token.mli: Format Grammar
