lib/runtime/token.ml: Format Grammar List Printf
