lib/runtime/driver.mli: Format Grammar Lalr_tables Token Tree
