lib/runtime/tree.mli: Format Grammar Token
