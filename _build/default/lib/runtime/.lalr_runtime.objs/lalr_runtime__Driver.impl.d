lib/runtime/driver.ml: Array Format Grammar Lalr_automaton Lalr_tables List Result Token Tree
