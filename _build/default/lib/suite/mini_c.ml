(* A C subset modelled on the classic ANSI C yacc grammar: the full
   15-level expression precedence chain, declarations without the
   typedef-name ambiguity (type specifiers are keywords), and the
   statement language. The dangling else is deliberately left
   unfactored, so the grammar has exactly one shift/reduce conflict
   under exact LALR(1) sets — the shape every era-authentic C grammar
   had. *)

let source =
  {|
%token identifier constant string_literal sizeof_kw
%token arrow inc_op dec_op shl_op shr_op le_op ge_op eq_op ne_op
%token and_op or_op mul_assign div_assign mod_assign add_assign sub_assign
%token shl_assign shr_assign and_assign xor_assign or_assign
%token semicolon lbrace rbrace comma colon assign lparen rparen
%token lbracket rbracket dot amp bang tilde minus plus star slash percent
%token lt gt caret pipe question
%token void_kw char_kw short_kw int_kw long_kw float_kw double_kw
%token signed_kw unsigned_kw
%token struct_kw union_kw enum_kw
%token case_kw default_kw if_kw else_kw switch_kw while_kw do_kw for_kw
%token goto_kw continue_kw break_kw return_kw
%start translation_unit
%%

primary_expression
  : identifier
  | constant
  | string_literal
  | lparen expression rparen ;

postfix_expression
  : primary_expression
  | postfix_expression lbracket expression rbracket
  | postfix_expression lparen rparen
  | postfix_expression lparen argument_expression_list rparen
  | postfix_expression dot identifier
  | postfix_expression arrow identifier
  | postfix_expression inc_op
  | postfix_expression dec_op ;

argument_expression_list
  : assignment_expression
  | argument_expression_list comma assignment_expression ;

unary_expression
  : postfix_expression
  | inc_op unary_expression
  | dec_op unary_expression
  | unary_operator cast_expression
  | sizeof_kw unary_expression
  | sizeof_kw lparen type_name rparen ;

unary_operator : amp | star | plus | minus | tilde | bang ;

cast_expression
  : unary_expression
  | lparen type_name rparen cast_expression ;

multiplicative_expression
  : cast_expression
  | multiplicative_expression star cast_expression
  | multiplicative_expression slash cast_expression
  | multiplicative_expression percent cast_expression ;

additive_expression
  : multiplicative_expression
  | additive_expression plus multiplicative_expression
  | additive_expression minus multiplicative_expression ;

shift_expression
  : additive_expression
  | shift_expression shl_op additive_expression
  | shift_expression shr_op additive_expression ;

relational_expression
  : shift_expression
  | relational_expression lt shift_expression
  | relational_expression gt shift_expression
  | relational_expression le_op shift_expression
  | relational_expression ge_op shift_expression ;

equality_expression
  : relational_expression
  | equality_expression eq_op relational_expression
  | equality_expression ne_op relational_expression ;

and_expression
  : equality_expression
  | and_expression amp equality_expression ;

exclusive_or_expression
  : and_expression
  | exclusive_or_expression caret and_expression ;

inclusive_or_expression
  : exclusive_or_expression
  | inclusive_or_expression pipe exclusive_or_expression ;

logical_and_expression
  : inclusive_or_expression
  | logical_and_expression and_op inclusive_or_expression ;

logical_or_expression
  : logical_and_expression
  | logical_or_expression or_op logical_and_expression ;

conditional_expression
  : logical_or_expression
  | logical_or_expression question expression colon conditional_expression ;

assignment_expression
  : conditional_expression
  | unary_expression assignment_operator assignment_expression ;

assignment_operator
  : assign | mul_assign | div_assign | mod_assign | add_assign
  | sub_assign | shl_assign | shr_assign | and_assign | xor_assign
  | or_assign ;

expression
  : assignment_expression
  | expression comma assignment_expression ;

constant_expression : conditional_expression ;

declaration
  : declaration_specifiers semicolon
  | declaration_specifiers init_declarator_list semicolon ;

declaration_specifiers
  : type_specifier
  | type_specifier declaration_specifiers ;

init_declarator_list
  : init_declarator
  | init_declarator_list comma init_declarator ;

init_declarator
  : declarator
  | declarator assign initializer_ ;

type_specifier
  : void_kw | char_kw | short_kw | int_kw | long_kw
  | float_kw | double_kw | signed_kw | unsigned_kw
  | struct_or_union_specifier
  | enum_specifier ;

struct_or_union_specifier
  : struct_or_union identifier lbrace struct_declaration_list rbrace
  | struct_or_union lbrace struct_declaration_list rbrace
  | struct_or_union identifier ;

struct_or_union : struct_kw | union_kw ;

struct_declaration_list
  : struct_declaration
  | struct_declaration_list struct_declaration ;

struct_declaration
  : specifier_qualifier_list struct_declarator_list semicolon ;

specifier_qualifier_list
  : type_specifier
  | type_specifier specifier_qualifier_list ;

struct_declarator_list
  : struct_declarator
  | struct_declarator_list comma struct_declarator ;

struct_declarator
  : declarator
  | colon constant_expression
  | declarator colon constant_expression ;

enum_specifier
  : enum_kw lbrace enumerator_list rbrace
  | enum_kw identifier lbrace enumerator_list rbrace
  | enum_kw identifier ;

enumerator_list
  : enumerator
  | enumerator_list comma enumerator ;

enumerator
  : identifier
  | identifier assign constant_expression ;

declarator
  : pointer direct_declarator
  | direct_declarator ;

direct_declarator
  : identifier
  | lparen declarator rparen
  | direct_declarator lbracket constant_expression rbracket
  | direct_declarator lbracket rbracket
  | direct_declarator lparen parameter_list rparen
  | direct_declarator lparen rparen ;

pointer
  : star
  | star pointer ;

parameter_list
  : parameter_declaration
  | parameter_list comma parameter_declaration ;

parameter_declaration
  : declaration_specifiers declarator
  | declaration_specifiers abstract_declarator
  | declaration_specifiers ;

type_name
  : specifier_qualifier_list
  | specifier_qualifier_list abstract_declarator ;

abstract_declarator
  : pointer
  | direct_abstract_declarator
  | pointer direct_abstract_declarator ;

direct_abstract_declarator
  : lparen abstract_declarator rparen
  | lbracket rbracket
  | lbracket constant_expression rbracket
  | direct_abstract_declarator lbracket rbracket
  | direct_abstract_declarator lbracket constant_expression rbracket
  | lparen rparen
  | lparen parameter_list rparen
  | direct_abstract_declarator lparen rparen
  | direct_abstract_declarator lparen parameter_list rparen ;

initializer_
  : assignment_expression
  | lbrace initializer_list rbrace
  | lbrace initializer_list comma rbrace ;

initializer_list
  : initializer_
  | initializer_list comma initializer_ ;

statement
  : labeled_statement
  | compound_statement
  | expression_statement
  | selection_statement
  | iteration_statement
  | jump_statement ;

labeled_statement
  : identifier colon statement
  | case_kw constant_expression colon statement
  | default_kw colon statement ;

compound_statement
  : lbrace rbrace
  | lbrace statement_list rbrace
  | lbrace declaration_list rbrace
  | lbrace declaration_list statement_list rbrace ;

declaration_list
  : declaration
  | declaration_list declaration ;

statement_list
  : statement
  | statement_list statement ;

expression_statement
  : semicolon
  | expression semicolon ;

selection_statement
  : if_kw lparen expression rparen statement
  | if_kw lparen expression rparen statement else_kw statement
  | switch_kw lparen expression rparen statement ;

iteration_statement
  : while_kw lparen expression rparen statement
  | do_kw statement while_kw lparen expression rparen semicolon
  | for_kw lparen expression_statement expression_statement rparen statement
  | for_kw lparen expression_statement expression_statement expression rparen statement ;

jump_statement
  : goto_kw identifier semicolon
  | continue_kw semicolon
  | break_kw semicolon
  | return_kw semicolon
  | return_kw expression semicolon ;

translation_unit
  : external_declaration
  | translation_unit external_declaration ;

external_declaration
  : function_definition
  | declaration ;

function_definition
  : declaration_specifiers declarator compound_statement ;
|}

let grammar = lazy (Reader.of_string ~name:"mini-c" source)
