(* An Ada-83 subset. The paper's evaluation featured a preliminary Ada
   grammar — at the time the largest practical stress test for LALR
   generators. This subset keeps the constructs that make Ada grammars
   big: package/subprogram structure, declarations, the full statement
   language (if/case/loop with iteration schemes/block/exit/return),
   and Ada's stratified expression grammar (logical / relational /
   simple expression / term / factor / primary) with attributes,
   aggregates and qualified names. *)

let source =
  {|
%token identifier numeric_literal string_literal character_literal
%token package_kw body_kw is_kw end_kw procedure_kw function_kw return_kw
%token in_mode_kw out_kw
%token type_kw subtype_kw constant_kw array_kw of_kw record_kw range_kw
%token access_kw new_kw others_kw null_kw
%token begin_kw declare_kw exception_kw when_kw
%token if_kw then_kw elsif_kw else_kw case_kw loop_kw while_kw for_kw
%token exit_kw goto_kw raise_kw
%token and_kw or_kw xor_kw not_kw mod_kw rem_kw abs_kw in_kw
%token semicolon colon comma dot tick lparen rparen arrow assign dotdot
%token eq neq lt le gt ge plus minus amp star slash starstar bar ltlt gtgt
%start compilation
%%

compilation : compilation_unit | compilation compilation_unit ;

compilation_unit : package_declaration
                 | package_body
                 | subprogram_declaration
                 | subprogram_body ;

package_declaration
  : package_kw identifier is_kw declarative_part end_kw semicolon
  | package_kw identifier is_kw declarative_part end_kw identifier semicolon ;

package_body
  : package_kw body_kw identifier is_kw declarative_part begin_kw
      sequence_of_statements end_kw semicolon
  | package_kw body_kw identifier is_kw declarative_part end_kw semicolon ;

subprogram_declaration : subprogram_specification semicolon ;

subprogram_specification
  : procedure_kw identifier
  | procedure_kw identifier lparen parameter_list rparen
  | function_kw designator return_kw name
  | function_kw designator lparen parameter_list rparen return_kw name ;

designator : identifier | string_literal ;

parameter_list : parameter_specification
               | parameter_list semicolon parameter_specification ;

parameter_specification
  : identifier_list colon mode name
  | identifier_list colon mode name assign expression ;

mode : %empty | in_mode_kw | in_mode_kw out_kw | out_kw ;

identifier_list : identifier | identifier_list comma identifier ;

subprogram_body
  : subprogram_specification is_kw declarative_part begin_kw
      sequence_of_statements end_kw semicolon
  | subprogram_specification is_kw declarative_part begin_kw
      sequence_of_statements exception_kw exception_handler_list end_kw semicolon ;

declarative_part : %empty | declarative_part declarative_item ;

declarative_item : object_declaration
                 | type_declaration
                 | subtype_declaration
                 | subprogram_declaration
                 | subprogram_body
                 | package_declaration ;

object_declaration
  : identifier_list colon subtype_indication semicolon
  | identifier_list colon constant_kw subtype_indication semicolon
  | identifier_list colon subtype_indication assign expression semicolon
  | identifier_list colon constant_kw subtype_indication assign expression semicolon ;

type_declaration : type_kw identifier is_kw type_definition semicolon ;

subtype_declaration : subtype_kw identifier is_kw subtype_indication semicolon ;

/* Constrained subtypes carry only range constraints here: the
   index-constraint form (string(1..5)) is syntactically identical to a
   call and is resolved semantically in real Ada — out of scope for a
   pure grammar study. */
subtype_indication : name | name range_constraint ;

range_constraint : range_kw range_spec ;

range_spec : simple_expression dotdot simple_expression | name tick identifier ;

index_constraint : lparen discrete_range_list rparen ;

discrete_range_list : discrete_range | discrete_range_list comma discrete_range ;

discrete_range : subtype_indication | simple_expression dotdot simple_expression ;

type_definition : enumeration_type_definition
                | array_type_definition
                | record_type_definition
                | access_type_definition
                | range_constraint
                | new_kw subtype_indication ;

enumeration_type_definition : lparen enumeration_literal_list rparen ;

enumeration_literal_list : enumeration_literal
                         | enumeration_literal_list comma enumeration_literal ;

enumeration_literal : identifier | character_literal ;

array_type_definition
  : array_kw index_constraint of_kw subtype_indication
  | array_kw lparen index_subtype_list rparen of_kw subtype_indication ;

index_subtype_list : index_subtype_definition
                   | index_subtype_list comma index_subtype_definition ;

index_subtype_definition : name range_kw ltlt gtgt ;

record_type_definition : record_kw component_list end_kw record_kw ;

component_list : component_declaration
               | component_list component_declaration
               | null_kw semicolon ;

component_declaration
  : identifier_list colon subtype_indication semicolon
  | identifier_list colon subtype_indication assign expression semicolon ;

access_type_definition : access_kw subtype_indication ;

sequence_of_statements : statement | sequence_of_statements statement ;

statement : simple_statement | compound_statement ;

simple_statement : null_kw semicolon
                 | assignment_statement
                 | procedure_call_statement
                 | exit_statement
                 | return_statement
                 | goto_statement
                 | raise_statement ;

compound_statement : if_statement
                   | case_statement
                   | loop_statement
                   | block_statement ;

assignment_statement : name assign expression semicolon ;

procedure_call_statement : name semicolon ;

exit_statement : exit_kw semicolon
              | exit_kw identifier semicolon
              | exit_kw when_kw condition semicolon
              | exit_kw identifier when_kw condition semicolon ;

return_statement : return_kw semicolon | return_kw expression semicolon ;

goto_statement : goto_kw identifier semicolon ;

raise_statement : raise_kw semicolon | raise_kw name semicolon ;

if_statement
  : if_kw condition then_kw sequence_of_statements elsif_part else_part
      end_kw if_kw semicolon ;

elsif_part : %empty
           | elsif_part elsif_kw condition then_kw sequence_of_statements ;

else_part : %empty | else_kw sequence_of_statements ;

condition : expression ;

case_statement : case_kw expression is_kw case_alternative_list end_kw
                   case_kw semicolon ;

case_alternative_list : case_alternative
                      | case_alternative_list case_alternative ;

case_alternative : when_kw choice_list arrow sequence_of_statements ;

choice_list : choice | choice_list bar choice ;

choice : simple_expression
       | simple_expression dotdot simple_expression
       | others_kw ;

loop_statement
  : iteration_scheme loop_kw sequence_of_statements end_kw loop_kw semicolon ;

iteration_scheme : %empty
                 | while_kw condition
                 | for_kw identifier in_kw discrete_range ;

block_statement
  : declare_kw declarative_part begin_kw sequence_of_statements end_kw semicolon
  | begin_kw sequence_of_statements end_kw semicolon ;

exception_handler_list : exception_handler
                       | exception_handler_list exception_handler ;

exception_handler : when_kw exception_choice_list arrow sequence_of_statements ;

exception_choice_list : exception_choice
                      | exception_choice_list bar exception_choice ;

exception_choice : name | others_kw ;

/* Names: selected components, indexing/calls, attributes. */
name : identifier
     | name dot identifier
     | name dot string_literal
     | name lparen expression_list rparen
     | name tick identifier ;

expression_list : expression | expression_list comma expression ;

/* Ada's two-level logical expressions: operators must not be mixed
   without parentheses, hence the stratified productions. */
expression : relation
           | expression and_kw relation
           | expression or_kw relation
           | expression xor_kw relation ;

/* Membership tests take an explicit range; "x in subtype_name" needs
   name-vs-expression disambiguation that is semantic in real Ada. */
relation : simple_expression
         | simple_expression relational_operator simple_expression
         | simple_expression in_kw membership_range
         | simple_expression not_kw in_kw membership_range ;

membership_range : simple_expression dotdot simple_expression ;

relational_operator : eq | neq | lt | le | gt | ge ;

simple_expression : term
                  | plus term
                  | minus term
                  | simple_expression adding_operator term ;

adding_operator : plus | minus | amp ;

term : factor | term multiplying_operator factor ;

multiplying_operator : star | slash | mod_kw | rem_kw ;

factor : primary
       | primary starstar primary
       | abs_kw primary
       | not_kw primary ;

primary : numeric_literal
        | string_literal
        | character_literal
        | null_kw
        | name
        | lparen expression rparen
        | aggregate
        | new_kw name ;

/* Aggregates: positional with at least two components (a single
   positional component would be a parenthesized expression), or fully
   named with at least one. */
aggregate : lparen expression comma expression_list rparen
          | lparen named_association_list rparen ;

named_association_list : named_association
                       | named_association_list comma named_association ;

named_association : choice_list arrow expression ;
|}

let grammar = lazy (Reader.of_string ~name:"ada-subset" source)
