(* RFC 8259 JSON. Small but real: the grammar is LALR(1) (in fact
   SLR(1)), and its parse trees make a good quickstart example. *)

let source =
  {|
/* JSON (RFC 8259). Tokens as a lexer would deliver them. */
%token lbrace rbrace lbracket rbracket colon comma
%token string number true false null
%start json
%%
json : value ;

value : object
      | array
      | string
      | number
      | true
      | false
      | null ;

object : lbrace rbrace
       | lbrace members rbrace ;

members : member
        | members comma member ;

member : string colon value ;

array : lbracket rbracket
      | lbracket elements rbracket ;

elements : value
         | elements comma value ;
|}

let grammar = lazy (Reader.of_string ~name:"json" source)
