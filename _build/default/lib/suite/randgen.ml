type config = {
  n_terminals : int;
  n_nonterminals : int;
  max_rhs : int;
  productions_per_nt : int;
  epsilon_weight : float;
}

let default =
  {
    n_terminals = 4;
    n_nonterminals = 5;
    max_rhs = 4;
    productions_per_nt = 2;
    epsilon_weight = 0.15;
  }

let generate cfg rng =
  if cfg.n_terminals < 1 || cfg.n_nonterminals < 1 then
    invalid_arg "Randgen.generate: need at least one terminal and nonterminal";
  let t i = Printf.sprintf "t%d" i in
  let n i = Printf.sprintf "n%d" i in
  let terminals = List.init cfg.n_terminals t in
  let random_terminal () = t (Random.State.int rng cfg.n_terminals) in
  let random_nonterminal () = n (Random.State.int rng cfg.n_nonterminals) in
  let random_symbol () =
    if Random.State.bool rng then random_terminal () else random_nonterminal ()
  in
  let random_rhs () =
    if Random.State.float rng 1.0 < cfg.epsilon_weight then []
    else
      let len = 1 + Random.State.int rng (max 1 cfg.max_rhs) in
      List.init len (fun _ -> random_symbol ())
  in
  (* Rules are kept in per-nonterminal buckets so the final grammar is
     grouped by lhs — the shape the Reader printer emits, keeping the
     print/parse round-trip exact. *)
  let buckets = Array.make cfg.n_nonterminals [] in
  for i = 0 to cfg.n_nonterminals - 1 do
    let count = 1 + Random.State.int rng (2 * cfg.productions_per_nt) in
    for _ = 1 to count do
      buckets.(i) <- (n i, random_rhs (), None) :: buckets.(i)
    done;
    (* Plant a terminal-only base production for roughly half the
       nonterminals so productivity is likely; full productivity is
       repaired below. *)
    if Random.State.bool rng then
      buckets.(i) <- (n i, [ random_terminal () ], None) :: buckets.(i)
  done;
  (* Repair pass: every nonterminal that is not yet productive in the
     partial grammar gets a terminal base production, so the start
     symbol always derives a sentence. *)
  let all_rules () = List.concat_map List.rev (Array.to_list buckets) in
  let productive = Hashtbl.create 16 in
  let rec stabilise () =
    let changed = ref false in
    List.iter
      (fun (lhs, rhs, _) ->
        if not (Hashtbl.mem productive lhs) then
          let ok =
            List.for_all
              (fun s ->
                (String.length s > 0 && s.[0] = 't')
                || Hashtbl.mem productive s)
              rhs
          in
          if ok then begin
            Hashtbl.replace productive lhs ();
            changed := true
          end)
      (all_rules ());
    if !changed then stabilise ()
  in
  stabilise ();
  for i = 0 to cfg.n_nonterminals - 1 do
    if not (Hashtbl.mem productive (n i)) then
      buckets.(i) <- (n i, [ random_terminal () ], None) :: buckets.(i)
  done;
  let g =
    Grammar.make
      ~name:(Printf.sprintf "random-%d" (Random.State.bits rng))
      ~terminals ~start:(n 0) ~rules:(all_rules ()) ()
  in
  (* Drop unreachable nonterminals. *)
  Transform.reduce g

let arbitrary ?(config = default) () =
  (* QCheck(1) generators are plain [Random.State.t -> 'a] functions. *)
  QCheck.make (generate config) ~print:Reader.to_string
