(* A Pascal subset in the spirit of the grammars the paper's evaluation
   used (Jensen–Wirth Pascal was a standard subject). Covers the program
   skeleton, declarations (const/type/var/procedure/function), the full
   statement language, and the expression hierarchy with relational,
   additive and multiplicative levels. LALR(1), and — like real Pascal —
   not SLR-problematic, but large enough that the LR(0) machine has a
   few hundred states. *)

let source =
  {|
%token program ident semicolon dot lparen rparen comma colon
%token const_kw type_kw var_kw procedure function_kw
%token array_kw of_kw record_kw end_kw packed file_kw set_kw
%token begin_kw if_kw then_kw else_kw while_kw do_kw repeat_kw until_kw
%token for_kw to_kw downto_kw case_kw with_kw goto_kw label_kw
%token assign eq neq lt gt le ge in_kw
%token plus minus or_kw star slash div_kw mod_kw and_kw not_kw
%token number string_lit nil char_lit
%token lbracket rbracket dotdot caret
%start prog
%%

prog : program_heading block dot ;

program_heading : program ident semicolon
                | program ident lparen identifier_list rparen semicolon ;

identifier_list : ident
                | identifier_list comma ident ;

block : label_part const_part type_part var_part subprogram_part compound_statement ;

label_part : label_kw label_list semicolon | %empty ;
label_list : number | label_list comma number ;

const_part : const_kw const_list | %empty ;
const_list : const_definition semicolon
           | const_list const_definition semicolon ;
const_definition : ident eq constant ;

constant : number
         | plus number
         | minus number
         | string_lit
         | char_lit
         | ident
         | plus ident
         | minus ident ;

type_part : type_kw type_def_list | %empty ;
type_def_list : type_definition semicolon
              | type_def_list type_definition semicolon ;
type_definition : ident eq type_denoter ;

type_denoter : simple_type
             | structured_type
             | caret ident ;

simple_type : ident
            | lparen identifier_list rparen
            | constant dotdot constant ;

structured_type : array_kw lbracket index_list rbracket of_kw type_denoter
                | packed array_kw lbracket index_list rbracket of_kw type_denoter
                | record_kw field_list end_kw
                | set_kw of_kw simple_type
                | file_kw of_kw type_denoter ;

index_list : simple_type
           | index_list comma simple_type ;

field_list : record_section
           | field_list semicolon record_section
           | %empty ;
record_section : identifier_list colon type_denoter ;

var_part : var_kw var_decl_list | %empty ;
var_decl_list : var_declaration semicolon
              | var_decl_list var_declaration semicolon ;
var_declaration : identifier_list colon type_denoter ;

subprogram_part : subprogram_part subprogram_declaration semicolon
                | %empty ;

subprogram_declaration : procedure_heading semicolon block
                       | function_heading semicolon block ;

procedure_heading : procedure ident
                  | procedure ident lparen formal_parameter_list rparen ;

function_heading : function_kw ident colon ident
                 | function_kw ident lparen formal_parameter_list rparen colon ident ;

formal_parameter_list : formal_parameter_section
                      | formal_parameter_list semicolon formal_parameter_section ;

formal_parameter_section : identifier_list colon ident
                         | var_kw identifier_list colon ident
                         | procedure_heading
                         | function_heading ;

compound_statement : begin_kw statement_sequence end_kw ;

statement_sequence : statement
                   | statement_sequence semicolon statement ;

statement : open_statement | closed_statement ;

/* Every statement form with a trailing statement (if, while, for,
   with) is split into open/closed variants — the standard dangling-else
   factoring, applied consistently so the grammar stays LALR(1) with no
   conflicts at all. */
closed_statement : simple_statement
                 | closed_if
                 | closed_while
                 | closed_for
                 | closed_with ;

open_statement : open_if | open_while | open_for | open_with ;

closed_if : if_kw expression then_kw closed_statement else_kw closed_statement ;

open_if : if_kw expression then_kw statement
        | if_kw expression then_kw closed_statement else_kw open_statement ;

closed_while : while_kw expression do_kw closed_statement ;
open_while : while_kw expression do_kw open_statement ;

closed_for : for_header closed_statement ;
open_for : for_header open_statement ;

closed_with : with_kw variable_access do_kw closed_statement ;
open_with : with_kw variable_access do_kw open_statement ;

simple_statement : assignment_statement
                 | procedure_statement
                 | compound_statement
                 | repeat_statement
                 | case_statement
                 | goto_statement
                 | %empty ;

assignment_statement : variable_access assign expression ;

variable_access : ident
                | variable_access lbracket expression_list rbracket
                | variable_access dot ident
                | variable_access caret ;

procedure_statement : ident
                    | ident lparen expression_list rparen ;

expression_list : expression
                | expression_list comma expression ;

repeat_statement : repeat_kw statement_sequence until_kw expression ;

for_header : for_kw ident assign expression to_kw expression do_kw
           | for_kw ident assign expression downto_kw expression do_kw ;

case_statement : case_kw expression of_kw case_element_list end_kw ;

case_element_list : case_element
                  | case_element_list semicolon case_element ;

case_element : case_label_list colon statement ;

case_label_list : constant
                | case_label_list comma constant ;

goto_statement : goto_kw number ;

expression : simple_expression
           | simple_expression relational_operator simple_expression ;

relational_operator : eq | neq | lt | gt | le | ge | in_kw ;

simple_expression : term
                  | sign term
                  | simple_expression adding_operator term ;

sign : plus | minus ;

adding_operator : plus | minus | or_kw ;

term : factor
     | term multiplying_operator factor ;

multiplying_operator : star | slash | div_kw | mod_kw | and_kw ;

factor : variable_access
       | number
       | string_lit
       | char_lit
       | nil
       | ident lparen expression_list rparen
       | lparen expression rparen
       | not_kw factor
       | lbracket element_list rbracket
       | lbracket rbracket ;

element_list : element
             | element_list comma element ;

element : expression
        | expression dotdot expression ;
|}

let grammar = lazy (Reader.of_string ~name:"mini-pascal" source)
