(** Random reduced context-free grammars.

    Drives the cross-validation property tests (DP = merge = propagation
    on arbitrary grammars, not just the curated suite) and the scaling
    figures. Generation guarantees a {e reduced} grammar — every
    nonterminal productive and reachable — by construction and repair:
    a base production of only terminals is planted for a random subset
    of nonterminals, productivity is then established bottom-up and
    unreachable nonterminals are dropped via {!Transform.reduce}. *)

type config = {
  n_terminals : int;  (** ≥ 1 *)
  n_nonterminals : int;  (** ≥ 1 *)
  max_rhs : int;  (** maximum production length (0 allows ε) *)
  productions_per_nt : int;  (** average; actual count is 1..2×this *)
  epsilon_weight : float;  (** probability a production is ε, in [0,1] *)
}

val default : config
(** 4 terminals, 5 nonterminals, rhs ≤ 4, 2 productions each,
    ε-weight 0.15 — small enough that canonical LR(1) stays cheap in
    qcheck loops. *)

val generate : config -> Random.State.t -> Grammar.t
(** A random reduced grammar. All symbol names are [t0, t1, ...] and
    [n0, n1, ...]; the start symbol is [n0]. *)

val arbitrary : ?config:config -> unit -> Grammar.t QCheck.arbitrary
(** QCheck wrapper with a grammar printer (no shrinker — grammars do
    not shrink meaningfully). *)
