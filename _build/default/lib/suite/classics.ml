(* The small classic grammars: textbook examples whose LR classifications
   are known exactly. They pin down the corner cases of the look-ahead
   computation; the large language grammars live in their own modules. *)

(* Dragon-book 4.1: unambiguous expression grammar (SLR(1), not LR(0)). *)
let expr =
  lazy
    (Reader.of_string ~name:"expr"
       {|
%token plus star lparen rparen id
%start e
%%
e : e plus t | t ;
t : t star f | f ;
f : lparen e rparen | id ;
|})

(* The same language from an ambiguous grammar, disambiguated by
   precedence declarations (yacc's favourite demo). *)
let expr_prec =
  lazy
    (Reader.of_string ~name:"expr-prec"
       {|
%token plus minus star slash uminus lparen rparen id
%left plus minus
%left star slash
%right uminus
%start e
%%
e : e plus e
  | e minus e
  | e star e
  | e slash e
  | minus e %prec uminus
  | lparen e rparen
  | id ;
|})

(* Dragon-book 4.28: the ε-heavy LL(1) expression grammar. *)
let expr_ll =
  lazy
    (Reader.of_string ~name:"expr-ll"
       {|
%token plus star lparen rparen id
%start e
%%
e  : t e2 ;
e2 : plus t e2 | %empty ;
t  : f t2 ;
t2 : star f t2 | %empty ;
f  : lparen e rparen | id ;
|})

(* Dragon-book 4.34: LALR(1) but not SLR(1) — the assignment grammar. *)
let assign =
  lazy
    (Reader.of_string ~name:"assign"
       {|
%token eq star id
%start s
%%
s : l eq r | r ;
l : star r | id ;
r : l ;
|})

(* LR(1) but not LALR(1): merging the two e-states creates a
   reduce/reduce conflict (standard example). *)
let lr1_not_lalr =
  lazy
    (Reader.of_string ~name:"lr1-not-lalr"
       {|
%token a b c d e
%start s
%%
s : a x c | a y d | b y c | b x d ;
x : e ;
y : e ;
|})

(* Not LR(k) for any k: the reads relation has a cycle (a nullable A can
   be reduced unboundedly often before any input decides anything). *)
let not_lr_k =
  lazy
    (Reader.of_string ~name:"not-lr-k"
       {|
%token b
%start s
%%
s : a s | b ;
a : %empty ;
|})

(* The dangling-else grammar: one shift/reduce conflict under every
   method; shifting (yacc's default) gives the conventional innermost-if
   binding. *)
let dangling_else =
  lazy
    (Reader.of_string ~name:"dangling-else"
       {|
%token if then else expr other
%start stmt
%%
stmt : if expr then stmt
     | if expr then stmt else stmt
     | other ;
|})

(* An ambiguous grammar (palindromic core): reduce/reduce conflicts that
   no amount of look-ahead fixes. *)
let ambiguous =
  lazy
    (Reader.of_string ~name:"ambiguous"
       {|
%token a
%start s
%%
s : s s | a | %empty ;
|})

(* An LR(0) grammar, for the bottom of the hierarchy. *)
let lr0 =
  lazy
    (Reader.of_string ~name:"lr0"
       {|
%token a b semi
%start s
%%
s : x semi ;
x : a x | b ;
|})

(* A minimal witness for the paper's §7: NQLALR attaches Follow sets to
   goto targets rather than transitions, so the two contexts of the
   merged (·, a)-target pollute each other and the two-reduction state
   reached on "y w z" sees a spurious reduce/reduce on u. Exact LALR(1)
   look-aheads keep {v} and {u} apart. Derivation: contexts 1/2 give
   Follow(p1,a)={u}, Follow(p2,a)={v}; goto(p1,a)=goto(p2,a) forces
   NQLALR to use {u,v} for both; the d-reduction's look-ahead is {u}. *)
let nqlalr_gap =
  lazy
    (Reader.of_string ~name:"nqlalr-gap"
       {|
%token x y u v w z q m
%start s
%%
s : x xx u | y xx v | x c m | y d u ;
xx : a yy ;
yy : %empty ;
a : w z ;
c : w z q ;
d : w z ;
|})

(* LALR(2) but not LALR(1): both bb and cc reduce from "w" with
   1-token look-ahead {t}; the 2-token look-aheads "t a" / "t b" are
   disjoint. Exercises the §8 LALR(k) extension. *)
let lalr2 =
  lazy
    (Reader.of_string ~name:"lalr2"
       {|
%token w t a b
%start s
%%
s : bb t a | cc t b ;
bb : w ;
cc : w ;
|})

(* Right recursion with nullable tails: a stress case for the includes
   relation (long includes chains). *)
let right_nullable =
  lazy
    (Reader.of_string ~name:"right-nullable"
       {|
%token a b c d
%start s
%%
s : a x y z s2 ;
s2 : s | %empty ;
x : b | %empty ;
y : c | %empty ;
z : d | %empty ;
|})
