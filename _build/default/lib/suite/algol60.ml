(* An ALGOL 60 subset adapted from the Revised Report — ALGOL was a
   standard subject in the paper's evaluation era. Blocks with
   declarations (simple variables, arrays, switches, procedures), the
   statement language (assignment with multiple left parts, goto,
   conditional, for with all three for-list element forms, procedure
   calls), and the expression hierarchy (arithmetic, relational,
   Boolean with the full implication/equivalence ladder). The Report's
   conditional-statement ambiguity is resolved by the usual
   open/closed-statement factoring. *)

let source =
  {|
%token begin_kw end_kw semicolon comma colon assign
%token own_kw real_kw integer_kw boolean_kw array_kw switch_kw procedure_kw
%token value_kw label_kw string_kw
%token goto_kw if_kw then_kw else_kw for_kw do_kw step_kw until_kw while_kw
%token identifier number string_lit true_kw false_kw
%token plus minus times slash div_kw power
%token lt le eq ge gt ne
%token equiv implies or_kw and_kw not_kw
%token lparen rparen lbracket rbracket
%start program
%%

program : block | compound_statement ;

block : begin_kw declaration_list statement_list end_kw ;

compound_statement : begin_kw statement_list end_kw ;

declaration_list : declaration semicolon
                 | declaration_list declaration semicolon ;

declaration : type_declaration
            | array_declaration
            | switch_declaration
            | procedure_declaration ;

/* "own" is expanded rather than made a nullable prefix: an ε-prefix
   before type_kw would force a reduce decision the LR(0) items cannot
   localise (type_kw also starts procedure_declaration). */
type_declaration : type_kw identifier_list
                 | own_kw type_kw identifier_list ;

type_kw : real_kw | integer_kw | boolean_kw ;

identifier_list : identifier | identifier_list comma identifier ;

array_declaration : array_kw array_list
                  | type_kw array_kw array_list
                  | own_kw type_kw array_kw array_list
                  | own_kw array_kw array_list ;

array_list : array_segment | array_list comma array_segment ;

array_segment : identifier lbracket bound_pair_list rbracket ;

bound_pair_list : bound_pair | bound_pair_list comma bound_pair ;

bound_pair : arithmetic_expression colon arithmetic_expression ;

switch_declaration : switch_kw identifier assign designational_expression_list ;

designational_expression_list
  : designational_expression
  | designational_expression_list comma designational_expression ;

procedure_declaration
  : procedure_kw procedure_heading statement
  | type_kw procedure_kw procedure_heading statement ;

procedure_heading : identifier formal_part semicolon value_part specification_part ;

formal_part : %empty | lparen identifier_list rparen ;

value_part : %empty | value_kw identifier_list semicolon ;

specification_part : %empty | specification_part specification semicolon ;

specification : specifier identifier_list ;

specifier : string_kw
          | type_kw
          | array_kw
          | type_kw array_kw
          | label_kw
          | switch_kw
          | procedure_kw
          | type_kw procedure_kw ;

statement_list : statement | statement_list semicolon statement ;

statement : open_statement | closed_statement ;

closed_statement : basic_statement
                 | for_clause closed_statement ;

open_statement : if_clause statement
               | if_clause closed_statement else_kw open_statement
               | for_clause open_statement ;

basic_statement : unlabelled_basic_statement
                | identifier colon basic_statement ;

unlabelled_basic_statement : assignment_statement
                           | goto_statement
                           | procedure_statement
                           | compound_statement
                           | block
                           | if_clause closed_statement else_kw closed_statement
                           | %empty ;

assignment_statement : left_part_list expression ;

left_part_list : left_part | left_part_list left_part ;

left_part : variable assign ;

variable : identifier
         | identifier lbracket subscript_list rbracket ;

subscript_list : arithmetic_expression
               | subscript_list comma arithmetic_expression ;

goto_statement : goto_kw designational_expression ;

designational_expression : identifier
                         | identifier lbracket arithmetic_expression rbracket ;

procedure_statement : identifier lparen actual_parameter_list rparen ;

actual_parameter_list : actual_parameter
                      | actual_parameter_list comma actual_parameter ;

actual_parameter : expression | string_lit ;

if_clause : if_kw boolean_expression then_kw ;

for_clause : for_kw variable assign for_list do_kw ;

for_list : for_list_element | for_list comma for_list_element ;

for_list_element : arithmetic_expression
                 | arithmetic_expression step_kw arithmetic_expression
                     until_kw arithmetic_expression
                 | arithmetic_expression while_kw boolean_expression ;

expression : arithmetic_expression | boolean_expression_only ;

/* The Report unifies arithmetic and Boolean expressions semantically;
   to stay LR(1) without a type system, Boolean structure is reached
   only through an operator or constant that marks it as Boolean. */
boolean_expression : arithmetic_expression | boolean_expression_only ;

boolean_expression_only : implication_tail
                        | boolean_expression equiv implication ;

implication_tail : bool_term_tail
                 | implication implies bool_term ;

implication : bool_term | implication implies bool_term ;

bool_term_tail : bool_factor_tail
               | bool_term or_kw bool_factor ;

bool_term : bool_factor | bool_term or_kw bool_factor ;

bool_factor_tail : bool_secondary_tail
                 | bool_factor and_kw bool_secondary ;

bool_factor : bool_secondary | bool_factor and_kw bool_secondary ;

bool_secondary_tail : bool_primary_only | not_kw bool_secondary ;

bool_secondary : bool_primary | not_kw bool_secondary ;

bool_primary : true_kw | false_kw | relation | arithmetic_expression ;

bool_primary_only : true_kw | false_kw | relation ;

relation : arithmetic_expression relational_operator arithmetic_expression ;

relational_operator : lt | le | eq | ge | gt | ne ;

arithmetic_expression : simple_arithmetic
                      | if_clause simple_arithmetic else_kw arithmetic_expression ;

simple_arithmetic : term
                  | plus term
                  | minus term
                  | simple_arithmetic plus term
                  | simple_arithmetic minus term ;

term : factor
     | term times factor
     | term slash factor
     | term div_kw factor ;

factor : primary | factor power primary ;

primary : number
        | variable
        | identifier lparen actual_parameter_list rparen
        | lparen arithmetic_expression rparen ;
|}

let grammar = lazy (Reader.of_string ~name:"algol60" source)
