(* A Modula-2 subset (Wirth, 1983 report lineage). Wirth designed the
   language explicitly for single-pass recursive-descent parsing, so —
   unlike Pascal and ALGOL — the natural grammar has fully bracketed
   statements (every IF carries END) and no dangling else. The suite
   uses it as the "designed-to-be-easy" data point: it should land
   higher in the hierarchy than the retrofitted languages. *)

let source =
  {|
%token module_kw end_kw semicolon dot ident begin_kw
%token import_kw from_kw export_kw qualified_kw
%token const_kw type_kw var_kw procedure_kw
%token array_kw of_kw record_kw set_kw pointer_kw to_kw
%token if_kw then_kw elsif_kw else_kw case_kw bar while_kw do_kw
%token repeat_kw until_kw for_kw by_kw loop_kw exit_kw return_kw with_kw
%token colon comma assign eq neq lt le gt ge in_kw
%token plus minus or_kw star slash div_kw mod_kw and_kw not_kw
%token lparen rparen lbracket rbracket lbrace rbrace
%token number string_lit char_lit nil dotdot caret
%start compilation_unit
%%

compilation_unit : module_kw ident semicolon import_list block ident dot ;

import_list : %empty
            | import_list import ;

import : import_kw ident_list semicolon
       | from_kw ident import_kw ident_list semicolon ;

ident_list : ident | ident_list comma ident ;

block : declaration_list begin_kw statement_sequence end_kw
      | declaration_list end_kw ;

declaration_list : %empty
                 | declaration_list declaration ;

declaration : const_kw const_decl_list
            | type_kw type_decl_list
            | var_kw var_decl_list
            | procedure_decl semicolon ;

const_decl_list : %empty
                | const_decl_list ident eq const_expression semicolon ;

const_expression : expression ;

type_decl_list : %empty
               | type_decl_list ident eq type_spec semicolon ;

var_decl_list : %empty
              | var_decl_list ident_list colon type_spec semicolon ;

type_spec : qualident
          | enumeration
          | subrange
          | array_type
          | record_type
          | set_type
          | pointer_type ;

qualident : ident
          | qualident dot ident ;

enumeration : lparen ident_list rparen ;

subrange : lbracket const_expression dotdot const_expression rbracket ;

array_type : array_kw simple_type_list of_kw type_spec ;

simple_type_list : simple_type
                 | simple_type_list comma simple_type ;

simple_type : qualident | enumeration | subrange ;

record_type : record_kw field_list_sequence end_kw ;

field_list_sequence : field_list
                    | field_list_sequence semicolon field_list ;

field_list : %empty
           | ident_list colon type_spec ;

set_type : set_kw of_kw simple_type ;

pointer_type : pointer_kw to_kw type_spec ;

procedure_decl : procedure_heading semicolon block ident ;

procedure_heading : procedure_kw ident
                  | procedure_kw ident formal_parameters ;

formal_parameters : lparen rparen
                  | lparen fp_section_list rparen
                  | lparen rparen colon qualident
                  | lparen fp_section_list rparen colon qualident ;

fp_section_list : fp_section
                | fp_section_list semicolon fp_section ;

fp_section : ident_list colon formal_type
           | var_kw ident_list colon formal_type ;

formal_type : qualident
            | array_kw of_kw qualident ;

statement_sequence : statement
                   | statement_sequence semicolon statement ;

/* Every structured statement is END-bracketed: no open/closed split
   needed, by design. */
statement : %empty
          | assignment
          | procedure_call
          | if_statement
          | case_statement
          | while_statement
          | repeat_statement
          | loop_statement
          | for_statement
          | with_statement
          | exit_kw
          | return_kw
          | return_kw expression ;

assignment : designator assign expression ;

procedure_call : designator lparen rparen
               | designator lparen exp_list rparen ;

/* Designators subsume qualified names outright: "m.x" as module access
   vs record access is a semantic distinction, and splitting it over
   qualident + a field selector makes the grammar ambiguous on dot. */
designator : ident
           | designator dot ident
           | designator lbracket exp_list rbracket
           | designator caret ;

exp_list : expression | exp_list comma expression ;

if_statement : if_kw expression then_kw statement_sequence elsif_part
                 else_part end_kw ;

elsif_part : %empty
           | elsif_part elsif_kw expression then_kw statement_sequence ;

else_part : %empty | else_kw statement_sequence ;

case_statement : case_kw expression of_kw case_list else_part end_kw ;

case_list : case_arm | case_list bar case_arm ;

case_arm : %empty
         | case_label_list colon statement_sequence ;

case_label_list : case_labels | case_label_list comma case_labels ;

case_labels : const_expression
            | const_expression dotdot const_expression ;

while_statement : while_kw expression do_kw statement_sequence end_kw ;

repeat_statement : repeat_kw statement_sequence until_kw expression ;

loop_statement : loop_kw statement_sequence end_kw ;

for_statement : for_kw ident assign expression to_kw expression by_part
                  do_kw statement_sequence end_kw ;

by_part : %empty | by_kw const_expression ;

with_statement : with_kw designator do_kw statement_sequence end_kw ;

expression : simple_expression
           | simple_expression relation simple_expression ;

relation : eq | neq | lt | le | gt | ge | in_kw ;

simple_expression : term
                  | plus term
                  | minus term
                  | simple_expression add_operator term ;

add_operator : plus | minus | or_kw ;

term : factor | term mul_operator factor ;

mul_operator : star | slash | div_kw | mod_kw | and_kw ;

factor : number
       | string_lit
       | char_lit
       | nil
       | set_literal
       | designator
       | designator lparen rparen
       | designator lparen exp_list rparen
       | lparen expression rparen
       | not_kw factor ;

set_literal : lbrace rbrace
            | lbrace element_list rbrace ;

element_list : element | element_list comma element ;

element : expression
        | expression dotdot expression ;
|}

let grammar = lazy (Reader.of_string ~name:"modula2" source)
