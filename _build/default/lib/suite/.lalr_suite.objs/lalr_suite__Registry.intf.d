lib/suite/registry.mli: Grammar Lazy
