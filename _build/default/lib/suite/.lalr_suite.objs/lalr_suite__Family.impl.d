lib/suite/family.ml: Grammar List Printf
