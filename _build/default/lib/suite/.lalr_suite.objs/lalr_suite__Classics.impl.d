lib/suite/classics.ml: Reader
