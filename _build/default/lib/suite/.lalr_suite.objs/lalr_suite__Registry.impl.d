lib/suite/registry.ml: Ada_subset Algol60 Classics Grammar Json Lazy List Mini_c Mini_pascal Modula2
