lib/suite/mini_pascal.ml: Reader
