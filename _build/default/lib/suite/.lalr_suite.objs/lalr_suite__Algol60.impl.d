lib/suite/algol60.ml: Reader
