lib/suite/mini_c.ml: Reader
