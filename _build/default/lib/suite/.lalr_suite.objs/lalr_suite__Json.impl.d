lib/suite/json.ml: Reader
