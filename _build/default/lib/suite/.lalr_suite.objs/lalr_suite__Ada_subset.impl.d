lib/suite/ada_subset.ml: Reader
