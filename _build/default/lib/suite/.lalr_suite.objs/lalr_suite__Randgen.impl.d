lib/suite/randgen.ml: Array Grammar Hashtbl List Printf QCheck Random Reader String Transform
