lib/suite/modula2.ml: Reader
