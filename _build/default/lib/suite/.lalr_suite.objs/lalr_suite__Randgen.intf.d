lib/suite/randgen.mli: Grammar QCheck Random
