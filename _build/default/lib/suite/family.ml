(* Parameterised grammar families for the scaling experiments (F1/F2):
   grammar size is the x-axis, so each family exposes a generator
   indexed by an integer. *)

(* Expression grammar with [n] binary-operator precedence levels:
   level i has its own nonterminal and operator, chained like the
   C expression grammar. LR(0) state count grows linearly in n. *)
let expr_levels n =
  if n < 1 then invalid_arg "Family.expr_levels: need n >= 1";
  let op i = Printf.sprintf "op%d" i in
  let nt i = Printf.sprintf "e%d" i in
  let rules =
    List.concat
      (List.init n (fun i ->
           let lower = if i = n - 1 then "atom" else nt (i + 1) in
           [ (nt i, [ nt i; op i; lower ], None); (nt i, [ lower ], None) ]))
    @ [ ("atom", [ "lparen"; nt 0; "rparen" ], None); ("atom", [ "id" ], None) ]
  in
  Grammar.make
    ~name:(Printf.sprintf "expr-levels-%d" n)
    ~terminals:([ "lparen"; "rparen"; "id" ] @ List.init n op)
    ~start:(nt 0) ~rules ()

(* A family with heavy nullable suffixes: statement-like productions
   [s_i → k_i x1 .. x_i] with every x nullable — includes-edge count
   grows quadratically, stressing the Follow computation. *)
let nullable_chain n =
  if n < 1 then invalid_arg "Family.nullable_chain: need n >= 1";
  let key i = Printf.sprintf "k%d" i in
  let x i = Printf.sprintf "x%d" i in
  let rules =
    List.init n (fun i ->
        ("s", key (i + 1) :: List.init (i + 1) (fun j -> x (j + 1)), None))
    @ List.concat
        (List.init n (fun i ->
             [
               (x (i + 1), [ Printf.sprintf "t%d" (i + 1) ], None);
               (x (i + 1), [], None);
             ]))
  in
  Grammar.make
    ~name:(Printf.sprintf "nullable-chain-%d" n)
    ~terminals:
      (List.init n (fun i -> key (i + 1))
      @ List.init n (fun i -> Printf.sprintf "t%d" (i + 1)))
    ~start:"s" ~rules ()

(* Deep left- and right-recursive lists over distinct keywords: long
   reads/lookback walks, linear state growth, trivially LALR(1). *)
let statement_lists n =
  if n < 1 then invalid_arg "Family.statement_lists: need n >= 1";
  let kw i = Printf.sprintf "w%d" i in
  let item i = Printf.sprintf "item%d" i in
  let list i = Printf.sprintf "list%d" i in
  let rules =
    ("s", List.init n (fun i -> list (i + 1)), None)
    :: List.concat
         (List.init n (fun i ->
              let i = i + 1 in
              [
                (list i, [ item i ], None);
                (list i, [ list i; item i ], None);
                (item i, [ kw i; "lparen"; "id"; "rparen" ], None);
              ]))
  in
  Grammar.make
    ~name:(Printf.sprintf "statement-lists-%d" n)
    ~terminals:([ "lparen"; "rparen"; "id" ] @ List.init n (fun i -> kw (i + 1)))
    ~start:"s" ~rules ()
