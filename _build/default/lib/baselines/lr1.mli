(** Canonical LR(1) construction (Knuth 1965) — the exact but expensive
    baseline.

    The canonical collection of LR(1) item sets is built directly; LALR
    look-ahead sets are then recovered by {!merged_lookaheads}, which
    merges states sharing an LR(0) core and unions the look-aheads of
    their final items. The paper proves its sets equal these; the
    cross-check is in the test suite, and the cost difference is bench
    T4. *)

type t

val build : Grammar.t -> t

val grammar : t -> Grammar.t
val n_states : t -> int

val state_core : t -> int -> int array
(** The LR(0) item set underlying the state's kernel (sorted, in the
    numbering of the {!Lalr_automaton.Item.table} for this grammar). *)

val items : t -> Lalr_automaton.Item.table
(** The LR(0) item numbering used by {!state_core}. *)

val goto : t -> int -> Symbol.t -> int option

val reduce_actions : t -> int -> (int * Lalr_sets.Bitset.t) list
(** [(production, look-ahead set)] for each reduction of the state,
    production ids ascending; production 0 (accept) excluded. *)

val is_lr1 : t -> bool
(** The grammar is LR(1): no state has a shift/reduce or reduce/reduce
    conflict. *)

val merged_lookaheads : t -> Lalr_automaton.Lr0.t -> (int * int, Lalr_sets.Bitset.t) Hashtbl.t
(** Merge by LR(0) core onto the given LR(0) automaton (which must be
    for the same grammar): maps [(lr0_state, production)] to the LALR
    look-ahead set. Every reduction pair of the LR(0) automaton is a
    key. Raises [Invalid_argument] if a core does not correspond to an
    LR(0) state (impossible for the same grammar). *)
