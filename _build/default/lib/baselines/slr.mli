(** SLR(1) look-aheads (DeRemer 1971), the coarsest baseline.

    SLR approximates the look-ahead of every reduction [(q, A → ω)] by
    the context-free [FOLLOW(A)] — ignoring the state [q] entirely. The
    paper's exact sets satisfy [LA(q, A→ω) ⊆ FOLLOW(A)], so SLR accepts
    strictly fewer grammars but costs only the FOLLOW fixpoint. *)

type t

val compute : Lalr_automaton.Lr0.t -> t

val lookahead : t -> state:int -> prod:int -> Lalr_sets.Bitset.t
(** [FOLLOW] of the production's left-hand side. The [state] argument
    is accepted (and ignored) to mirror {!Lalr_core.Lalr.lookahead}. *)

val is_slr1 : t -> bool
(** No SLR(1) conflicts, judged exactly as {!Lalr_core.Lalr.is_lalr1}
    but with FOLLOW-based look-aheads. *)

val automaton : t -> Lalr_automaton.Lr0.t
