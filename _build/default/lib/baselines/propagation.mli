(** LALR(1) look-aheads by spontaneous generation and propagation — the
    yacc/bison-lineage algorithm (Aho–Sethi–Ullman Alg. 4.63) the paper
    positions itself against.

    For every kernel item [K] of every state, the LR(1) closure of
    [{[K, #]}] (with [#] a symbol not in the grammar) is computed once.
    Each closure item whose dot can advance on [X] sends its look-ahead
    to the corresponding kernel item of [goto(state, X)]: a concrete
    terminal is {e spontaneous}; the marker [#] records a {e propagation}
    edge from [K]. Look-aheads then iterate over the propagation edges to
    a fixpoint (round-based, as in yacc — deliberately not the paper's
    Digraph, since this is the baseline being compared).

    Reductions by ε-productions have non-kernel final items; their sets
    are recovered by an in-state LALR closure of the kernel look-aheads
    ({!lookahead} does this transparently). *)

type t

type stats = {
  n_kernel_items : int;
  spontaneous : int;  (** spontaneously generated look-aheads *)
  propagate_edges : int;
  passes : int;  (** fixpoint rounds until stable *)
}

val compute : Lalr_automaton.Lr0.t -> t

val automaton : t -> Lalr_automaton.Lr0.t

val lookahead : t -> state:int -> prod:int -> Lalr_sets.Bitset.t
(** Look-ahead set of a reduction; the pair must be a reduction of the
    automaton ([Not_found] otherwise). *)

val kernel_lookahead : t -> state:int -> item:int -> Lalr_sets.Bitset.t
(** Look-ahead attached to a kernel LR(0) item (as numbered by the
    automaton's item table). [Not_found] if not a kernel item of the
    state. *)

val stats : t -> stats
