module Bitset = Lalr_sets.Bitset
module Lr0 = Lalr_automaton.Lr0

type t = { automaton : Lr0.t; analysis : Analysis.t }

let compute a = { automaton = a; analysis = Analysis.compute (Lr0.grammar a) }
let automaton t = t.automaton

let lookahead t ~state:_ ~prod =
  let g = Lr0.grammar t.automaton in
  Analysis.follow t.analysis (Grammar.production g prod).lhs

let is_slr1 t =
  let a = t.automaton in
  let g = Lr0.grammar a in
  let n_term = Grammar.n_terminals g in
  let ok = ref true in
  for q = 0 to Lr0.n_states a - 1 do
    let reds = Lr0.reductions a q in
    if reds <> [] then begin
      let seen = Bitset.create n_term in
      List.iter
        (fun (sym, _) ->
          match sym with
          | Symbol.T tt -> Bitset.add seen tt
          | Symbol.N _ -> ())
        (Lr0.transitions a q);
      List.iter
        (fun pid ->
          let set = lookahead t ~state:q ~prod:pid in
          if not (Bitset.disjoint set seen) then ok := false;
          ignore (Bitset.union_into ~into:seen set))
        reds
    end
  done;
  !ok
