lib/baselines/propagation.ml: Analysis Array Grammar Hashtbl Lalr_automaton Lalr_sets List Queue Symbol
