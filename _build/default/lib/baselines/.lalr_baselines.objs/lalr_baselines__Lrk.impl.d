lib/baselines/lrk.ml: Array Firstk Grammar Hashtbl Int Lalr_automaton Lalr_sets List Option Queue Symbol
