lib/baselines/slr.ml: Analysis Grammar Lalr_automaton Lalr_sets List Symbol
