lib/baselines/nqlalr.ml: Analysis Array Grammar Hashtbl Int Lalr_automaton Lalr_sets List Symbol
