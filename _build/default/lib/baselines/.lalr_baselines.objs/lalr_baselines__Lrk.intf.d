lib/baselines/lrk.mli: Grammar Hashtbl Lalr_automaton Lalr_sets
