lib/baselines/slr.mli: Lalr_automaton Lalr_sets
