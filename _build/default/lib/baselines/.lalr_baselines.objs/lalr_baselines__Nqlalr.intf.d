lib/baselines/nqlalr.mli: Lalr_automaton Lalr_sets
