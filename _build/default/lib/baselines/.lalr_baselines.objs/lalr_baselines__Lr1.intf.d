lib/baselines/lr1.mli: Grammar Hashtbl Lalr_automaton Lalr_sets Symbol
