lib/baselines/lr1.ml: Analysis Array Grammar Hashtbl Int Lalr_automaton Lalr_sets List Queue Symbol
