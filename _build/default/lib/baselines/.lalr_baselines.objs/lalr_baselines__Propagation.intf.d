lib/baselines/propagation.mli: Lalr_automaton Lalr_sets
