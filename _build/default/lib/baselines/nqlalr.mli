(** NQLALR — "Not Quite LALR" (paper §7), implemented as a comparison
    subject.

    Several pre-1979 generators attached follow information to {e states}
    instead of {e transitions}: since [DR] and [reads] of a nonterminal
    transition [(p, A)] depend only on the target state [r = goto(p,A)],
    it is tempting to keep one set [FollowNQ(r)] per state and merge the
    [includes] edges of all transitions sharing a target. The merge loses
    the left context [p], so

    {v LA(q, A→ω)  ⊆  LA_NQ(q, A→ω) v}

    with the inclusion strict on grammars where distinct contexts of the
    same [goto] target need different look-aheads — NQLALR then reports
    conflicts on perfectly LALR(1) grammars. The containment and a
    witness grammar are in the test suite; experiment T5 counts the
    spurious conflicts over the benchmark suite. *)

type t

val compute : Lalr_automaton.Lr0.t -> t

val automaton : t -> Lalr_automaton.Lr0.t

val lookahead : t -> state:int -> prod:int -> Lalr_sets.Bitset.t
(** The NQLALR look-ahead approximation for a reduction of the
    automaton. [Not_found] if the pair is not a reduction. *)

val is_nqlalr1 : t -> bool
(** Conflict-freedom under the approximate sets. Implies nothing about
    the grammar when [false] — that is the point. *)
