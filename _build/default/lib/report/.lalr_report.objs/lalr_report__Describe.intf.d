lib/report/describe.mli: Format Grammar Lalr_automaton Lalr_core Lalr_tables
