lib/report/counterexample.mli: Format Grammar Lalr_automaton Lalr_tables Symbol
