lib/report/codegen.mli: Format Lalr_tables
