lib/report/counterexample.ml: Array Format Grammar Lalr_automaton Lalr_tables List Printf Queue String Symbol
