lib/report/describe.ml: Array Counterexample Format Grammar Lalr_automaton Lalr_core Lalr_sets Lalr_tables List
