lib/report/codegen.ml: Array Buffer Format Grammar Lalr_automaton Lalr_tables List Printf String
