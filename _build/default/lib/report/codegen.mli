(** Standalone-parser code generation — the "generator" in parser
    generator.

    Emits a self-contained OCaml module (no dependency on this library)
    with the grammar's tables baked in as flat arrays plus a minimal
    shift-reduce engine:

    {v
    module P = <generated>
    P.parse [P.id; P.plus; P.id]
      : (P.tree, P.error) result
    v}

    The generated module exposes one [int] constant per terminal (its
    token id, named after the terminal where it is a valid OCaml
    identifier, [tok_<id>] otherwise), a [tree] type mirroring
    {!Lalr_runtime.Tree.t} with production ids, [names] tables, and a
    [parse : int list -> (tree, error) result].

    Actions are encoded in the classic packed scheme: positive =
    shift(state+1), negative = reduce(-prod-1), 0 = error, max_int =
    accept; the emitted engine agrees move-for-move with
    {!Lalr_runtime.Driver} on the same tables (test property — the
    generated source is compiled and executed by the test suite when a
    working [ocamlfind] is present). *)

val emit : Format.formatter -> Lalr_tables.Tables.t -> unit
(** Writes the complete [.ml] source. The table's unresolved conflicts
    (already settled shift-over-reduce / earlier-rule as usual) are
    reproduced as comments at the top. *)

val emit_to_string : Lalr_tables.Tables.t -> string
