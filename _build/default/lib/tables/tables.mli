(** ACTION/GOTO parse tables, conflict detection and resolution.

    A table is built from an LR(0) automaton plus a look-ahead oracle —
    any of the methods in this repository ({!Lalr_core.Lalr} exact sets,
    {!Lalr_baselines.Slr} FOLLOW sets, ...) — so the same machinery
    quantifies how many conflicts each approximation produces (experiment
    T5).

    Conflict resolution follows yacc:
    - shift/reduce with precedence on both sides: higher level wins;
      equal level resolves by associativity (left ⇒ reduce, right ⇒
      shift, nonassoc ⇒ error);
    - shift/reduce without precedence: shift, reported;
    - reduce/reduce: lowest production id, reported. *)

type action =
  | Shift of int
  | Reduce of int
  | Accept
  | Error

type conflict_kind =
  | Shift_reduce of { shift_to : int; reduce : int }
  | Reduce_reduce of { kept : int; dropped : int }

type resolution =
  | By_precedence  (** resolved silently, as yacc does *)
  | By_default  (** unresolved by declarations; counted as a conflict *)

type conflict = {
  state : int;
  terminal : int;
  kind : conflict_kind;
  chosen : action;
  resolution : resolution;
}

type t

val build :
  lookahead:(state:int -> prod:int -> Lalr_sets.Bitset.t) ->
  Lalr_automaton.Lr0.t ->
  t
(** Builds ACTION and GOTO. [lookahead] is queried once per reduction of
    the automaton. *)

val automaton : t -> Lalr_automaton.Lr0.t
val action : t -> state:int -> terminal:int -> action
val goto : t -> state:int -> nonterminal:int -> int option

val conflicts : t -> conflict list
(** All conflicts encountered, including precedence-resolved ones. *)

val unresolved_conflicts : t -> conflict list
(** Conflicts not settled by precedence declarations — what yacc prints
    as "N shift/reduce, M reduce/reduce". *)

val n_shift_reduce : t -> int
val n_reduce_reduce : t -> int
(** Unresolved counts, by kind. *)

val default_reductions : t -> int array
(** [-1], or the production a state may reduce unconditionally: states
    whose every action is the same [Reduce] (no shifts, no accept).
    Standard yacc table compaction; exercised by bench T3 and the
    runtime's [~compact] mode. *)

val pp_conflict : Grammar.t -> Format.formatter -> conflict -> unit
val pp : Format.formatter -> t -> unit
(** Full ACTION/GOTO listing (wide; intended for small grammars). *)
