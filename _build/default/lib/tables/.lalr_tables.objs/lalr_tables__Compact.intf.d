lib/tables/compact.mli: Format Tables
