lib/tables/classify.mli: Format Grammar
