lib/tables/tables.ml: Array Format Grammar Lalr_automaton Lalr_sets List Printf Symbol
