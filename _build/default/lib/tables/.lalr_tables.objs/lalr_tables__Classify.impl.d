lib/tables/classify.ml: Format Lalr_automaton Lalr_baselines Lalr_core List Tables
