lib/tables/compact.ml: Array Format Fun Grammar Hashtbl Lalr_automaton List Option Tables
