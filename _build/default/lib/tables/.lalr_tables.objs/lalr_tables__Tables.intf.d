lib/tables/tables.mli: Format Grammar Lalr_automaton Lalr_sets
