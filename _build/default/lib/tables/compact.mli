(** Compressed parse tables — yacc-style comb/row-displacement encoding.

    Table size was a first-class metric in the paper's era: the naive
    ACTION matrix is [states × terminals] entries, nearly all [Error].
    This module applies the two standard compressions:

    + {b default reductions}: a state whose every action is the same
      reduction stores one entry (also removes most error entries from
      rows, making them sparser for step 2);
    + {b row displacement}: the remaining sparse rows are overlaid into
      a single value vector, each row at an offset where its non-empty
      entries fall on free slots, with a parallel check vector to
      reject collisions (the classic comb algorithm used by yacc, lex
      and table-driven scanners since).

    Lookup is O(1): [check.(base.(state) + terminal) = state] decides
    between the packed entry and the state's default. The encoding is
    exact — {!action} agrees with {!Tables.action} on every cell, which
    is a qcheck property in the test suite. *)

type t

type mode =
  | Exact
      (** Defaults only for reduce-only states; {!action} agrees with
          {!Tables.action} on every cell. Modest compression. *)
  | Yacc
      (** The compression yacc actually ships: every state with at
          least one reduction uses its most frequent reduction as the
          default, replacing both that reduction's cells and the error
          cells. Error detection is delayed by reduce moves but never
          wrong — no token is ever shifted that the exact table would
          reject, so acceptance and error {e positions} are unchanged
          (behavioural equivalence is a test suite property); only the
          state in which the error is reported may differ. *)

val compress : ?mode:mode -> Tables.t -> t
(** Defaults to [Exact]. Never fails; worst case the displacement
    degenerates to rows laid end to end. *)

val mode : t -> mode

val action : t -> state:int -> terminal:int -> Tables.action
(** In [Exact] mode, same contract as {!Tables.action}. In [Yacc] mode,
    cells that the dense table marks [Error] may return the state's
    default [Reduce] instead. *)

val goto : t -> state:int -> nonterminal:int -> int option

type stats = {
  n_states : int;
  n_terminals : int;
  dense_entries : int;  (** [states × terminals], the naive cost *)
  packed_entries : int;  (** length of the packed value vector *)
  default_states : int;  (** states fully replaced by their default *)
  compression_ratio : float;  (** [dense /. (packed + per-state words)] *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
