module Lr0 = Lalr_automaton.Lr0

type mode = Exact | Yacc

type t = {
  tables : Tables.t;  (* kept for goto and as the source of truth *)
  mode : mode;
  n_terminals : int;
  n_states : int;
  default : int array;  (* production id, or -1 *)
  base : int array;  (* row displacement per state *)
  packed : Tables.action array;  (* value vector *)
  checkv : int array;  (* owner state per packed slot, -1 = free *)
  default_states : int;
}

let mode t = t.mode

(* Yacc-style default choice: the most frequent Reduce of the state
   (ties to the smallest production id), or -1 when the state reduces
   nothing. *)
let yacc_default tables ~n_terminals ~state =
  let counts = Hashtbl.create 4 in
  for terminal = 0 to n_terminals - 1 do
    match Tables.action tables ~state ~terminal with
    | Tables.Reduce p ->
        Hashtbl.replace counts p
          (1 + Option.value (Hashtbl.find_opt counts p) ~default:0)
    | _ -> ()
  done;
  Hashtbl.fold
    (fun p c (best_p, best_c) ->
      if c > best_c || (c = best_c && p < best_p) then (p, c)
      else (best_p, best_c))
    counts (-1, 0)
  |> fst

(* Entries that remain in a row once the default is factored out. In
   Yacc mode, Error cells of a defaulting state are dropped too: a
   lookup miss falls back to the default reduction. *)
let residual_row tables ~mode ~n_terminals ~state ~default =
  let default_action =
    if default >= 0 then Tables.Reduce default else Tables.Error
  in
  let keep a =
    a <> default_action
    && not (mode = Yacc && default >= 0 && a = Tables.Error)
  in
  let cells = ref [] in
  for terminal = n_terminals - 1 downto 0 do
    let a = Tables.action tables ~state ~terminal in
    if keep a then cells := (terminal, a) :: !cells
  done;
  !cells

let compress ?(mode = Exact) tables =
  let a = Tables.automaton tables in
  let g = Lr0.grammar a in
  let n_terminals = Grammar.n_terminals g in
  let n_states = Lr0.n_states a in
  let default =
    match mode with
    | Exact -> Tables.default_reductions tables
    | Yacc ->
        Array.init n_states (fun state ->
            yacc_default tables ~n_terminals ~state)
  in
  let rows =
    Array.init n_states (fun state ->
        residual_row tables ~mode ~n_terminals ~state ~default:default.(state))
  in
  (* First-fit decreasing: placing dense rows first packs better. *)
  let order = Array.init n_states Fun.id in
  Array.sort
    (fun s1 s2 -> compare (List.length rows.(s2)) (List.length rows.(s1)))
    order;
  let capacity = ref (max n_terminals 64) in
  let packed = ref (Array.make !capacity Tables.Error) in
  let checkv = ref (Array.make !capacity (-1)) in
  let ensure need =
    if need > !capacity then begin
      let cap = max need (2 * !capacity) in
      let p = Array.make cap Tables.Error and c = Array.make cap (-1) in
      Array.blit !packed 0 p 0 !capacity;
      Array.blit !checkv 0 c 0 !capacity;
      capacity := cap;
      packed := p;
      checkv := c
    end
  in
  let base = Array.make n_states 0 in
  let high_water = ref 0 in
  Array.iter
    (fun state ->
      match rows.(state) with
      | [] -> base.(state) <- 0
      | cells ->
          let fits offset =
            List.for_all
              (fun (terminal, _) ->
                let slot = offset + terminal in
                slot >= !capacity || !checkv.(slot) = -1)
              cells
          in
          let offset = ref 0 in
          while not (fits !offset) do
            incr offset
          done;
          base.(state) <- !offset;
          List.iter
            (fun (terminal, action) ->
              let slot = !offset + terminal in
              ensure (slot + 1);
              !packed.(slot) <- action;
              !checkv.(slot) <- state;
              if slot + 1 > !high_water then high_water := slot + 1)
            cells)
    order;
  let default_states =
    Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 default
  in
  {
    tables;
    mode;
    n_terminals;
    n_states;
    default;
    base;
    packed = Array.sub !packed 0 !high_water;
    checkv = Array.sub !checkv 0 !high_water;
    default_states;
  }

let action t ~state ~terminal =
  let slot = t.base.(state) + terminal in
  if slot < Array.length t.packed && t.checkv.(slot) = state then
    t.packed.(slot)
  else if t.default.(state) >= 0 then Tables.Reduce t.default.(state)
  else Tables.Error

let goto t ~state ~nonterminal = Tables.goto t.tables ~state ~nonterminal

type stats = {
  n_states : int;
  n_terminals : int;
  dense_entries : int;
  packed_entries : int;
  default_states : int;
  compression_ratio : float;
}

let stats (t : t) =
  let dense = t.n_states * t.n_terminals in
  let packed = Array.length t.packed in
  (* Per-state overhead: base + default, i.e. 2 words each; the packed
     vector costs 2 words per slot (value + check). *)
  let compressed_words = (2 * packed) + (2 * t.n_states) in
  {
    n_states = t.n_states;
    n_terminals = t.n_terminals;
    dense_entries = dense;
    packed_entries = packed;
    default_states = t.default_states;
    compression_ratio = float_of_int dense /. float_of_int compressed_words;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d states x %d terminals = %d dense entries; packed to %d slots (+%d \
     state words), %d default-reduce states, %.1fx smaller"
    s.n_states s.n_terminals s.dense_entries s.packed_entries
    (2 * s.n_states) s.default_states s.compression_ratio
