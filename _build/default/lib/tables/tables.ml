module Bitset = Lalr_sets.Bitset
module Lr0 = Lalr_automaton.Lr0

type action = Shift of int | Reduce of int | Accept | Error

type conflict_kind =
  | Shift_reduce of { shift_to : int; reduce : int }
  | Reduce_reduce of { kept : int; dropped : int }

type resolution = By_precedence | By_default

type conflict = {
  state : int;
  terminal : int;
  kind : conflict_kind;
  chosen : action;
  resolution : resolution;
}

type t = {
  automaton : Lr0.t;
  actions : action array;  (* state * n_terminals + terminal *)
  conflicts : conflict list;
}

let automaton t = t.automaton

let action t ~state ~terminal =
  let n_term = Grammar.n_terminals (Lr0.grammar t.automaton) in
  t.actions.((state * n_term) + terminal)

let goto t ~state ~nonterminal =
  Lr0.goto t.automaton state (Symbol.N nonterminal)

(* Decide a shift/reduce conflict by precedence. Returns the action and
   whether declarations settled it. *)
let resolve_sr g ~shift_to ~terminal ~reduce =
  let tprec = g.Grammar.terminal_prec.(terminal) in
  let pprec = (Grammar.production g reduce).prec in
  match (tprec, pprec) with
  | Some (tl, _), Some (pl, _) when pl > tl -> (Reduce reduce, By_precedence)
  | Some (tl, _), Some (pl, _) when pl < tl -> (Shift shift_to, By_precedence)
  | Some (_, Grammar.Left), Some _ -> (Reduce reduce, By_precedence)
  | Some (_, Grammar.Right), Some _ -> (Shift shift_to, By_precedence)
  | Some (_, Grammar.Nonassoc), Some _ -> (Error, By_precedence)
  | _ -> (Shift shift_to, By_default)

let build ~lookahead (a : Lr0.t) =
  let g = Lr0.grammar a in
  let n_term = Grammar.n_terminals g in
  let n_states = Lr0.n_states a in
  let actions = Array.make (n_states * n_term) Error in
  let conflicts = ref [] in
  (* Shifts. *)
  for s = 0 to n_states - 1 do
    List.iter
      (fun (sym, target) ->
        match sym with
        | Symbol.T tt -> actions.((s * n_term) + tt) <- Shift target
        | Symbol.N _ -> ())
      (Lr0.transitions a s)
  done;
  (* Accept overrides the shift on $ out of the accept state. *)
  let accept = Lr0.accept_state a in
  actions.((accept * n_term) + 0) <- Accept;
  (* Reductions, with conflict handling. *)
  for s = 0 to n_states - 1 do
    List.iter
      (fun pid ->
        let la = lookahead ~state:s ~prod:pid in
        Bitset.iter
          (fun terminal ->
            let cell = (s * n_term) + terminal in
            match actions.(cell) with
            | Error -> actions.(cell) <- Reduce pid
            | Shift shift_to ->
                let chosen, resolution =
                  resolve_sr g ~shift_to ~terminal ~reduce:pid
                in
                actions.(cell) <- chosen;
                conflicts :=
                  {
                    state = s;
                    terminal;
                    kind = Shift_reduce { shift_to; reduce = pid };
                    chosen;
                    resolution;
                  }
                  :: !conflicts
            | Reduce other ->
                (* reductions are visited in ascending pid order *)
                let kept = min other pid and dropped = max other pid in
                actions.(cell) <- Reduce kept;
                conflicts :=
                  {
                    state = s;
                    terminal;
                    kind = Reduce_reduce { kept; dropped };
                    chosen = Reduce kept;
                    resolution = By_default;
                  }
                  :: !conflicts
            | Accept ->
                (* A reduction whose look-ahead contains $ in the accept
                   state (possible when the start symbol is nullable or
                   right-recursive under ambiguity). Keep the accept and
                   report it like an unresolved shift/reduce. *)
                conflicts :=
                  {
                    state = s;
                    terminal;
                    kind = Shift_reduce { shift_to = s; reduce = pid };
                    chosen = Accept;
                    resolution = By_default;
                  }
                  :: !conflicts)
          la)
      (Lr0.reductions a s)
  done;
  { automaton = a; actions; conflicts = List.rev !conflicts }

let conflicts t = t.conflicts

let unresolved_conflicts t =
  List.filter (fun c -> c.resolution = By_default) t.conflicts

let n_shift_reduce t =
  List.length
    (List.filter
       (fun c ->
         c.resolution = By_default
         && match c.kind with Shift_reduce _ -> true | _ -> false)
       t.conflicts)

let n_reduce_reduce t =
  List.length
    (List.filter
       (fun c ->
         c.resolution = By_default
         && match c.kind with Reduce_reduce _ -> true | _ -> false)
       t.conflicts)

let default_reductions t =
  let a = t.automaton in
  let n_term = Grammar.n_terminals (Lr0.grammar a) in
  Array.init (Lr0.n_states a) (fun s ->
      let result = ref (-2) in
      (* -2: unset, -1: disqualified *)
      for tt = 0 to n_term - 1 do
        match t.actions.((s * n_term) + tt) with
        | Error -> ()
        | Reduce p ->
            if !result = -2 then result := p
            else if !result <> p then result := -1
        | Shift _ | Accept -> result := -1
      done;
      if !result >= 0 then !result else -1)

let pp_conflict g ppf c =
  let tname = Grammar.terminal_name g c.terminal in
  (match c.kind with
  | Shift_reduce { shift_to; reduce } ->
      Format.fprintf ppf
        "state %d, on %s: shift/reduce (shift to %d vs reduce %a)" c.state
        tname shift_to
        (Grammar.pp_production g)
        (Grammar.production g reduce)
  | Reduce_reduce { kept; dropped } ->
      Format.fprintf ppf
        "state %d, on %s: reduce/reduce (%a vs %a)" c.state tname
        (Grammar.pp_production g)
        (Grammar.production g kept)
        (Grammar.pp_production g)
        (Grammar.production g dropped));
  Format.fprintf ppf " — %s"
    (match (c.resolution, c.chosen) with
    | By_precedence, Shift _ -> "resolved to shift by precedence"
    | By_precedence, Reduce _ -> "resolved to reduce by precedence"
    | By_precedence, Error -> "resolved to error (nonassoc)"
    | By_precedence, Accept -> assert false
    | By_default, Shift _ -> "defaulted to shift"
    | By_default, Reduce _ -> "defaulted to earlier rule"
    | By_default, Accept -> "kept accept"
    | By_default, Error -> assert false)

let pp ppf t =
  let a = t.automaton in
  let g = Lr0.grammar a in
  let n_term = Grammar.n_terminals g in
  let n_nt = Grammar.n_nonterminals g in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "state |";
  for tt = 0 to n_term - 1 do
    Format.fprintf ppf " %6s" (Grammar.terminal_name g tt)
  done;
  Format.fprintf ppf " |";
  for n = 1 to n_nt - 1 do
    Format.fprintf ppf " %6s" (Grammar.nonterminal_name g n)
  done;
  Format.fprintf ppf "@,";
  for s = 0 to Lr0.n_states a - 1 do
    Format.fprintf ppf "%5d |" s;
    for tt = 0 to n_term - 1 do
      match t.actions.((s * n_term) + tt) with
      | Error -> Format.fprintf ppf " %6s" "."
      | Shift q -> Format.fprintf ppf " %6s" (Printf.sprintf "s%d" q)
      | Reduce p -> Format.fprintf ppf " %6s" (Printf.sprintf "r%d" p)
      | Accept -> Format.fprintf ppf " %6s" "acc"
    done;
    Format.fprintf ppf " |";
    for n = 1 to n_nt - 1 do
      match Lr0.goto a s (Symbol.N n) with
      | Some q -> Format.fprintf ppf " %6d" q
      | None -> Format.fprintf ppf " %6s" "."
    done;
    Format.fprintf ppf "@,"
  done;
  List.iter
    (fun c -> Format.fprintf ppf "%a@," (pp_conflict g) c)
    t.conflicts;
  Format.fprintf ppf "@]"
