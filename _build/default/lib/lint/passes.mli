(** The lint pass registry.

    Each pass inspects one layer — the grammar, the DeRemer–Pennello
    relations, or the LALR(1) parse table — and emits structured
    {!Diagnostic.t}s. Codes are stable:

    - [L001] {b error} — unproductive nonterminal
    - [L002] {b warning} — unreachable nonterminal
    - [L003] {b error} — cyclic nonterminal ([A ⇒+ A]: ambiguous)
    - [L004] {b error} — cycle in [reads]: not LR(k) for any k
      (paper, Thm 6.1)
    - [L005] {b warning} — cycle in [includes] with nonempty [Read]:
      ambiguity likely (paper §6)
    - [L006] {b warning} — declared token never used
    - [L007] {b warning} — precedence declaration never consulted
    - [L008] {b warning} — duplicate production
    - [L101] {b warning} — unresolved shift/reduce conflict, with a
      [lookback → includes* → reads* → DR] provenance trace and a
      sample input prefix
    - [L102] {b warning} — unresolved reduce/reduce conflict, with
      provenance traces for both reductions
    - [L201] {b info} — spurious conflict under the NQLALR
      approximation (paper §7)

    The self-check oracle ([L900]/[L901]) lives in {!Selfcheck}. *)

type pass = {
  name : string;
  codes : string list;
  doc : string;  (** one line, for [--codes] style listings *)
  run : Context.t -> Diagnostic.t list;
}

val all : pass list
(** In execution order: grammar passes first, then relation passes,
    then table passes. *)

val trace_to_json :
  Lalr_core.Lalr.t -> Lalr_core.Lalr.trace -> Diagnostic.json
(** Structured rendering of a provenance trace (shared with
    {!Selfcheck} and the tests): an object with [lookback],
    [includes_path], [reads_path], [dr], each transition as
    [{state, symbol}]. *)
