type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 3 | Warning -> 2 | Info -> 1

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

type json =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_to_buffer buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec json_to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | String s -> escape_to_buffer buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          json_to_buffer buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to_buffer buf k;
          Buffer.add_char buf ':';
          json_to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

type t = {
  code : string;
  severity : severity;
  loc : Grammar.loc option;
  message : string;
  detail : string list;
  data : (string * json) list;
}

let make ~code ~severity ?loc ?(detail = []) ?(data = []) message =
  { code; severity; loc; message; detail; data }

let compare a b =
  let loc_key = function
    | Some (l : Grammar.loc) -> (0, l.file, l.line)
    | None -> (1, "", 0)
  in
  let c = Stdlib.compare (loc_key a.loc) (loc_key b.loc) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c else String.compare a.message b.message

let pp ppf d =
  (match d.loc with
  | Some l -> Format.fprintf ppf "%a: " Grammar.pp_loc l
  | None -> ());
  Format.fprintf ppf "%s: %s [%s]" (severity_name d.severity) d.message d.code;
  List.iter (fun line -> Format.fprintf ppf "@,    %s" line) d.detail

let to_json d =
  let base =
    [
      ("code", String d.code);
      ("severity", String (severity_name d.severity));
      ( "file",
        match d.loc with Some l -> String l.file | None -> Null );
      ("line", match d.loc with Some l -> Int l.line | None -> Null);
      ("message", String d.message);
      ("detail", List (List.map (fun s -> String s) d.detail));
    ]
  in
  Obj (base @ d.data)

let list_to_json_string diags =
  let count sev =
    List.length (List.filter (fun d -> d.severity = sev) diags)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  ";
      json_to_buffer buf (to_json d))
    diags;
  if diags <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf
       "],\"errors\":%d,\"warnings\":%d,\"infos\":%d}" (count Error)
       (count Warning) (count Info));
  Buffer.contents buf
