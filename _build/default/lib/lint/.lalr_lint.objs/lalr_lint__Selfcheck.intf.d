lib/lint/selfcheck.mli: Passes
