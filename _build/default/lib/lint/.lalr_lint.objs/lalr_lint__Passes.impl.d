lib/lint/passes.ml: Analysis Array Context Diagnostic Format Grammar Hashtbl Lalr_automaton Lalr_baselines Lalr_core Lalr_report Lalr_sets Lalr_tables Lazy List Printf String Symbol Transform
