lib/lint/diagnostic.mli: Buffer Format Grammar
