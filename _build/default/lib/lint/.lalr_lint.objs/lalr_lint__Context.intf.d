lib/lint/context.mli: Analysis Grammar Lalr_automaton Lalr_core Lalr_tables Lazy
