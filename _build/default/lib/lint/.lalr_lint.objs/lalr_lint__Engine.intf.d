lib/lint/engine.mli: Diagnostic Format Grammar Passes
