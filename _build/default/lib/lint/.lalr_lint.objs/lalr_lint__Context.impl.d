lib/lint/context.ml: Analysis Grammar Lalr_automaton Lalr_core Lalr_tables Lazy Option Transform
