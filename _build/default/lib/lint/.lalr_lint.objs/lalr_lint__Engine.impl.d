lib/lint/engine.ml: Context Diagnostic Format List Passes Printf Selfcheck String
