lib/lint/diagnostic.ml: Buffer Char Format Grammar List Printf Stdlib String
