lib/lint/passes.mli: Context Diagnostic Lalr_core
