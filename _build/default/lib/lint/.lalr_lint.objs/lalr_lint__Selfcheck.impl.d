lib/lint/selfcheck.ml: Analysis Context Diagnostic Format Grammar Hashtbl Lalr_automaton Lalr_baselines Lalr_core Lalr_sets Lazy List Passes Printf
