(** Structured lint diagnostics.

    Every finding carries a stable code ([L001]...), a severity, an
    optional source location (threaded from {!Grammar.locations}), a
    human message, free-form detail lines for the text rendering, and a
    machine-readable [data] payload for the JSON rendering. The engine
    ({!Engine}) filters and sorts these; the renderings here are shared
    by the CLI and the golden tests. *)

type severity = Error | Warning | Info

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_rank : severity -> int
(** [Error] 3 > [Warning] 2 > [Info] 1, for threshold filtering. *)

val severity_of_string : string -> severity option

(** Minimal JSON values — just enough structure for the diagnostics
    payload, so the library stays dependency-free. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of json list
  | Obj of (string * json) list

val json_to_buffer : Buffer.t -> json -> unit
(** Compact rendering with full string escaping. *)

type t = {
  code : string;  (** stable, [L]-prefixed *)
  severity : severity;
  loc : Grammar.loc option;
  message : string;  (** one line, no trailing newline *)
  detail : string list;
      (** extra rendered lines (provenance traces, counterexamples),
          indented under the message in text output *)
  data : (string * json) list;
      (** machine-readable extras, merged into the JSON object *)
}

val make :
  code:string ->
  severity:severity ->
  ?loc:Grammar.loc ->
  ?detail:string list ->
  ?data:(string * json) list ->
  string ->
  t

val compare : t -> t -> int
(** Sort key for reports: location (file, line), then code, then
    message; diagnostics without a location sort after located ones of
    the same file-less group. *)

val pp : Format.formatter -> t -> unit
(** [file:line: severity: message [code]], detail lines indented. *)

val to_json : t -> json
(** Object with [code], [severity], [file], [line], [message], [detail]
    plus the [data] fields. *)

val list_to_json_string : t list -> string
(** Pretty-enough JSON document: a top-level object with a
    [diagnostics] array and summary counts. Stable field order, one
    diagnostic per line — the golden-test format. *)
