module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables

type t = {
  grammar : Grammar.t;
  analysis : Analysis.t;
  reduced : Grammar.t option Lazy.t;
  automaton : Lr0.t option Lazy.t;
  lalr : Lalr.t option Lazy.t;
  tables : Tables.t option Lazy.t;
}

let of_grammar grammar =
  let analysis = Analysis.compute grammar in
  let reduced =
    lazy
      (if Analysis.is_reduced analysis then Some grammar
       else match Transform.reduce grammar with
         | g -> Some g
         | exception Invalid_argument _ -> None)
  in
  let automaton =
    lazy (Option.map Lr0.build (Lazy.force reduced))
  in
  let lalr = lazy (Option.map Lalr.compute (Lazy.force automaton)) in
  let tables =
    lazy
      (match (Lazy.force automaton, Lazy.force lalr) with
      | Some a, Some t -> Some (Tables.build ~lookahead:(Lalr.lookahead t) a)
      | _ -> None)
  in
  { grammar; analysis; reduced; automaton; lalr; tables }
