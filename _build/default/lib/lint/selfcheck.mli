(** The self-check oracle pass.

    Rather than linting the user's grammar, this pass audits the
    analyzer itself on that grammar, re-deriving the look-ahead sets by
    independent methods and checking the paper's containments:

    - [LA(q, A→ω) ⊆ FOLLOW(A)] for every reduction (the SLR bound,
      paper §3);
    - DeRemer–Pennello sets = yacc-style propagation sets;
    - DeRemer–Pennello sets = canonical-LR(1) merged sets (skipped on
      grammars above {!lr1_limit} productions, where the canonical
      construction is prohibitive).

    A violation is an [L901] {b error} — it means the core computation
    is wrong, not the grammar. A clean run emits a single [L900]
    {b info} recording what was verified, so CI logs show the oracle
    actually ran. *)

val lr1_limit : int
(** Production-count bound above which the canonical-LR(1) cross-check
    is skipped (the other two invariants still run). *)

val pass : Passes.pass
