(** Shared analysis state for lint passes.

    One context is built per linted grammar; the expensive artefacts
    (the reduced grammar, the LR(0) automaton, the DeRemer–Pennello
    relations, the LALR parse table) are lazy so a pass selection that
    needs none of them — pure grammar hygiene — stays cheap. The
    automaton-level artefacts are [None] when the grammar generates no
    terminal string at all (unproductive start symbol): those passes
    simply do not run, and the L001 finding explains why. *)

type t = {
  grammar : Grammar.t;  (** the grammar as given, with locations *)
  analysis : Analysis.t;  (** of [grammar] *)
  reduced : Grammar.t option Lazy.t;
      (** [grammar] itself when already reduced (physical equality
          preserved, so location arrays are shared); otherwise
          {!Transform.reduce} of it; [None] if the start symbol is
          unproductive *)
  automaton : Lalr_automaton.Lr0.t option Lazy.t;  (** of [reduced] *)
  lalr : Lalr_core.Lalr.t option Lazy.t;
  tables : Lalr_tables.Tables.t option Lazy.t;
      (** LALR(1) table (exact DeRemer–Pennello sets) *)
}

val of_grammar : Grammar.t -> t
