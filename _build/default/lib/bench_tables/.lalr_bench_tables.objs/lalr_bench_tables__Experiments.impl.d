lib/bench_tables/experiments.ml: Array Format Grammar Lalr_automaton Lalr_baselines Lalr_core Lalr_sets Lalr_suite Lalr_tables Lazy List Printf String Sys Unix
