lib/bench_tables/experiments.mli: Format
