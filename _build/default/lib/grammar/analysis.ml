module Bitset = Lalr_sets.Bitset

type t = {
  grammar : Grammar.t;
  nullable : bool array;
  first : Bitset.t array;
  follow : Bitset.t array;
  productive : bool array;
  reachable_t : bool array;
  reachable_n : bool array;
}

let grammar a = a.grammar

let compute_nullable (g : Grammar.t) =
  let nullable = Array.make (Grammar.n_nonterminals g) false in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (p : Grammar.production) ->
        if not nullable.(p.lhs) then
          let all_nullable =
            Array.for_all
              (function Symbol.T _ -> false | Symbol.N n -> nullable.(n))
              p.rhs
          in
          if all_nullable then begin
            nullable.(p.lhs) <- true;
            changed := true
          end)
      g.productions
  done;
  nullable

let compute_first (g : Grammar.t) nullable =
  let nt = Grammar.n_terminals g in
  let first = Array.init (Grammar.n_nonterminals g) (fun _ -> Bitset.create nt) in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (p : Grammar.production) ->
        let into = first.(p.lhs) in
        let rec go i =
          if i < Array.length p.rhs then
            match p.rhs.(i) with
            | Symbol.T t ->
                if not (Bitset.mem into t) then begin
                  Bitset.add into t;
                  changed := true
                end
            | Symbol.N n ->
                if Bitset.union_into ~into first.(n) then changed := true;
                if nullable.(n) then go (i + 1)
        in
        go 0)
      g.productions
  done;
  first

let compute_follow (g : Grammar.t) nullable first =
  let nt = Grammar.n_terminals g in
  let follow =
    Array.init (Grammar.n_nonterminals g) (fun _ -> Bitset.create nt)
  in
  (* No seeding needed: production 0 is S' → S $, so $ flows into
     FOLLOW(S) through the ordinary rules. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (p : Grammar.production) ->
        let len = Array.length p.rhs in
        for i = 0 to len - 1 do
          match p.rhs.(i) with
          | Symbol.T _ -> ()
          | Symbol.N b ->
              (* FIRST of the suffix after position i. *)
              let rec go j suffix_nullable =
                if j = len then suffix_nullable
                else
                  match p.rhs.(j) with
                  | Symbol.T t ->
                      if not (Bitset.mem follow.(b) t) then begin
                        Bitset.add follow.(b) t;
                        changed := true
                      end;
                      false
                  | Symbol.N c ->
                      if Bitset.union_into ~into:follow.(b) first.(c) then
                        changed := true;
                      if nullable.(c) then go (j + 1) suffix_nullable
                      else false
              in
              let suffix_nullable = go (i + 1) true in
              if suffix_nullable then
                if Bitset.union_into ~into:follow.(b) follow.(p.lhs) then
                  changed := true
        done)
      g.productions
  done;
  follow

let compute_productive (g : Grammar.t) =
  let productive = Array.make (Grammar.n_nonterminals g) false in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (p : Grammar.production) ->
        if not productive.(p.lhs) then
          let ok =
            Array.for_all
              (function Symbol.T _ -> true | Symbol.N n -> productive.(n))
              p.rhs
          in
          if ok then begin
            productive.(p.lhs) <- true;
            changed := true
          end)
      g.productions
  done;
  productive

let compute_reachable (g : Grammar.t) =
  let reachable_t = Array.make (Grammar.n_terminals g) false in
  let reachable_n = Array.make (Grammar.n_nonterminals g) false in
  reachable_t.(0) <- true;
  let rec visit n =
    if not reachable_n.(n) then begin
      reachable_n.(n) <- true;
      Array.iter
        (fun pid ->
          let p = Grammar.production g pid in
          Array.iter
            (function
              | Symbol.T t -> reachable_t.(t) <- true
              | Symbol.N m -> visit m)
            p.rhs)
        (Grammar.productions_of g n)
    end
  in
  visit 0;
  (reachable_t, reachable_n)

let compute g =
  let nullable = compute_nullable g in
  let first = compute_first g nullable in
  let follow = compute_follow g nullable first in
  let productive = compute_productive g in
  let reachable_t, reachable_n = compute_reachable g in
  { grammar = g; nullable; first; follow; productive; reachable_t; reachable_n }

let nullable a n = a.nullable.(n)

let nullable_symbol a = function
  | Symbol.T _ -> false
  | Symbol.N n -> a.nullable.(n)

let nullable_sentence a rhs ~from ~upto =
  let rec go i =
    i >= upto
    || (match rhs.(i) with
       | Symbol.T _ -> false
       | Symbol.N n -> a.nullable.(n) && go (i + 1))
  in
  go from

let first a n = a.first.(n)

let first_symbol a = function
  | Symbol.T t -> Bitset.singleton (Grammar.n_terminals a.grammar) t
  | Symbol.N n -> a.first.(n)

let first_sentence a rhs ~from =
  let acc = Bitset.create (Grammar.n_terminals a.grammar) in
  let rec go i =
    if i >= Array.length rhs then true
    else
      match rhs.(i) with
      | Symbol.T t ->
          Bitset.add acc t;
          false
      | Symbol.N n ->
          ignore (Bitset.union_into ~into:acc a.first.(n));
          if a.nullable.(n) then go (i + 1) else false
  in
  let nullable = go from in
  (acc, nullable)

let follow a n = a.follow.(n)
let productive a n = a.productive.(n)

let reachable a = function
  | Symbol.T t -> a.reachable_t.(t)
  | Symbol.N n -> a.reachable_n.(n)

let is_reduced a =
  Array.for_all (fun b -> b) a.productive
  && Array.for_all (fun b -> b) a.reachable_n

let pp ppf a =
  let g = a.grammar in
  let pp_term ppf t = Format.pp_print_string ppf (Grammar.terminal_name g t) in
  Format.fprintf ppf "@[<v>";
  for n = 0 to Grammar.n_nonterminals g - 1 do
    Format.fprintf ppf "%-12s nullable=%-5b first=%a follow=%a@,"
      (Grammar.nonterminal_name g n)
      a.nullable.(n)
      (Bitset.pp ~pp_elt:pp_term)
      a.first.(n)
      (Bitset.pp ~pp_elt:pp_term)
      a.follow.(n)
  done;
  Format.fprintf ppf "@]"
