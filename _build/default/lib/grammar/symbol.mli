(** Grammar symbols.

    Terminals and nonterminals are interned: a symbol is an index into the
    owning grammar's name tables. Index [0] is reserved in both spaces —
    terminal 0 is the end-of-input marker ["$"] and nonterminal 0 is the
    augmented start symbol (the paper's [S']). *)

type t =
  | T of int  (** terminal, by id *)
  | N of int  (** nonterminal, by id *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val is_terminal : t -> bool
val is_nonterminal : t -> bool

val eof : t
(** [T 0], the end-of-input terminal ["$"] (the paper's ⊣). *)

val start : t
(** [N 0], the augmented start nonterminal. *)

val pack : t -> int
(** Injective encoding into [int], for flat tables: terminals map to even,
    nonterminals to odd numbers. *)

val unpack : int -> t
