(** Context-free grammars, augmented and interned.

    Construction (via {!make} or the {!Builder} front ends) always
    augments the user grammar with

    {v production 0:   S' → start $ v}

    following the paper's convention: the end marker appears as an
    ordinary terminal transition out of the state reached on the start
    symbol, so [$] enters the look-ahead computation through [DR] with no
    special cases. *)

type assoc = Left | Right | Nonassoc

type production = {
  id : int;
  lhs : int;  (** nonterminal id *)
  rhs : Symbol.t array;
  prec : (int * assoc) option;
      (** Precedence level used for conflict resolution: that of the
          rightmost terminal with declared precedence, unless overridden
          at construction time ([%prec]). *)
}

type t = private {
  name : string;
  terminal_names : string array;  (** index 0 is ["$"] *)
  nonterminal_names : string array;  (** index 0 is the augmented start *)
  productions : production array;  (** index 0 is [S' → start $] *)
  by_lhs : int array array;
      (** [by_lhs.(a)] lists ids of productions with lhs [a], ascending. *)
  start : int;  (** the user's start nonterminal id *)
  terminal_prec : (int * assoc) option array;
}

val make :
  ?name:string ->
  ?prec:(assoc * string list) list ->
  terminals:string list ->
  start:string ->
  rules:(string * string list * string option) list ->
  unit ->
  t
(** [make ~terminals ~start ~rules ()] builds and augments a grammar.

    Nonterminals are the left-hand sides occurring in [rules]; any
    right-hand-side name that is neither a declared terminal nor a
    left-hand side is an error. Each rule is
    [(lhs, rhs_names, prec_override)] where [prec_override] names a
    terminal whose precedence the production inherits ([%prec]).
    [prec] lists precedence declarations from lowest to highest level,
    as in yacc's [%left]/[%right]/[%nonassoc].

    Raises [Invalid_argument] on: unknown symbols, duplicate terminal
    declarations, a terminal named ["$"] or used as an lhs, an unknown
    [start], or an empty rule set. *)

val n_terminals : t -> int
val n_nonterminals : t -> int
val n_productions : t -> int

val terminal_name : t -> int -> string
val nonterminal_name : t -> int -> string
val symbol_name : t -> Symbol.t -> string

val production : t -> int -> production
val productions_of : t -> int -> int array
(** Production ids with the given lhs. *)

val find_terminal : t -> string -> int option
val find_nonterminal : t -> string -> int option
val find_symbol : t -> string -> Symbol.t option

val rhs_length : t -> int -> int

val symbols_count : t -> int
(** Total grammar size |G| = Σ (1 + |rhs|) over all productions — the
    size measure used in the paper's complexity discussion. *)

val pp_production : t -> Format.formatter -> production -> unit
(** [lhs → x y z] using symbol names; empty rhs prints [ε]. *)

val pp_item : t -> Format.formatter -> int -> int -> unit
(** [pp_item g ppf prod dot] prints the dotted production
    [lhs → x . y z]. *)

val pp : Format.formatter -> t -> unit
(** Full listing: terminals, precedences, productions. *)

val equal_structure : t -> t -> bool
(** Same symbol tables and productions (ignores [name]). *)
