(** Classic grammar analyses: nullable, FIRST, FOLLOW.

    These are substrates: [nullable] feeds the paper's [reads] and
    [includes] relations; [FOLLOW] is the SLR(1) baseline approximation
    that the paper's exact look-ahead sets refine. All terminal sets are
    {!Lalr_sets.Bitset} over the grammar's terminal universe (including
    terminal 0, the end marker). *)

type t

val compute : Grammar.t -> t
(** Runs all fixpoints. Cost is a few passes over the grammar. *)

val grammar : t -> Grammar.t

val nullable : t -> int -> bool
(** [nullable a n] is [true] iff nonterminal [n] ⇒* ε. *)

val nullable_symbol : t -> Symbol.t -> bool
(** Terminals are never nullable. *)

val nullable_sentence : t -> Symbol.t array -> from:int -> upto:int -> bool
(** Whether the slice [from, upto) of the sentential form derives ε. *)

val first : t -> int -> Lalr_sets.Bitset.t
(** [first a n] is FIRST of nonterminal [n], ε excluded (query
    {!nullable} separately). The returned set is owned by [t]; copy
    before mutating. *)

val first_symbol : t -> Symbol.t -> Lalr_sets.Bitset.t
(** FIRST of a single symbol; for a terminal [t] this is [{t}]. *)

val first_sentence :
  t -> Symbol.t array -> from:int -> Lalr_sets.Bitset.t * bool
(** [first_sentence a rhs ~from] is (FIRST, nullable?) of the suffix
    [rhs.(from..)]. Freshly allocated. *)

val follow : t -> int -> Lalr_sets.Bitset.t
(** SLR FOLLOW of nonterminal [n]. FOLLOW of the augmented start is
    empty (its production already ends in [$]); FOLLOW of the user start
    symbol contains [$] via production 0. Owned by [t]. *)

val productive : t -> int -> bool
(** Whether nonterminal [n] derives at least one terminal string. *)

val reachable : t -> Symbol.t -> bool
(** Whether the symbol occurs in some sentential form derivable from the
    augmented start. *)

val is_reduced : t -> bool
(** All nonterminals productive and reachable. Unused terminals are
    permitted — they legitimately occur as [%prec]-only tokens and as
    leftovers of {!Transform.reduce}, and they cost the LR constructions
    nothing. *)

val pp : Format.formatter -> t -> unit
(** Tabular dump of nullable/FIRST/FOLLOW per nonterminal. *)
