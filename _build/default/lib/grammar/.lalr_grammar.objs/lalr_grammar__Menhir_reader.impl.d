lib/grammar/menhir_reader.ml: Filename Fun Grammar Hashtbl List Printf Reader String
