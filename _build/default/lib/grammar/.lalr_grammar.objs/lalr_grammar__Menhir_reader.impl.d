lib/grammar/menhir_reader.ml: Filename Fun Grammar Hashtbl List Option Printf Reader String
