lib/grammar/transform.ml: Analysis Array Grammar Hashtbl Int Lalr_sets List Option Printf Symbol
