lib/grammar/grammar.mli: Format Symbol
