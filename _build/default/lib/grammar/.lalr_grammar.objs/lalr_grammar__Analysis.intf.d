lib/grammar/analysis.mli: Format Grammar Lalr_sets Symbol
