lib/grammar/grammar.ml: Array Format Hashtbl List Printf Symbol
