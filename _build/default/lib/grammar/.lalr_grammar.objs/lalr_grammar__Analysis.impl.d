lib/grammar/analysis.ml: Array Format Grammar Lalr_sets Symbol
