lib/grammar/reader.mli: Format Grammar
