lib/grammar/transform.mli: Grammar
