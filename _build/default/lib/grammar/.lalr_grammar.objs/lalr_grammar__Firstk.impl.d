lib/grammar/firstk.ml: Array Grammar Lalr_sets List Symbol
