lib/grammar/reader.ml: Array Buffer Filename Format Fun Grammar Hashtbl Int List Option Printf String
