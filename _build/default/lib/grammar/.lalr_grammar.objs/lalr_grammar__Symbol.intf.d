lib/grammar/symbol.mli:
