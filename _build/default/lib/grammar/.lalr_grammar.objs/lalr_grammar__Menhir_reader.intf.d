lib/grammar/menhir_reader.mli: Grammar
