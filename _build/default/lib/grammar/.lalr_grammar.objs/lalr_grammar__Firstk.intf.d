lib/grammar/firstk.mli: Grammar Lalr_sets Symbol
