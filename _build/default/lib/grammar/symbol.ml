type t = T of int | N of int

let equal a b =
  match (a, b) with
  | T i, T j | N i, N j -> i = j
  | T _, N _ | N _, T _ -> false

let compare a b =
  match (a, b) with
  | T i, T j | N i, N j -> Int.compare i j
  | T _, N _ -> -1
  | N _, T _ -> 1

let hash = function T i -> 2 * i | N i -> (2 * i) + 1
let is_terminal = function T _ -> true | N _ -> false
let is_nonterminal = function N _ -> true | T _ -> false
let eof = T 0
let start = N 0
let pack = hash
let unpack i = if i land 1 = 0 then T (i / 2) else N (i / 2)
