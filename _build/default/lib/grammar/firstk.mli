(** FIRSTk sets — length-≤k prefixes of terminal strings derivable from
    symbols and sentential forms. The k-generalisation of
    {!Analysis.first}; substrate for the LALR(k) extension. *)

module Kstring = Lalr_sets.Kstring

type t

val compute : k:int -> Grammar.t -> t
(** Fixpoint over the productions. [k = 0] gives [{ε}] everywhere;
    raises [Invalid_argument] on negative [k]. For [k = 1] the sets
    agree with {!Analysis.first}/{!Analysis.nullable} (a test pins
    this). Cost grows quickly with [k] — intended for small k (≤ 4). *)

val k : t -> int
val grammar : t -> Grammar.t

val nonterminal : t -> int -> Kstring.Set.t
(** FIRSTk of a nonterminal. Contains strings shorter than [k] iff the
    nonterminal derives a terminal string shorter than [k] (the empty
    string for nullable ones). *)

val sentence : t -> Symbol.t array -> from:int -> Kstring.Set.t
(** FIRSTk of the suffix [rhs.(from..)], by k-truncated concatenation
    of the member FIRSTk sets. Assumes a reduced grammar (like all LR
    machinery here): with unproductive members the early-exit
    concatenation could over-approximate. *)
