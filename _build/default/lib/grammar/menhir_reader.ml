(* A dedicated lexer/parser for the Menhir .mly subset. It shares the
   error type with Reader so callers handle one exception. *)

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;
}

let error lx message =
  raise (Reader.Error { line = lx.line; col = lx.pos - lx.bol + 1; message })

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

(* Skip whitespace, the three comment syntaxes, and OCaml-type
   annotations in angle brackets are handled at the token level. *)
let rec skip_space lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_space lx
  | Some '/' when peek2 lx = Some '/' ->
      while peek lx <> None && peek lx <> Some '\n' do
        advance lx
      done;
      skip_space lx
  | Some '/' when peek2 lx = Some '*' ->
      advance lx;
      advance lx;
      let rec go () =
        match (peek lx, peek2 lx) with
        | None, _ -> error lx "unterminated /* comment"
        | Some '*', Some '/' ->
            advance lx;
            advance lx
        | Some _, _ ->
            advance lx;
            go ()
      in
      go ();
      skip_space lx
  | Some '(' when peek2 lx = Some '*' ->
      advance lx;
      advance lx;
      (* OCaml comments nest. *)
      let depth = ref 1 in
      let rec go () =
        match (peek lx, peek2 lx) with
        | None, _ -> error lx "unterminated (* comment"
        | Some '(', Some '*' ->
            advance lx;
            advance lx;
            incr depth;
            go ()
        | Some '*', Some ')' ->
            advance lx;
            advance lx;
            decr depth;
            if !depth > 0 then go ()
        | Some _, _ ->
            advance lx;
            go ()
      in
      go ();
      skip_space lx
  | _ -> ()

let skip_braced lx =
  (* positioned on '{'; skips the balanced action, tolerating nested
     braces (strings inside actions with unbalanced braces are out of
     scope for this subset). *)
  let depth = ref 0 in
  let continue = ref true in
  while !continue do
    match peek lx with
    | None -> error lx "unterminated { action }"
    | Some '{' ->
        incr depth;
        advance lx
    | Some '}' ->
        decr depth;
        advance lx;
        if !depth = 0 then continue := false
    | Some _ -> advance lx
  done

let skip_angle lx =
  (* positioned on '<'; skips an OCaml type annotation to the matching
     '>'; nested angles can occur in functor paths rarely — handle
     flat. *)
  advance lx;
  let continue = ref true in
  while !continue do
    match peek lx with
    | None -> error lx "unterminated <type>"
    | Some '>' ->
        advance lx;
        continue := false
    | Some _ -> advance lx
  done

type token =
  | IDENT of string
  | COLON
  | SEMI
  | PIPE
  | EQUALS
  | SEPARATOR
  | KW of string  (* token, left, right, nonassoc, start, type, prec, ... *)
  | EOF_TOK

let rec next lx =
  skip_space lx;
  match peek lx with
  | None -> EOF_TOK
  | Some ':' ->
      advance lx;
      COLON
  | Some ';' ->
      advance lx;
      SEMI
  | Some '|' ->
      advance lx;
      PIPE
  | Some '=' ->
      advance lx;
      EQUALS
  | Some '{' ->
      skip_braced lx;
      next lx
  | Some '<' ->
      skip_angle lx;
      next lx
  | Some '%' -> (
      advance lx;
      match peek lx with
      | Some '%' ->
          advance lx;
          SEPARATOR
      | Some '{' ->
          (* OCaml header %{ ... %} *)
          advance lx;
          let rec go () =
            match (peek lx, peek2 lx) with
            | None, _ -> error lx "unterminated %{ header"
            | Some '%', Some '}' ->
                advance lx;
                advance lx
            | Some _, _ ->
                advance lx;
                go ()
          in
          go ();
          next lx
      | Some c when is_ident_start c ->
          let start = lx.pos in
          while
            match peek lx with Some c -> is_ident_char c | None -> false
          do
            advance lx
          done;
          KW (String.sub lx.src start (lx.pos - start))
      | _ -> error lx "stray '%'")
  | Some c when is_ident_start c ->
      let start = lx.pos in
      while match peek lx with Some c -> is_ident_char c | None -> false do
        advance lx
      done;
      IDENT (String.sub lx.src start (lx.pos - start))
  | Some ('(' | ')' | '?' | '+' | '*' | ',') ->
      error lx
        "parameterised rules and ?/+/* shorthands are not supported by this \
         subset"
  | Some c -> error lx (Printf.sprintf "unexpected character %C" c)

type state = { lx : lexer; mutable cur : token }

let shift st = st.cur <- next st.lx
let serr st message = error st.lx message

let of_string ?(name = "grammar") ?source src =
  let lx = { src; pos = 0; line = 1; bol = 0 } in
  let st = { lx; cur = EOF_TOK } in
  shift st;
  let tokens = ref [] in
  let start = ref None in
  let prec = ref [] in
  (* Lines for locations. [lx.line] is the position just past the
     current token — right for a token lexed on its own line, at worst
     one line late at a boundary; good enough for diagnostics. *)
  let token_lines : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let prec_lines = ref [] in
  (* declarations *)
  let rec decls () =
    match st.cur with
    | KW "token" ->
        shift st;
        let rec names () =
          match st.cur with
          | IDENT s ->
              tokens := s :: !tokens;
              if not (Hashtbl.mem token_lines s) then
                Hashtbl.replace token_lines s lx.line;
              shift st;
              names ()
          | _ -> ()
        in
        names ();
        decls ()
    | KW (("left" | "right" | "nonassoc") as kw) ->
        let decl_line = lx.line in
        shift st;
        let assoc =
          match kw with
          | "left" -> Grammar.Left
          | "right" -> Grammar.Right
          | _ -> Grammar.Nonassoc
        in
        let rec names acc =
          match st.cur with
          | IDENT s ->
              shift st;
              names (s :: acc)
          | _ -> List.rev acc
        in
        prec := (assoc, names []) :: !prec;
        prec_lines := decl_line :: !prec_lines;
        decls ()
    | KW "start" -> (
        shift st;
        match st.cur with
        | IDENT s ->
            if !start = None then start := Some s;
            shift st;
            decls ()
        | _ -> serr st "expected a nonterminal after %start")
    | KW ("type" | "on_error_reduce") ->
        shift st;
        (* consume the symbols it mentions *)
        let rec names () =
          match st.cur with
          | IDENT _ ->
              shift st;
              names ()
          | _ -> ()
        in
        names ();
        decls ()
    | KW ("inline" | "parameter" | "public") ->
        serr st "%inline/%parameter rules are not supported by this subset"
    | KW other -> serr st (Printf.sprintf "unknown declaration %%%s" other)
    | SEPARATOR -> shift st
    | _ -> serr st "expected a declaration or '%%'"
  in
  decls ();
  (* rules *)
  let rules = ref [] in
  let rule_lines = ref [] in
  let declared_tokens = Hashtbl.create 32 in
  List.iter (fun t -> Hashtbl.replace declared_tokens t ()) !tokens;
  (* Menhir does not require ';' between rules, so a production ends
     when an IDENT is immediately followed by ':' — that IDENT is the
     next rule's name. [parse_production] returns it when seen. *)
  let parse_production lhs =
    let prod_line = lx.line in
    let rhs = ref [] in
    let prec_override = ref None in
    let next_lhs = ref None in
    let rec go () =
      match st.cur with
      | IDENT s -> (
          shift st;
          match st.cur with
          | EQUALS -> (
              (* producer binding  x = symbol  *)
              shift st;
              match st.cur with
              | IDENT sym ->
                  shift st;
                  rhs := sym :: !rhs;
                  go ()
              | _ -> serr st "expected a symbol after '='")
          | COLON ->
              (* rule boundary: s was the next rule's name *)
              shift st;
              next_lhs := Some s
          | _ ->
              rhs := s :: !rhs;
              go ())
      | KW "prec" -> (
          shift st;
          match st.cur with
          | IDENT s ->
              prec_override := Some s;
              shift st;
              go ()
          | _ -> serr st "expected a terminal after %prec")
      | PIPE | SEMI | EOF_TOK -> ()
      | COLON ->
          serr st "unexpected ':' (parameterised or new-syntax rules?)"
      | _ -> serr st "unexpected token in production"
    in
    go ();
    rules := (lhs, List.rev !rhs, !prec_override) :: !rules;
    rule_lines := prod_line :: !rule_lines;
    !next_lhs
  in
  (* Parses one rule given its name (':' already consumed); returns the
     name of the next rule when the boundary was detected inline. *)
  let parse_rule_body lhs =
    (* leading | is allowed *)
    (match st.cur with PIPE -> shift st | _ -> ());
    let rec alts () =
      match parse_production lhs with
      | Some next -> Some next
      | None -> (
          match st.cur with
          | PIPE ->
              shift st;
              alts ()
          | SEMI ->
              shift st;
              None
          | _ -> None)
    in
    alts ()
  in
  let parse_first_rule () =
    match st.cur with
    | IDENT lhs -> (
        shift st;
        match st.cur with
        | COLON ->
            shift st;
            parse_rule_body lhs
        | _ -> serr st "expected ':' after rule name")
    | _ -> serr st "expected a rule"
  in
  if st.cur = EOF_TOK then serr st "no rules";
  let carried = ref (parse_first_rule ()) in
  let continue = ref true in
  while !continue do
    match !carried with
    | Some lhs -> carried := parse_rule_body lhs
    | None ->
        if st.cur = EOF_TOK || st.cur = SEPARATOR then continue := false
        else carried := parse_first_rule ()
  done;
  let rules = List.rev !rules in
  let rule_lines = List.rev !rule_lines in
  let start =
    match !start with
    | Some s -> s
    | None -> ( match rules with (lhs, _, _) :: _ -> lhs | [] -> assert false)
  in
  (* Strip a conventional explicit EOF: a terminal that ends every
     start production and occurs nowhere else. *)
  let ends_all_start_rules t =
    let start_rules = List.filter (fun (l, _, _) -> l = start) rules in
    start_rules <> []
    && List.for_all
         (fun (_, rhs, _) ->
           match List.rev rhs with last :: _ -> last = t | [] -> false)
         start_rules
  in
  let occurrences t =
    List.fold_left
      (fun acc (_, rhs, _) ->
        acc + List.length (List.filter (fun s -> s = t) rhs))
      0 rules
  in
  let eof_candidates =
    List.filter
      (fun t ->
        ends_all_start_rules t
        && occurrences t
           = List.length (List.filter (fun (l, _, _) -> l = start) rules))
      !tokens
  in
  let rules, tokens =
    match eof_candidates with
    | t :: _ ->
        ( List.map
            (fun (l, rhs, p) ->
              if l = start then
                match List.rev rhs with
                | last :: rev_rest when last = t -> (l, List.rev rev_rest, p)
                | _ -> (l, rhs, p)
              else (l, rhs, p))
            rules,
          List.filter (fun tok -> tok <> t) (List.rev !tokens) )
    | [] -> (rules, List.rev !tokens)
  in
  let locs =
    {
      Grammar.li_source = Option.value source ~default:("<" ^ name ^ ">");
      li_rules = rule_lines;
      li_tokens =
        List.map
          (fun t ->
            (t, Option.value (Hashtbl.find_opt token_lines t) ~default:0))
          tokens;
      li_prec = List.rev !prec_lines;
    }
  in
  Grammar.make ~name ~locs ~prec:(List.rev !prec) ~terminals:tokens ~start
    ~rules ()

let of_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string
    ~name:(Filename.remove_extension (Filename.basename path))
    ~source:path src
