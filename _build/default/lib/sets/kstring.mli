(** Strings of at most [k] symbols and finite sets of them — the values
    of the LALR(k) generalisation (paper §8).

    A k-string is an [int list] of length ≤ k over terminal ids. A
    string shorter than [k] means the input ends there (the end marker
    is an ordinary terminal in this library, so complete look-aheads end
    in it and only the augmented-start pseudo-string is really short).

    The central operation is k-truncated concatenation
    [x ⊕k y = first_k (x @ y)], lifted to sets. Sets are [Set.Make]
    values; the lattice of such sets under union is finite for a fixed
    terminal universe, which is what makes the LALR(k) fixpoint
    terminate. *)

module Set : Stdlib.Set.S with type elt = int list

val truncate : int -> int list -> int list
(** First [k] elements. *)

val concat : int -> int list -> int list -> int list
(** [concat k x y] is [x ⊕k y]. *)

val concat_sets : int -> Set.t -> Set.t -> Set.t
(** Pointwise [⊕k]: [{ x ⊕k y | x ∈ a, y ∈ b }]. A left operand
    already of length [k] contributes [x] itself regardless of [b]
    (but [b] must be nonempty for any result — ε-continuations are
    represented by the explicit empty string [[]], not an empty set). *)

val epsilon : Set.t
(** [{ [] }], the unit of [concat_sets]. *)

val of_terminals : Bitset.t -> Set.t
(** Each terminal of the bitset as a length-1 string. *)

val pp :
  ?pp_elt:(Format.formatter -> int -> unit) -> Format.formatter -> Set.t -> unit
(** [{a b, c}] — strings space-separated inside, comma between. *)
