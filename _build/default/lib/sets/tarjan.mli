(** Tarjan's strongly-connected-components algorithm.

    Used for diagnostics (detecting cycles in the [reads] and [includes]
    relations) and as a test oracle for {!Digraph}, which fuses SCC
    detection with the set-union traversal. *)

type result = {
  component : int array;
      (** [component.(v)] is the SCC index of node [v]. Components are
          numbered in reverse topological order: if there is an edge from
          SCC [a] to SCC [b] (with [a <> b]) then [a > b]. *)
  components : int list array;
      (** [components.(c)] lists the members of SCC [c]. *)
}

val scc : n:int -> successors:(int -> int list) -> result
(** [scc ~n ~successors] computes the SCCs of the directed graph with
    nodes [0..n-1]. *)

val nontrivial : n:int -> successors:(int -> int list) -> int list list
(** The SCCs that contain a cycle: either ≥2 nodes, or a single node with
    a self-loop. Empty iff the graph is acyclic. *)
