type result = { component : int array; components : int list array }

(* Iterative Tarjan with an explicit work stack, so pathological graphs
   (long chains in generated grammars) cannot overflow the OCaml stack.
   SCCs complete in reverse topological order, matching the numbering
   promised by the interface. *)
let scc ~n ~successors =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let component = Array.make n (-1) in
  let comps = ref [] in
  let n_comps = ref 0 in
  let push v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true
  in
  let pop_component root =
    let members = ref [] in
    let continue = ref true in
    while !continue do
      match !stack with
      | [] -> assert false
      | w :: tl ->
          stack := tl;
          on_stack.(w) <- false;
          component.(w) <- !n_comps;
          members := w :: !members;
          if w = root then continue := false
    done;
    comps := !members :: !comps;
    incr n_comps
  in
  let visit v =
    push v;
    let work = ref [ (v, ref (successors v)) ] in
    while !work <> [] do
      match !work with
      | [] -> ()
      | (u, succs) :: rest -> (
          match !succs with
          | w :: tl ->
              succs := tl;
              if index.(w) = -1 then begin
                push w;
                work := (w, ref (successors w)) :: !work
              end
              else if on_stack.(w) then
                lowlink.(u) <- min lowlink.(u) index.(w)
          | [] ->
              if lowlink.(u) = index.(u) then pop_component u;
              work := rest;
              (match rest with
              | (parent, _) :: _ ->
                  lowlink.(parent) <- min lowlink.(parent) lowlink.(u)
              | [] -> ()))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  let components = Array.make !n_comps [] in
  List.iteri (fun i members -> components.(i) <- members) (List.rev !comps);
  { component; components }

let nontrivial ~n ~successors =
  let { components; _ } = scc ~n ~successors in
  let has_self_loop v = List.mem v (successors v) in
  Array.to_list components
  |> List.filter (function
       | [] -> false
       | [ v ] -> has_self_loop v
       | _ :: _ :: _ -> true)
