lib/sets/tarjan.mli:
