lib/sets/bitset.mli: Format
