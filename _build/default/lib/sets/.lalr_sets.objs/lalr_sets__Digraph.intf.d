lib/sets/digraph.mli: Bitset
