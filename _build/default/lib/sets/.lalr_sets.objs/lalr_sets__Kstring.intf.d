lib/sets/kstring.mli: Bitset Format Stdlib
