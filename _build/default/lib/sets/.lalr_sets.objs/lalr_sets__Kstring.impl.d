lib/sets/kstring.ml: Bitset Format List Stdlib
