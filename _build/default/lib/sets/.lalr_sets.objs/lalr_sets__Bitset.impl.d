lib/sets/bitset.ml: Array Format Int List Printf Sys
