lib/sets/vec.mli:
