lib/sets/digraph.ml: Array Bitset List
