lib/sets/vec.ml: Array List
