lib/sets/tarjan.ml: Array List
