(* Bitsets over a fixed universe [0..n-1], stored as an int array of
   62-bit words (we use Sys.int_size - 2 = 62 on 64-bit, but any width
   works as long as it is consistent). *)

let word_bits = Sys.int_size - 1 (* 62 on 64-bit: keep shifts well-defined *)

type t = { n : int; words : int array }

let words_for n = if n = 0 then 0 else (n + word_bits - 1) / word_bits

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative universe";
  { n; words = Array.make (words_for n) 0 }

let universe t = t.n

let copy t = { n = t.n; words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Bitset: element %d outside universe %d" i t.n)

let add t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  t.words.(w) land (1 lsl b) <> 0

let singleton n i =
  let t = create n in
  add t i;
  t

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount =
  (* Kernighan loop is fine: words are sparse in practice. *)
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  fun w -> go 0 w

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let same_universe a b =
  if a.n <> b.n then invalid_arg "Bitset: universe mismatch"

let equal a b =
  same_universe a b;
  Array.for_all2 ( = ) a.words b.words

let compare a b =
  same_universe a b;
  let rec go i =
    if i = Array.length a.words then 0
    else
      let c = Int.compare a.words.(i) b.words.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let subset a b =
  same_universe a b;
  let rec go i =
    i = Array.length a.words
    || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let disjoint a b =
  same_universe a b;
  let rec go i =
    i = Array.length a.words || (a.words.(i) land b.words.(i) = 0 && go (i + 1))
  in
  go 0

let union_into ~into src =
  same_universe into src;
  let changed = ref false in
  for i = 0 to Array.length into.words - 1 do
    let w = into.words.(i) lor src.words.(i) in
    if w <> into.words.(i) then begin
      into.words.(i) <- w;
      changed := true
    end
  done;
  !changed

let union a b =
  let t = copy a in
  ignore (union_into ~into:t b);
  t

let inter a b =
  same_universe a b;
  { n = a.n; words = Array.map2 ( land ) a.words b.words }

let diff a b =
  same_universe a b;
  { n = a.n; words = Array.map2 (fun x y -> x land lnot y) a.words b.words }

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to word_bits - 1 do
        if word land (1 lsl b) <> 0 then f ((w * word_bits) + b)
      done
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i l -> i :: l) t [])

exception Found

let exists p t =
  try
    iter (fun i -> if p i then raise Found) t;
    false
  with Found -> true

let for_all p t = not (exists (fun i -> not (p i)) t)

let choose t =
  let r = ref None in
  (try iter (fun i -> r := Some i; raise Found) t with Found -> ());
  !r

let pp ?(pp_elt = Format.pp_print_int) ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun i ->
      if !first then first := false else Format.fprintf ppf ",@ ";
      pp_elt ppf i)
    t;
  Format.fprintf ppf "}"

let hash t =
  Array.fold_left (fun acc w -> (acc * 1000003) lxor w) t.n t.words
