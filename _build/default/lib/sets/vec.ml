type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let grow t v =
  let cap = Array.length t.data in
  let data = Array.make (max 8 (2 * cap)) v in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t v;
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.len - 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_array t = Array.sub t.data 0 t.len

let of_list l =
  let t = create () in
  List.iter (fun v -> ignore (push t v)) l;
  t
