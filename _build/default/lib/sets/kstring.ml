module Set = Stdlib.Set.Make (struct
  type t = int list

  let compare = compare
end)

let rec truncate k xs =
  if k = 0 then []
  else match xs with [] -> [] | x :: tl -> x :: truncate (k - 1) tl

let concat k x y =
  let lx = List.length x in
  if lx >= k then truncate k x else x @ truncate (k - lx) y

let concat_sets k a b =
  Set.fold
    (fun x acc ->
      if List.length x >= k then Set.add (truncate k x) acc
      else Set.fold (fun y acc -> Set.add (concat k x y) acc) b acc)
    a Set.empty

let epsilon = Set.singleton []

let of_terminals bits =
  Bitset.fold (fun t acc -> Set.add [ t ] acc) bits Set.empty

let pp ?(pp_elt = Format.pp_print_int) ppf set =
  Format.fprintf ppf "{";
  let first = ref true in
  Set.iter
    (fun s ->
      if !first then first := false else Format.fprintf ppf ",@ ";
      if s = [] then Format.fprintf ppf "ε"
      else
        List.iteri
          (fun i t ->
            if i > 0 then Format.fprintf ppf " ";
            pp_elt ppf t)
          s)
    set;
  Format.fprintf ppf "}"
