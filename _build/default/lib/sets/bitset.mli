(** Dynamic fixed-universe bitsets.

    Terminal sets are the values flowing through the DeRemer–Pennello set
    equations; every union in the Digraph traversal touches one of these, so
    they are flat [int array]s with word-parallel operations.

    A bitset is created for a universe [0 .. universe-1] fixed at creation
    time; all binary operations require both operands to share a universe
    size (checked with [assert]). *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0..n-1]. [n] may be [0]. *)

val universe : t -> int
(** Size of the universe the set was created with. *)

val copy : t -> t

val singleton : int -> int -> t
(** [singleton n i] is [{i}] over universe [0..n-1]. *)

val of_list : int -> int list -> t

val add : t -> int -> unit
(** In-place insertion. Raises [Invalid_argument] if out of universe. *)

val remove : t -> int -> unit

val mem : t -> int -> bool

val is_empty : t -> bool

val cardinal : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order compatible with [equal] (lexicographic on words). *)

val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b]. *)

val disjoint : t -> t -> bool

val union_into : into:t -> t -> bool
(** [union_into ~into src] adds all elements of [src] to [into]; returns
    [true] iff [into] changed. The changed-flag drives fixpoint loops. *)

val union : t -> t -> t
(** Functional union of two sets sharing a universe. *)

val inter : t -> t -> t

val diff : t -> t -> t

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** Iterates elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Elements in increasing order. *)

val exists : (int -> bool) -> t -> bool

val for_all : (int -> bool) -> t -> bool

val choose : t -> int option
(** Smallest element, if any. *)

val pp : ?pp_elt:(Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
(** Prints [{e1, e2, ...}]; [pp_elt] defaults to decimal. *)

val hash : t -> int
