(** Growable arrays.

    The canonical-collection constructions (LR(0) and LR(1)) discover
    states while iterating over states already discovered; a growable
    array is the natural store. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
