lib/core/lalr_k.mli: Lalr_automaton Lalr_sets
