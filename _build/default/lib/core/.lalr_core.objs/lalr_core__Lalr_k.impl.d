lib/core/lalr_k.ml: Array Firstk Grammar Hashtbl Lalr_automaton Lalr_sets List Queue Symbol
