lib/core/lalr.ml: Analysis Array Format Grammar Hashtbl Lalr_automaton Lalr_sets List Queue Symbol
