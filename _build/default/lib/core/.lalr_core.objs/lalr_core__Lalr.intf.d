lib/core/lalr.mli: Analysis Format Grammar Lalr_automaton Lalr_sets
