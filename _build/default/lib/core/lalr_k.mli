(** LALR(k) look-ahead sets — the paper's §8 extension, implemented as a
    direct fixpoint of the generalised [Follow] equations.

    For k = 1 the paper factors the computation into [DR]/[reads]
    (automaton-resident FIRST information) plus [includes] so that both
    fixpoints are pure unions and the Digraph applies. For general k the
    values become sets of ≤k-strings and the edges carry k-truncated
    concatenation with the FIRSTk of the production suffix:

    {v
    Follow_k(p,A) ⊇ FIRSTk(γ) ⊕k Follow_k(p',B)
                         whenever B → βAγ and p' --β--> p
    Follow_k(0,S) ⊇ {"$"}                      (from S' → S $)
    LA_k(q, A→ω)  = ⋃ { Follow_k(p,A) | p --ω--> q }
    v}

    Concatenation is not idempotent, so the union-only Digraph traversal
    no longer applies verbatim; the equations are solved by worklist
    iteration over the finite lattice of k-string sets. This matches the
    paper's remark that the k > 1 case loses the clean relational
    decomposition. For k = 1 the result coincides with {!Lalr} (pinned
    by tests); for any k it coincides with merging the canonical LR(k)
    automaton ({!Lalr_baselines.Lrk}, cross-validated property). *)

module Kstring = Lalr_sets.Kstring

type t

val compute : k:int -> Lalr_automaton.Lr0.t -> t
(** Raises [Invalid_argument] when [k < 1]. Cost grows steeply in [k];
    meant for k ≤ 4 on moderate grammars. *)

val k : t -> int
val automaton : t -> Lalr_automaton.Lr0.t

val follow : t -> int -> Kstring.Set.t
(** [Follow_k] of a nonterminal-transition index. *)

val lookahead : t -> state:int -> prod:int -> Kstring.Set.t
(** [LA_k] of a reduction. [Not_found] if the pair is not a reduction
    of the automaton. *)

val is_lalr_k : t -> bool
(** No LALR(k) conflicts: within each state, every reduction's k-string
    set is disjoint from every other's, and from the k-prefixes of
    shiftable continuations (computed from the canonical items: for a
    shift on [t], the strings [t · FIRSTk-1(rest)] in context).

    For k = 1 this agrees with {!Lalr.is_lalr1} (tested). *)

val smallest_k : ?limit:int -> Lalr_automaton.Lr0.t -> int option
(** The least [k ≤ limit] (default 3) for which the grammar is
    LALR(k), or [None]. *)
