(** LR(0) items, densely numbered.

    An item [A → α . β] is a production plus a dot position. Items are
    interned as integers [0 .. n_items-1] in production order, dot
    ascending, so the item for [(prod, dot)] is [first_item(prod) + dot].
    Dense numbering lets item sets be sorted [int array]s and closure
    caches be flat arrays. *)

type table
(** The item numbering for one grammar. *)

val make : Grammar.t -> table

val n_items : table -> int

val encode : table -> prod:int -> dot:int -> int
(** Raises [Invalid_argument] if [dot] exceeds the rhs length. *)

val prod : table -> int -> int
val dot : table -> int -> int

val next_symbol : table -> int -> Symbol.t option
(** The symbol after the dot; [None] for a final item. *)

val is_final : table -> int -> bool
(** Dot at the end of the rhs — the item calls for a reduction. *)

val advance : table -> int -> int
(** Item with the dot moved one symbol right. Raises [Invalid_argument]
    on final items. *)

val initial : table -> prod:int -> int
(** The item [A → . ω] for the given production. *)

val pp : table -> Format.formatter -> int -> unit
