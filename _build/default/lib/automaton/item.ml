type table = {
  grammar : Grammar.t;
  first_item : int array;  (* production id -> item id of [A → . ω] *)
  item_prod : int array;  (* item id -> production id *)
  n_items : int;
}

let make g =
  let n_prods = Grammar.n_productions g in
  let first_item = Array.make n_prods 0 in
  let n_items = ref 0 in
  for p = 0 to n_prods - 1 do
    first_item.(p) <- !n_items;
    n_items := !n_items + Grammar.rhs_length g p + 1
  done;
  let item_prod = Array.make !n_items 0 in
  for p = 0 to n_prods - 1 do
    for dot = 0 to Grammar.rhs_length g p do
      item_prod.(first_item.(p) + dot) <- p
    done
  done;
  { grammar = g; first_item; item_prod; n_items = !n_items }

let n_items t = t.n_items

let encode t ~prod ~dot =
  if dot < 0 || dot > Grammar.rhs_length t.grammar prod then
    invalid_arg "Item.encode: dot out of range";
  t.first_item.(prod) + dot

let prod t item = t.item_prod.(item)
let dot t item = item - t.first_item.(t.item_prod.(item))

let next_symbol t item =
  let p = prod t item and d = dot t item in
  let rhs = (Grammar.production t.grammar p).rhs in
  if d < Array.length rhs then Some rhs.(d) else None

let is_final t item =
  let p = prod t item in
  dot t item = Grammar.rhs_length t.grammar p

let advance t item =
  if is_final t item then invalid_arg "Item.advance: final item";
  item + 1

let initial t ~prod = t.first_item.(prod)

let pp t ppf item = Grammar.pp_item t.grammar ppf (prod t item) (dot t item)
