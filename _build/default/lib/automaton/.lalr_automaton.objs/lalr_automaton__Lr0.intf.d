lib/automaton/lr0.mli: Format Grammar Item Symbol
