lib/automaton/lr0.ml: Array Format Grammar Hashtbl Int Item Lalr_sets List Printf Symbol
