lib/automaton/item.ml: Array Grammar
