lib/automaton/item.mli: Format Grammar Symbol
