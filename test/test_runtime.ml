(* Tests for lib/runtime: the parser driver, trees, tokens, and the
   sentence generator, including the generate→parse round-trip. *)

module Bitset = Lalr_sets.Bitset
module G = Lalr_grammar.Grammar
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Slr = Lalr_baselines.Slr
module Tables = Lalr_tables.Tables
module Token = Lalr_runtime.Token
module Tree = Lalr_runtime.Tree
module Driver = Lalr_runtime.Driver
module Sentence = Lalr_runtime.Sentence
module Registry = Lalr_suite.Registry
module Randgen = Lalr_suite.Randgen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let grammar_of name = Lazy.force (Registry.find name).grammar

let lalr_tables g =
  let a = Lr0.build g in
  let t = Lalr.compute a in
  Tables.build ~lookahead:(Lalr.lookahead t) a

let expr_tables = lazy (lalr_tables (grammar_of "expr"))

(* ------------------------------------------------------------------ *)
(* Token                                                              *)
(* ------------------------------------------------------------------ *)

let test_token_of_names () =
  let g = grammar_of "expr" in
  let toks = Token.of_names g [ "id"; "plus"; "id" ] in
  check_int "three tokens" 3 (List.length toks);
  check "terminal ids" true
    (List.map (fun t -> t.Token.terminal) toks
    = [
        Option.get (G.find_terminal g "id");
        Option.get (G.find_terminal g "plus");
        Option.get (G.find_terminal g "id");
      ]);
  match Token.of_names g [ "nope" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown terminal must fail"

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

let test_parse_simple () =
  let tbl = Lazy.force expr_tables in
  match Driver.parse_names tbl [ "id"; "plus"; "id"; "star"; "id" ] with
  | Error _ -> Alcotest.fail "must parse"
  | Ok tree ->
      let g = Lr0.grammar (Tables.automaton tbl) in
      check "valid tree" true (Tree.validate g tree);
      (* Yield round-trips. *)
      check "yield" true
        (List.map (fun t -> t.Token.lexeme) (Tree.yield tree)
        = [ "id"; "plus"; "id"; "star"; "id" ]);
      (* Precedence shape: the root must be e → e plus t (so * binds
         tighter), i.e. the root production's rhs contains plus. *)
      (match tree with
      | Tree.Node { prod; _ } ->
          check "root is the plus production" true
            (Array.exists
               (fun s -> G.symbol_name g s = "plus")
               (G.production g prod).rhs)
      | Tree.Leaf _ -> Alcotest.fail "root is a leaf")

let test_parse_parenthesised () =
  let tbl = Lazy.force expr_tables in
  check "balanced" true
    (Driver.accepts tbl
       (Token.of_names
          (Lr0.grammar (Tables.automaton tbl))
          [ "lparen"; "id"; "plus"; "id"; "rparen"; "star"; "id" ]))

let test_parse_rejects () =
  let tbl = Lazy.force expr_tables in
  let g = Lr0.grammar (Tables.automaton tbl) in
  List.iter
    (fun names ->
      check
        (String.concat " " names ^ " rejected")
        false
        (Driver.accepts tbl (Token.of_names g names)))
    [
      [ "plus" ];
      [ "id"; "plus" ];
      [ "id"; "id" ];
      [ "lparen"; "id" ];
      [ "id"; "rparen" ];
      [];
    ]

let test_parse_empty_input () =
  (* The JSON grammar doesn't derive ε either; empty input errors at
     position 0 with a helpful expected list. *)
  let tbl = lalr_tables (grammar_of "json") in
  match Driver.parse tbl [] with
  | Ok _ -> Alcotest.fail "empty input accepted"
  | Error e ->
      check_int "position" 0 e.Driver.position;
      check "expects something" true (e.Driver.expected <> [])

let test_error_details () =
  let tbl = Lazy.force expr_tables in
  let g = Lr0.grammar (Tables.automaton tbl) in
  match Driver.parse tbl (Token.of_names g [ "id"; "plus"; "plus" ]) with
  | Ok _ -> Alcotest.fail "must fail"
  | Error e ->
      check_int "position of second plus" 2 e.Driver.position;
      check "found is plus" true
        (e.Driver.found.Token.terminal = Option.get (G.find_terminal g "plus"));
      (* After "id +" the parser expects a start of t: ( or id. *)
      let expected_names =
        List.map (G.terminal_name g) e.Driver.expected |> List.sort compare
      in
      Alcotest.(check (list string)) "expected" [ "id"; "lparen" ] expected_names

let test_right_parse () =
  let tbl = Lazy.force expr_tables in
  match Driver.right_parse tbl
          (Token.of_names (Lr0.grammar (Tables.automaton tbl)) [ "id"; "plus"; "id" ])
  with
  | Error _ -> Alcotest.fail "must parse"
  | Ok prods ->
      let g = Lr0.grammar (Tables.automaton tbl) in
      (* id+id: f→id, t→f, e→t, f→id, t→f, e→e+t — six reductions. *)
      check_int "reduction count" 6 (List.length prods);
      let last = List.nth prods 5 in
      check "last reduction is the plus production" true
        (Array.exists
           (fun s -> G.symbol_name g s = "plus")
           (G.production g last).rhs)

let test_embedded_eof_rejects_rest () =
  let tbl = Lazy.force expr_tables in
  let g = Lr0.grammar (Tables.automaton tbl) in
  let toks = Token.of_names g [ "id" ] @ [ Token.eof ] @ Token.of_names g [ "plus" ] in
  (match Driver.parse tbl toks with
  | Ok _ -> Alcotest.fail "tokens after eof must be a syntax error"
  | Error e ->
      check_int "error position" 2 e.Driver.position;
      check "found the trailing token" true
        (G.terminal_name g e.Driver.found.Token.terminal = "plus");
      Alcotest.(check (list int)) "only eof expected" [ 0 ] e.Driver.expected);
  (* A well-placed eof stays accepted. *)
  check "explicit final eof ok" true
    (Driver.accepts tbl (Token.of_names g [ "id" ] @ [ Token.eof ]))

let test_parse_epsilon_reductions () =
  (* The ε-grammar exercises ε reductions in the driver. *)
  let tbl = lalr_tables (grammar_of "expr-ll") in
  let g = Lr0.grammar (Tables.automaton tbl) in
  match Driver.parse tbl (Token.of_names g [ "id"; "plus"; "id" ]) with
  | Error _ -> Alcotest.fail "must parse"
  | Ok tree ->
      check "valid" true (Tree.validate g tree);
      (* The tree contains ε-nodes (children = []). *)
      let rec has_eps = function
        | Tree.Leaf _ -> false
        | Tree.Node { children = []; _ } -> true
        | Tree.Node { children; _ } -> List.exists has_eps children
      in
      check "ε nodes present" true (has_eps tree)

let test_parse_with_slr_tables_same_language () =
  (* For an SLR(1) grammar, SLR and LALR tables accept the same strings
     (behavioural equivalence, not just set equality). *)
  let g = grammar_of "expr" in
  let a = Lr0.build g in
  let lalr_tbl = Tables.build ~lookahead:(Lalr.lookahead (Lalr.compute a)) a in
  let slr_tbl = Tables.build ~lookahead:(Slr.lookahead (Slr.compute a)) a in
  let prep = Sentence.prepare g in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 200 do
    let s = Sentence.generate ~max_depth:8 prep rng in
    check "same acceptance" true
      (Driver.accepts lalr_tbl s = Driver.accepts slr_tbl s)
  done

(* ------------------------------------------------------------------ *)
(* Trees                                                              *)
(* ------------------------------------------------------------------ *)

let test_tree_measures () =
  let tbl = Lazy.force expr_tables in
  let g = Lr0.grammar (Tables.automaton tbl) in
  match Driver.parse tbl (Token.of_names g [ "id" ]) with
  | Error _ -> Alcotest.fail "must parse"
  | Ok tree ->
      (* id: e → t → f → id: 3 interior nodes, 1 leaf. *)
      check_int "size" 4 (Tree.size tree);
      check_int "depth" 4 (Tree.depth tree);
      check_int "productions" 3 (Tree.production_count tree)

let test_tree_validate_rejects_wrong () =
  let g = grammar_of "expr" in
  (* e → t with a leaf child is invalid. *)
  let bogus =
    Tree.Node { prod = 2; children = [ Tree.Leaf (Token.make 1) ] }
  in
  check "invalid" false (Tree.validate g bogus)

(* ------------------------------------------------------------------ *)
(* Sentence generation and the round-trip property                    *)
(* ------------------------------------------------------------------ *)

let test_min_height () =
  let g = grammar_of "expr" in
  let prep = Sentence.prepare g in
  let nt n = Option.get (G.find_nonterminal g n) in
  (* f → id gives f height 1; t → f 2; e → t 3. *)
  check_int "f" 1 (Sentence.min_height prep (nt "f"));
  check_int "t" 2 (Sentence.min_height prep (nt "t"));
  check_int "e" 3 (Sentence.min_height prep (nt "e"))

let test_generator_terminates_small_budget () =
  let g = grammar_of "expr" in
  let prep = Sentence.prepare g in
  let rng = Random.State.make [| 1 |] in
  for _ = 1 to 100 do
    let s = Sentence.generate ~max_depth:0 prep rng in
    check "nonempty" true (s <> [])
  done

let test_generator_tree_valid () =
  let g = grammar_of "json" in
  let prep = Sentence.prepare g in
  let rng = Random.State.make [| 2 |] in
  for _ = 1 to 100 do
    let tree = Sentence.generate_tree ~max_depth:10 prep rng in
    check "generated tree validates" true (Tree.validate g tree)
  done

let roundtrip_on name =
  let g = grammar_of name in
  let tbl = lalr_tables g in
  let prep = Sentence.prepare g in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 100 do
    let sent = Sentence.generate ~max_depth:10 prep rng in
    match Driver.parse tbl sent with
    | Error e ->
        Alcotest.failf "%s: generated sentence rejected: %s" name
          (Format.asprintf "%a" (Driver.pp_error g) e)
    | Ok tree ->
        check "yield preserved" true
          (List.map (fun t -> t.Token.terminal) (Tree.yield tree)
          = List.map (fun t -> t.Token.terminal) sent);
        check "tree validates" true (Tree.validate g tree)
  done

let test_roundtrip_expr () = roundtrip_on "expr"
let test_roundtrip_json () = roundtrip_on "json"
let test_roundtrip_pascal () = roundtrip_on "mini-pascal"
let test_roundtrip_ada () = roundtrip_on "ada-subset"
let test_roundtrip_algol () = roundtrip_on "algol60"

(* On unambiguous grammars the parse tree equals the generated
   derivation tree, not just its yield. *)
let test_roundtrip_exact_tree () =
  let g = grammar_of "json" in
  let tbl = lalr_tables g in
  let prep = Sentence.prepare g in
  let rng = Random.State.make [| 5 |] in
  let rec equal_shape a b =
    match (a, b) with
    | Tree.Leaf x, Tree.Leaf y -> x.Token.terminal = y.Token.terminal
    | Tree.Node n1, Tree.Node n2 ->
        n1.prod = n2.prod
        && List.length n1.children = List.length n2.children
        && List.for_all2 equal_shape n1.children n2.children
    | _ -> false
  in
  for _ = 1 to 100 do
    let gen_tree = Sentence.generate_tree ~max_depth:8 prep rng in
    match Driver.parse tbl (Tree.yield gen_tree) with
    | Error _ -> Alcotest.fail "rejected"
    | Ok parsed -> check "same derivation tree" true (equal_shape gen_tree parsed)
  done

(* Random-grammar round-trip property: LALR(1)-clean random grammars
   parse their own sentences. *)
let prop_roundtrip_random =
  QCheck.Test.make ~name:"generate→parse round-trip (random grammars)"
    ~count:60 (Randgen.arbitrary ()) (fun g ->
      let a = Lr0.build g in
      let t = Lalr.compute a in
      let tbl = Tables.build ~lookahead:(Lalr.lookahead t) a in
      (* Only meaningful when conflict-free: conflicts mean some valid
         sentences lose parses to yacc-default resolution. *)
      if not (Lalr.is_lalr1 t) then true
      else begin
        let prep = Sentence.prepare g in
        let rng = Random.State.make [| 11 |] in
        let ok = ref true in
        for _ = 1 to 20 do
          let sent = Sentence.generate ~max_depth:8 prep rng in
          if not (Driver.accepts tbl sent) then ok := false
        done;
        !ok
      end)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "runtime"
    [
      ("token", [ Alcotest.test_case "of_names" `Quick test_token_of_names ]);
      ( "driver",
        [
          Alcotest.test_case "parse id+id*id with shape" `Quick
            test_parse_simple;
          Alcotest.test_case "parenthesised" `Quick test_parse_parenthesised;
          Alcotest.test_case "rejections" `Quick test_parse_rejects;
          Alcotest.test_case "empty input" `Quick test_parse_empty_input;
          Alcotest.test_case "error details" `Quick test_error_details;
          Alcotest.test_case "right parse" `Quick test_right_parse;
          Alcotest.test_case "embedded eof" `Quick
            test_embedded_eof_rejects_rest;
          Alcotest.test_case "ε reductions" `Quick
            test_parse_epsilon_reductions;
          Alcotest.test_case "SLR/LALR behavioural equivalence" `Quick
            test_parse_with_slr_tables_same_language;
        ] );
      ( "tree",
        [
          Alcotest.test_case "measures" `Quick test_tree_measures;
          Alcotest.test_case "validate rejects wrong shape" `Quick
            test_tree_validate_rejects_wrong;
        ] );
      ( "sentence",
        [
          Alcotest.test_case "min heights" `Quick test_min_height;
          Alcotest.test_case "terminates at depth 0" `Quick
            test_generator_terminates_small_budget;
          Alcotest.test_case "generated trees validate" `Quick
            test_generator_tree_valid;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "expr" `Quick test_roundtrip_expr;
          Alcotest.test_case "json" `Quick test_roundtrip_json;
          Alcotest.test_case "mini-pascal" `Slow test_roundtrip_pascal;
          Alcotest.test_case "ada-subset" `Slow test_roundtrip_ada;
          Alcotest.test_case "algol60" `Slow test_roundtrip_algol;
          Alcotest.test_case "exact tree on unambiguous" `Quick
            test_roundtrip_exact_tree;
        ] );
      qsuite "round-trip-props" [ prop_roundtrip_random ];
    ]
