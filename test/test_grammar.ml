(* Tests for lib/grammar: Grammar, Analysis, Reader, Transform. *)

module Bitset = Lalr_sets.Bitset
module G = Lalr_grammar.Grammar
module Symbol = Lalr_grammar.Symbol
module Analysis = Lalr_grammar.Analysis
module Reader = Lalr_grammar.Reader
module Transform = Lalr_grammar.Transform

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_strs = Alcotest.(check (list string))

(* Dragon-book expression grammar. *)
let expr_grammar () =
  G.make ~name:"expr"
    ~terminals:[ "+"; "*"; "("; ")"; "id" ]
    ~start:"E"
    ~rules:
      [
        ("E", [ "E"; "+"; "T" ], None);
        ("E", [ "T" ], None);
        ("T", [ "T"; "*"; "F" ], None);
        ("T", [ "F" ], None);
        ("F", [ "("; "E"; ")" ], None);
        ("F", [ "id" ], None);
      ]
    ()

(* LL(1)-style grammar with ε-productions (dragon book 4.28). *)
let epsilon_grammar () =
  G.make ~name:"eps"
    ~terminals:[ "+"; "*"; "("; ")"; "id" ]
    ~start:"E"
    ~rules:
      [
        ("E", [ "T"; "E'" ], None);
        ("E'", [ "+"; "T"; "E'" ], None);
        ("E'", [], None);
        ("T", [ "F"; "T'" ], None);
        ("T'", [ "*"; "F"; "T'" ], None);
        ("T'", [], None);
        ("F", [ "("; "E"; ")" ], None);
        ("F", [ "id" ], None);
      ]
    ()

let names g set =
  List.map (G.terminal_name g) (Bitset.elements set) |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Grammar construction                                               *)
(* ------------------------------------------------------------------ *)

let test_augmentation () =
  let g = expr_grammar () in
  check_int "terminal 0 is $" 0 (Option.get (G.find_terminal g "$"));
  check_str "nonterminal 0 is E'" "E'" (G.nonterminal_name g 0);
  let p0 = G.production g 0 in
  check_int "p0 lhs" 0 p0.lhs;
  check "p0 rhs = E $" true
    (p0.rhs = [| Symbol.N (Option.get (G.find_nonterminal g "E")); Symbol.eof |]);
  check_int "7 productions (6 + augmented)" 7 (G.n_productions g);
  check_int "6 terminals (5 + $)" 6 (G.n_terminals g);
  check_int "4 nonterminals (3 + start')" 4 (G.n_nonterminals g)

let test_by_lhs () =
  let g = expr_grammar () in
  let e = Option.get (G.find_nonterminal g "E") in
  check_int "E has 2 productions" 2 (Array.length (G.productions_of g e));
  Array.iter
    (fun pid -> check_int "lhs" e (G.production g pid).lhs)
    (G.productions_of g e)

let test_symbols_count () =
  let g = expr_grammar () in
  (* |G| = Σ (1+|rhs|): augmented 3 + (4+2+4+2+4+2) = 21. *)
  check_int "|G|" 21 (G.symbols_count g)

let test_make_errors () =
  let mk ?prec ?(terminals = [ "a" ]) ?(start = "S") rules () =
    ignore (G.make ?prec ~terminals ~start ~rules ())
  in
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "no rules" (mk []);
  raises "unknown rhs symbol" (mk [ ("S", [ "nope" ], None) ]);
  raises "unknown start" (mk ~start:"X" [ ("S", [ "a" ], None) ]);
  raises "reserved $"
    (mk ~terminals:[ "$" ] [ ("S", [ "$" ], None) ]);
  raises "duplicate terminal"
    (mk ~terminals:[ "a"; "a" ] [ ("S", [ "a" ], None) ]);
  raises "terminal as lhs" (mk [ ("S", [ "a" ], None); ("a", [], None) ]);
  raises "unknown %prec" (mk [ ("S", [ "a" ], Some "zzz") ]);
  raises "%prec without declared precedence"
    (mk [ ("S", [ "a" ], Some "a") ]);
  raises "duplicate precedence level"
    (mk
       ~prec:[ (G.Left, [ "a" ]); (G.Right, [ "a" ]) ]
       [ ("S", [ "a" ], None) ])

let test_precedence_assignment () =
  let g =
    G.make
      ~prec:[ (G.Left, [ "+" ]); (G.Left, [ "*" ]); (G.Right, [ "u" ]) ]
      ~terminals:[ "+"; "*"; "u"; "id" ]
      ~start:"E"
      ~rules:
        [
          ("E", [ "E"; "+"; "E" ], None);
          ("E", [ "E"; "*"; "E" ], None);
          ("E", [ "u"; "E" ], None);
          ("E", [ "u"; "E" ], Some "+");
          ("E", [ "id" ], None);
        ]
      ()
  in
  let prec i = (G.production g i).prec in
  check "p1 + level" true (prec 1 = Some (1, G.Left));
  check "p2 * level" true (prec 2 = Some (2, G.Left));
  check "p3 rightmost terminal" true (prec 3 = Some (3, G.Right));
  check "p4 %prec override" true (prec 4 = Some (1, G.Left));
  check "p5 none" true (prec 5 = None)

(* ------------------------------------------------------------------ *)
(* Analysis                                                           *)
(* ------------------------------------------------------------------ *)

let test_nullable () =
  let a = Analysis.compute (epsilon_grammar ()) in
  let g = Analysis.grammar a in
  let nt n = Option.get (G.find_nonterminal g n) in
  check "E' nullable" true (Analysis.nullable a (nt "E'"));
  check "T' nullable" true (Analysis.nullable a (nt "T'"));
  check "E not" false (Analysis.nullable a (nt "E"));
  check "T not" false (Analysis.nullable a (nt "T"));
  check "F not" false (Analysis.nullable a (nt "F"))

let test_first () =
  let a = Analysis.compute (epsilon_grammar ()) in
  let g = Analysis.grammar a in
  let nt n = Option.get (G.find_nonterminal g n) in
  check_strs "FIRST(E)" [ "("; "id" ] (names g (Analysis.first a (nt "E")));
  check_strs "FIRST(E')" [ "+" ] (names g (Analysis.first a (nt "E'")));
  check_strs "FIRST(T')" [ "*" ] (names g (Analysis.first a (nt "T'")));
  check_strs "FIRST(F)" [ "("; "id" ] (names g (Analysis.first a (nt "F")))

let test_follow () =
  (* Dragon book 4.30: FOLLOW(E) = FOLLOW(E') = {), $},
     FOLLOW(T) = FOLLOW(T') = {+, ), $}, FOLLOW(F) = {+, *, ), $}. *)
  let a = Analysis.compute (epsilon_grammar ()) in
  let g = Analysis.grammar a in
  let nt n = Option.get (G.find_nonterminal g n) in
  check_strs "FOLLOW(E)" [ "$"; ")" ] (names g (Analysis.follow a (nt "E")));
  check_strs "FOLLOW(E')" [ "$"; ")" ] (names g (Analysis.follow a (nt "E'")));
  check_strs "FOLLOW(T)" [ "$"; ")"; "+" ]
    (names g (Analysis.follow a (nt "T")));
  check_strs "FOLLOW(T')" [ "$"; ")"; "+" ]
    (names g (Analysis.follow a (nt "T'")));
  check_strs "FOLLOW(F)" [ "$"; ")"; "*"; "+" ]
    (names g (Analysis.follow a (nt "F")))

let test_first_sentence () =
  let a = Analysis.compute (epsilon_grammar ()) in
  let g = Analysis.grammar a in
  let nt n = Symbol.N (Option.get (G.find_nonterminal g n)) in
  let t n = Symbol.T (Option.get (G.find_terminal g n)) in
  (* FIRST(E' T' id) = {+, *, id}, not nullable. *)
  let set, nullable =
    Analysis.first_sentence a [| nt "E'"; nt "T'"; t "id" |] ~from:0
  in
  check_strs "first" [ "*"; "+"; "id" ] (names g set);
  check "not nullable" false nullable;
  (* FIRST(E' T') = {+, *}, nullable. *)
  let set, nullable = Analysis.first_sentence a [| nt "E'"; nt "T'" |] ~from:0 in
  check_strs "first2" [ "*"; "+" ] (names g set);
  check "nullable" true nullable;
  let set, nullable = Analysis.first_sentence a [||] ~from:0 in
  check "empty first" true (Bitset.is_empty set);
  check "empty nullable" true nullable

let test_reduced_detection () =
  let g = expr_grammar () in
  check "expr reduced" true (Analysis.is_reduced (Analysis.compute g));
  let bad =
    G.make ~terminals:[ "a"; "b" ] ~start:"S"
      ~rules:
        [
          ("S", [ "a" ], None);
          ("U", [ "U"; "b" ], None) (* unproductive and unreachable *);
        ]
      ()
  in
  let a = Analysis.compute bad in
  check "not reduced" false (Analysis.is_reduced a);
  let u = Option.get (G.find_nonterminal bad "U") in
  check "U unproductive" false (Analysis.productive a u);
  check "U unreachable" false (Analysis.reachable a (Symbol.N u))

let test_follow_start_contains_eof () =
  let g = expr_grammar () in
  let a = Analysis.compute g in
  let e = Option.get (G.find_nonterminal g "E") in
  check "$ in FOLLOW(E)" true (Bitset.mem (Analysis.follow a e) 0)

(* ------------------------------------------------------------------ *)
(* Reader                                                             *)
(* ------------------------------------------------------------------ *)

let expr_text =
  {|
/* the classic expression grammar */
%token PLUS TIMES LPAREN RPAREN ID
%start e
%%
e : e PLUS t | t ;
t : t TIMES f | f ;  // alternatives
f : LPAREN e RPAREN | ID ;
|}

let test_reader_basic () =
  let g = Reader.of_string expr_text in
  check_int "productions" 7 (G.n_productions g);
  check_int "terminals" 6 (G.n_terminals g);
  check_str "start" "e" (G.nonterminal_name g g.start)

let test_reader_default_start () =
  let g = Reader.of_string "%token A %% s : A ; t : s ;" in
  check_str "first lhs is start" "s" (G.nonterminal_name g g.start)

let test_reader_quoted_terminals () =
  let g = Reader.of_string {| %% e : e '+' t | t ; t : "id" ; |} in
  check "has +" true (G.find_terminal g "+" <> None);
  check "has id" true (G.find_terminal g "id" <> None);
  check_int "productions" 4 (G.n_productions g)

let test_reader_empty_alternative () =
  let g = Reader.of_string "%token A %% s : A s | %empty ;" in
  let s = Option.get (G.find_nonterminal g "s") in
  let has_eps =
    Array.exists
      (fun pid -> Array.length (G.production g pid).rhs = 0)
      (G.productions_of g s)
  in
  check "epsilon production" true has_eps;
  (* bare empty alternative *)
  let g2 = Reader.of_string "%token A %% s : A s | ;" in
  check_int "same shape" (G.n_productions g) (G.n_productions g2)

let test_reader_prec () =
  let g =
    Reader.of_string
      {| %token PLUS STAR ID
         %left PLUS
         %left STAR
         %% e : e PLUS e | e STAR e | ID %prec PLUS ; |}
  in
  check "p1" true ((G.production g 1).prec = Some (1, G.Left));
  check "p2" true ((G.production g 2).prec = Some (2, G.Left));
  check "p3 %prec" true ((G.production g 3).prec = Some (1, G.Left))

let reader_fails ?(semantic = false) name src =
  match Reader.of_string src with
  | exception Reader.Error _ when not semantic -> ()
  | exception Invalid_argument _ when semantic -> ()
  | exception e ->
      Alcotest.failf "%s: wrong exception %s" name (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected failure" name

let test_reader_errors () =
  reader_fails "unterminated comment" "%token A /* oops";
  reader_fails "unterminated quote" "%% s : ' ;";
  reader_fails "stray percent" "% token A %% s : A ;";
  reader_fails "unknown directive" "%frobnicate %% s : s ;";
  reader_fails "missing colon" "%token A %% s A ;";
  reader_fails "missing semi" "%token A %% s : A";
  reader_fails "no rules" "%token A %%";
  reader_fails "garbage char" "%token A %% s : A ? ;";
  reader_fails "misplaced %empty" "%token A %% s : A %empty ;";
  reader_fails ~semantic:true "undeclared symbol" "%% s : NOPE ;";
  reader_fails ~semantic:true "unknown %start" "%token A %start t %% s : A ;"

let test_reader_error_position () =
  match Reader.of_string "%token A\n%% s :\n  @ ;" with
  | exception Reader.Error e ->
      check_int "line" 3 e.line;
      check_int "col" 3 e.col
  | _ -> Alcotest.fail "expected error"

let test_reader_tolerant_collects () =
  (* Two distinct lexical errors plus a clean rule: one call reports
     both and still builds the surviving grammar. *)
  let g, errs =
    Reader.of_string_tolerant ~name:"t"
      "%token a b\n%start s\n%%\ns : a @ ;\ns : b $ ;\ns : a b ;\n"
  in
  check "grammar survives" true (g <> None);
  check_int "two errors" 2 (List.length errs);
  (match errs with
  | [ e1; e2 ] ->
      check_int "first line" 4 e1.Reader.line;
      check_int "second line" 5 e2.Reader.line
  | _ -> Alcotest.fail "expected two errors");
  (* Error-free input coincides with the strict reader. *)
  let src = "%token a\n%start s\n%%\ns : a ;\n" in
  let g2, errs2 = Reader.of_string_tolerant src in
  check "clean input: no errors" true (errs2 = []);
  match g2 with
  | Some g2 -> check "same grammar" true
      (G.equal_structure g2 (Reader.of_string src))
  | None -> Alcotest.fail "clean input must build"

let test_reader_tolerant_file_field () =
  let e_of src =
    match Reader.of_string_tolerant ~source:"dir/g.cfg" src with
    | _, e :: _ -> e
    | _ -> Alcotest.fail "expected an error"
  in
  let e = e_of "%token a\n%start s\n%%\ns : @ ;\n" in
  check "file recorded" true (e.Reader.file = Some "dir/g.cfg");
  check "pp mentions file" true
    (let s = Format.asprintf "%a" Reader.pp_error e in
     String.length s > 9 && String.sub s 0 9 = "dir/g.cfg")

let test_reader_no_rules_position () =
  (* The "no rules" diagnostic points at the (empty) rules section —
     not the historical hardcoded 1:1 — and carries the source name. *)
  let src = "%token a\n%start s\n%%\n" in
  (match Reader.of_string ~source:"empty.cfg" src with
  | exception Reader.Error e ->
      check "file" true (e.Reader.file = Some "empty.cfg");
      check_int "line is the rules section" 4 e.Reader.line;
      check_int "col" 1 e.Reader.col
  | _ -> Alcotest.fail "expected an error");
  match Reader.of_string_tolerant ~source:"empty.cfg" src with
  | None, errs ->
      check "errors reported" true (errs <> []);
      let last = List.nth errs (List.length errs - 1) in
      check "no rules is last" true (last.Reader.message = "no rules");
      check "file" true (last.Reader.file = Some "empty.cfg")
  | _ -> Alcotest.fail "expected no grammar"

let test_reader_roundtrip () =
  let g = expr_grammar () in
  let g2 = Reader.of_string (Reader.to_string g) in
  check "roundtrip" true (G.equal_structure g g2);
  let g3 = Reader.of_string (Reader.to_string g2) in
  check "idempotent" true (G.equal_structure g2 g3)

let test_reader_roundtrip_quoted_and_eps () =
  let g =
    G.make
      ~prec:[ (G.Left, [ "+" ]) ]
      ~terminals:[ "+"; "id" ]
      ~start:"S"
      ~rules:[ ("S", [ "S"; "+"; "S" ], None); ("S", [ "id" ], None); ("S", [], None) ]
      ()
  in
  let g2 = Reader.of_string (Reader.to_string g) in
  check "roundtrip with quoting and ε" true (G.equal_structure g g2)

(* ------------------------------------------------------------------ *)
(* Transform                                                          *)
(* ------------------------------------------------------------------ *)

let test_reduce () =
  let g =
    G.make ~terminals:[ "a"; "b" ] ~start:"S"
      ~rules:
        [
          ("S", [ "A"; "a" ], None);
          ("S", [ "B" ], None) (* B unproductive *);
          ("A", [ "b" ], None);
          ("B", [ "B"; "a" ], None);
          ("C", [ "a" ], None) (* C unreachable *);
        ]
      ()
  in
  let r = Transform.reduce g in
  check "reduced" true (Analysis.is_reduced (Analysis.compute r));
  check "B gone" true (G.find_nonterminal r "B" = None);
  check "C gone" true (G.find_nonterminal r "C" = None);
  check_int "productions" 3 (G.n_productions r)

let test_reduce_identity () =
  let g = expr_grammar () in
  check "already reduced" true (G.equal_structure g (Transform.reduce g))

let test_reduce_empty_language () =
  let g =
    G.make ~terminals:[ "a" ] ~start:"S" ~rules:[ ("S", [ "S"; "a" ], None) ] ()
  in
  match Transform.reduce g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for empty language"

let test_reduce_unreachable_only_after_unproductive () =
  (* D is reachable only through a production that also uses unproductive U;
     a correct implementation removes D as well. *)
  let g =
    G.make ~terminals:[ "a" ] ~start:"S"
      ~rules:
        [
          ("S", [ "a" ], None);
          ("S", [ "U"; "D" ], None);
          ("U", [ "U" ], None);
          ("D", [ "a" ], None);
        ]
      ()
  in
  let r = Transform.reduce g in
  check "D gone" true (G.find_nonterminal r "D" = None);
  check_int "one user production + augmented" 2 (G.n_productions r)

let test_eliminate_epsilon () =
  let g = epsilon_grammar () in
  let r = Transform.eliminate_epsilon g in
  Array.iteri
    (fun i (p : G.production) ->
      if i > 0 then check "no ε rule" true (Array.length p.rhs > 0))
    r.productions;
  (* The transformed grammar still derives id+id*id: spot-check FIRST. *)
  let a = Analysis.compute r in
  let e = Option.get (G.find_nonterminal r "E") in
  check_strs "FIRST preserved" [ "("; "id" ] (names r (Analysis.first a e));
  check "nothing nullable" true
    (not
       (List.exists
          (fun n -> Analysis.nullable a n)
          (List.init (G.n_nonterminals r - 1) (fun i -> i + 1))))

let test_cyclic () =
  let g =
    G.make ~terminals:[ "a" ] ~start:"S"
      ~rules:
        [ ("S", [ "A" ], None); ("A", [ "S" ], None); ("A", [ "a" ], None) ]
      ()
  in
  let cyc = Transform.cyclic_nonterminals g in
  check_int "two cyclic nts" 2 (List.length cyc);
  check_strs "expr not cyclic" []
    (List.map (G.nonterminal_name g) (Transform.cyclic_nonterminals (expr_grammar ())))

let test_left_recursive () =
  let g = expr_grammar () in
  let lr =
    Transform.left_recursive_nonterminals g
    |> List.map (G.nonterminal_name g)
    |> List.sort compare
  in
  check_strs "E and T left recursive" [ "E"; "T" ] lr;
  let g2 = epsilon_grammar () in
  check_strs "eps grammar not left recursive" []
    (List.map (G.nonterminal_name g2)
       (Transform.left_recursive_nonterminals g2))

(* Properties: FIRST/FOLLOW invariants on random grammars arrive with the
   random grammar generator in lib/suite (tested in test_suite.ml). *)

let () =
  Alcotest.run "grammar"
    [
      ( "construction",
        [
          Alcotest.test_case "augmentation" `Quick test_augmentation;
          Alcotest.test_case "by_lhs index" `Quick test_by_lhs;
          Alcotest.test_case "symbols_count" `Quick test_symbols_count;
          Alcotest.test_case "errors" `Quick test_make_errors;
          Alcotest.test_case "precedence assignment" `Quick
            test_precedence_assignment;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "nullable" `Quick test_nullable;
          Alcotest.test_case "first" `Quick test_first;
          Alcotest.test_case "follow (dragon 4.30)" `Quick test_follow;
          Alcotest.test_case "first of sentential forms" `Quick
            test_first_sentence;
          Alcotest.test_case "reduced detection" `Quick test_reduced_detection;
          Alcotest.test_case "$ in FOLLOW(start)" `Quick
            test_follow_start_contains_eof;
        ] );
      ( "reader",
        [
          Alcotest.test_case "basic" `Quick test_reader_basic;
          Alcotest.test_case "default start" `Quick test_reader_default_start;
          Alcotest.test_case "quoted terminals" `Quick
            test_reader_quoted_terminals;
          Alcotest.test_case "empty alternatives" `Quick
            test_reader_empty_alternative;
          Alcotest.test_case "precedence directives" `Quick test_reader_prec;
          Alcotest.test_case "error cases" `Quick test_reader_errors;
          Alcotest.test_case "error positions" `Quick
            test_reader_error_position;
          Alcotest.test_case "tolerant collects errors" `Quick
            test_reader_tolerant_collects;
          Alcotest.test_case "tolerant carries the file" `Quick
            test_reader_tolerant_file_field;
          Alcotest.test_case "no-rules position" `Quick
            test_reader_no_rules_position;
          Alcotest.test_case "print/parse roundtrip" `Quick
            test_reader_roundtrip;
          Alcotest.test_case "roundtrip with quoting and ε" `Quick
            test_reader_roundtrip_quoted_and_eps;
        ] );
      ( "transform",
        [
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "reduce is identity on reduced" `Quick
            test_reduce_identity;
          Alcotest.test_case "reduce rejects empty language" `Quick
            test_reduce_empty_language;
          Alcotest.test_case "unproductive-then-unreachable order" `Quick
            test_reduce_unreachable_only_after_unproductive;
          Alcotest.test_case "eliminate epsilon" `Quick test_eliminate_epsilon;
          Alcotest.test_case "cyclic detection" `Quick test_cyclic;
          Alcotest.test_case "left recursion detection" `Quick
            test_left_recursive;
        ] );
    ]
