/* A Menhir-style grammar (lalrgen auto-detects the .mly suffix).
   Try:  dune exec bin/lalrgen.exe -- report grammars/calc.mly  */
%token <int> INT
%token PLUS MINUS TIMES DIV LPAREN RPAREN EOF
%left PLUS MINUS
%left TIMES DIV
%start <int> main
%%
main: e EOF { $1 }
e: e PLUS e   { $1 + $3 }
 | e MINUS e  { $1 - $3 }
 | e TIMES e  { $1 * $3 }
 | e DIV e    { $1 / $3 }
 | LPAREN e RPAREN { $2 }
 | INT { $1 }
