(* Tests for lib/sets: Bitset, Tarjan, Digraph, Csr, Vec. *)

module Bitset = Lalr_sets.Bitset
module Tarjan = Lalr_sets.Tarjan
module Digraph = Lalr_sets.Digraph
module Csr = Lalr_sets.Csr
module Vec = Lalr_sets.Vec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Bitset units                                                       *)
(* ------------------------------------------------------------------ *)

let test_bitset_empty () =
  let s = Bitset.create 100 in
  check "empty" true (Bitset.is_empty s);
  check_int "cardinal" 0 (Bitset.cardinal s);
  check_ints "elements" [] (Bitset.elements s);
  check "choose" true (Bitset.choose s = None)

let test_bitset_add_mem () =
  let s = Bitset.create 100 in
  Bitset.add s 0;
  Bitset.add s 61;
  Bitset.add s 62;
  Bitset.add s 99;
  check "mem 0" true (Bitset.mem s 0);
  check "mem 61" true (Bitset.mem s 61);
  check "mem 62" true (Bitset.mem s 62);
  check "mem 99" true (Bitset.mem s 99);
  check "not mem 1" false (Bitset.mem s 1);
  check "not mem 63" false (Bitset.mem s 63);
  check_int "cardinal" 4 (Bitset.cardinal s);
  check_ints "elements sorted" [ 0; 61; 62; 99 ] (Bitset.elements s)

let test_bitset_remove () =
  let s = Bitset.of_list 10 [ 1; 5; 9 ] in
  Bitset.remove s 5;
  check "removed" false (Bitset.mem s 5);
  check_ints "rest" [ 1; 9 ] (Bitset.elements s);
  Bitset.remove s 5 (* removing twice is a no-op *);
  check_int "cardinal" 2 (Bitset.cardinal s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "add -1" (Invalid_argument "Bitset: element -1 outside universe 10")
    (fun () -> Bitset.add s (-1));
  Alcotest.check_raises "add 10" (Invalid_argument "Bitset: element 10 outside universe 10")
    (fun () -> Bitset.add s 10);
  let t = Bitset.create 11 in
  Alcotest.check_raises "universe mismatch" (Invalid_argument "Bitset: universe mismatch")
    (fun () -> ignore (Bitset.union s t))

let test_bitset_zero_universe () =
  let s = Bitset.create 0 in
  check "empty" true (Bitset.is_empty s);
  check "equal self" true (Bitset.equal s (Bitset.copy s));
  check "subset self" true (Bitset.subset s s)

let test_bitset_union_into () =
  let a = Bitset.of_list 70 [ 1; 2; 65 ] in
  let b = Bitset.of_list 70 [ 2; 3 ] in
  let changed = Bitset.union_into ~into:a b in
  check "changed" true changed;
  check_ints "union" [ 1; 2; 3; 65 ] (Bitset.elements a);
  let changed2 = Bitset.union_into ~into:a b in
  check "unchanged on repeat" false changed2

let test_bitset_setops () =
  let a = Bitset.of_list 200 [ 0; 50; 100; 150 ] in
  let b = Bitset.of_list 200 [ 50; 150; 199 ] in
  check_ints "inter" [ 50; 150 ] (Bitset.elements (Bitset.inter a b));
  check_ints "diff" [ 0; 100 ] (Bitset.elements (Bitset.diff a b));
  check_ints "union" [ 0; 50; 100; 150; 199 ]
    (Bitset.elements (Bitset.union a b));
  check "subset no" false (Bitset.subset a b);
  check "subset yes" true (Bitset.subset (Bitset.inter a b) a);
  check "disjoint no" false (Bitset.disjoint a b);
  check "disjoint yes" true (Bitset.disjoint (Bitset.diff a b) b)

let test_bitset_copy_independent () =
  let a = Bitset.of_list 10 [ 3 ] in
  let b = Bitset.copy a in
  Bitset.add b 4;
  check "original unchanged" false (Bitset.mem a 4);
  check "copy has it" true (Bitset.mem b 4)

(* Bitset properties against a sorted-int-list model. *)
let gen_universe = QCheck.Gen.int_range 1 300

let gen_set =
  QCheck.Gen.(
    gen_universe >>= fun n ->
    list_size (int_bound 40) (int_bound (n - 1)) >|= fun xs -> (n, xs))

let arb_set =
  QCheck.make gen_set ~print:(fun (n, xs) ->
      Printf.sprintf "universe %d: [%s]" n
        (String.concat ";" (List.map string_of_int xs)))

let arb_two_sets =
  QCheck.make
    QCheck.Gen.(
      gen_universe >>= fun n ->
      pair
        (list_size (int_bound 40) (int_bound (n - 1)))
        (list_size (int_bound 40) (int_bound (n - 1)))
      >|= fun (a, b) -> (n, a, b))
    ~print:(fun (n, a, b) ->
      Printf.sprintf "universe %d: [%s] [%s]" n
        (String.concat ";" (List.map string_of_int a))
        (String.concat ";" (List.map string_of_int b)))

let model xs = List.sort_uniq Int.compare xs

let prop_elements_model =
  QCheck.Test.make ~name:"bitset elements = sorted dedup" ~count:500 arb_set
    (fun (n, xs) -> Bitset.elements (Bitset.of_list n xs) = model xs)

let prop_union_model =
  QCheck.Test.make ~name:"bitset union models list union" ~count:500
    arb_two_sets (fun (n, a, b) ->
      Bitset.elements (Bitset.union (Bitset.of_list n a) (Bitset.of_list n b))
      = model (a @ b))

let prop_inter_model =
  QCheck.Test.make ~name:"bitset inter models list inter" ~count:500
    arb_two_sets (fun (n, a, b) ->
      Bitset.elements (Bitset.inter (Bitset.of_list n a) (Bitset.of_list n b))
      = List.filter (fun x -> List.mem x b) (model a))

let prop_diff_model =
  QCheck.Test.make ~name:"bitset diff models list diff" ~count:500
    arb_two_sets (fun (n, a, b) ->
      Bitset.elements (Bitset.diff (Bitset.of_list n a) (Bitset.of_list n b))
      = List.filter (fun x -> not (List.mem x b)) (model a))

let prop_cardinal =
  QCheck.Test.make ~name:"bitset cardinal = |model|" ~count:500 arb_set
    (fun (n, xs) ->
      Bitset.cardinal (Bitset.of_list n xs) = List.length (model xs))

let prop_subset_union =
  QCheck.Test.make ~name:"a ⊆ a ∪ b and b ⊆ a ∪ b" ~count:500 arb_two_sets
    (fun (n, a, b) ->
      let sa = Bitset.of_list n a and sb = Bitset.of_list n b in
      let u = Bitset.union sa sb in
      Bitset.subset sa u && Bitset.subset sb u)

let prop_compare_equal =
  QCheck.Test.make ~name:"compare = 0 iff equal" ~count:500 arb_two_sets
    (fun (n, a, b) ->
      let sa = Bitset.of_list n a and sb = Bitset.of_list n b in
      Bitset.equal sa sb = (Bitset.compare sa sb = 0)
      && Bitset.equal sa sb = (model a = model b))

(* ------------------------------------------------------------------ *)
(* Tarjan                                                             *)
(* ------------------------------------------------------------------ *)

let graph_of_edges _n edges v =
  List.filter_map (fun (a, b) -> if a = v then Some b else None) edges

let test_tarjan_dag () =
  (* 0 -> 1 -> 2, 0 -> 2: all singleton SCCs, acyclic. *)
  let succ = graph_of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let r = Tarjan.scc ~n:3 ~successors:succ in
  check_int "three components" 3 (Array.length r.components);
  check_ints "no nontrivial" []
    (List.concat (Tarjan.nontrivial ~n:3 ~successors:succ));
  (* Reverse topological numbering: edge a->b implies comp(a) > comp(b). *)
  check "topo 0>1" true (r.component.(0) > r.component.(1));
  check "topo 1>2" true (r.component.(1) > r.component.(2))

let test_tarjan_cycle () =
  let succ = graph_of_edges 4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  let r = Tarjan.scc ~n:4 ~successors:succ in
  check_int "two components" 2 (Array.length r.components);
  check "0,1,2 together" true
    (r.component.(0) = r.component.(1) && r.component.(1) = r.component.(2));
  check "3 apart" true (r.component.(3) <> r.component.(0));
  match Tarjan.nontrivial ~n:4 ~successors:succ with
  | [ c ] -> check_ints "cycle members" [ 0; 1; 2 ] (List.sort compare c)
  | l -> Alcotest.failf "expected one nontrivial SCC, got %d" (List.length l)

let test_tarjan_self_loop () =
  let succ = graph_of_edges 2 [ (0, 0) ] in
  match Tarjan.nontrivial ~n:2 ~successors:succ with
  | [ [ 0 ] ] -> ()
  | _ -> Alcotest.fail "self-loop must be a nontrivial SCC"

let test_tarjan_empty_graph () =
  let r = Tarjan.scc ~n:0 ~successors:(fun _ -> []) in
  check_int "no components" 0 (Array.length r.components)

let test_tarjan_long_chain () =
  (* Deep graph: must not overflow the stack (iterative implementation). *)
  let n = 200_000 in
  let succ v = if v + 1 < n then [ v + 1 ] else [] in
  let r = Tarjan.scc ~n ~successors:succ in
  check_int "all singletons" n (Array.length r.components)

(* ------------------------------------------------------------------ *)
(* Digraph                                                            *)
(* ------------------------------------------------------------------ *)

let run_digraph n edges init_l =
  let successors = graph_of_edges n edges in
  let init x = Bitset.of_list 64 (init_l x) in
  Digraph.ForBitset.run ~n ~successors ~init

let test_digraph_dag () =
  (* F(0) must pick up F'(1) and F'(2). *)
  let values, stats =
    run_digraph 3 [ (0, 1); (1, 2) ] (fun x -> [ x * 10 ])
  in
  check_ints "F(0)" [ 0; 10; 20 ] (Bitset.elements values.(0));
  check_ints "F(1)" [ 10; 20 ] (Bitset.elements values.(1));
  check_ints "F(2)" [ 20 ] (Bitset.elements values.(2));
  check_ints "acyclic" [] (List.concat stats.nontrivial_sccs)

let test_digraph_cycle_shares () =
  (* 0 <-> 1 plus 1 -> 2: both cycle members end with the same set. *)
  let values, stats =
    run_digraph 3 [ (0, 1); (1, 0); (1, 2) ] (fun x -> [ x + 1 ])
  in
  check_ints "F(0)" [ 1; 2; 3 ] (Bitset.elements values.(0));
  check "F(0) == F(1)" true (Bitset.equal values.(0) values.(1));
  check_ints "F(2) untouched" [ 3 ] (Bitset.elements values.(2));
  check_int "one nontrivial scc" 1 (List.length stats.nontrivial_sccs)

let test_digraph_self_loop () =
  let values, stats = run_digraph 1 [ (0, 0) ] (fun _ -> [ 7 ]) in
  check_ints "F(0)" [ 7 ] (Bitset.elements values.(0));
  check_int "self loop reported" 1 (List.length stats.nontrivial_sccs)

let test_digraph_no_edges () =
  let values, stats = run_digraph 3 [] (fun x -> [ x ]) in
  check_ints "F(1)" [ 1 ] (Bitset.elements values.(1));
  check_int "edges" 0 stats.edges_examined

let test_digraph_does_not_mutate_init () =
  let inits = Array.init 2 (fun x -> Bitset.of_list 8 [ x ]) in
  let values, _ =
    Digraph.ForBitset.run ~n:2
      ~successors:(graph_of_edges 2 [ (0, 1) ])
      ~init:(fun x -> inits.(x))
  in
  check_ints "init 0 untouched" [ 0 ] (Bitset.elements inits.(0));
  check_ints "result" [ 0; 1 ] (Bitset.elements values.(0))

(* Property: Digraph result equals the naive fixpoint on random graphs. *)
let arb_graph =
  let gen =
    QCheck.Gen.(
      int_range 1 40 >>= fun n ->
      list_size (int_bound 120) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      >|= fun edges -> (n, edges))
  in
  QCheck.make gen ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges)))

let prop_digraph_vs_naive =
  QCheck.Test.make ~name:"digraph = naive fixpoint (random graphs)"
    ~count:300 arb_graph (fun (n, edges) ->
      let successors = graph_of_edges n edges in
      let init x = Bitset.of_list 64 [ x; (x + 13) mod 64 ] in
      let fast, _ = Digraph.ForBitset.run ~n ~successors ~init in
      let slow = Digraph.naive_fixpoint ~n ~successors ~init in
      Array.for_all2 Bitset.equal fast slow)

let prop_digraph_sccs_match_tarjan =
  QCheck.Test.make ~name:"digraph nontrivial SCCs = Tarjan's" ~count:300
    arb_graph (fun (n, edges) ->
      let successors = graph_of_edges n edges in
      let init _ = Bitset.create 1 in
      let _, stats = Digraph.ForBitset.run ~n ~successors ~init in
      let norm l = List.sort compare (List.map (List.sort Int.compare) l) in
      norm stats.nontrivial_sccs = norm (Tarjan.nontrivial ~n ~successors))

(* ------------------------------------------------------------------ *)
(* Csr                                                                *)
(* ------------------------------------------------------------------ *)

let csr_of_edges ?rev ?n_cols n edges =
  let b = Csr.create_builder ?n_cols n in
  List.iter (fun (src, dst) -> Csr.add b ~src ~dst) edges;
  Csr.build ?rev b

let test_csr_stream_order () =
  let t = csr_of_edges 3 [ (0, 2); (1, 0); (0, 1); (2, 2); (0, 0) ] in
  check_int "rows" 3 (Csr.n_rows t);
  check_int "edges" 5 (Csr.n_edges t);
  check_ints "row 0 keeps stream order" [ 2; 1; 0 ] (Csr.row_list t 0);
  check_ints "row 1" [ 0 ] (Csr.row_list t 1);
  check_ints "row 2" [ 2 ] (Csr.row_list t 2);
  check_int "degree 0" 3 (Csr.degree t 0)

let test_csr_rev_order () =
  (* ~rev:true must yield exactly what cons-accumulated lists held:
     the reverse of the insertion order, per row. *)
  let t = csr_of_edges ~rev:true 3 [ (0, 2); (1, 0); (0, 1); (0, 0) ] in
  check_ints "row 0 reversed" [ 0; 1; 2 ] (Csr.row_list t 0);
  check_ints "row 1 reversed" [ 0 ] (Csr.row_list t 1);
  check_ints "row 2 empty" [] (Csr.row_list t 2)

let test_csr_of_rows_roundtrip () =
  let rows = [| [ 3; 1; 1 ]; []; [ 0 ]; [ 3; 2 ] |] in
  let t = Csr.of_rows rows in
  Array.iteri
    (fun x row -> check_ints (Printf.sprintf "row %d" x) row (Csr.row_list t x))
    rows;
  let acc = ref [] in
  Csr.iter_row t 0 (fun y -> acc := y :: !acc);
  check_ints "iter_row order" [ 3; 1; 1 ] (List.rev !acc);
  check_int "fold_row" 5 (Csr.fold_row t 0 (fun a y -> a + y) 0);
  let all = ref [] in
  Csr.edges t (fun ~src ~dst -> all := (src, dst) :: !all);
  check_int "edges enumerated" 6 (List.length !all)

let test_csr_bipartite () =
  (* Destination universe wider than the row count (lookback's shape:
     reduction rows, transition columns). *)
  let t = csr_of_edges ~n_cols:10 2 [ (0, 9); (1, 7) ] in
  check_ints "row 0" [ 9 ] (Csr.row_list t 0);
  check_int "offsets words" 3 (Csr.offsets_words t);
  check_int "cols words" 2 (Csr.cols_words t)

let test_csr_bounds () =
  let b = Csr.create_builder 2 in
  Alcotest.check_raises "src out of range"
    (Invalid_argument "Csr.add: src out of range") (fun () ->
      Csr.add b ~src:2 ~dst:0);
  Alcotest.check_raises "dst out of range"
    (Invalid_argument "Csr.add: dst out of range") (fun () ->
      Csr.add b ~src:0 ~dst:2);
  Alcotest.check_raises "negative rows"
    (Invalid_argument "Csr.create_builder: negative row count") (fun () ->
      ignore (Csr.create_builder (-1)))

let test_csr_empty () =
  let t = Csr.of_rows [||] in
  check_int "no rows" 0 (Csr.n_rows t);
  check_int "no edges" 0 (Csr.n_edges t);
  let t = Csr.of_rows [| []; [] |] in
  check_int "rows" 2 (Csr.n_rows t);
  check_ints "row 1" [] (Csr.row_list t 1)

(* Property: the arena traversal over a CSR graph is indistinguishable
   from the list-walking entry point — same values, same stats, and
   both agree with the naive iterate-to-fixpoint oracle. The generator
   mixes three shapes: plain random edges, a self-loop sprinkle, and
   nested SCCs (a big ring with an inner ring chorded into it). *)
let arb_scc_graph =
  let gen =
    QCheck.Gen.(
      int_range 2 30 >>= fun n ->
      list_size (int_bound 60) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      >>= fun random_edges ->
      list_size (int_bound 4) (int_bound (n - 1)) >>= fun loops ->
      int_range 0 (n - 1) >>= fun ring_hi ->
      let ring = List.init ring_hi (fun i -> (i, i + 1)) in
      let outer = if ring_hi > 0 then (ring_hi, 0) :: ring else [] in
      let inner =
        if ring_hi >= 2 then [ (ring_hi / 2, 0); (0, ring_hi / 2) ] else []
      in
      return
        (n, random_edges @ List.map (fun v -> (v, v)) loops @ outer @ inner))
  in
  QCheck.make gen ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges)))

let prop_run_csr_equals_run =
  QCheck.Test.make ~name:"run_csr = run = naive (SCC-shaped graphs)"
    ~count:300 arb_scc_graph (fun (n, edges) ->
      let successors = graph_of_edges n edges in
      let init x = Bitset.of_list 64 [ x; (x + 7) mod 64 ] in
      let graph = Csr.of_rows (Array.init n successors) in
      let v_csr, st_csr = Digraph.ForBitset.run_csr ~graph ~init in
      let v_run, st_run = Digraph.ForBitset.run ~n ~successors ~init in
      let slow = Digraph.naive_fixpoint ~n ~successors ~init in
      Array.for_all2 Bitset.equal v_csr v_run
      && Array.for_all2 Bitset.equal v_csr slow
      && st_csr = st_run)

let prop_run_csr_scc_partition =
  QCheck.Test.make
    ~name:"run_csr nontrivial SCC partition = Tarjan's (SCC-shaped graphs)"
    ~count:300 arb_scc_graph (fun (n, edges) ->
      let successors = graph_of_edges n edges in
      let graph = Csr.of_rows (Array.init n successors) in
      let _, stats =
        Digraph.ForBitset.run_csr ~graph ~init:(fun _ -> Bitset.create 1)
      in
      let norm l = List.sort compare (List.map (List.sort Int.compare) l) in
      norm stats.Digraph.nontrivial_sccs
      = norm (Tarjan.nontrivial ~n ~successors))

(* ------------------------------------------------------------------ *)
(* Vec                                                                *)
(* ------------------------------------------------------------------ *)

let test_vec_basic () =
  let v = Vec.create () in
  check_int "empty" 0 (Vec.length v);
  check_int "push 0" 0 (Vec.push v "a");
  check_int "push 1" 1 (Vec.push v "b");
  Alcotest.(check string) "get" "b" (Vec.get v 1);
  Vec.set v 0 "z";
  Alcotest.(check string) "set" "z" (Vec.get v 0);
  Alcotest.(check (array string)) "to_array" [| "z"; "b" |] (Vec.to_array v)

let test_vec_growth () =
  let v = Vec.create () in
  for i = 0 to 999 do
    ignore (Vec.push v i)
  done;
  check_int "length" 1000 (Vec.length v);
  check_int "sum" (999 * 1000 / 2) (Vec.fold ( + ) 0 v);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 1000))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sets"
    [
      ( "bitset",
        [
          Alcotest.test_case "empty" `Quick test_bitset_empty;
          Alcotest.test_case "add/mem across word boundaries" `Quick
            test_bitset_add_mem;
          Alcotest.test_case "remove" `Quick test_bitset_remove;
          Alcotest.test_case "bounds checking" `Quick test_bitset_bounds;
          Alcotest.test_case "zero universe" `Quick test_bitset_zero_universe;
          Alcotest.test_case "union_into change flag" `Quick
            test_bitset_union_into;
          Alcotest.test_case "inter/diff/union/subset/disjoint" `Quick
            test_bitset_setops;
          Alcotest.test_case "copy independence" `Quick
            test_bitset_copy_independent;
        ] );
      qsuite "bitset-props"
        [
          prop_elements_model;
          prop_union_model;
          prop_inter_model;
          prop_diff_model;
          prop_cardinal;
          prop_subset_union;
          prop_compare_equal;
        ];
      ( "tarjan",
        [
          Alcotest.test_case "dag" `Quick test_tarjan_dag;
          Alcotest.test_case "cycle" `Quick test_tarjan_cycle;
          Alcotest.test_case "self loop" `Quick test_tarjan_self_loop;
          Alcotest.test_case "empty graph" `Quick test_tarjan_empty_graph;
          Alcotest.test_case "200k-node chain (no stack overflow)" `Quick
            test_tarjan_long_chain;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "dag propagation" `Quick test_digraph_dag;
          Alcotest.test_case "cycle members share sets" `Quick
            test_digraph_cycle_shares;
          Alcotest.test_case "self loop" `Quick test_digraph_self_loop;
          Alcotest.test_case "no edges" `Quick test_digraph_no_edges;
          Alcotest.test_case "init values not mutated" `Quick
            test_digraph_does_not_mutate_init;
        ] );
      qsuite "digraph-props"
        [ prop_digraph_vs_naive; prop_digraph_sccs_match_tarjan ];
      ( "csr",
        [
          Alcotest.test_case "stream order" `Quick test_csr_stream_order;
          Alcotest.test_case "rev = cons-list order" `Quick
            test_csr_rev_order;
          Alcotest.test_case "of_rows round trip" `Quick
            test_csr_of_rows_roundtrip;
          Alcotest.test_case "bipartite columns" `Quick test_csr_bipartite;
          Alcotest.test_case "bounds checking" `Quick test_csr_bounds;
          Alcotest.test_case "empty shapes" `Quick test_csr_empty;
        ] );
      qsuite "csr-props"
        [ prop_run_csr_equals_run; prop_run_csr_scc_partition ];
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "growth" `Quick test_vec_growth;
        ] );
    ]
