(* The query engine is a memoization layer, nothing more: every
   artifact it serves must be the one the underlying module computes
   directly, each pipeline stage must be computed at most once per
   engine, and the consumers that were ported onto it (experiments,
   the tables CLI, lint) must produce byte-identical output. *)

module Bitset = Lalr_sets.Bitset
module G = Lalr_grammar.Grammar
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Classify = Lalr_tables.Classify
module Engine = Lalr_engine.Engine
module Registry = Lalr_suite.Registry
module Randgen = Lalr_suite.Randgen
module E = Lalr_bench_tables.Experiments
module Lint = Lalr_lint.Engine
module Context = Lalr_lint.Context

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let grammar_of name = Lazy.force (Registry.find name).Registry.grammar

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let read_file path =
  (* cwd is test/ under [dune runtest], the project root under
     [dune exec test/test_engine.exe]. *)
  let path = if Sys.file_exists path then path else "test/" ^ path in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Engine artifacts = direct per-module computation                   *)
(* ------------------------------------------------------------------ *)

(* Engine-mediated LA sets, tables and classification vs computing
   each from scratch; returns an error description or None. *)
let engine_vs_direct ?(with_lr1 = true) g =
  let e = Engine.create g in
  let a = Lr0.build g in
  let t = Lalr.compute a in
  let et = Engine.lalr e in
  let err = ref None in
  let fail what = if !err = None then err := Some what in
  if Lalr.n_reductions t <> Lalr.n_reductions et then
    fail "reduction counts differ";
  for r = 0 to min (Lalr.n_reductions t) (Lalr.n_reductions et) - 1 do
    if Lalr.reduction t r <> Lalr.reduction et r then
      fail (Printf.sprintf "reduction %d pair differs" r);
    if not (Bitset.equal (Lalr.la t r) (Lalr.la et r)) then
      fail (Printf.sprintf "LA set %d differs" r)
  done;
  let direct_tbl = Tables.build ~lookahead:(Lalr.lookahead t) a in
  let pp_tbl tbl = render (fun ppf -> Tables.pp ppf tbl) in
  if pp_tbl direct_tbl <> pp_tbl (Engine.tables e) then fail "tables differ";
  let direct_v =
    if with_lr1 then Classify.classify g else Classify.classify_no_lr1 g
  in
  if direct_v <> Engine.classification ~with_lr1 e then
    fail "classification differs";
  !err

let test_engine_vs_direct_suite () =
  List.iter
    (fun (e : Registry.entry) ->
      let g = Lazy.force e.grammar in
      let with_lr1 = G.n_productions g <= 200 in
      match engine_vs_direct ~with_lr1 g with
      | None -> ()
      | Some msg -> Alcotest.failf "%s: %s" e.name msg)
    Registry.all

let prop_engine_vs_direct_random =
  QCheck.Test.make ~name:"engine = direct computation (random grammars)"
    ~count:100 (Randgen.arbitrary ()) (fun g -> engine_vs_direct g = None)

(* ------------------------------------------------------------------ *)
(* Force-once slot discipline                                         *)
(* ------------------------------------------------------------------ *)

let test_la_forces_relations_once () =
  let e = Engine.create (grammar_of "expr") in
  check "relations starts unforced" false
    (Engine.find_stage e "relations").Engine.forced;
  check "la starts unforced" false (Engine.find_stage e "la").Engine.forced;
  ignore (Engine.lalr e);
  check_int "forcing la computes relations once" 1
    (Engine.find_stage e "relations").Engine.misses;
  check_int "and lr0 once" 1 (Engine.find_stage e "lr0").Engine.misses;
  check_int "and follow once" 1 (Engine.find_stage e "follow").Engine.misses;
  ignore (Engine.lalr e);
  ignore (Engine.lalr e);
  check_int "relations never recomputed" 1
    (Engine.find_stage e "relations").Engine.misses;
  check_int "la computed once" 1 (Engine.find_stage e "la").Engine.misses;
  check "repeat queries are hits" true
    ((Engine.find_stage e "la").Engine.hits >= 2);
  (* Unrelated slots stay unforced: demand-driven, not eager. *)
  check "lr1 untouched" false (Engine.find_stage e "lr1").Engine.forced

let test_seeded_analysis () =
  let g = grammar_of "expr" in
  let analysis = Lalr_grammar.Analysis.compute g in
  let e = Engine.create ~analysis g in
  let st = Engine.find_stage e "analysis" in
  check "seeded slot is forced" true st.Engine.forced;
  check_int "with zero misses" 0 st.Engine.misses;
  check "seeded value is returned" true (Engine.analysis e == analysis)

let test_find_stage_not_found () =
  let e = Engine.create (grammar_of "expr") in
  match Engine.find_stage e "no-such-stage" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_stats_wall_sums () =
  let e = Engine.create (grammar_of "mini-pascal") in
  ignore (Engine.tables e);
  let sum =
    List.fold_left
      (fun acc (st : Engine.stage) -> acc +. st.Engine.wall)
      0. (Engine.stats e)
  in
  check "per-stage walls sum to the total" true
    (Float.abs (sum -. Engine.total_wall e) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Lint self-check rides the same pipeline                            *)
(* ------------------------------------------------------------------ *)

let test_lint_selfcheck_shares_engine () =
  let ctx = Context.of_grammar (grammar_of "mini-c") in
  let config = { Lint.default_config with Lint.self_check = true } in
  let diags = Lint.run_ctx ~config ctx in
  check "self-check emitted findings" true
    (List.exists (fun (d : Lalr_lint.Diagnostic.t) -> d.code = "L900") diags);
  match Context.engine ctx with
  | None -> Alcotest.fail "mini-c must have an engine"
  | Some eng ->
      (* The oracle (L900/L901) and the regular passes both walked the
         pipeline; the counters prove nothing was built twice. *)
      check_int "LR(0) automaton built exactly once" 1
        (Engine.find_stage eng "lr0").Engine.misses;
      check_int "reads/includes relations built exactly once" 1
        (Engine.find_stage eng "relations").Engine.misses;
      check_int "LA sets solved exactly once" 1
        (Engine.find_stage eng "la").Engine.misses;
      check "the automaton was actually shared (hits > 0)" true
        ((Engine.find_stage eng "lr0").Engine.hits > 0)

(* ------------------------------------------------------------------ *)
(* Byte-identity with the pre-engine pipeline (golden files)          *)
(* ------------------------------------------------------------------ *)

let test_golden_experiments_t2 () =
  Alcotest.(check string)
    "experiments t2 unchanged"
    (read_file "golden/experiments_t2.txt")
    (render E.t2)

let golden_tables name file () =
  let e = Engine.create (grammar_of name) in
  Alcotest.(check string)
    (name ^ " tables unchanged") (read_file ("golden/" ^ file))
    (render (fun ppf -> Format.fprintf ppf "%a@." Tables.pp (Engine.tables e)))

let test_golden_lint_mini_c () =
  let ctx = Context.of_grammar (grammar_of "mini-c") in
  let config = { Lint.default_config with Lint.self_check = true } in
  let diags = Lint.run_ctx ~config ctx in
  Alcotest.(check string)
    "lint --self-check report unchanged"
    (read_file "golden/lint_mini_c.txt")
    (render (fun ppf -> Lint.pp_report ppf diags))

(* ------------------------------------------------------------------ *)
(* The failure boundary                                               *)
(* ------------------------------------------------------------------ *)

module Budget = Lalr_guard.Budget

let test_budget_trips_named_stage () =
  let e =
    Engine.create ~budget:(Budget.create ~fuel:10 ()) (grammar_of "expr")
  in
  (match Engine.run e Engine.tables with
  | Ok _ -> Alcotest.fail "10 fuel must not build the expr tables"
  | Error (Engine.Budget_exceeded ex) ->
      check "fuel resource" true (ex.Budget.ex_resource = Budget.Fuel);
      Alcotest.(check string) "innermost stage" "lr0" ex.Budget.ex_stage
  | Error f ->
      Alcotest.failf "expected Budget_exceeded, got %a" Engine.pp_failure f);
  (* The interrupted slot is not poisoned: a fresh unbudgeted engine
     over the same grammar — and this engine's accessor reports the
     budget it carries. *)
  check "budget accessor" true (Engine.budget e <> None)

let test_unbudgeted_engine_unchanged () =
  let e = Engine.create (grammar_of "expr") in
  check "no budget" true (Engine.budget e = None);
  match Engine.run e Engine.tables with
  | Ok tbl ->
      let direct =
        let g = grammar_of "expr" in
        let a = Lr0.build g in
        Tables.build ~lookahead:(Lalr.lookahead (Lalr.compute a)) a
      in
      check "same states as direct" true
        (Lr0.n_states (Tables.automaton tbl)
        = Lr0.n_states (Tables.automaton direct))
  | Error f -> Alcotest.failf "unbudgeted failure: %a" Engine.pp_failure f

let test_failure_rendering () =
  let e =
    Engine.create ~budget:(Budget.create ~fuel:5 ()) (grammar_of "expr")
  in
  match Engine.run e Engine.lr0 with
  | Error (Engine.Budget_exceeded _ as f) ->
      let s = render (fun ppf -> Engine.pp_failure ppf f) in
      check "report names the resource" true
        (String.length s > 0
        && (let has needle =
              let n = String.length needle and m = String.length s in
              let rec go i = i + n <= m
                && (String.sub s i n = needle || go (i + 1)) in
              go 0
            in
            has "fuel" && has "lr0"))
  | _ -> Alcotest.fail "expected a budget failure"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "engine"
    [
      ( "equivalence",
        [
          Alcotest.test_case "engine = direct on the whole suite" `Slow
            test_engine_vs_direct_suite;
        ] );
      qsuite "equivalence-props" [ prop_engine_vs_direct_random ];
      ( "slots",
        [
          Alcotest.test_case "la forces relations exactly once" `Quick
            test_la_forces_relations_once;
          Alcotest.test_case "seeded analysis slot" `Quick test_seeded_analysis;
          Alcotest.test_case "budget trips with stage" `Quick
            test_budget_trips_named_stage;
          Alcotest.test_case "unbudgeted unchanged" `Quick
            test_unbudgeted_engine_unchanged;
          Alcotest.test_case "failure renders" `Quick test_failure_rendering;
          Alcotest.test_case "find_stage Not_found" `Quick
            test_find_stage_not_found;
          Alcotest.test_case "stage walls sum to total" `Quick
            test_stats_wall_sums;
        ] );
      ( "lint",
        [
          Alcotest.test_case "self-check shares the lint engine" `Quick
            test_lint_selfcheck_shares_engine;
        ] );
      ( "golden",
        [
          Alcotest.test_case "experiments t2" `Quick test_golden_experiments_t2;
          Alcotest.test_case "tables mini-c" `Quick
            (golden_tables "mini-c" "tables_mini_c.txt");
          Alcotest.test_case "tables expr" `Quick
            (golden_tables "expr" "tables_expr.txt");
          Alcotest.test_case "lint mini-c self-check" `Quick
            test_golden_lint_mini_c;
        ] );
    ]
