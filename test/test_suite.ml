(* Tests for lib/suite: registry integrity, grammar families, and the
   random grammar generator. *)

module G = Lalr_grammar.Grammar
module Analysis = Lalr_grammar.Analysis
module Reader = Lalr_grammar.Reader
module Lr0 = Lalr_automaton.Lr0
module Registry = Lalr_suite.Registry
module Family = Lalr_suite.Family
module Randgen = Lalr_suite.Randgen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let test_all_load () =
  List.iter
    (fun (e : Registry.entry) ->
      match Lazy.force e.grammar with
      | g -> check (e.name ^ " named consistently") true (g.G.name = e.name)
      | exception exn ->
          Alcotest.failf "%s failed to load: %s" e.name (Printexc.to_string exn))
    Registry.all

let test_all_reduced () =
  (* Every suite grammar is reduced — a precondition of the LR builds. *)
  List.iter
    (fun (e : Registry.entry) ->
      let a = Analysis.compute (Lazy.force e.grammar) in
      check (e.name ^ " reduced") true (Analysis.is_reduced a))
    Registry.all

let test_languages_subset () =
  check_int "six language grammars" 6 (List.length Registry.languages);
  List.iter
    (fun (e : Registry.entry) ->
      check (e.name ^ " in all") true
        (List.exists (fun (e' : Registry.entry) -> e'.name = e.name) Registry.all))
    Registry.languages

let test_find () =
  check "find json" true ((Registry.find "json").name = "json");
  match Registry.find "no-such" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_no_duplicate_names () =
  let names = List.map (fun (e : Registry.entry) -> e.name) Registry.all in
  check_int "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_roundtrip_through_reader () =
  (* Print/parse round-trip for every suite grammar — exercises the
     Reader on realistic inputs. *)
  List.iter
    (fun (e : Registry.entry) ->
      let g = Lazy.force e.grammar in
      let g2 = Reader.of_string (Reader.to_string g) in
      check (e.name ^ " roundtrips") true (G.equal_structure g g2))
    Registry.all

let test_language_sizes () =
  (* The language grammars are the T1 workload; pin their vital
     statistics so accidental grammar edits surface here. *)
  let expect =
    [
      ("json", 18, 28);
      ("mini-pascal", 152, 284);
      ("mini-c", 186, 319);
      ("ada-subset", 183, 365);
      ("modula2", 144, 266);
      ("algol60", 143, 244);
    ]
  in
  List.iter
    (fun (name, prods, states) ->
      let g = Lazy.force (Registry.find name).grammar in
      check_int (name ^ " productions") prods (G.n_productions g);
      check_int (name ^ " LR(0) states") states (Lr0.n_states (Lr0.build g)))
    expect

(* ------------------------------------------------------------------ *)
(* Families                                                           *)
(* ------------------------------------------------------------------ *)

let test_expr_levels () =
  let g1 = Family.expr_levels 1 in
  check_int "1 level: 2+2 rules + aug" 5 (G.n_productions g1);
  let g4 = Family.expr_levels 4 in
  check_int "4 levels" (1 + (2 * 4) + 2) (G.n_productions g4);
  (* State count grows with n. *)
  let s2 = Lr0.n_states (Lr0.build (Family.expr_levels 2)) in
  let s8 = Lr0.n_states (Lr0.build (Family.expr_levels 8)) in
  check "monotone states" true (s8 > s2);
  (* Every member is LALR(1)-clean (in fact SLR(1)). *)
  let t = Lalr_core.Lalr.compute (Lr0.build g4) in
  check "lalr1" true (Lalr_core.Lalr.is_lalr1 t);
  match Family.expr_levels 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n=0 must be rejected"

let test_nullable_chain () =
  let g = Family.nullable_chain 5 in
  let a = Analysis.compute g in
  (* All x_i nullable. *)
  let nullable_count =
    List.length
      (List.filter
         (fun i -> Analysis.nullable a i)
         (List.init (G.n_nonterminals g) Fun.id))
  in
  check_int "five nullable nonterminals" 5 nullable_count;
  (* includes-edge count grows superlinearly. *)
  let edges n =
    (Lalr_core.Lalr.stats
       (Lalr_core.Lalr.compute (Lr0.build (Family.nullable_chain n))))
      .Lalr_core.Lalr.includes_edges
  in
  check "superlinear includes growth" true (edges 10 > 3 * edges 3)

let test_statement_lists () =
  let g = Family.statement_lists 6 in
  let t = Lalr_core.Lalr.compute (Lr0.build g) in
  check "lalr1" true (Lalr_core.Lalr.is_lalr1 t);
  check "bigger n, more states" true
    (Lr0.n_states (Lr0.build (Family.statement_lists 12))
    > Lr0.n_states (Lr0.build g))

(* ------------------------------------------------------------------ *)
(* Randgen                                                            *)
(* ------------------------------------------------------------------ *)

let prop_randgen_reduced =
  QCheck.Test.make ~name:"random grammars are reduced" ~count:200
    (Randgen.arbitrary ()) (fun g ->
      Analysis.is_reduced (Analysis.compute g))

let prop_randgen_start_productive =
  QCheck.Test.make ~name:"random grammars generate a sentence" ~count:100
    (Randgen.arbitrary ()) (fun g ->
      let prep = Lalr_runtime.Sentence.prepare g in
      let rng = Random.State.make [| 3 |] in
      ignore (Lalr_runtime.Sentence.generate ~max_depth:6 prep rng);
      true)

let prop_randgen_roundtrips_reader =
  QCheck.Test.make ~name:"random grammars roundtrip the reader" ~count:100
    (Randgen.arbitrary ()) (fun g ->
      G.equal_structure g (Reader.of_string (Reader.to_string g)))

let test_randgen_determinism () =
  let mk seed =
    Randgen.generate Randgen.default (Random.State.make [| seed |])
  in
  check "same seed, same grammar" true (G.equal_structure (mk 9) (mk 9));
  (* Different seeds almost surely differ; try a few. *)
  check "different seeds differ somewhere" true
    (List.exists
       (fun s -> not (G.equal_structure (mk 9) (mk s)))
       [ 10; 11; 12; 13 ])

let test_randgen_config_bounds () =
  let cfg = { Randgen.default with n_terminals = 2; n_nonterminals = 2 } in
  let g = Randgen.generate cfg (Random.State.make [| 1 |]) in
  check "terminals within bound" true (G.n_terminals g <= 3);
  check "nonterminals within bound" true (G.n_nonterminals g <= 3);
  match Randgen.generate { cfg with n_terminals = 0 } (Random.State.make [| 1 |]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n_terminals=0 must be rejected"

(* ------------------------------------------------------------------ *)
(* Scaled bench grammar                                               *)
(* ------------------------------------------------------------------ *)

(* Scaled.default_units is calibrated so the layout bench runs at
   roughly 10× mini-c's nonterminal-transition count. Pin the band (not
   the exact number, so generator tweaks that keep the scale don't churn
   this test), plus determinism and conflict-freedom — the bench
   compares byte-identical work across layouts, which only means
   something if the workload itself is reproducible and LALR(1). *)
let test_scaled_size_band () =
  let g = Lalr_suite.Scaled.grammar () in
  let a = Lr0.build g in
  let nx = Lr0.n_nt_transitions a in
  let mini_c = Lr0.n_nt_transitions (Lr0.build (Lazy.force (Registry.find "mini-c").grammar)) in
  check "≥ 8× mini-c" true (nx >= 8 * mini_c);
  check "≤ 14× mini-c" true (nx <= 14 * mini_c);
  let t = Lalr_core.Lalr.compute a in
  check "scaled grammar is LALR(1)" true (Lalr_core.Lalr.is_lalr1 t)

let test_scaled_determinism () =
  let g1 = Lalr_suite.Scaled.grammar () in
  let g2 =
    Lalr_suite.Scaled.grammar ~seed:Lalr_suite.Scaled.default_seed
      ~units:Lalr_suite.Scaled.default_units ()
  in
  check "defaults reproduce" true (G.equal_structure g1 g2);
  let small s = Lalr_suite.Scaled.grammar ~seed:s ~units:6 () in
  check "same seed, same grammar" true (G.equal_structure (small 7) (small 7));
  check "different seeds differ somewhere" true
    (List.exists (fun s -> not (G.equal_structure (small 7) (small s))) [ 8; 9; 10 ]);
  match Lalr_suite.Scaled.grammar ~units:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "units=0 must be rejected"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "suite"
    [
      ( "registry",
        [
          Alcotest.test_case "all grammars load" `Quick test_all_load;
          Alcotest.test_case "all grammars reduced" `Quick test_all_reduced;
          Alcotest.test_case "languages subset" `Quick test_languages_subset;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "unique names" `Quick test_no_duplicate_names;
          Alcotest.test_case "reader round-trip for every grammar" `Quick
            test_roundtrip_through_reader;
          Alcotest.test_case "language grammar sizes pinned" `Quick
            test_language_sizes;
        ] );
      ( "families",
        [
          Alcotest.test_case "expr_levels" `Quick test_expr_levels;
          Alcotest.test_case "nullable_chain" `Quick test_nullable_chain;
          Alcotest.test_case "statement_lists" `Quick test_statement_lists;
        ] );
      qsuite "randgen-props"
        [
          prop_randgen_reduced;
          prop_randgen_start_productive;
          prop_randgen_roundtrips_reader;
        ];
      ( "randgen",
        [
          Alcotest.test_case "determinism" `Quick test_randgen_determinism;
          Alcotest.test_case "config bounds" `Quick test_randgen_config_bounds;
        ] );
      ( "scaled",
        [
          Alcotest.test_case "size band (~10× mini-c), LALR(1)" `Quick
            test_scaled_size_band;
          Alcotest.test_case "determinism" `Quick test_scaled_determinism;
        ] );
    ]
