(* Tests for the extension features: compressed tables, panic-mode
   recovery, the Menhir-subset reader, conflict counterexamples, and
   the LALR(k) generalisation (paper §8). *)

module Bitset = Lalr_sets.Bitset
module Kstring = Lalr_sets.Kstring
module KSet = Kstring.Set
module G = Lalr_grammar.Grammar
module Reader = Lalr_grammar.Reader
module Menhir_reader = Lalr_grammar.Menhir_reader
module Firstk = Lalr_grammar.Firstk
module Analysis = Lalr_grammar.Analysis
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Lalr_k = Lalr_core.Lalr_k
module Lrk = Lalr_baselines.Lrk
module Tables = Lalr_tables.Tables
module Compact = Lalr_tables.Compact
module Token = Lalr_runtime.Token
module Tree = Lalr_runtime.Tree
module Driver = Lalr_runtime.Driver
module Counterexample = Lalr_report.Counterexample
module Registry = Lalr_suite.Registry
module Randgen = Lalr_suite.Randgen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_strs = Alcotest.(check (list string))

let grammar_of name = Lazy.force (Registry.find name).grammar

let lalr_tables g =
  let a = Lr0.build g in
  let t = Lalr.compute a in
  Tables.build ~lookahead:(Lalr.lookahead t) a

(* ------------------------------------------------------------------ *)
(* Kstring                                                            *)
(* ------------------------------------------------------------------ *)

let test_kstring_ops () =
  check "truncate" true (Kstring.truncate 2 [ 1; 2; 3 ] = [ 1; 2 ]);
  check "truncate short" true (Kstring.truncate 5 [ 1 ] = [ 1 ]);
  check "concat fills" true (Kstring.concat 3 [ 1 ] [ 2; 3; 4 ] = [ 1; 2; 3 ]);
  check "concat full left" true (Kstring.concat 2 [ 1; 2 ] [ 9 ] = [ 1; 2 ]);
  check "concat short both" true (Kstring.concat 4 [ 1 ] [ 2 ] = [ 1; 2 ]);
  let a = KSet.of_list [ [ 1 ]; [ 2; 3 ] ] in
  let b = KSet.of_list [ []; [ 9 ] ] in
  let c = Kstring.concat_sets 2 a b in
  check "concat_sets" true
    (KSet.equal c (KSet.of_list [ [ 1 ]; [ 1; 9 ]; [ 2; 3 ] ]))

let test_kstring_unit () =
  let a = KSet.of_list [ [ 1; 2 ]; [ 3 ] ] in
  check "epsilon is right unit up to k" true
    (KSet.equal (Kstring.concat_sets 2 a Kstring.epsilon) a);
  check "epsilon is left unit" true
    (KSet.equal (Kstring.concat_sets 2 Kstring.epsilon a) a)

(* ------------------------------------------------------------------ *)
(* FIRSTk                                                             *)
(* ------------------------------------------------------------------ *)

let test_firstk_matches_first1 () =
  List.iter
    (fun name ->
      let g = grammar_of name in
      let a = Analysis.compute g in
      let fk = Firstk.compute ~k:1 g in
      for n = 0 to G.n_nonterminals g - 1 do
        let bits = Bitset.elements (Analysis.first a n) in
        let strings = KSet.elements (Firstk.nonterminal fk n) in
        let singletons =
          List.filter_map (function [ x ] -> Some x | _ -> None) strings
          |> List.sort compare
        in
        check (name ^ ": FIRST1 terminals agree") true (singletons = bits);
        check (name ^ ": ε iff nullable") true
          (List.mem [] strings = Analysis.nullable a n)
      done)
    [ "expr"; "expr-ll"; "json"; "right-nullable" ]

let test_firstk2_expr () =
  (* FIRST2(e) of the expr grammar: e ⇒* id..., ( ... — the 2-prefixes
     are {id plus, id star, id $-absent... } — concretely: id then one
     of {plus, star, rparen?no...}. Spot-check a few members. *)
  let g = grammar_of "expr" in
  let fk = Firstk.compute ~k:2 g in
  let e = Option.get (G.find_nonterminal g "e") in
  let term n = Option.get (G.find_terminal g n) in
  let set = Firstk.nonterminal fk e in
  check "id alone (sentence 'id')" true (KSet.mem [ term "id" ] set);
  check "id plus" true (KSet.mem [ term "id"; term "plus" ] set);
  check "id star" true (KSet.mem [ term "id"; term "star" ] set);
  check "lparen id" true (KSet.mem [ term "lparen"; term "id" ] set);
  check "no plus-first strings" true
    (KSet.for_all (fun s -> List.hd s <> term "plus") set)

let test_firstk0 () =
  let g = grammar_of "expr" in
  let fk = Firstk.compute ~k:0 g in
  for n = 0 to G.n_nonterminals g - 1 do
    check "FIRST0 = {ε}" true
      (KSet.equal (Firstk.nonterminal fk n) Kstring.epsilon)
  done

(* ------------------------------------------------------------------ *)
(* LALR(k)                                                            *)
(* ------------------------------------------------------------------ *)

let cross_validate_k g kk =
  let a = Lr0.build g in
  let t = Lalr_k.compute ~k:kk a in
  let merged = Lrk.merged_lookaheads (Lrk.build ~k:kk g) a in
  let ok = ref true in
  Hashtbl.iter
    (fun (state, prod) set ->
      if not (KSet.equal (Lalr_k.lookahead t ~state ~prod) set) then
        ok := false)
    merged;
  (* Same domain in both directions. *)
  let exact = Lalr.compute a in
  if Hashtbl.length merged <> Lalr.n_reductions exact then ok := false;
  !ok

let test_lalrk_vs_canonical_suite () =
  List.iter
    (fun name ->
      let g = grammar_of name in
      check (name ^ " k=1") true (cross_validate_k g 1);
      check (name ^ " k=2") true (cross_validate_k g 2);
      check (name ^ " k=3") true (cross_validate_k g 3))
    [
      "expr"; "expr-ll"; "assign"; "lr0"; "lr1-not-lalr"; "dangling-else";
      "nqlalr-gap"; "lalr2"; "right-nullable";
    ]

let prop_lalrk_vs_canonical_random =
  QCheck.Test.make ~name:"LALR(k) fixpoint = canonical LR(k) merge (random)"
    ~count:40 (Randgen.arbitrary ()) (fun g ->
      cross_validate_k g 1 && cross_validate_k g 2)

let test_lalrk1_matches_bitset () =
  List.iter
    (fun name ->
      let g = grammar_of name in
      let a = Lr0.build g in
      let t1 = Lalr.compute a in
      let tk = Lalr_k.compute ~k:1 a in
      for r = 0 to Lalr.n_reductions t1 - 1 do
        let state, prod = Lalr.reduction t1 r in
        let bits = Bitset.elements (Lalr.la t1 r) in
        let strings =
          KSet.elements (Lalr_k.lookahead tk ~state ~prod)
          |> List.map (function [ x ] -> x | _ -> -1)
          |> List.sort compare
        in
        check (name ^ ": LA1 = LA") true (strings = bits)
      done;
      check (name ^ ": verdicts agree") true
        (Lalr_k.is_lalr_k tk = Lalr.is_lalr1 t1))
    [ "expr"; "expr-ll"; "assign"; "lr1-not-lalr"; "dangling-else"; "json" ]

let test_lalr2_witness () =
  let g = grammar_of "lalr2" in
  let a = Lr0.build g in
  check "not LALR(1)" false (Lalr_k.is_lalr_k (Lalr_k.compute ~k:1 a));
  check "LALR(2)" true (Lalr_k.is_lalr_k (Lalr_k.compute ~k:2 a));
  check "smallest k = 2" true (Lalr_k.smallest_k a = Some 2)

let test_smallest_k_bounds () =
  let a = Lr0.build (grammar_of "expr") in
  check "expr: k=1" true (Lalr_k.smallest_k a = Some 1);
  let amb = Lr0.build (grammar_of "ambiguous") in
  check "ambiguous: none" true (Lalr_k.smallest_k ~limit:2 amb = None);
  match Lalr_k.compute ~k:0 a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k=0 must be rejected"

let test_lalrk_la_shorter_strings_at_end () =
  (* Near the end of input, LALR(2) look-aheads are 1-string "[$]". *)
  let g = grammar_of "expr" in
  let a = Lr0.build g in
  let tk = Lalr_k.compute ~k:2 a in
  let exact = Lalr.compute a in
  let found = ref false in
  for r = 0 to Lalr.n_reductions exact - 1 do
    let state, prod = Lalr.reduction exact r in
    KSet.iter
      (fun s -> if s = [ 0 ] then found := true)
      (Lalr_k.lookahead tk ~state ~prod)
  done;
  check "some [$] string" true !found

(* ------------------------------------------------------------------ *)
(* Compact tables                                                     *)
(* ------------------------------------------------------------------ *)

let compact_agrees g =
  let tbl = lalr_tables g in
  let c = Compact.compress tbl in
  let a = Tables.automaton tbl in
  let n_term = G.n_terminals (Lr0.grammar a) in
  let ok = ref true in
  for state = 0 to Lr0.n_states a - 1 do
    for terminal = 0 to n_term - 1 do
      if Compact.action c ~state ~terminal <> Tables.action tbl ~state ~terminal
      then ok := false
    done
  done;
  !ok

let test_compact_exact_suite () =
  List.iter
    (fun (e : Registry.entry) ->
      check (e.name ^ ": compact = dense") true
        (compact_agrees (Lazy.force e.grammar)))
    Registry.all

let prop_compact_exact_random =
  QCheck.Test.make ~name:"compact tables = dense tables (random)" ~count:60
    (Randgen.arbitrary ()) compact_agrees

let test_compact_compresses () =
  let tbl = lalr_tables (grammar_of "mini-pascal") in
  let exact = Compact.stats (Compact.compress tbl) in
  let yacc = Compact.stats (Compact.compress ~mode:Compact.Yacc tbl) in
  check "fewer packed than dense" true
    (exact.Compact.packed_entries < exact.Compact.dense_entries);
  check "yacc mode packs much tighter" true
    (yacc.Compact.packed_entries * 4 < exact.Compact.packed_entries);
  check "meaningful yacc ratio" true (yacc.Compact.compression_ratio > 4.0);
  check "many default states" true (yacc.Compact.default_states > 50)

(* A minimal acceptance engine over an action oracle, to compare dense
   and compressed tables behaviourally. *)
let runs_to ~action ~goto_fn g tokens =
  let rec with_eof = function
    | [] -> [ Token.eof ]
    | tok :: _ when tok.Token.terminal = 0 -> [ tok ]
    | tok :: rest -> tok :: with_eof rest
  in
  let rec step stack pos input =
    match (stack, input) with
    | state :: _, tok :: rest -> (
        match action ~state ~terminal:tok.Token.terminal with
        | Tables.Shift q -> step (q :: stack) (pos + 1) rest
        | Tables.Reduce prod -> (
            let p = G.production g prod in
            let stack' =
              List.filteri (fun i _ -> i >= Array.length p.rhs) stack
            in
            match stack' with
            | state :: _ -> (
                match goto_fn ~state ~nonterminal:p.lhs with
                | Some q -> step (q :: stack') pos input
                | None -> `Reject pos)
            | [] -> `Reject pos)
        | Tables.Accept -> `Accept
        | Tables.Error -> `Reject pos)
    | _ -> `Reject pos
  in
  step [ 0 ] 0 (with_eof tokens)

let test_compact_yacc_behavioural () =
  (* Yacc-mode tables accept the same strings and report errors at the
     same token positions, on generated sentences and corruptions. *)
  let g = grammar_of "mini-pascal" in
  let tbl = lalr_tables g in
  let c = Compact.compress ~mode:Compact.Yacc tbl in
  let dense = runs_to ~action:(Tables.action tbl) ~goto_fn:(Tables.goto tbl) g in
  let packed = runs_to ~action:(Compact.action c) ~goto_fn:(Compact.goto c) g in
  let prep = Lalr_runtime.Sentence.prepare g in
  let rng = Random.State.make [| 23 |] in
  for _ = 1 to 100 do
    let sent = Lalr_runtime.Sentence.generate ~max_depth:9 prep rng in
    check "same verdict (valid)" true (dense sent = packed sent);
    (* Corrupt: drop a token somewhere. *)
    if List.length sent > 2 then begin
      let i = Random.State.int rng (List.length sent) in
      let corrupted = List.filteri (fun j _ -> j <> i) sent in
      check "same verdict (corrupted)" true (dense corrupted = packed corrupted)
    end
  done

let test_compact_goto_passthrough () =
  let g = grammar_of "expr" in
  let tbl = lalr_tables g in
  let c = Compact.compress tbl in
  let e = Option.get (G.find_nonterminal g "e") in
  check "goto" true
    (Compact.goto c ~state:0 ~nonterminal:e
    = Tables.goto tbl ~state:0 ~nonterminal:e)

(* ------------------------------------------------------------------ *)
(* Panic-mode recovery                                                *)
(* ------------------------------------------------------------------ *)

(* A statement-list grammar with yacc-style error productions. *)
let recovery_grammar =
  lazy
    (Reader.of_string ~name:"recovery"
       {|
%token semi id assign num error
%start prog
%%
prog : stmts ;
stmts : stmt | stmts stmt ;
stmt : id assign num semi
     | error semi ;
|})

let recovery_tables = lazy (lalr_tables (Lazy.force recovery_grammar))

let toks names = Token.of_names (Lazy.force recovery_grammar) names

let test_recovery_clean_parse () =
  let out =
    Driver.parse_with_recovery (Lazy.force recovery_tables)
      (toks [ "id"; "assign"; "num"; "semi" ])
  in
  check "tree" true (out.Driver.tree <> None);
  check_int "no errors" 0 (List.length out.Driver.errors)

let test_recovery_resumes () =
  (* First statement broken; second fine: one error, full tree. *)
  let out =
    Driver.parse_with_recovery (Lazy.force recovery_tables)
      (toks
         [ "id"; "assign"; "assign"; "semi"; "id"; "assign"; "num"; "semi" ])
  in
  check "tree recovered" true (out.Driver.tree <> None);
  check_int "one error" 1 (List.length out.Driver.errors);
  (match out.Driver.errors with
  | [ e ] -> check_int "error position" 2 e.Driver.position
  | _ -> Alcotest.fail "expected one error");
  (* The tree contains an <error> leaf. *)
  match out.Driver.tree with
  | Some tree ->
      let rec has_error = function
        | Tree.Leaf tok -> tok.Token.lexeme = "<error>"
        | Tree.Node { children; _ } -> List.exists has_error children
      in
      check "error leaf present" true (has_error tree)
  | None -> Alcotest.fail "no tree"

let test_recovery_multiple_errors () =
  let out =
    Driver.parse_with_recovery (Lazy.force recovery_tables)
      (toks
         [
           "id"; "assign"; "assign"; "semi";  (* error 1 *)
           "id"; "assign"; "num"; "semi";     (* ok *)
           "num"; "semi";                     (* error 2 *)
           "id"; "assign"; "num"; "semi";     (* ok *)
         ])
  in
  check "tree" true (out.Driver.tree <> None);
  check_int "two errors" 2 (List.length out.Driver.errors)

let test_recovery_abandons_at_eof () =
  (* Broken input with nothing to synchronise on. *)
  let out =
    Driver.parse_with_recovery (Lazy.force recovery_tables)
      (toks [ "id"; "assign"; "assign" ])
  in
  check "no tree" true (out.Driver.tree = None);
  check "errors reported" true (out.Driver.errors <> [])

let test_recovery_without_error_token () =
  (* Grammars without an error terminal degrade to plain parse. *)
  let tbl = lalr_tables (grammar_of "expr") in
  let g = grammar_of "expr" in
  let out =
    Driver.parse_with_recovery tbl (Token.of_names g [ "id"; "plus" ])
  in
  check "no tree" true (out.Driver.tree = None);
  check_int "one error" 1 (List.length out.Driver.errors);
  let ok = Driver.parse_with_recovery tbl (Token.of_names g [ "id" ]) in
  check "clean" true (ok.Driver.tree <> None && ok.Driver.errors = [])

let test_recovery_eof_only_input () =
  (* Empty input: the panic starts at position 0 and must abandon
     (eof is never discarded), not loop or crash. *)
  let out = Driver.parse_with_recovery (Lazy.force recovery_tables) [] in
  check "no tree" true (out.Driver.tree = None);
  check_int "one error" 1 (List.length out.Driver.errors);
  match out.Driver.errors with
  | [ e ] -> check_int "error at position 0" 0 e.Driver.position
  | _ -> Alcotest.fail "expected exactly one error"

let test_recovery_stack_runs_dry () =
  (* The error terminal exists but no state on the stack can shift it
     when the panic hits: recovery must give up cleanly. *)
  let g =
    Reader.of_string ~name:"dry"
      {|
%token a b error
%start s
%%
s : a e b ;
e : error ;
|}
  in
  let tbl = lalr_tables g in
  let out = Driver.parse_with_recovery tbl (Token.of_names g [ "b" ]) in
  check "no tree" true (out.Driver.tree = None);
  check_int "one error" 1 (List.length out.Driver.errors)

let test_recovery_same_position_double_panic () =
  (* SLR look-aheads are sloppy enough that after shifting [error] the
     offending token triggers a reduce whose goto target then errors on
     the very same token: a second panic at the same input position.
     The [last_panic] guard must force-discard the token instead of
     looping forever. *)
  let g =
    Reader.of_string ~name:"loop"
      {|
%token a b c error
%start s
%%
s : a x b | x c ;
x : error ;
|}
  in
  let a = Lr0.build g in
  let tbl =
    Tables.build
      ~lookahead:(Lalr_baselines.Slr.lookahead (Lalr_baselines.Slr.compute a))
      a
  in
  let out = Driver.parse_with_recovery tbl (Token.of_names g [ "b"; "c" ]) in
  (* Both panics happen at position 0; the forced discard of [b] then
     lets [error c] complete the parse. *)
  check "tree recovered" true (out.Driver.tree <> None);
  check "at least two errors" true (List.length out.Driver.errors >= 2);
  List.iter
    (fun e -> check_int "panic position" 0 e.Driver.position)
    out.Driver.errors

(* ------------------------------------------------------------------ *)
(* Menhir reader                                                      *)
(* ------------------------------------------------------------------ *)

let menhir_expr =
  {|
%token <int> INT
%token PLUS TIMES LPAREN RPAREN EOF
%left PLUS
%left TIMES
%start <unit> main
%%
main: e EOF {}
e: e PLUS e { $1 + $3 }
 | e TIMES e { $1 * $3 }
 | LPAREN e RPAREN { $2 }
 | INT { $1 }
|}

let test_menhir_basic () =
  let g = Menhir_reader.of_string ~name:"menhir-expr" menhir_expr in
  (* EOF stripped; INT/PLUS/TIMES/LPAREN/RPAREN + $ remain. *)
  check "EOF stripped" true (G.find_terminal g "EOF" = None);
  check_int "terminals" 6 (G.n_terminals g);
  check "start is main" true (G.nonterminal_name g g.start = "main");
  check "prec on TIMES" true
    (g.G.terminal_prec.(Option.get (G.find_terminal g "TIMES"))
    = Some (2, G.Left));
  (* Precedence must silence all conflicts on e-productions. *)
  let tbl = lalr_tables g in
  check "no unresolved conflicts" true (Tables.unresolved_conflicts tbl = [])

let test_menhir_features () =
  let g =
    Menhir_reader.of_string
      {|
%{ let helper x = x %}
%token A B
%left A
%type <unit> s
%start s
%%
s: x = A B { helper x }   (* binding and (* nested *) comment *)
 | /* c-style */ B %prec A {}
 | {}
;
t: A {}
|}
  in
  check_int "productions: 3 for s, 1 for t, 1 augmented" 5
    (G.n_productions g);
  let s = Option.get (G.find_nonterminal g "s") in
  check "ε production present" true
    (Array.exists
       (fun pid -> G.rhs_length g pid = 0)
       (G.productions_of g s))

let test_menhir_no_eof_strip_when_used_elsewhere () =
  let g =
    Menhir_reader.of_string
      {| %token A EOF %start s %% s: A EOF {} | EOF {} ; |}
  in
  (* EOF ends all start productions AND occurs only there — stripped
     from both. *)
  check "stripped" true (G.find_terminal g "EOF" = None);
  let g2 =
    Menhir_reader.of_string
      {| %token A EOF %start s %% s: t EOF {} ; t: A EOF A {} ; |}
  in
  (* EOF also occurs inside t: kept. *)
  check "kept" true (G.find_terminal g2 "EOF" <> None)

let test_menhir_rejects_unsupported () =
  let fails src =
    match Menhir_reader.of_string src with
    | exception Reader.Error _ -> ()
    | _ -> Alcotest.fail "expected rejection"
  in
  fails "%token A %% s: list(A) {} ;";
  fails "%token A %% s: A* {} ;";
  fails "%inline %token A %% s: A {} ;";
  fails "%token A %% s(X): A {} ;"

let test_menhir_analysis_pipeline () =
  (* A menhir-read grammar flows through the whole pipeline. *)
  let g = Menhir_reader.of_string ~name:"m" menhir_expr in
  let a = Lr0.build g in
  let t = Lalr.compute a in
  check "analysable" true (Lalr.n_reductions t > 0)

(* ------------------------------------------------------------------ *)
(* Counterexamples                                                    *)
(* ------------------------------------------------------------------ *)

let test_counterexample_dangling_else () =
  let tbl = lalr_tables (grammar_of "dangling-else") in
  match Tables.unresolved_conflicts tbl with
  | [ c ] ->
      let e = Counterexample.conflict tbl c in
      check_strs "prefix" [ "if"; "expr"; "then"; "other" ] e.Counterexample.prefix;
      Alcotest.(check string) "at" "else" e.Counterexample.at
  | _ -> Alcotest.fail "expected one conflict"

let test_min_yield () =
  let g = grammar_of "expr" in
  let nt n = Option.get (G.find_nonterminal g n) in
  check_strs "f" [ "id" ] (Counterexample.min_yield g (nt "f"));
  check_strs "e" [ "id" ] (Counterexample.min_yield g (nt "e"))

let test_shortest_prefix_properties () =
  let g = grammar_of "json" in
  let a = Lr0.build g in
  for s = 0 to Lr0.n_states a - 1 do
    let path = Counterexample.shortest_prefix a s in
    (* Walking the path from 0 must land on s. *)
    let reached =
      List.fold_left (fun st sym -> Lr0.goto_exn a st sym) 0 path
    in
    check_int "path reaches state" s reached
  done

let test_counterexample_prefix_is_parseable () =
  (* The prefix must be a viable parse prefix: feeding it to the parser
     errors only at or after its end (never before). *)
  let g = grammar_of "mini-c" in
  let tbl = lalr_tables g in
  List.iter
    (fun c ->
      let e = Counterexample.conflict tbl c in
      let toks = Token.of_names g (e.Counterexample.prefix @ [ e.Counterexample.at ]) in
      match Driver.parse tbl toks with
      | Ok _ -> ()
      | Error err ->
          check "fails only past the prefix" true
            (err.Driver.position >= List.length e.Counterexample.prefix))
    (Tables.unresolved_conflicts tbl)

(* ------------------------------------------------------------------ *)
(* Code generation                                                    *)
(* ------------------------------------------------------------------ *)

module Codegen = Lalr_report.Codegen

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let test_codegen_source_shape () =
  let src = Codegen.emit_to_string (lalr_tables (grammar_of "expr")) in
  List.iter
    (fun needle -> check ("contains " ^ needle) true (contains src needle))
    [
      "let parse tokens"; "let actions"; "let goto"; "let productions";
      "type tree"; "let accepts"; "let id = 5"; "Generated by lalrgen";
    ]

let test_codegen_conflicts_commented () =
  let src = Codegen.emit_to_string (lalr_tables (grammar_of "dangling-else")) in
  check "conflict noted in header" true (contains src "shift/reduce")

(* The definitive test: compile the generated module with the system
   compiler and run assertions against it. Skipped cleanly when no
   OCaml compiler is on PATH. *)
let test_codegen_compiles_and_runs () =
  if Sys.command "command -v ocamlfind >/dev/null 2>&1" <> 0 then ()
  else begin
    let dir = Filename.temp_file "lalrgen" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let write name contents =
      Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
          Out_channel.output_string oc contents)
    in
    write "genparser.ml"
      (Codegen.emit_to_string (lalr_tables (grammar_of "expr")));
    write "main.ml"
      {|let () =
  assert (Genparser.accepts [ Genparser.id; Genparser.plus; Genparser.id ]);
  assert (Genparser.accepts
            [ Genparser.lparen; Genparser.id; Genparser.rparen;
              Genparser.star; Genparser.id ]);
  assert (not (Genparser.accepts [ Genparser.id; Genparser.id ]));
  assert (not (Genparser.accepts []));
  (match Genparser.parse [ Genparser.id; Genparser.star ] with
   | Error e -> assert (e.Genparser.position = 2)
   | Ok _ -> assert false);
  print_string "ok"
|};
    let cmd =
      Printf.sprintf
        "cd %s && ocamlfind ocamlopt genparser.ml main.ml -o t >/dev/null 2>&1 && ./t"
        (Filename.quote dir)
    in
    let ic = Unix.open_process_in cmd in
    let out = In_channel.input_all ic in
    ignore (Unix.close_process_in ic);
    Alcotest.(check string) "generated parser runs" "ok" out
  end

(* Behavioural agreement without a compiler: re-execute the emitted
   packed encoding directly against the dense tables. *)
let test_codegen_encoding_agrees () =
  let g = grammar_of "json" in
  let tbl = lalr_tables g in
  let a = Tables.automaton tbl in
  let n_term = G.n_terminals g in
  (* Reproduce the encoder's packing rules. *)
  let encode = function
    | Tables.Error -> 0
    | Tables.Accept -> max_int
    | Tables.Shift q -> q + 1
    | Tables.Reduce p -> -(p + 1)
  in
  for s = 0 to Lr0.n_states a - 1 do
    for t = 0 to n_term - 1 do
      let e = encode (Tables.action tbl ~state:s ~terminal:t) in
      let decoded =
        if e = 0 then Tables.Error
        else if e = max_int then Tables.Accept
        else if e > 0 then Tables.Shift (e - 1)
        else Tables.Reduce (-e - 1)
      in
      check "roundtrip" true (decoded = Tables.action tbl ~state:s ~terminal:t)
    done
  done

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "extensions"
    [
      ( "kstring",
        [
          Alcotest.test_case "operations" `Quick test_kstring_ops;
          Alcotest.test_case "epsilon unit" `Quick test_kstring_unit;
        ] );
      ( "firstk",
        [
          Alcotest.test_case "k=1 matches Analysis.first" `Quick
            test_firstk_matches_first1;
          Alcotest.test_case "FIRST2 of expr" `Quick test_firstk2_expr;
          Alcotest.test_case "k=0" `Quick test_firstk0;
        ] );
      ( "lalr-k",
        [
          Alcotest.test_case "= canonical LR(k) merge on suite" `Slow
            test_lalrk_vs_canonical_suite;
          Alcotest.test_case "k=1 = bitset implementation" `Quick
            test_lalrk1_matches_bitset;
          Alcotest.test_case "LALR(2) witness" `Quick test_lalr2_witness;
          Alcotest.test_case "smallest_k" `Quick test_smallest_k_bounds;
          Alcotest.test_case "short strings at end of input" `Quick
            test_lalrk_la_shorter_strings_at_end;
        ] );
      qsuite "lalr-k-props" [ prop_lalrk_vs_canonical_random ];
      ( "compact",
        [
          Alcotest.test_case "exact on the whole suite" `Slow
            test_compact_exact_suite;
          Alcotest.test_case "actually compresses" `Quick
            test_compact_compresses;
          Alcotest.test_case "yacc mode behavioural equivalence" `Quick
            test_compact_yacc_behavioural;
          Alcotest.test_case "goto passthrough" `Quick
            test_compact_goto_passthrough;
        ] );
      qsuite "compact-props" [ prop_compact_exact_random ];
      ( "recovery",
        [
          Alcotest.test_case "clean parse" `Quick test_recovery_clean_parse;
          Alcotest.test_case "resumes after error" `Quick
            test_recovery_resumes;
          Alcotest.test_case "multiple errors" `Quick
            test_recovery_multiple_errors;
          Alcotest.test_case "abandons at eof" `Quick
            test_recovery_abandons_at_eof;
          Alcotest.test_case "no error token ⇒ plain parse" `Quick
            test_recovery_without_error_token;
          Alcotest.test_case "eof-only input abandons" `Quick
            test_recovery_eof_only_input;
          Alcotest.test_case "stack runs dry" `Quick
            test_recovery_stack_runs_dry;
          Alcotest.test_case "same-position double panic" `Quick
            test_recovery_same_position_double_panic;
        ] );
      ( "menhir-reader",
        [
          Alcotest.test_case "expression grammar" `Quick test_menhir_basic;
          Alcotest.test_case "headers, bindings, comments, ε" `Quick
            test_menhir_features;
          Alcotest.test_case "EOF stripping rules" `Quick
            test_menhir_no_eof_strip_when_used_elsewhere;
          Alcotest.test_case "rejects unsupported syntax" `Quick
            test_menhir_rejects_unsupported;
          Alcotest.test_case "feeds the pipeline" `Quick
            test_menhir_analysis_pipeline;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "source shape" `Quick test_codegen_source_shape;
          Alcotest.test_case "conflicts in header" `Quick
            test_codegen_conflicts_commented;
          Alcotest.test_case "packed encoding roundtrip" `Quick
            test_codegen_encoding_agrees;
          Alcotest.test_case "compiles and runs (needs ocamlfind)" `Slow
            test_codegen_compiles_and_runs;
        ] );
      ( "counterexample",
        [
          Alcotest.test_case "dangling else" `Quick
            test_counterexample_dangling_else;
          Alcotest.test_case "min yields" `Quick test_min_yield;
          Alcotest.test_case "shortest prefixes reach their states" `Quick
            test_shortest_prefix_properties;
          Alcotest.test_case "prefixes are viable" `Quick
            test_counterexample_prefix_is_parseable;
        ] );
    ]
