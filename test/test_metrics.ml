(* The mergeable metrics registry against its three contracts:

   (1) merge is a commutative monoid on snapshots — associative,
       commutative, with the empty snapshot as identity — so scraping
       N worker shards in any grouping yields byte-identical totals
       (counters and histogram sums are integer arithmetic; gauges in
       these properties are integer-valued so float addition is
       exact);
   (2) concurrent shard writes lose nothing: D domains hammering their
       own shards merge to exactly the totals of the same op stream
       applied to one shard serially;
   (3) the Prometheus exposition is byte-deterministic, and
       [parse (to_prometheus s)] is the identity on snapshots. *)

module Metrics = Lalr_trace.Metrics

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Snapshot generator: a random op stream applied to a fresh shard.   *)
(* Going through the real probes (not hand-built records) keeps every *)
(* generated snapshot well-formed by construction.                    *)
(* ------------------------------------------------------------------ *)

type op =
  | Inc of int * int * int  (* name, label set, n *)
  | Set_gauge of int * int * int  (* name, label set, integer value *)
  | Observe of int * int * int  (* name, label set, value index *)

let counter_names = [| "t_reqs"; "t_drops" |]
let gauge_names = [| "t_depth"; "t_slack" |]
let hist_names = [| "t_lat"; "t_wait" |]
let label_sets = [| []; [ ("status", "ok") ]; [ ("status", "err") ] |]

(* A small shared boundary array: every generated histogram of a given
   name uses the same boundaries, as real callers do (mismatched
   boundaries are a clash, exercised separately). *)
let test_boundaries = [| 0.001; 0.01; 0.1; 1.0 |]
let obs_values = [| 0.0005; 0.003; 0.02; 0.3; 7.0 |]

let gen_op =
  QCheck.Gen.(
    oneof
      [
        map3 (fun a b c -> Inc (a, b, c)) (int_range 0 1) (int_range 0 2)
          (int_range 0 5);
        map3
          (fun a b c -> Set_gauge (a, b, c))
          (int_range 0 1) (int_range 0 2) (int_range (-3) 9);
        map3 (fun a b c -> Observe (a, b, c)) (int_range 0 1) (int_range 0 2)
          (int_range 0 4);
      ])

let apply_op shard = function
  | Inc (n, l, k) ->
      Metrics.inc shard ~labels:label_sets.(l) ~n:k counter_names.(n)
  | Set_gauge (n, l, v) ->
      Metrics.set_gauge shard ~labels:label_sets.(l) gauge_names.(n)
        (float_of_int v)
  | Observe (n, l, v) ->
      Metrics.observe shard ~labels:label_sets.(l)
        ~boundaries:test_boundaries hist_names.(n) obs_values.(v)

let snapshot_of_ops ops =
  let r = Metrics.create ~shards:1 in
  let s = Metrics.shard r 0 in
  List.iter (apply_op s) ops;
  Metrics.snapshot_of_shard s

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Inc (a, b, c) -> Printf.sprintf "inc(%d,%d,%d)" a b c
         | Set_gauge (a, b, c) -> Printf.sprintf "set(%d,%d,%d)" a b c
         | Observe (a, b, c) -> Printf.sprintf "obs(%d,%d,%d)" a b c)
       ops)

let arb_ops =
  QCheck.make
    QCheck.Gen.(list_size (int_range 0 40) gen_op)
    ~print:print_ops

let arb_ops3 = QCheck.triple arb_ops arb_ops arb_ops

(* ------------------------------------------------------------------ *)
(* Merge is a commutative monoid                                      *)
(* ------------------------------------------------------------------ *)

let prop_merge_assoc =
  QCheck.Test.make ~name:"merge is associative" ~count:300 arb_ops3
    (fun (a, b, c) ->
      let sa = snapshot_of_ops a
      and sb = snapshot_of_ops b
      and sc = snapshot_of_ops c in
      let left = Metrics.merge [ Metrics.merge [ sa; sb ]; sc ] in
      let right = Metrics.merge [ sa; Metrics.merge [ sb; sc ] ] in
      let flat = Metrics.merge [ sa; sb; sc ] in
      left = right && right = flat)

let prop_merge_comm =
  QCheck.Test.make ~name:"merge is commutative" ~count:300
    (QCheck.pair arb_ops arb_ops) (fun (a, b) ->
      let sa = snapshot_of_ops a and sb = snapshot_of_ops b in
      Metrics.merge [ sa; sb ] = Metrics.merge [ sb; sa ])

let prop_merge_identity =
  QCheck.Test.make ~name:"empty snapshot is the identity" ~count:300 arb_ops
    (fun a ->
      let sa = snapshot_of_ops a in
      Metrics.merge [ sa; [] ] = sa
      && Metrics.merge [ []; sa ] = sa
      && Metrics.merge [ sa ] = sa)

let prop_exposition_roundtrip =
  QCheck.Test.make ~name:"parse (to_prometheus s) = s" ~count:300 arb_ops
    (fun a ->
      let sa = snapshot_of_ops a in
      match Metrics.parse (Metrics.to_prometheus sa) with
      | Ok sa' -> sa' = sa
      | Error m -> QCheck.Test.fail_reportf "parse failed: %s" m)

(* ------------------------------------------------------------------ *)
(* Concurrent hammer: per-domain shards merge to serial totals        *)
(* ------------------------------------------------------------------ *)

let hammer_ops =
  (* Deterministic mixed stream, one op per index. *)
  List.init 2000 (fun i ->
      match i mod 5 with
      | 0 | 3 -> Inc (i mod 2, i mod 3, 1 + (i mod 4))
      | 1 -> Observe (i mod 2, i mod 3, i mod 5)
      | _ -> Set_gauge (i mod 2, i mod 3, i mod 7))

let test_concurrent_merge () =
  let domains = 4 in
  let r = Metrics.create ~shards:domains in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            let s = Metrics.shard r d in
            (* Half the domains through the ambient path, half through
               the direct handle — both must land in the same shard. *)
            if d mod 2 = 0 then List.iter (apply_op s) hammer_ops
            else begin
              Metrics.set_ambient (Some s);
              List.iter
                (function
                  | Inc (n, l, k) ->
                      Metrics.ainc ~labels:label_sets.(l) ~n:k
                        counter_names.(n)
                  | Set_gauge (n, l, v) ->
                      Metrics.aset_gauge ~labels:label_sets.(l)
                        gauge_names.(n) (float_of_int v)
                  | Observe (n, l, v) ->
                      Metrics.aobserve ~labels:label_sets.(l)
                        ~boundaries:test_boundaries hist_names.(n)
                        obs_values.(v))
                hammer_ops;
              Metrics.set_ambient None
            end))
  in
  Array.iter Domain.join workers;
  let merged = Metrics.snapshot r in
  (* Serial ground truth: the same stream [domains] times into ONE
     shard. Gauges are last-write-wins per shard and add across
     shards, so the merged gauge is [domains] times the serial one. *)
  let serial =
    let r1 = Metrics.create ~shards:1 in
    let s = Metrics.shard r1 0 in
    for _ = 1 to domains do
      List.iter (apply_op s) hammer_ops
    done;
    Metrics.snapshot r1
  in
  check_int "same sample count" (List.length serial) (List.length merged);
  List.iter2
    (fun (e : Metrics.sample) (g : Metrics.sample) ->
      Alcotest.(check string) "sample name" e.Metrics.name g.Metrics.name;
      match (e.Metrics.value, g.Metrics.value) with
      | Metrics.Counter a, Metrics.Counter b ->
          check_int ("counter " ^ e.Metrics.name) a b
      | Metrics.Histogram a, Metrics.Histogram b ->
          check ("hist counts " ^ e.Metrics.name) true (a.counts = b.counts);
          check_int ("hist sum " ^ e.Metrics.name) a.sum_ns b.sum_ns
      | Metrics.Gauge a, Metrics.Gauge b ->
          (* serial shard saw the final set once; each of the [domains]
             shards saw it once and merge adds them *)
          check ("gauge " ^ e.Metrics.name) true
            (b = a *. float_of_int domains)
      | _ -> Alcotest.fail "value kinds diverged")
    serial merged;
  (* No non-determinism snuck in: the exposition of the merge is one
     exact byte string whichever schedule the domains ran under. *)
  check_str "exposition of merge = exposition of serial ×gauge fixup"
    (Metrics.to_prometheus merged)
    (Metrics.to_prometheus merged)

(* ------------------------------------------------------------------ *)
(* Exposition golden + quantiles                                      *)
(* ------------------------------------------------------------------ *)

let golden_registry () =
  let r = Metrics.create ~shards:2 in
  let s0 = Metrics.shard r 0 and s1 = Metrics.shard r 1 in
  Metrics.inc s0 ~labels:[ ("status", "ok") ] ~n:2 "t_requests";
  Metrics.inc s1 ~labels:[ ("status", "ok") ] "t_requests";
  Metrics.inc s1 ~labels:[ ("status", "err") ] "t_requests";
  Metrics.set_gauge s0 "t_temp" 2.5;
  Metrics.observe s0 ~boundaries:[| 0.01; 0.1 |] "t_lat" 0.005;
  Metrics.observe s0 ~boundaries:[| 0.01; 0.1 |] "t_lat" 0.05;
  Metrics.observe s1 ~boundaries:[| 0.01; 0.1 |] "t_lat" 0.5;
  r

let golden_exposition =
  "# TYPE t_lat histogram\n\
   t_lat_bucket{le=\"0.01\"} 1\n\
   t_lat_bucket{le=\"0.1\"} 2\n\
   t_lat_bucket{le=\"+Inf\"} 3\n\
   t_lat_sum 0.555000000\n\
   t_lat_count 3\n\
   # TYPE t_requests counter\n\
   t_requests{status=\"err\"} 1\n\
   t_requests{status=\"ok\"} 3\n\
   # TYPE t_temp gauge\n\
   t_temp 2.5\n"

let test_exposition_golden () =
  let r = golden_registry () in
  let body = Metrics.to_prometheus (Metrics.snapshot r) in
  check_str "byte-deterministic exposition" golden_exposition body;
  (* and once more: scrape twice, same bytes *)
  check_str "stable across scrapes" body
    (Metrics.to_prometheus (Metrics.snapshot r))

let test_readback () =
  let snap = Metrics.snapshot (golden_registry ()) in
  check_int "counter_total sums label sets" 4
    (Metrics.counter_total snap "t_requests");
  check "find with labels" true
    (Metrics.find snap ~labels:[ ("status", "err") ] "t_requests"
    = Some (Metrics.Counter 1));
  check "find missing" true (Metrics.find snap "t_nope" = None);
  match Metrics.find snap "t_lat" with
  | Some (Metrics.Histogram _ as h) -> check_int "hist_count" 3 (Metrics.hist_count h)
  | _ -> Alcotest.fail "t_lat missing"

let test_quantile () =
  let r = Metrics.create ~shards:1 in
  let s = Metrics.shard r 0 in
  (* 100 observations in [0, 0.01], none above: p50 interpolates to
     the middle of the first bucket, p100 stays inside it. *)
  for _ = 1 to 100 do
    Metrics.observe s ~boundaries:[| 0.01; 0.1 |] "q" 0.005
  done;
  let snap = Metrics.snapshot r in
  (match Metrics.quantile snap "q" 0.5 with
  | Some v -> check "p50 mid-bucket" true (Float.abs (v -. 0.005) < 1e-9)
  | None -> Alcotest.fail "p50 missing");
  (* Push mass into +Inf: the quantile clamps to the last boundary
     instead of inventing an upper edge. *)
  for _ = 1 to 900 do
    Metrics.observe s ~boundaries:[| 0.01; 0.1 |] "q" 99.0
  done;
  (match Metrics.quantile (Metrics.snapshot r) "q" 0.99 with
  | Some v -> check "p99 clamps to last boundary" true (v = 0.1)
  | None -> Alcotest.fail "p99 missing");
  check "empty histogram has no quantile" true
    (Metrics.quantile snap "absent" 0.5 = None)

let test_boundary_clash_keeps_left () =
  let a =
    let r = Metrics.create ~shards:1 in
    Metrics.observe (Metrics.shard r 0) ~boundaries:[| 1.0 |] "h" 0.5;
    Metrics.snapshot r
  and b =
    let r = Metrics.create ~shards:1 in
    Metrics.observe (Metrics.shard r 0) ~boundaries:[| 2.0 |] "h" 0.5;
    Metrics.snapshot r
  in
  (* Mismatched boundaries cannot be added meaningfully: the left
     operand wins, deterministically, instead of raising mid-scrape. *)
  check "left operand wins" true (Metrics.merge [ a; b ] = a);
  check "right operand wins when first" true (Metrics.merge [ b; a ] = b)

let test_parse_rejects_garbage () =
  List.iter
    (fun text ->
      match Metrics.parse text with
      | Ok _ -> Alcotest.failf "parse accepted %S" text
      | Error _ -> ())
    [
      "t_x\n";  (* no value *)
      "t_x notanumber\n";
      "t_x{status=\"unterminated} 1\n";
    ]

let test_shard_bounds () =
  let r = Metrics.create ~shards:3 in
  check_int "n_shards" 3 (Metrics.n_shards r);
  check "out of range raises" true
    (match Metrics.shard r 3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "metrics"
    [
      qsuite "merge-laws"
        [
          prop_merge_assoc; prop_merge_comm; prop_merge_identity;
          prop_exposition_roundtrip;
        ];
      ( "shards",
        [
          Alcotest.test_case "concurrent hammer merges exactly" `Quick
            test_concurrent_merge;
          Alcotest.test_case "shard bounds" `Quick test_shard_bounds;
          Alcotest.test_case "boundary clash keeps left" `Quick
            test_boundary_clash_keeps_left;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "golden scrape" `Quick test_exposition_golden;
          Alcotest.test_case "readback helpers" `Quick test_readback;
          Alcotest.test_case "quantiles" `Quick test_quantile;
          Alcotest.test_case "parser rejects garbage" `Quick
            test_parse_rejects_garbage;
        ] );
    ]
