(* Deterministic fuzz harness: the crash-free guarantee, exercised.

   Every public entry point that accepts hostile input — the two
   grammar readers, the parse driver, the whole analysis engine under a
   budget — is hammered with seeded random input. The only permissible
   outcomes are a value, a diagnostic list, or a structured
   [Budget_exceeded]; any other exception escaping is a bug, and the
   failure message carries the seed so the run reproduces exactly.

   Iteration count and seed come from the environment so CI can crank
   the volume without recompiling:

     FUZZ_SEED=42 FUZZ_ITERATIONS=1000 dune exec test/test_fuzz.exe *)

module G = Lalr_grammar.Grammar
module Reader = Lalr_grammar.Reader
module Menhir_reader = Lalr_grammar.Menhir_reader
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Token = Lalr_runtime.Token
module Driver = Lalr_runtime.Driver
module Engine = Lalr_engine.Engine
module Budget = Lalr_guard.Budget
module Store = Lalr_store.Store
module Registry = Lalr_suite.Registry
module Randgen = Lalr_suite.Randgen

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let seed = env_int "FUZZ_SEED" 0xD5EED
let iterations = env_int "FUZZ_ITERATIONS" 250

(* One generator per test case, deterministically derived from the
   seed, so cases stay reproducible independently of execution order. *)
let rng salt = Random.State.make [| seed; salt |]

let guarded name i (f : unit -> unit) =
  try f ()
  with exn ->
    Alcotest.failf "%s: iteration %d of %d (FUZZ_SEED=%d): uncaught %s" name i
      iterations seed (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* Readers on random bytes                                            *)
(* ------------------------------------------------------------------ *)

let random_bytes st =
  let len = Random.State.int st 400 in
  String.init len (fun _ -> Char.chr (Random.State.int st 256))

let test_readers_random_bytes () =
  let st = rng 1 in
  for i = 1 to iterations do
    let src = random_bytes st in
    guarded "reader/bytes" i (fun () ->
        ignore (Reader.of_string_tolerant ~name:"fuzz" src));
    guarded "menhir/bytes" i (fun () ->
        ignore (Menhir_reader.of_string_tolerant ~name:"fuzz" src))
  done

(* ------------------------------------------------------------------ *)
(* Readers on mutated real grammars                                   *)
(* ------------------------------------------------------------------ *)

(* The corpus is materialised next to the test binary by the dune
   [glob_files fuzz_corpus/*] dependency; [dune exec] from the project
   root sees it under test/. *)
let corpus =
  lazy
    (let dir =
       List.find Sys.file_exists
         [
           "fuzz_corpus";
           "test/fuzz_corpus";
           Filename.concat (Filename.dirname Sys.executable_name) "fuzz_corpus";
         ]
     in
     Sys.readdir dir |> Array.to_list |> List.sort String.compare
     |> List.map (fun f -> Reader.read_file (Filename.concat dir f)))

let mutate st src =
  let s = Bytes.of_string src in
  let n = Bytes.length s in
  if n = 0 then src
  else
    match Random.State.int st 5 with
    | 0 ->
        (* flip one byte to a random printable-or-not char *)
        Bytes.set s (Random.State.int st n)
          (Char.chr (Random.State.int st 256));
        Bytes.to_string s
    | 1 ->
        (* delete a span *)
        let a = Random.State.int st n in
        let len = min (n - a) (1 + Random.State.int st 40) in
        String.sub src 0 a ^ String.sub src (a + len) (n - a - len)
    | 2 ->
        (* duplicate a span *)
        let a = Random.State.int st n in
        let len = min (n - a) (1 + Random.State.int st 40) in
        String.sub src 0 (a + len) ^ String.sub src a (n - a)
    | 3 ->
        (* truncate *)
        String.sub src 0 (Random.State.int st n)
    | _ ->
        (* splice with another corpus entry *)
        let other = List.nth (Lazy.force corpus)
            (Random.State.int st (List.length (Lazy.force corpus)))
        in
        let a = Random.State.int st (n + 1) in
        let b = Random.State.int st (String.length other + 1) in
        String.sub src 0 a
        ^ String.sub other b (String.length other - b)

let test_readers_mutated_corpus () =
  let st = rng 2 in
  let files = Lazy.force corpus in
  for i = 1 to iterations do
    let base = List.nth files (Random.State.int st (List.length files)) in
    let rounds = 1 + Random.State.int st 4 in
    let src = ref base in
    for _ = 1 to rounds do
      src := mutate st !src
    done;
    (* Both readers must survive either format: feeding yacc-format
       text to the menhir reader (and vice versa) is exactly the
       hostile-input case. *)
    guarded "reader/mutated" i (fun () ->
        ignore (Reader.of_string_tolerant ~name:"fuzz" !src));
    guarded "menhir/mutated" i (fun () ->
        ignore (Menhir_reader.of_string_tolerant ~name:"fuzz" !src))
  done

(* ------------------------------------------------------------------ *)
(* Driver on random token streams                                     *)
(* ------------------------------------------------------------------ *)

let lalr_tables g =
  let a = Lr0.build g in
  let t = Lalr.compute a in
  Tables.build ~lookahead:(Lalr.lookahead t) a

let recovery_grammar =
  lazy
    (Reader.of_string ~name:"fuzz-recovery"
       {|
%token semi id assign num error
%start prog
%%
prog : stmts ;
stmts : stmt | stmts stmt ;
stmt : id assign num semi
     | error semi ;
|})

let test_driver_random_tokens () =
  let st = rng 3 in
  let subjects =
    [
      ("expr", lalr_tables (Lazy.force (Registry.find "expr").grammar));
      ("recovery", lalr_tables (Lazy.force recovery_grammar));
    ]
  in
  for i = 1 to iterations do
    let name, tbl = List.nth subjects (i mod List.length subjects) in
    let g = Lr0.grammar (Tables.automaton tbl) in
    let len = Random.State.int st 30 in
    (* Terminal 0 is eof: interior eofs are deliberately in range. *)
    let toks =
      List.init len (fun _ -> Token.make (Random.State.int st (G.n_terminals g)))
    in
    guarded (name ^ "/parse") i (fun () ->
        ignore (Driver.parse tbl toks));
    guarded (name ^ "/recovery") i (fun () ->
        let out = Driver.parse_with_recovery tbl toks in
        (* The outcome contract: a clean parse has a tree and no
           errors; anything else reports at least one error. *)
        if out.Driver.errors = [] && out.Driver.tree = None then
          Alcotest.failf "%s: no tree and no errors" name)
  done

(* ------------------------------------------------------------------ *)
(* Engine under tight budgets                                         *)
(* ------------------------------------------------------------------ *)

let full_pipeline e =
  ignore (Engine.tables e);
  ignore (Engine.classification ~with_lr1:false e)

let test_engine_under_budget () =
  let st = rng 4 in
  (* The analysis is the expensive part; a tenth of the reader volume
     keeps the case fast while still covering hundreds of grammars in a
     CI run. *)
  for i = 1 to max 1 (iterations / 10) do
    let g = Randgen.generate Randgen.default st in
    let fuel = 10 + Random.State.int st 5000 in
    let budget = Budget.create ~fuel () in
    let e = Engine.create ~budget g in
    match Engine.run e full_pipeline with
    | Ok () -> ()
    | Error (Engine.Budget_exceeded ex) ->
        Alcotest.(check bool)
          "exceeded names a stage" true (ex.Budget.ex_stage <> "");
        if ex.Budget.ex_resource = Budget.Fuel then
          Alcotest.(check bool)
            "consumed reached the cap" true
            (ex.Budget.ex_consumed >= ex.Budget.ex_cap)
    | Error (Engine.Internal_error { stage; invariant }) ->
        Alcotest.failf
          "iteration %d (FUZZ_SEED=%d): internal error in %s: %s" i seed
          stage invariant
  done

let test_engine_unbudgeted_unchanged () =
  (* The same grammars with no budget installed must analyse cleanly:
     the guard instrumentation is inert when uninstalled. *)
  let st = rng 4 in
  for i = 1 to max 1 (iterations / 10) do
    let g = Randgen.generate Randgen.default st in
    ignore (Random.State.int st 5000);
    (* keep [st] in lockstep with the budgeted case *)
    let e = Engine.create g in
    match Engine.run e full_pipeline with
    | Ok () -> ()
    | Error f ->
        Alcotest.failf "iteration %d (FUZZ_SEED=%d): unbudgeted failure: %s" i
          seed
          (Format.asprintf "%a" Engine.pp_failure f)
  done

let test_budget_trips_on_explosion () =
  (* A grammar big enough that 200 fuel cannot possibly cover the LR(0)
     construction: the budget must trip, and trip early. *)
  let st = rng 5 in
  let big =
    {
      Randgen.n_terminals = 8;
      n_nonterminals = 30;
      max_rhs = 5;
      productions_per_nt = 4;
      epsilon_weight = 0.1;
    }
  in
  let g = Randgen.generate big st in
  let e = Engine.create ~budget:(Budget.create ~fuel:200 ()) g in
  match Engine.run e full_pipeline with
  | Ok () -> Alcotest.fail "200 fuel cannot analyse a 30-nonterminal grammar"
  | Error (Engine.Budget_exceeded ex) ->
      Alcotest.(check bool) "fuel tripped" true (ex.Budget.ex_resource = Budget.Fuel);
      Alcotest.(check bool)
        "stopped promptly" true
        (ex.Budget.ex_consumed <= 2. *. ex.Budget.ex_cap)
  | Error f ->
      Alcotest.failf "expected Budget_exceeded, got %s"
        (Format.asprintf "%a" Engine.pp_failure f)

let test_wall_clock_budget () =
  (* A wall cap must stop the analysis without crashing; either the
     analysis is faster than the cap (fine) or the trip is structured. *)
  let st = rng 6 in
  let big =
    {
      Randgen.n_terminals = 10;
      n_nonterminals = 40;
      max_rhs = 6;
      productions_per_nt = 4;
      epsilon_weight = 0.1;
    }
  in
  let g = Randgen.generate big st in
  let e = Engine.create ~budget:(Budget.create ~wall:0.002 ()) g in
  match Engine.run e full_pipeline with
  | Ok () -> ()
  | Error (Engine.Budget_exceeded ex) ->
      Alcotest.(check bool)
        "wall resource" true
        (ex.Budget.ex_resource = Budget.Wall_clock)
  | Error f ->
      Alcotest.failf "expected Ok or Budget_exceeded, got %s"
        (Format.asprintf "%a" Engine.pp_failure f)

(* ------------------------------------------------------------------ *)
(* The artifact store under random damage                              *)
(* ------------------------------------------------------------------ *)

let test_store_random_damage () =
  (* Write an entry, damage it at random (truncation, bit-flip,
     stamp/version skew), and assert the contract: the next load is a
     counted quarantine-and-miss — never a crash, never a served stale
     answer — and the recompute repopulates the entry. *)
  let st = rng 7 in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lalr_fuzz_store_%d" (Unix.getpid ()))
  in
  let store = Store.create ~dir in
  for i = 1 to max 1 (iterations / 10) do
    let g = Randgen.generate Randgen.default st in
    guarded "store/damage" i (fun () ->
        let e = Engine.create ~store g in
        (match Engine.run e full_pipeline with
        | Ok () -> ()
        | Error f ->
            Alcotest.failf "unbudgeted failure: %s"
              (Format.asprintf "%a" Engine.pp_failure f));
        Engine.persist ~force:true e;
        let path = Store.entry_path store g in
        if not (Sys.file_exists path) then
          Alcotest.fail "persist wrote nothing";
        let raw = In_channel.with_open_bin path In_channel.input_all in
        let n = String.length raw in
        let damaged =
          match Random.State.int st 3 with
          | 0 -> String.sub raw 0 (Random.State.int st n)
          | 1 ->
              let b = Bytes.of_string raw in
              let j = Random.State.int st n in
              Bytes.set b j
                (Char.chr
                   (Char.code (Bytes.get b j)
                   lxor (1 lsl Random.State.int st 8)));
              Bytes.to_string b
          | _ ->
              (* flip inside the stamp region: a simulated build from
                 another library or compiler version *)
              let b = Bytes.of_string raw in
              let j = 10 + Random.State.int st 4 in
              Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lxor 0x01));
              Bytes.to_string b
        in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc damaged);
        let before = Store.stats store in
        (match Store.load store g with
        | Some _ ->
            Alcotest.failf "damaged entry served (damage left %d of %d bytes)"
              (String.length damaged) n
        | None -> ());
        let after = Store.stats store in
        if after.Store.corrupt <> before.Store.corrupt + 1 then
          Alcotest.fail "quarantine not counted";
        if after.Store.misses <> before.Store.misses + 1 then
          Alcotest.fail "damaged load not counted as a miss";
        (* miss-and-recompute: a fresh engine redoes the work cleanly
           and repopulates the entry *)
        let e2 = Engine.create ~store g in
        (match Engine.run e2 full_pipeline with
        | Ok () -> ()
        | Error f ->
            Alcotest.failf "recompute after quarantine failed: %s"
              (Format.asprintf "%a" Engine.pp_failure f));
        Engine.persist ~force:true e2;
        match Store.load store g with
        | Some _ -> ()
        | None -> Alcotest.fail "recompute did not repopulate the entry")
  done

(* ------------------------------------------------------------------ *)
(* Serve protocol decoder on hostile lines                             *)
(* ------------------------------------------------------------------ *)

module Protocol = Lalr_serve.Protocol

(* The daemon's outermost trust boundary: any byte sequence in, Ok or
   Error out — never an exception, never a hang. *)
let decode_total name i line =
  guarded name i (fun () ->
      match Protocol.decode_request line with Ok _ | Error _ -> ())

let test_protocol_random_bytes () =
  let st = rng 60 in
  for i = 1 to iterations do
    decode_total "protocol/bytes" i (random_bytes st)
  done

let valid_request_lines =
  [
    {|{"id":"r1","kind":"classify","file":"suite:expr"}|};
    {|{"id":7,"file":"g.cfg","budget":"fuel=10,wall=500ms"}|};
    {|{"id":"r2","grammar":"%token a\n%start s\n%%\ns : a ;","format":"cfg"}|};
    {|{"id":"h","kind":"health"}|};
  ]

let test_protocol_mutated_requests () =
  let st = rng 61 in
  for i = 1 to iterations do
    let base =
      List.nth valid_request_lines
        (Random.State.int st (List.length valid_request_lines))
    in
    let b = Bytes.of_string base in
    (* a handful of byte-level mutations: flips, deletions keep the
       line mostly-JSON so the deep paths of the decoder are hit *)
    for _ = 0 to Random.State.int st 4 do
      let i = Random.State.int st (Bytes.length b) in
      Bytes.set b i (Char.chr (Random.State.int st 256))
    done;
    let line = Bytes.to_string b in
    let line =
      if Random.State.bool st then
        String.sub line 0 (Random.State.int st (String.length line + 1))
      else line
    in
    decode_total "protocol/mutated" i line
  done

let test_protocol_nesting_and_size () =
  let st = rng 62 in
  for i = 1 to iterations do
    let depth = 1 + Random.State.int st 2000 in
    let opener = if Random.State.bool st then '[' else '{' in
    let line =
      (* sometimes balanced, sometimes truncated mid-bomb *)
      if Random.State.bool st then String.make depth opener
      else
        String.make depth '['
        ^ String.make (Random.State.int st (depth + 1)) ']'
    in
    decode_total "protocol/nesting" i line
  done;
  (* an oversized but well-formed line must also decode or reject
     cleanly (the byte cap itself lives in the connection reader) *)
  let big =
    Printf.sprintf {|{"id":"big","grammar":"%s","format":"cfg"}|}
      (String.concat "\\n" (List.init 5000 (fun i -> Printf.sprintf "x%d" i)))
  in
  decode_total "protocol/oversized" 0 big

let () =
  Alcotest.run "fuzz"
    [
      ( "readers",
        [
          Alcotest.test_case "random bytes" `Quick test_readers_random_bytes;
          Alcotest.test_case "mutated corpus" `Quick
            test_readers_mutated_corpus;
        ] );
      ( "driver",
        [
          Alcotest.test_case "random token streams" `Quick
            test_driver_random_tokens;
        ] );
      ( "engine",
        [
          Alcotest.test_case "random grammars under budget" `Quick
            test_engine_under_budget;
          Alcotest.test_case "unbudgeted runs unchanged" `Quick
            test_engine_unbudgeted_unchanged;
          Alcotest.test_case "explosion trips the budget" `Quick
            test_budget_trips_on_explosion;
          Alcotest.test_case "wall-clock cap" `Quick test_wall_clock_budget;
        ] );
      ( "store",
        [
          Alcotest.test_case "random damage is miss-and-recompute" `Quick
            test_store_random_damage;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "random bytes" `Quick test_protocol_random_bytes;
          Alcotest.test_case "mutated request lines" `Quick
            test_protocol_mutated_requests;
          Alcotest.test_case "nesting bombs and oversized lines" `Quick
            test_protocol_nesting_and_size;
        ] );
    ]
