(* The serve daemon's robustness contract, pinned end to end.

   In-process layers first — the wire protocol (a total decoder), the
   Retry policy (deterministic backoff), the Pool (supervision,
   shedding, per-job budgets) — then the chaos acceptance test through
   the real binary: a mixed load with a poisoned request, an
   over-budget request and a malformed line must produce exactly one
   typed response per request while the daemon keeps serving, and
   SIGTERM must drain to exit 0. *)

module Protocol = Lalr_serve.Protocol
module Pool = Lalr_serve.Pool
module Serve = Lalr_serve.Serve
module Client = Lalr_serve.Client
module Retry = Lalr_guard.Retry
module Breaker = Lalr_guard.Breaker
module Faultpoint = Lalr_guard.Faultpoint
module Metrics = Lalr_trace.Metrics

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let decode_ok line =
  match Protocol.decode_request line with
  | Ok r -> r
  | Error m -> Alcotest.failf "decode %S: %s" line m

let decode_err line =
  match Protocol.decode_request line with
  | Ok _ -> Alcotest.failf "decode %S: expected rejection" line
  | Error m -> m

let test_decode_requests () =
  (match decode_ok {|{"id":"r1","kind":"classify","file":"suite:expr"}|} with
  | Protocol.Classify { id = "r1"; source = Protocol.File "suite:expr";
                        budget = None; deadline_ms = None;
                        trace_id = None } -> ()
  | _ -> Alcotest.fail "file request decoded wrong");
  (match decode_ok {|{"id":"d","file":"g.cfg","deadline_ms":250}|} with
  | Protocol.Classify { id = "d"; deadline_ms = Some 250.; _ } -> ()
  | _ -> Alcotest.fail "deadline_ms decoded wrong");
  (match decode_ok {|{"id":7,"file":"g.cfg","budget":"fuel=10"}|} with
  | Protocol.Classify { id = "7"; budget = Some "fuel=10"; _ } -> ()
  | _ -> Alcotest.fail "integer id / budget decoded wrong");
  (match decode_ok {|{"id":"h","kind":"health"}|} with
  | Protocol.Health { id = "h" } -> ()
  | _ -> Alcotest.fail "health decoded wrong");
  match
    decode_ok {|{"grammar":"%token a\n%start s\n%%\ns : a ;","format":"mly"}|}
  with
  | Protocol.Classify
      { id = ""; source = Protocol.Inline { format = `Mly; text }; _ } ->
      Alcotest.(check bool) "inline text carries the newlines" true
        (String.contains text '\n')
  | _ -> Alcotest.fail "inline request decoded wrong"

let test_decode_rejects () =
  let cases =
    [
      ("", "empty line");
      ("not json", "garbage");
      ({|{"id":"x","buget":"fuel=1"}|}, "unknown field (typo must not pass)");
      ({|{"file":"a","grammar":"b"}|}, "file and grammar are exclusive");
      ({|{"kind":"reboot"}|}, "unknown kind");
      ({|{"id":["x"]}|}, "non-scalar id");
      ({|{"file":"a"} trailing|}, "trailing garbage");
      ({|{"format":"cfg"}|}, "format without grammar");
    ]
  in
  List.iter (fun (line, _why) -> ignore (decode_err line : string)) cases;
  (* depth bomb: linear time, clean rejection, no stack overflow *)
  let bomb = String.make 4000 '[' in
  ignore (decode_err bomb : string);
  (* NUL and friends are rejected, not smuggled through *)
  ignore (decode_err "{\"id\":\"a\x00b\"}" : string)

let test_encode_roundtrip () =
  let reqs =
    [
      Protocol.Classify
        { id = "r1"; source = Protocol.File "suite:expr";
          budget = Some "wall=500ms"; deadline_ms = None; trace_id = None };
      Protocol.Classify
        { id = "r2"; source = Protocol.File "suite:expr"; budget = None;
          deadline_ms = Some 250.; trace_id = Some "t-r2" };
      Protocol.Classify
        {
          id = "";
          source =
            Protocol.Inline
              { text = "%token a\n%start s\n%%\ns : a ;"; format = `Cfg };
          budget = None;
          deadline_ms = None;
          trace_id = None;
        };
      Protocol.Health { id = "h1" };
      Protocol.Metrics { id = "m1" };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_request (Protocol.encode_request r) with
      | Ok r' when r = r' -> ()
      | Ok _ -> Alcotest.failf "round-trip changed %s" (Protocol.encode_request r)
      | Error m -> Alcotest.failf "round-trip rejected: %s" m)
    reqs

let test_observability_protocol () =
  (* trace_id rides along on classify; non-strings are rejected *)
  (match decode_ok {|{"id":"t","file":"g.cfg","trace_id":"abc-1"}|} with
  | Protocol.Classify { trace_id = Some "abc-1"; _ } -> ()
  | _ -> Alcotest.fail "trace_id decoded wrong");
  ignore (decode_err {|{"id":"t","file":"g.cfg","trace_id":7}|} : string);
  (match decode_ok {|{"id":"m","kind":"metrics"}|} with
  | Protocol.Metrics { id = "m" } -> ()
  | _ -> Alcotest.fail "metrics request decoded wrong");
  (* the health line pins the members collectors key on *)
  let h =
    Protocol.Health
      {
        Protocol.h_id = "h"; h_uptime_s = 1.5; h_pid = 42;
        h_version = Protocol.version; h_ready = true; h_queue_depth = 0;
        h_queue_capacity = 64; h_workers = []; h_restarts = 0; h_shed = 0;
        h_deadline_expired = 0; h_completed = 0; h_store = None;
      }
  in
  let hline = Protocol.encode_response h in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("health carries " ^ needle) true
        (contains hline needle))
    [
      {|"uptime_ms":1500|}; {|"pid":42|};
      Printf.sprintf {|"version":"%s"|} Protocol.version;
    ];
  (* a metrics response is one string member, status "metrics", exit 0 *)
  let m =
    Protocol.Metrics_snapshot
      { Protocol.m_id = "m"; m_body = "# TYPE a counter\na 1\n" }
  in
  let mline = Protocol.encode_response m in
  Alcotest.(check bool) "metrics status" true
    (contains mline {|"status":"metrics"|});
  Alcotest.(check bool) "metrics exit 0" true (contains mline {|"exit":0|});
  Alcotest.(check bool) "newlines escaped in body" true
    (contains mline {|\n|});
  Alcotest.(check string) "status label" "metrics"
    (Protocol.response_status_label m)

let test_stamp_trace_ids () =
  let classify = {|{"id":"a","file":"g.cfg"}|} in
  let stamped_already = {|{"id":"b","file":"g.cfg","trace_id":"keep"}|} in
  let health = {|{"id":"h","kind":"health"}|} in
  let garbage = "not json at all" in
  let out =
    Client.stamp_trace_ids ~prefix:"p"
      [ classify; stamped_already; health; garbage ]
  in
  (match out with
  | [ a; b; h; g ] ->
      (match Protocol.decode_request a with
      | Ok (Protocol.Classify { trace_id = Some "p-0"; _ }) -> ()
      | _ -> Alcotest.fail "unstamped classify gains prefix-index");
      Alcotest.(check string) "already-stamped line untouched" stamped_already
        b;
      Alcotest.(check string) "health untouched" health h;
      Alcotest.(check string) "garbage untouched" garbage g
  | _ -> Alcotest.fail "stamping preserves arity");
  Alcotest.(check (list string)) "trace_ids extracts in order"
    [ "p-0"; "keep" ] (Client.trace_ids out)

let test_response_exits () =
  List.iter
    (fun (status, want) ->
      Alcotest.(check int)
        (Protocol.status_name status)
        want
        (Protocol.status_exit status))
    [
      (Protocol.Ok_, 0); (Protocol.Verdict, 1); (Protocol.Bad_request, 2);
      (Protocol.Budget, 3); (Protocol.Overloaded, 3);
      (Protocol.Deadline_exceeded, 3); (Protocol.Internal, 4);
      (Protocol.Health_ok, 0);
    ]

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)
(* ------------------------------------------------------------------ *)

let test_retry_deterministic_backoff () =
  let p = Retry.default in
  for attempt = 1 to 5 do
    let d1 = Retry.delay_for p ~attempt in
    let d2 = Retry.delay_for p ~attempt in
    Alcotest.(check (float 0.)) "same attempt, same delay" d1 d2;
    let lo = p.Retry.base_delay *. (1. -. p.Retry.jitter) in
    let hi =
      p.Retry.max_delay *. (1. +. p.Retry.jitter)
    in
    Alcotest.(check bool)
      (Printf.sprintf "delay %g within jittered envelope" d1)
      true
      (d1 >= lo && d1 <= hi)
  done;
  (* growth up to the cap: un-jittered raw doubles each attempt *)
  let nj = { p with Retry.jitter = 0. } in
  Alcotest.(check (float 1e-9)) "attempt 1" 0.05 (Retry.delay_for nj ~attempt:1);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.1 (Retry.delay_for nj ~attempt:2);
  Alcotest.(check (float 1e-9)) "cap" 1.0 (Retry.delay_for nj ~attempt:20)

let test_retry_run () =
  let slept = ref [] in
  let sleep d = slept := d :: !slept in
  (* first attempt stands: no sleeps, zero retries *)
  let r, retries =
    Retry.run ~sleep ~retryable:(fun _ -> false) (fun ~attempt -> attempt)
  in
  Alcotest.(check int) "value" 1 r;
  Alcotest.(check int) "no retries" 0 retries;
  Alcotest.(check int) "no sleeps" 0 (List.length !slept);
  (* always-retryable: bounded by max_attempts, one sleep per retry *)
  let policy = { Retry.default with Retry.max_attempts = 4 } in
  let calls = ref 0 in
  let _, retries =
    Retry.run ~policy ~sleep
      ~retryable:(fun _ -> true)
      (fun ~attempt:_ -> incr calls)
  in
  Alcotest.(check int) "attempt cap respected" 4 !calls;
  Alcotest.(check int) "retries reported" 3 retries;
  Alcotest.(check int) "one sleep per retry" 3 (List.length !slept)

(* ------------------------------------------------------------------ *)
(* Pool (in-process)                                                   *)
(* ------------------------------------------------------------------ *)

let collector () =
  let mu = Mutex.create () in
  let acc = ref [] in
  let respond r =
    Mutex.lock mu;
    acc := r :: !acc;
    Mutex.unlock mu
  in
  let get () =
    Mutex.lock mu;
    let v = !acc in
    Mutex.unlock mu;
    v
  in
  (respond, get)

let classify ?budget ?deadline_ms ?trace_id id file =
  Protocol.Classify
    { id; source = Protocol.File file; budget; deadline_ms; trace_id }

let job_statuses responses =
  List.filter_map
    (function
      | Protocol.Job j -> Some (j.Protocol.r_id, j.Protocol.r_status)
      | Protocol.Health _ | Protocol.Metrics_snapshot _ -> None)
    responses

let test_pool_serves_and_drains () =
  let pool = Pool.create { Pool.default_config with Pool.domains = 2 } in
  let respond, get = collector () in
  let ids = List.init 6 (fun i -> Printf.sprintf "j%d" i) in
  List.iter
    (fun id ->
      match Pool.submit pool ~request:(classify id "suite:expr") ~respond with
      | `Accepted -> ()
      | `Overloaded | `Draining | `Expired | `Unready ->
          Alcotest.failf "%s not admitted" id)
    ids;
  ignore (Pool.drain pool);
  let got = job_statuses (get ()) in
  Alcotest.(check int) "one response per job" (List.length ids)
    (List.length got);
  List.iter
    (fun id ->
      match List.assoc_opt id got with
      | Some Protocol.Ok_ -> ()
      | Some s -> Alcotest.failf "%s: status %s" id (Protocol.status_name s)
      | None -> Alcotest.failf "%s: no response" id)
    ids;
  (* drain is idempotent *)
  ignore (Pool.drain pool)

let test_pool_per_request_budget () =
  let pool = Pool.create { Pool.default_config with Pool.domains = 1 } in
  let respond, get = collector () in
  let submit r =
    match Pool.submit pool ~request:r ~respond with
    | `Accepted -> ()
    | `Overloaded | `Draining | `Expired | `Unready ->
        Alcotest.fail "not admitted"
  in
  submit (classify ~budget:"fuel=10" "tight" "suite:ada-subset");
  submit (classify "free" "suite:ada-subset");
  submit (classify ~budget:"no-such-resource=1" "badspec" "suite:expr");
  ignore (Pool.drain pool);
  let got = job_statuses (get ()) in
  (match List.assoc_opt "tight" got with
  | Some Protocol.Budget -> ()
  | s ->
      Alcotest.failf "tight: %s"
        (match s with
        | Some s -> Protocol.status_name s
        | None -> "no response"))
  ;
  (match List.assoc_opt "free" got with
  | Some (Protocol.Ok_ | Protocol.Verdict) -> ()
  | _ -> Alcotest.fail "free: the budget leaked across jobs");
  match List.assoc_opt "badspec" got with
  | Some Protocol.Bad_request -> ()
  | _ -> Alcotest.fail "badspec: expected bad_request"

let test_pool_sheds_when_full () =
  (* One busy domain, queue of one: a slow job in flight, one queued,
     the rest of a fast burst must be refused as overloaded. *)
  let pool =
    Pool.create
      { Pool.default_config with Pool.domains = 1; Pool.queue_capacity = 1 }
  in
  let respond, get = collector () in
  let outcomes =
    List.init 10 (fun i ->
        Pool.submit pool
          ~request:
            (classify (Printf.sprintf "b%d" i)
               (if i = 0 then "suite:ada-subset" else "suite:expr"))
          ~respond)
  in
  let accepted =
    List.length (List.filter (fun o -> o = `Accepted) outcomes)
  in
  let shed = List.length (List.filter (fun o -> o = `Overloaded) outcomes) in
  Alcotest.(check bool) "first job admitted" true
    (List.hd outcomes = `Accepted);
  Alcotest.(check bool) "burst partially shed" true (shed > 0);
  ignore (Pool.drain pool);
  Alcotest.(check int) "every admitted job answered" accepted
    (List.length (get ()));
  let h = Pool.health pool ~id:"h" in
  Alcotest.(check int) "sheds counted" shed h.Protocol.h_shed

let test_pool_supervises_crash () =
  Faultpoint.disarm ();
  (match Faultpoint.arm "serve-worker:raise" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Fun.protect ~finally:Faultpoint.disarm (fun () ->
      let pool = Pool.create { Pool.default_config with Pool.domains = 1 } in
      let respond, get = collector () in
      List.iter
        (fun id ->
          match
            Pool.submit pool ~request:(classify id "suite:expr") ~respond
          with
          | `Accepted -> ()
          | `Overloaded | `Draining | `Expired | `Unready ->
              Alcotest.fail "not admitted")
        [ "poisoned"; "after" ];
      ignore (Pool.drain pool);
      let got = job_statuses (get ()) in
      Alcotest.(check int) "both jobs answered" 2 (List.length got);
      (match List.assoc_opt "poisoned" got with
      | Some Protocol.Internal -> ()
      | _ -> Alcotest.fail "poisoned job: expected typed internal");
      (match List.assoc_opt "after" got with
      | Some Protocol.Ok_ -> ()
      | _ -> Alcotest.fail "job after the crash: expected ok");
      let h = Pool.health pool ~id:"h" in
      Alcotest.(check int) "restart recorded" 1 h.Protocol.h_restarts)

(* ------------------------------------------------------------------ *)
(* Pool: deadlines                                                     *)
(* ------------------------------------------------------------------ *)

let test_pool_deadline_admission () =
  let pool = Pool.create { Pool.default_config with Pool.domains = 1 } in
  let respond, get = collector () in
  (match
     Pool.submit pool
       ~request:(classify ~deadline_ms:(-5.) "neg" "suite:expr")
       ~respond
   with
  | `Expired -> ()
  | _ -> Alcotest.fail "negative deadline must shed at admission");
  (match
     Pool.submit pool
       ~request:(classify ~deadline_ms:0. "zero" "suite:expr")
       ~respond
   with
  | `Expired -> ()
  | _ -> Alcotest.fail "zero deadline must shed at admission");
  ignore (Pool.drain pool);
  Alcotest.(check int) "shed before any compute: respond never called" 0
    (List.length (get ()));
  let h = Pool.health pool ~id:"h" in
  Alcotest.(check int) "expired counter" 2 h.Protocol.h_deadline_expired;
  Alcotest.(check bool) "deadline sheds do not flip readiness" true
    h.Protocol.h_ready

let test_pool_deadline_dequeue () =
  (* Injected clock: a blocker holds the single worker while "late"
     queues; the clock jumps past late's deadline during the wait, so
     the dequeue re-check must shed it without running the engine. *)
  let clock = ref 1000. in
  let pool =
    Pool.create
      {
        Pool.default_config with
        Pool.domains = 1;
        Pool.now = (fun () -> !clock);
      }
  in
  let respond, get = collector () in
  let submit r =
    match Pool.submit pool ~request:r ~respond with
    | `Accepted -> ()
    | _ -> Alcotest.fail "not admitted"
  in
  submit (classify "blocker" "suite:ada-subset");
  submit (classify ~deadline_ms:10. "late" "suite:expr");
  clock := !clock +. 60.;
  ignore (Pool.drain pool);
  let got = job_statuses (get ()) in
  (match List.assoc_opt "late" got with
  | Some Protocol.Deadline_exceeded -> ()
  | Some s -> Alcotest.failf "late: %s" (Protocol.status_name s)
  | None -> Alcotest.fail "late: no response");
  (match List.assoc_opt "blocker" got with
  | Some (Protocol.Ok_ | Protocol.Verdict) -> ()
  | _ -> Alcotest.fail "blocker must complete unaffected");
  let h = Pool.health pool ~id:"h" in
  Alcotest.(check int) "dequeue shed counted" 1 h.Protocol.h_deadline_expired

let test_pool_deadline_in_flight () =
  (* Real clock: the remaining deadline is intersected into the wall
     cap, so running work self-terminates — and the trip is typed
     deadline_exceeded, not budget. (If the queue wait eats the 5 ms
     first, the dequeue re-check sheds with the same status.) *)
  let pool = Pool.create { Pool.default_config with Pool.domains = 1 } in
  let respond, get = collector () in
  (match
     Pool.submit pool
       ~request:(classify ~deadline_ms:5. "running" "suite:ada-subset")
       ~respond
   with
  | `Accepted -> ()
  | _ -> Alcotest.fail "not admitted");
  ignore (Pool.drain pool);
  match job_statuses (get ()) with
  | [ ("running", Protocol.Deadline_exceeded) ] -> ()
  | [ ("running", s) ] -> Alcotest.failf "running: %s" (Protocol.status_name s)
  | _ -> Alcotest.fail "expected exactly one response"

let test_pool_deadline_vs_budget () =
  (* The client's own wall cap is tighter than the deadline: the trip
     belongs to the budget, and must NOT be reported deadline_exceeded. *)
  let pool = Pool.create { Pool.default_config with Pool.domains = 1 } in
  let respond, get = collector () in
  (match
     Pool.submit pool
       ~request:
         (classify ~budget:"wall=1ms" ~deadline_ms:60000. "capped"
            "suite:ada-subset")
       ~respond
   with
  | `Accepted -> ()
  | _ -> Alcotest.fail "not admitted");
  ignore (Pool.drain pool);
  match job_statuses (get ()) with
  | [ ("capped", Protocol.Budget) ] -> ()
  | [ ("capped", s) ] -> Alcotest.failf "capped: %s" (Protocol.status_name s)
  | _ -> Alcotest.fail "expected exactly one response"

(* ------------------------------------------------------------------ *)
(* Pool: crash-loop backstop                                           *)
(* ------------------------------------------------------------------ *)

let wait_restarts pool n =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let h = Pool.health pool ~id:"w" in
    if h.Protocol.h_restarts >= n then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %d restarts (have %d)" n
        h.Protocol.h_restarts
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

let test_pool_crash_loop_unready () =
  Faultpoint.disarm ();
  (* Two fire-once points on the same site: each of the first two jobs
     crashes its worker exactly once. *)
  (match Faultpoint.arm "serve-worker:raise@1,serve-worker:raise@1" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Fun.protect ~finally:Faultpoint.disarm (fun () ->
      let clock = ref 0. in
      let pool =
        Pool.create
          {
            Pool.default_config with
            Pool.domains = 1;
            Pool.crash_threshold = 2;
            Pool.crash_window = 10.;
            Pool.now = (fun () -> !clock);
          }
      in
      let respond, get = collector () in
      let submit id =
        Pool.submit pool ~request:(classify id "suite:expr") ~respond
      in
      (match submit "c1" with
      | `Accepted -> ()
      | _ -> Alcotest.fail "c1 not admitted");
      wait_restarts pool 1;
      Alcotest.(check bool) "one crash inside the window: still ready" true
        (Pool.ready pool);
      (match submit "c2" with
      | `Accepted -> ()
      | _ -> Alcotest.fail "c2 not admitted");
      wait_restarts pool 2;
      Alcotest.(check bool) "threshold reached: backstop holds" false
        (Pool.ready pool);
      (match submit "refused" with
      | `Unready -> ()
      | `Accepted -> Alcotest.fail "unready pool must not admit"
      | _ -> Alcotest.fail "expected `Unready");
      (* the window slides past the burst: readiness self-heals *)
      clock := !clock +. 60.;
      Alcotest.(check bool) "self-healed after the window" true
        (Pool.ready pool);
      (match submit "healed" with
      | `Accepted -> ()
      | _ -> Alcotest.fail "healed not admitted");
      ignore (Pool.drain pool);
      let got = job_statuses (get ()) in
      (match List.assoc_opt "healed" got with
      | Some Protocol.Ok_ -> ()
      | _ -> Alcotest.fail "job after self-heal must run clean");
      let h = Pool.health pool ~id:"h" in
      Alcotest.(check int) "both respawns recorded" 2 h.Protocol.h_restarts;
      Alcotest.(check bool) "health reports ready again" true
        h.Protocol.h_ready)

(* ------------------------------------------------------------------ *)
(* Breaker                                                             *)
(* ------------------------------------------------------------------ *)

let check_decision msg want got =
  let name = function
    | Breaker.Proceed -> "proceed"
    | Breaker.Probe -> "probe"
    | Breaker.Reject r -> Printf.sprintf "reject(%g)" r
  in
  if got <> want then Alcotest.failf "%s: %s, wanted %s" msg (name got) (name want)

let test_breaker_transitions () =
  let clock = ref 0. in
  let b =
    Breaker.create
      ~config:
        {
          Breaker.failure_threshold = 2;
          Breaker.reset_after = 1.0;
          Breaker.now = (fun () -> !clock);
        }
      ()
  in
  Alcotest.(check string) "fresh" "closed"
    (Breaker.state_name (Breaker.state b));
  check_decision "closed admits" Breaker.Proceed (Breaker.acquire b);
  Breaker.failure b;
  Alcotest.(check string) "below threshold" "closed"
    (Breaker.state_name (Breaker.state b));
  check_decision "still admits" Breaker.Proceed (Breaker.acquire b);
  Breaker.failure b;
  Alcotest.(check string) "threshold trips" "open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check int) "trip counted" 1 (Breaker.trips b);
  check_decision "open rejects with full window" (Breaker.Reject 1.0)
    (Breaker.acquire b);
  clock := 0.5;
  check_decision "mid-window reject reports time left" (Breaker.Reject 0.5)
    (Breaker.acquire b);
  clock := 1.0;
  Alcotest.(check string) "window elapsed" "half-open"
    (Breaker.state_name (Breaker.state b));
  check_decision "single probe slot won" Breaker.Probe (Breaker.acquire b);
  check_decision "concurrent caller sheds while probe in flight"
    (Breaker.Reject 0.) (Breaker.acquire b);
  Breaker.success b;
  Alcotest.(check string) "probe success closes" "closed"
    (Breaker.state_name (Breaker.state b));
  check_decision "closed again" Breaker.Proceed (Breaker.acquire b);
  Alcotest.(check int) "no extra trip" 1 (Breaker.trips b);
  (* a success also reset the failure count: one new failure must not
     re-trip a threshold-2 breaker *)
  Breaker.failure b;
  Alcotest.(check string) "failure count was reset" "closed"
    (Breaker.state_name (Breaker.state b))

let test_breaker_failed_probe_reopens () =
  let before_total = Breaker.total_trips () in
  let clock = ref 0. in
  let b =
    Breaker.create
      ~config:
        {
          Breaker.failure_threshold = 1;
          Breaker.reset_after = 1.0;
          Breaker.now = (fun () -> !clock);
        }
      ()
  in
  Breaker.failure b;
  Alcotest.(check string) "threshold 1 trips at once" "open"
    (Breaker.state_name (Breaker.state b));
  clock := 1.0;
  check_decision "probe allowed" Breaker.Probe (Breaker.acquire b);
  Breaker.failure b;
  Alcotest.(check int) "failed probe re-trips" 2 (Breaker.trips b);
  clock := 1.5;
  check_decision "re-opened for a FULL window" (Breaker.Reject 0.5)
    (Breaker.acquire b);
  clock := 2.0;
  check_decision "next probe" Breaker.Probe (Breaker.acquire b);
  Breaker.success b;
  Alcotest.(check string) "recovered" "closed"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "process-wide trip counter is monotone" true
    (Breaker.total_trips () >= before_total + 2)

let test_retry_jitter_stream () =
  let delays p = List.init 6 (fun i -> Retry.delay_for p ~attempt:(i + 1)) in
  let p = { Retry.default with Retry.max_attempts = 7 } in
  Alcotest.(check (list (float 0.))) "same policy, same stream" (delays p)
    (delays p);
  let p' = { p with Retry.seed = p.Retry.seed + 1 } in
  Alcotest.(check bool) "a different seed moves the stream" true
    (delays p <> delays p');
  (* the jitter factor varies across attempts — a constant factor would
     keep a failed fleet in lockstep *)
  let raw attempt =
    Float.min p.Retry.max_delay
      (p.Retry.base_delay *. (p.Retry.multiplier ** float_of_int (attempt - 1)))
  in
  let factors =
    List.mapi (fun i d -> d /. raw (i + 1)) (delays p)
  in
  let distinct =
    List.sort_uniq compare (List.map (fun f -> Float.round (f *. 1e6)) factors)
  in
  Alcotest.(check bool) "jitter varies across attempts" true
    (List.length distinct > 1);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "factor %g within [1-j, 1+j]" f)
        true
        (f >= 1. -. p.Retry.jitter -. 1e-9
        && f <= 1. +. p.Retry.jitter +. 1e-9))
    factors

(* ------------------------------------------------------------------ *)
(* Client (in-process, against throwaway sockets)                      *)
(* ------------------------------------------------------------------ *)

let one_shot_retry = { Retry.default with Retry.max_attempts = 1 }
let no_sleep (_ : float) = ()

let test_client_connect_failure_messages () =
  (* nothing at that path *)
  let missing = "/nonexistent/lalr_no_such_dir/daemon.sock" in
  let c =
    Client.create ~retry:one_shot_retry ~sleep:no_sleep
      (Serve.Unix_path missing)
  in
  (match Client.call c [ {|{"id":"x","kind":"health"}|} ] with
  | Error (Client.Unavailable { reason; partial; _ }) ->
      Alcotest.(check bool)
        (Printf.sprintf "%S names the failure mode" reason)
        true
        (contains reason "no such socket");
      Alcotest.(check bool)
        (Printf.sprintf "%S names the endpoint" reason)
        true (contains reason missing);
      Alcotest.(check int) "nothing partially delivered" 0
        (List.length partial)
  | Error (Client.Breaker_open _) -> Alcotest.fail "breaker cannot be open yet"
  | Ok _ -> Alcotest.fail "connect to a missing socket cannot succeed");
  (* something at that path, but nobody accepting: bind without listen *)
  let stale = Filename.temp_file "lalr_stale_" ".sock" in
  Sys.remove stale;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove stale with Sys_error _ -> ())
    (fun () ->
      Unix.bind fd (Unix.ADDR_UNIX stale);
      let c =
        Client.create ~retry:one_shot_retry ~sleep:no_sleep
          (Serve.Unix_path stale)
      in
      match Client.call c [ {|{"id":"x","kind":"health"}|} ] with
      | Error (Client.Unavailable { reason; _ }) ->
          Alcotest.(check bool)
            (Printf.sprintf "%S distinguishes refused from missing" reason)
            true
            (contains reason "connection refused");
          Alcotest.(check bool)
            (Printf.sprintf "%S names the endpoint" reason)
            true (contains reason stale)
      | Error (Client.Breaker_open _) ->
          Alcotest.fail "breaker cannot be open yet"
      | Ok _ -> Alcotest.fail "connect to a dead socket cannot succeed");
  (* wording pinned for the CLI, which prints these verbatim *)
  Alcotest.(check string) "ENOENT wording"
    "no such socket /p.sock (is the daemon running?)"
    (Client.connect_failure (Serve.Unix_path "/p.sock") Unix.ENOENT)

let test_client_breaker_fast_fail () =
  let b =
    Breaker.create
      ~config:{ Breaker.default with Breaker.failure_threshold = 1 }
      ()
  in
  let c =
    Client.create ~retry:one_shot_retry ~sleep:no_sleep ~breaker:b
      (Serve.Unix_path "/nonexistent/lalr_no_such_dir/daemon.sock")
  in
  (match Client.call c [ {|{"id":"x","kind":"health"}|} ] with
  | Error (Client.Unavailable _) -> ()
  | _ -> Alcotest.fail "first call must fail through the transport");
  Alcotest.(check string) "one failure tripped the threshold-1 breaker" "open"
    (Breaker.state_name (Breaker.state b));
  match Client.call c [ {|{"id":"x","kind":"health"}|} ] with
  | Error (Client.Breaker_open { retry_after; _ } as e) ->
      Alcotest.(check bool) "retry_after is in the future" true
        (retry_after > 0.);
      Alcotest.(check bool) "operator message names the breaker" true
        (contains (Client.error_message e) "circuit breaker open")
  | Error (Client.Unavailable _) ->
      Alcotest.fail "second call must shed locally, not touch the network"
  | Ok _ -> Alcotest.fail "second call cannot succeed"

(* ------------------------------------------------------------------ *)
(* End to end: the daemon through the real binary                      *)
(* ------------------------------------------------------------------ *)

let binary =
  lazy
    (List.find Sys.file_exists
       [
         Filename.concat
           (Filename.dirname Sys.executable_name)
           "../bin/lalrgen.exe";
         "../bin/lalrgen.exe";
         "_build/default/bin/lalrgen.exe";
       ])

let run_client args =
  let cmd =
    Printf.sprintf "%s %s 2>&1"
      (Filename.quote (Lazy.force binary))
      (String.concat " " (List.map Filename.quote args))
  in
  let ic = Unix.open_process_in cmd in
  let out = In_channel.input_all ic in
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n -> Alcotest.failf "client killed by signal %d" n
    | Unix.WSTOPPED n -> Alcotest.failf "client stopped by signal %d" n
  in
  (code, out)

type daemon = { d_pid : int; d_sock : string; d_log : string }

let start_daemon ?sock extra_args =
  let sock =
    match sock with
    | Some s -> s
    | None ->
        let s = Filename.temp_file "lalr_serve_" ".sock" in
        Sys.remove s;
        s
  in
  let log = Filename.temp_file "lalr_serve_" ".log" in
  let log_fd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process (Lazy.force binary)
      (Array.of_list
         ([ Lazy.force binary; "serve"; "--socket"; sock ] @ extra_args))
      null log_fd log_fd
  in
  Unix.close null;
  Unix.close log_fd;
  (* ready when the socket accepts a raw connect — deliberately NOT a
     protocol round-trip, so readiness polling never consumes
     faultpoint hits armed on the decode path *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let up =
      try
        Unix.connect fd (Unix.ADDR_UNIX sock);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if up then ()
    else if Unix.gettimeofday () > deadline then (
      Unix.kill pid Sys.sigkill;
      Alcotest.failf "daemon did not come up; log:\n%s"
        (In_channel.with_open_bin log In_channel.input_all))
    else (
      Unix.sleepf 0.05;
      wait ())
  in
  wait ();
  { d_pid = pid; d_sock = sock; d_log = log }

let stop_daemon ?(signal = Sys.sigterm) d =
  Unix.kill d.d_pid signal;
  let _, status = Unix.waitpid [] d.d_pid in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n ->
      Alcotest.failf "drain exited %d; log:\n%s" n
        (In_channel.with_open_bin d.d_log In_channel.input_all)
  | Unix.WSIGNALED n -> Alcotest.failf "daemon killed by signal %d" n
  | Unix.WSTOPPED n -> Alcotest.failf "daemon stopped by signal %d" n);
  Alcotest.(check bool) "socket path cleaned up" false (Sys.file_exists d.d_sock)

let kill_daemon d = try Unix.kill d.d_pid Sys.sigkill with Unix.Unix_error _ -> ()

(* Pull "field":"value" (string) or "field":123 out of a response line
   without a JSON parser on the test side: the line shape itself is
   pinned by the protocol round-trip tests. *)
let field_string line name =
  match Protocol.Json.parse line with
  | Ok j -> (
      match Protocol.Json.member name j with
      | Some (Protocol.Json.Str s) -> Some s
      | Some (Protocol.Json.Num f) -> Some (string_of_int (int_of_float f))
      | _ -> None)
  | Error _ -> None

let test_e2e_chaos_acceptance () =
  let d = start_daemon [ "--domains"; "2"; "--inject"; "serve-worker:raise" ] in
  Fun.protect
    ~finally:(fun () -> kill_daemon d)
    (fun () ->
      let requests =
        [
          (* poisoned: the armed serve-worker fault crashes the first
             worker that picks a job up *)
          {|{"id":"poisoned","file":"suite:expr"}|};
          {|{"id":"clean","file":"suite:expr"}|};
          {|{"id":"conflicted","grammar":"%token plus id\n%start e\n%%\ne : e plus e | id ;","format":"cfg"}|};
          {|{"id":"tight","file":"suite:ada-subset","budget":"fuel=10"}|};
          "this is not json";
          {|{"id":"h","kind":"health"}|};
        ]
      in
      let code, out =
        run_client ([ "call"; "--socket"; d.d_sock ] @ requests)
      in
      let lines =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
      in
      Alcotest.(check int) "exactly one response per request"
        (List.length requests) (List.length lines);
      let status_of id =
        match
          List.filter (fun l -> field_string l "id" = Some id) lines
        with
        | [ l ] -> field_string l "status"
        | [] -> Alcotest.failf "%s: no response" id
        | _ -> Alcotest.failf "%s: more than one response" id
      in
      Alcotest.(check (option string)) "poisoned -> typed internal"
        (Some "internal") (status_of "poisoned");
      Alcotest.(check (option string)) "clean -> ok" (Some "ok")
        (status_of "clean");
      Alcotest.(check (option string)) "conflicts -> verdict"
        (Some "verdict") (status_of "conflicted");
      Alcotest.(check (option string)) "over budget -> budget"
        (Some "budget") (status_of "tight");
      Alcotest.(check (option string)) "malformed line -> bad_request"
        (Some "bad_request") (status_of "");
      Alcotest.(check (option string)) "health answered" (Some "health")
        (status_of "h");
      Alcotest.(check int) "client exit is the worst response" 4 code;
      (* the daemon survived all of it and still serves *)
      let code2, out2 =
        run_client
          [ "call"; "--socket"; d.d_sock; {|{"id":"again","file":"suite:expr"}|} ]
      in
      Alcotest.(check int) "daemon keeps serving after chaos" 0 code2;
      Alcotest.(check bool) "fresh request is clean" true
        (field_string (String.trim out2) "status" = Some "ok");
      stop_daemon d)

let test_e2e_overload_shed () =
  let d = start_daemon [ "--domains"; "1"; "--queue"; "1" ] in
  Fun.protect
    ~finally:(fun () -> kill_daemon d)
    (fun () ->
      let requests =
        {|{"id":"slow","file":"suite:ada-subset"}|}
        :: List.init 8 (fun i ->
               Printf.sprintf {|{"id":"f%d","file":"suite:expr"}|} i)
      in
      let _, out = run_client ([ "call"; "--socket"; d.d_sock ] @ requests) in
      let lines =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
      in
      Alcotest.(check int) "every request answered" (List.length requests)
        (List.length lines);
      let statuses =
        List.filter_map (fun l -> field_string l "status") lines
      in
      Alcotest.(check bool) "some of the burst was shed" true
        (List.mem "overloaded" statuses);
      Alcotest.(check bool) "the slow job itself completed" true
        (List.exists
           (fun l ->
             field_string l "id" = Some "slow"
             && field_string l "status" <> Some "overloaded")
           lines);
      stop_daemon d)

let test_e2e_decode_fault_absorbed () =
  (* @2: the client's connect-time health probe is the daemon's first
     decode (readiness polling is a raw connect, no protocol line), so
     the fault lands on "x" and "y" decodes clean *)
  let d =
    start_daemon [ "--domains"; "1"; "--inject"; "serve-decode:raise@2" ]
  in
  Fun.protect
    ~finally:(fun () -> kill_daemon d)
    (fun () ->
      let code, out =
        run_client
          [
            "call"; "--socket"; d.d_sock;
            {|{"id":"x","file":"suite:expr"}|};
            {|{"id":"y","file":"suite:expr"}|};
          ]
      in
      let lines =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
      in
      Alcotest.(check int) "both lines answered" 2 (List.length lines);
      let statuses = List.filter_map (fun l -> field_string l "status") lines in
      Alcotest.(check bool) "injected decode fault is a typed internal" true
        (List.mem "internal" statuses);
      Alcotest.(check bool) "next line decodes normally" true
        (List.mem "ok" statuses);
      Alcotest.(check int) "worst code reported" 4 code;
      stop_daemon d)

let test_e2e_oversized_line () =
  let d = start_daemon [ "--domains"; "1"; "--max-line"; "512" ] in
  Fun.protect
    ~finally:(fun () -> kill_daemon d)
    (fun () ->
      let big =
        Printf.sprintf {|{"id":"big","grammar":"%s","format":"cfg"}|}
          (String.make 2000 'a')
      in
      let code, out =
        run_client
          [
            "call"; "--socket"; d.d_sock; big;
            {|{"id":"small","file":"suite:expr"}|};
          ]
      in
      let lines =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
      in
      Alcotest.(check int) "both lines answered" 2 (List.length lines);
      let statuses = List.filter_map (fun l -> field_string l "status") lines in
      Alcotest.(check bool) "oversized -> bad_request" true
        (List.mem "bad_request" statuses);
      Alcotest.(check bool) "framing recovers for the next line" true
        (List.mem "ok" statuses);
      Alcotest.(check int) "worst code is the bad_request" 2 code;
      stop_daemon d)

(* --- client resilience against a real daemon ---------------------- *)

let test_client_reconnects_after_restart () =
  let d = start_daemon [ "--domains"; "1" ] in
  let d2 = ref None in
  Fun.protect
    ~finally:(fun () ->
      kill_daemon d;
      match !d2 with Some d -> kill_daemon d | None -> ())
    (fun () ->
      let c = Client.create ~sleep:no_sleep (Serve.Unix_path d.d_sock) in
      (match Client.call c [ {|{"id":"one","file":"suite:expr"}|} ] with
      | Ok [ l ] ->
          Alcotest.(check (option string)) "first call served" (Some "ok")
            (field_string l "status")
      | Ok _ -> Alcotest.fail "one request, one response"
      | Error e -> Alcotest.failf "first call: %s" (Client.error_message e));
      (* daemon restarts on the SAME socket path; the client holds a
         now-stale connection *)
      stop_daemon d;
      d2 := Some (start_daemon ~sock:d.d_sock [ "--domains"; "1" ]);
      (match Client.call c [ {|{"id":"two","file":"suite:expr"}|} ] with
      | Ok [ l ] ->
          Alcotest.(check (option string))
            "stale connection replaced, call served by the new daemon"
            (Some "ok") (field_string l "status")
      | Ok _ -> Alcotest.fail "one request, one response"
      | Error e -> Alcotest.failf "after restart: %s" (Client.error_message e));
      Alcotest.(check string) "breaker closed throughout" "closed"
        (Breaker.state_name (Breaker.state (Client.breaker c)));
      Client.close c;
      match !d2 with Some d -> stop_daemon d | None -> ())

let test_client_faultpoint_absorbed () =
  Faultpoint.disarm ();
  (match Faultpoint.arm "serve-client:raise" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Fun.protect ~finally:Faultpoint.disarm (fun () ->
      let d = start_daemon [ "--domains"; "1" ] in
      Fun.protect
        ~finally:(fun () -> kill_daemon d)
        (fun () ->
          let c = Client.create ~sleep:no_sleep (Serve.Unix_path d.d_sock) in
          (match Client.call c [ {|{"id":"x","file":"suite:expr"}|} ] with
          | Ok [ l ] ->
              Alcotest.(check (option string))
                "connect-time fault absorbed by the retry layer" (Some "ok")
                (field_string l "status")
          | Ok _ -> Alcotest.fail "one request, one response"
          | Error e -> Alcotest.failf "call: %s" (Client.error_message e));
          Alcotest.(check string) "one absorbed fault leaves the breaker closed"
            "closed"
            (Breaker.state_name (Breaker.state (Client.breaker c)));
          Client.close c;
          stop_daemon d))

(* --- deadlines over the wire --------------------------------------- *)

let test_e2e_deadline_expired () =
  let d = start_daemon [ "--domains"; "1" ] in
  Fun.protect
    ~finally:(fun () -> kill_daemon d)
    (fun () ->
      let code, out =
        run_client
          [
            "call"; "--socket"; d.d_sock;
            {|{"id":"dead","file":"suite:expr","deadline_ms":-1}|};
            {|{"id":"live","file":"suite:expr","deadline_ms":60000}|};
          ]
      in
      let lines =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
      in
      Alcotest.(check int) "both answered" 2 (List.length lines);
      let status_of id =
        List.find_map
          (fun l ->
            if field_string l "id" = Some id then field_string l "status"
            else None)
          lines
      in
      Alcotest.(check (option string)) "expired on arrival -> typed shed"
        (Some "deadline_exceeded") (status_of "dead");
      Alcotest.(check (option string)) "generous deadline -> served"
        (Some "ok") (status_of "live");
      Alcotest.(check int) "deadline_exceeded maps to exit 3" 3 code;
      (* the daemon counts the shed in its health payload *)
      let _, hout =
        run_client
          [ "call"; "--socket"; d.d_sock; {|{"id":"h","kind":"health"}|} ]
      in
      let hline =
        String.split_on_char '\n' hout
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
        |> function
        | [ l ] -> l
        | _ -> Alcotest.fail "one health line"
      in
      Alcotest.(check (option string)) "health counts the shed" (Some "1")
        (field_string hline "deadline_expired");
      Alcotest.(check bool) "health reports readiness" true
        (contains hline {|"ready":true|});
      stop_daemon d)

(* --- SIGINT drains like SIGTERM ------------------------------------ *)

let test_e2e_sigint_drain () =
  let trace = Filename.temp_file "lalr_serve_trace_" ".json" in
  let d = start_daemon [ "--domains"; "1"; "--trace"; trace ] in
  Fun.protect
    ~finally:(fun () ->
      kill_daemon d;
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ trace; trace ^ ".w0" ])
    (fun () ->
      let code, _ =
        run_client
          [ "call"; "--socket"; d.d_sock; {|{"id":"j","file":"suite:expr"}|} ]
      in
      Alcotest.(check int) "request served before the signal" 0 code;
      (* stop_daemon asserts exit 0 and the unlinked socket *)
      stop_daemon ~signal:Sys.sigint d;
      let non_empty f =
        Sys.file_exists f
        && In_channel.with_open_bin f In_channel.length > 0L
      in
      Alcotest.(check bool) "main trace file flushed" true (non_empty trace);
      Alcotest.(check bool) "per-worker trace file flushed" true
        (non_empty (trace ^ ".w0")))

(* --- batch --via-serve --------------------------------------------- *)

let test_e2e_batch_via_serve () =
  let d = start_daemon [ "--domains"; "2" ] in
  Fun.protect
    ~finally:(fun () -> kill_daemon d)
    (fun () ->
      let code, out =
        run_client
          [ "batch"; "--via-serve"; d.d_sock; "suite:expr"; "suite:mini-c" ]
      in
      let lines =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
      in
      Alcotest.(check int) "one JSON line per job" 2 (List.length lines);
      let status_of id =
        List.find_map
          (fun l ->
            if field_string l "id" = Some id then field_string l "status"
            else None)
          lines
      in
      Alcotest.(check (option string)) "clean grammar" (Some "ok")
        (status_of "suite:expr");
      Alcotest.(check (option string)) "conflicted grammar" (Some "verdict")
        (status_of "suite:mini-c");
      Alcotest.(check int) "worst per-job exit" 1 code;
      stop_daemon d)

(* --- live telemetry: scrape, reconciliation, access log ----------- *)

(* One persistent in-process client (a single connect, so exactly one
   health probe) driving a known request mix; the scrape's counters
   must reconcile exactly with the responses the client received. *)
let test_e2e_scrape_reconciles () =
  let access = Filename.temp_file "lalr_serve_access_" ".jsonl" in
  let d = start_daemon [ "--domains"; "1"; "--access-log"; access ] in
  Fun.protect
    ~finally:(fun () ->
      kill_daemon d;
      try Sys.remove access with Sys_error _ -> ())
    (fun () ->
      let c = Client.create ~sleep:no_sleep (Serve.Unix_path d.d_sock) in
      let requests =
        [
          {|{"id":"a","file":"suite:expr","trace_id":"scrape-a"}|};
          {|{"id":"b","file":"suite:expr"}|};
          "malformed";
          {|{"id":"h","kind":"health"}|};
        ]
      in
      let hline =
        match Client.call c requests with
        | Ok lines -> (
            Alcotest.(check int) "all answered" 4 (List.length lines);
            (* responses arrive in completion order (health is inline,
               classifies run in the pool) — find the health by id *)
            match
              List.find_opt (fun l -> field_string l "id" = Some "h") lines
            with
            | Some l -> l
            | None -> Alcotest.fail "health response missing")
        | Error e -> Alcotest.failf "call: %s" (Client.error_message e)
      in
      (* health pins: pid is the daemon's, version is the protocol's *)
      Alcotest.(check (option string)) "health pid"
        (Some (string_of_int d.d_pid)) (field_string hline "pid");
      Alcotest.(check (option string)) "health version"
        (Some Protocol.version) (field_string hline "version");
      Alcotest.(check bool) "health uptime_ms present" true
        (contains hline {|"uptime_ms":|});
      let scrape () =
        match Client.call c [ {|{"id":"m","kind":"metrics"}|} ] with
        | Ok [ line ] -> (
            Alcotest.(check (option string)) "scrape status" (Some "metrics")
              (field_string line "status");
            match Protocol.Json.parse line with
            | Ok j -> (
                match Protocol.Json.member "body" j with
                | Some (Protocol.Json.Str body) -> (
                    match Metrics.parse body with
                    | Ok snap -> snap
                    | Error m -> Alcotest.failf "invalid exposition: %s" m)
                | _ -> Alcotest.fail "metrics response carries no body")
            | Error m -> Alcotest.failf "garbled metrics line: %s" m)
        | Ok _ -> Alcotest.fail "one scrape line"
        | Error e -> Alcotest.failf "scrape: %s" (Client.error_message e)
      in
      let counter snap status =
        match
          Metrics.find snap ~labels:[ ("status", status) ]
            "lalr_serve_requests_total"
        with
        | Some (Metrics.Counter n) -> n
        | _ -> 0
      in
      let gauge snap name =
        match Metrics.find snap name with
        | Some (Metrics.Gauge v) -> v
        | _ -> nan
      in
      let s1 = scrape () in
      (* exact reconciliation with what this client was sent: 2 ok,
         1 bad_request, 1 explicit health + 1 connect probe *)
      Alcotest.(check int) "ok responses counted" 2 (counter s1 "ok");
      Alcotest.(check int) "bad_request counted" 1 (counter s1 "bad_request");
      Alcotest.(check int) "health counted (probe + explicit)" 2
        (counter s1 "health");
      Alcotest.(check int) "no scrape counted yet" 0 (counter s1 "metrics");
      Alcotest.(check int) "nothing dropped" 0
        (Metrics.counter_total s1 "lalr_serve_responses_dropped_total");
      Alcotest.(check int) "pool jobs = classify responses" 2
        (Metrics.counter_total s1 "lalr_serve_pool_jobs_total");
      (match Metrics.find s1 "lalr_serve_request_seconds" with
      | Some (Metrics.Histogram _ as h) ->
          Alcotest.(check int) "latency histogram covers every job" 2
            (Metrics.hist_count h)
      | _ -> Alcotest.fail "request_seconds histogram missing");
      Alcotest.(check bool) "workers gauge" true
        (gauge s1 "lalr_serve_workers" = 1.);
      Alcotest.(check bool) "ready gauge" true
        (gauge s1 "lalr_serve_ready" = 1.);
      Alcotest.(check bool) "uptime gauge sane" true
        (gauge s1 "lalr_serve_uptime_seconds" >= 0.);
      Alcotest.(check bool) "queue empty at scrape" true
        (gauge s1 "lalr_serve_queue_depth" = 0.);
      (* per-worker GC gauges materialised under the worker label *)
      Alcotest.(check bool) "gc gauges per worker" true
        (Metrics.find s1
           ~labels:[ ("worker", "0") ]
           "lalr_serve_gc_heap_words"
        <> None);
      (* second scrape: counters are monotone and the first scrape's
         own response is now in the ledger *)
      let s2 = scrape () in
      Alcotest.(check int) "first scrape now counted" 1 (counter s2 "metrics");
      Alcotest.(check int) "ok count unchanged" 2 (counter s2 "ok");
      Client.close c;
      stop_daemon d;
      (* the access log has one JSON line per response: 1 probe + 4
         responses + 2 scrapes, each with the documented members *)
      let lines =
        In_channel.with_open_bin access In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> String.length l > 0)
      in
      Alcotest.(check int) "one access line per response" 7
        (List.length lines);
      List.iter
        (fun l ->
          match Protocol.Json.parse l with
          | Error m -> Alcotest.failf "access line not JSON (%s): %s" m l
          | Ok j ->
              List.iter
                (fun k ->
                  if Protocol.Json.member k j = None then
                    Alcotest.failf "access line lacks %S: %s" k l)
                [ "ts"; "id"; "status"; "exit"; "sent" ])
        lines;
      Alcotest.(check bool) "job lines carry latency members" true
        (List.exists
           (fun l ->
             field_string l "id" = Some "a"
             && contains l {|"wall_ms":|}
             && contains l {|"queue_ms":|}
             && field_string l "trace_id" = Some "scrape-a")
           lines))

(* --- trace-context propagation over the wire ----------------------- *)

let test_e2e_trace_propagation () =
  let trace = Filename.temp_file "lalr_serve_trace_" ".jsonl" in
  let d = start_daemon [ "--domains"; "1"; "--trace"; trace ] in
  Fun.protect
    ~finally:(fun () ->
      kill_daemon d;
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ trace; trace ^ ".w0" ])
    (fun () ->
      let code, out =
        run_client
          [
            "call"; "--socket"; d.d_sock; "--trace-id"; "e2e";
            {|{"id":"j","file":"suite:expr"}|};
          ]
      in
      Alcotest.(check int) "request served" 0 code;
      let line =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
        |> function
        | [ l ] -> l
        | _ -> Alcotest.fail "one response line"
      in
      (* the daemon echoes the id the client stamped *)
      Alcotest.(check (option string)) "trace_id echoed" (Some "e2e-0")
        (field_string line "trace_id");
      Alcotest.(check (option string)) "worker attributed" (Some "0")
        (field_string line "worker");
      (* drain flushes the worker's trace session; the stamped id must
         appear in the request's span attributes there *)
      stop_daemon d;
      let wtrace =
        In_channel.with_open_bin (trace ^ ".w0") In_channel.input_all
      in
      Alcotest.(check bool) "trace_id lands in the worker trace" true
        (contains wtrace {|"trace_id":"e2e-0"|}))

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "decode requests" `Quick test_decode_requests;
          Alcotest.test_case "decode rejects hostile lines" `Quick
            test_decode_rejects;
          Alcotest.test_case "observability members" `Quick
            test_observability_protocol;
          Alcotest.test_case "trace-id stamping" `Quick test_stamp_trace_ids;
          Alcotest.test_case "encode/decode round-trip" `Quick
            test_encode_roundtrip;
          Alcotest.test_case "status exit codes" `Quick test_response_exits;
        ] );
      ( "retry",
        [
          Alcotest.test_case "deterministic capped backoff" `Quick
            test_retry_deterministic_backoff;
          Alcotest.test_case "run honours policy and reports retries" `Quick
            test_retry_run;
          Alcotest.test_case "jitter stream is seeded and per-attempt" `Quick
            test_retry_jitter_stream;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "closed -> open -> half-open -> closed" `Quick
            test_breaker_transitions;
          Alcotest.test_case "failed probe re-opens a full window" `Quick
            test_breaker_failed_probe_reopens;
        ] );
      ( "pool",
        [
          Alcotest.test_case "serves and drains" `Quick
            test_pool_serves_and_drains;
          Alcotest.test_case "per-request budgets are isolated" `Quick
            test_pool_per_request_budget;
          Alcotest.test_case "sheds when full" `Quick test_pool_sheds_when_full;
          Alcotest.test_case "supervises a worker crash" `Quick
            test_pool_supervises_crash;
          Alcotest.test_case "expired deadline shed at admission" `Quick
            test_pool_deadline_admission;
          Alcotest.test_case "deadline re-checked at dequeue" `Quick
            test_pool_deadline_dequeue;
          Alcotest.test_case "deadline bounds in-flight work" `Quick
            test_pool_deadline_in_flight;
          Alcotest.test_case "client wall cap trips as budget" `Quick
            test_pool_deadline_vs_budget;
          Alcotest.test_case "crash-loop backstop flips readiness" `Quick
            test_pool_crash_loop_unready;
        ] );
      ( "client",
        [
          Alcotest.test_case "connect failures name the endpoint" `Quick
            test_client_connect_failure_messages;
          Alcotest.test_case "open breaker sheds locally" `Quick
            test_client_breaker_fast_fail;
          Alcotest.test_case "reconnects across a daemon restart" `Quick
            test_client_reconnects_after_restart;
          Alcotest.test_case "connect-time faultpoint absorbed" `Quick
            test_client_faultpoint_absorbed;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "chaos acceptance" `Quick
            test_e2e_chaos_acceptance;
          Alcotest.test_case "overload shed" `Quick test_e2e_overload_shed;
          Alcotest.test_case "decode fault absorbed" `Quick
            test_e2e_decode_fault_absorbed;
          Alcotest.test_case "oversized line" `Quick test_e2e_oversized_line;
          Alcotest.test_case "expired deadline over the wire" `Quick
            test_e2e_deadline_expired;
          Alcotest.test_case "SIGINT drains like SIGTERM" `Quick
            test_e2e_sigint_drain;
          Alcotest.test_case "metrics scrape reconciles" `Quick
            test_e2e_scrape_reconciles;
          Alcotest.test_case "trace-id propagation" `Quick
            test_e2e_trace_propagation;
          Alcotest.test_case "batch --via-serve" `Quick
            test_e2e_batch_via_serve;
        ] );
    ]
