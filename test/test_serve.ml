(* The serve daemon's robustness contract, pinned end to end.

   In-process layers first — the wire protocol (a total decoder), the
   Retry policy (deterministic backoff), the Pool (supervision,
   shedding, per-job budgets) — then the chaos acceptance test through
   the real binary: a mixed load with a poisoned request, an
   over-budget request and a malformed line must produce exactly one
   typed response per request while the daemon keeps serving, and
   SIGTERM must drain to exit 0. *)

module Protocol = Lalr_serve.Protocol
module Pool = Lalr_serve.Pool
module Serve = Lalr_serve.Serve
module Retry = Lalr_guard.Retry
module Faultpoint = Lalr_guard.Faultpoint

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let decode_ok line =
  match Protocol.decode_request line with
  | Ok r -> r
  | Error m -> Alcotest.failf "decode %S: %s" line m

let decode_err line =
  match Protocol.decode_request line with
  | Ok _ -> Alcotest.failf "decode %S: expected rejection" line
  | Error m -> m

let test_decode_requests () =
  (match decode_ok {|{"id":"r1","kind":"classify","file":"suite:expr"}|} with
  | Protocol.Classify { id = "r1"; source = Protocol.File "suite:expr";
                        budget = None } -> ()
  | _ -> Alcotest.fail "file request decoded wrong");
  (match decode_ok {|{"id":7,"file":"g.cfg","budget":"fuel=10"}|} with
  | Protocol.Classify { id = "7"; budget = Some "fuel=10"; _ } -> ()
  | _ -> Alcotest.fail "integer id / budget decoded wrong");
  (match decode_ok {|{"id":"h","kind":"health"}|} with
  | Protocol.Health { id = "h" } -> ()
  | _ -> Alcotest.fail "health decoded wrong");
  match
    decode_ok {|{"grammar":"%token a\n%start s\n%%\ns : a ;","format":"mly"}|}
  with
  | Protocol.Classify
      { id = ""; source = Protocol.Inline { format = `Mly; text }; _ } ->
      Alcotest.(check bool) "inline text carries the newlines" true
        (String.contains text '\n')
  | _ -> Alcotest.fail "inline request decoded wrong"

let test_decode_rejects () =
  let cases =
    [
      ("", "empty line");
      ("not json", "garbage");
      ({|{"id":"x","buget":"fuel=1"}|}, "unknown field (typo must not pass)");
      ({|{"file":"a","grammar":"b"}|}, "file and grammar are exclusive");
      ({|{"kind":"reboot"}|}, "unknown kind");
      ({|{"id":["x"]}|}, "non-scalar id");
      ({|{"file":"a"} trailing|}, "trailing garbage");
      ({|{"format":"cfg"}|}, "format without grammar");
    ]
  in
  List.iter (fun (line, _why) -> ignore (decode_err line : string)) cases;
  (* depth bomb: linear time, clean rejection, no stack overflow *)
  let bomb = String.make 4000 '[' in
  ignore (decode_err bomb : string);
  (* NUL and friends are rejected, not smuggled through *)
  ignore (decode_err "{\"id\":\"a\x00b\"}" : string)

let test_encode_roundtrip () =
  let reqs =
    [
      Protocol.Classify
        { id = "r1"; source = Protocol.File "suite:expr";
          budget = Some "wall=500ms" };
      Protocol.Classify
        {
          id = "";
          source =
            Protocol.Inline
              { text = "%token a\n%start s\n%%\ns : a ;"; format = `Cfg };
          budget = None;
        };
      Protocol.Health { id = "h1" };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_request (Protocol.encode_request r) with
      | Ok r' when r = r' -> ()
      | Ok _ -> Alcotest.failf "round-trip changed %s" (Protocol.encode_request r)
      | Error m -> Alcotest.failf "round-trip rejected: %s" m)
    reqs

let test_response_exits () =
  List.iter
    (fun (status, want) ->
      Alcotest.(check int)
        (Protocol.status_name status)
        want
        (Protocol.status_exit status))
    [
      (Protocol.Ok_, 0); (Protocol.Verdict, 1); (Protocol.Bad_request, 2);
      (Protocol.Budget, 3); (Protocol.Overloaded, 3); (Protocol.Internal, 4);
      (Protocol.Health_ok, 0);
    ]

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)
(* ------------------------------------------------------------------ *)

let test_retry_deterministic_backoff () =
  let p = Retry.default in
  for attempt = 1 to 5 do
    let d1 = Retry.delay_for p ~attempt in
    let d2 = Retry.delay_for p ~attempt in
    Alcotest.(check (float 0.)) "same attempt, same delay" d1 d2;
    let lo = p.Retry.base_delay *. (1. -. p.Retry.jitter) in
    let hi =
      p.Retry.max_delay *. (1. +. p.Retry.jitter)
    in
    Alcotest.(check bool)
      (Printf.sprintf "delay %g within jittered envelope" d1)
      true
      (d1 >= lo && d1 <= hi)
  done;
  (* growth up to the cap: un-jittered raw doubles each attempt *)
  let nj = { p with Retry.jitter = 0. } in
  Alcotest.(check (float 1e-9)) "attempt 1" 0.05 (Retry.delay_for nj ~attempt:1);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.1 (Retry.delay_for nj ~attempt:2);
  Alcotest.(check (float 1e-9)) "cap" 1.0 (Retry.delay_for nj ~attempt:20)

let test_retry_run () =
  let slept = ref [] in
  let sleep d = slept := d :: !slept in
  (* first attempt stands: no sleeps, zero retries *)
  let r, retries =
    Retry.run ~sleep ~retryable:(fun _ -> false) (fun ~attempt -> attempt)
  in
  Alcotest.(check int) "value" 1 r;
  Alcotest.(check int) "no retries" 0 retries;
  Alcotest.(check int) "no sleeps" 0 (List.length !slept);
  (* always-retryable: bounded by max_attempts, one sleep per retry *)
  let policy = { Retry.default with Retry.max_attempts = 4 } in
  let calls = ref 0 in
  let _, retries =
    Retry.run ~policy ~sleep
      ~retryable:(fun _ -> true)
      (fun ~attempt:_ -> incr calls)
  in
  Alcotest.(check int) "attempt cap respected" 4 !calls;
  Alcotest.(check int) "retries reported" 3 retries;
  Alcotest.(check int) "one sleep per retry" 3 (List.length !slept)

(* ------------------------------------------------------------------ *)
(* Pool (in-process)                                                   *)
(* ------------------------------------------------------------------ *)

let collector () =
  let mu = Mutex.create () in
  let acc = ref [] in
  let respond r =
    Mutex.lock mu;
    acc := r :: !acc;
    Mutex.unlock mu
  in
  let get () =
    Mutex.lock mu;
    let v = !acc in
    Mutex.unlock mu;
    v
  in
  (respond, get)

let classify ?budget id file =
  Protocol.Classify { id; source = Protocol.File file; budget }

let job_statuses responses =
  List.filter_map
    (function
      | Protocol.Job j -> Some (j.Protocol.r_id, j.Protocol.r_status)
      | Protocol.Health _ -> None)
    responses

let test_pool_serves_and_drains () =
  let pool = Pool.create { Pool.default_config with Pool.domains = 2 } in
  let respond, get = collector () in
  let ids = List.init 6 (fun i -> Printf.sprintf "j%d" i) in
  List.iter
    (fun id ->
      match Pool.submit pool ~request:(classify id "suite:expr") ~respond with
      | `Accepted -> ()
      | `Overloaded | `Draining -> Alcotest.failf "%s not admitted" id)
    ids;
  ignore (Pool.drain pool);
  let got = job_statuses (get ()) in
  Alcotest.(check int) "one response per job" (List.length ids)
    (List.length got);
  List.iter
    (fun id ->
      match List.assoc_opt id got with
      | Some Protocol.Ok_ -> ()
      | Some s -> Alcotest.failf "%s: status %s" id (Protocol.status_name s)
      | None -> Alcotest.failf "%s: no response" id)
    ids;
  (* drain is idempotent *)
  ignore (Pool.drain pool)

let test_pool_per_request_budget () =
  let pool = Pool.create { Pool.default_config with Pool.domains = 1 } in
  let respond, get = collector () in
  let submit r =
    match Pool.submit pool ~request:r ~respond with
    | `Accepted -> ()
    | `Overloaded | `Draining -> Alcotest.fail "not admitted"
  in
  submit (classify ~budget:"fuel=10" "tight" "suite:ada-subset");
  submit (classify "free" "suite:ada-subset");
  submit (classify ~budget:"no-such-resource=1" "badspec" "suite:expr");
  ignore (Pool.drain pool);
  let got = job_statuses (get ()) in
  (match List.assoc_opt "tight" got with
  | Some Protocol.Budget -> ()
  | s ->
      Alcotest.failf "tight: %s"
        (match s with
        | Some s -> Protocol.status_name s
        | None -> "no response"))
  ;
  (match List.assoc_opt "free" got with
  | Some (Protocol.Ok_ | Protocol.Verdict) -> ()
  | _ -> Alcotest.fail "free: the budget leaked across jobs");
  match List.assoc_opt "badspec" got with
  | Some Protocol.Bad_request -> ()
  | _ -> Alcotest.fail "badspec: expected bad_request"

let test_pool_sheds_when_full () =
  (* One busy domain, queue of one: a slow job in flight, one queued,
     the rest of a fast burst must be refused as overloaded. *)
  let pool =
    Pool.create
      { Pool.default_config with Pool.domains = 1; Pool.queue_capacity = 1 }
  in
  let respond, get = collector () in
  let outcomes =
    List.init 10 (fun i ->
        Pool.submit pool
          ~request:
            (classify (Printf.sprintf "b%d" i)
               (if i = 0 then "suite:ada-subset" else "suite:expr"))
          ~respond)
  in
  let accepted =
    List.length (List.filter (fun o -> o = `Accepted) outcomes)
  in
  let shed = List.length (List.filter (fun o -> o = `Overloaded) outcomes) in
  Alcotest.(check bool) "first job admitted" true
    (List.hd outcomes = `Accepted);
  Alcotest.(check bool) "burst partially shed" true (shed > 0);
  ignore (Pool.drain pool);
  Alcotest.(check int) "every admitted job answered" accepted
    (List.length (get ()));
  let h = Pool.health pool ~id:"h" in
  Alcotest.(check int) "sheds counted" shed h.Protocol.h_shed

let test_pool_supervises_crash () =
  Faultpoint.disarm ();
  (match Faultpoint.arm "serve-worker:raise" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Fun.protect ~finally:Faultpoint.disarm (fun () ->
      let pool = Pool.create { Pool.default_config with Pool.domains = 1 } in
      let respond, get = collector () in
      List.iter
        (fun id ->
          match
            Pool.submit pool ~request:(classify id "suite:expr") ~respond
          with
          | `Accepted -> ()
          | `Overloaded | `Draining -> Alcotest.fail "not admitted")
        [ "poisoned"; "after" ];
      ignore (Pool.drain pool);
      let got = job_statuses (get ()) in
      Alcotest.(check int) "both jobs answered" 2 (List.length got);
      (match List.assoc_opt "poisoned" got with
      | Some Protocol.Internal -> ()
      | _ -> Alcotest.fail "poisoned job: expected typed internal");
      (match List.assoc_opt "after" got with
      | Some Protocol.Ok_ -> ()
      | _ -> Alcotest.fail "job after the crash: expected ok");
      let h = Pool.health pool ~id:"h" in
      Alcotest.(check int) "restart recorded" 1 h.Protocol.h_restarts)

(* ------------------------------------------------------------------ *)
(* End to end: the daemon through the real binary                      *)
(* ------------------------------------------------------------------ *)

let binary =
  lazy
    (List.find Sys.file_exists
       [
         Filename.concat
           (Filename.dirname Sys.executable_name)
           "../bin/lalrgen.exe";
         "../bin/lalrgen.exe";
         "_build/default/bin/lalrgen.exe";
       ])

let run_client args =
  let cmd =
    Printf.sprintf "%s %s 2>&1"
      (Filename.quote (Lazy.force binary))
      (String.concat " " (List.map Filename.quote args))
  in
  let ic = Unix.open_process_in cmd in
  let out = In_channel.input_all ic in
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n -> Alcotest.failf "client killed by signal %d" n
    | Unix.WSTOPPED n -> Alcotest.failf "client stopped by signal %d" n
  in
  (code, out)

type daemon = { d_pid : int; d_sock : string; d_log : string }

let start_daemon extra_args =
  let sock = Filename.temp_file "lalr_serve_" ".sock" in
  Sys.remove sock;
  let log = Filename.temp_file "lalr_serve_" ".log" in
  let log_fd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process (Lazy.force binary)
      (Array.of_list
         ([ Lazy.force binary; "serve"; "--socket"; sock ] @ extra_args))
      null log_fd log_fd
  in
  Unix.close null;
  Unix.close log_fd;
  (* ready when the health round-trip answers *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    let code, _ =
      run_client [ "call"; "--socket"; sock; {|{"id":"up","kind":"health"}|} ]
    in
    if code = 0 then ()
    else if Unix.gettimeofday () > deadline then (
      Unix.kill pid Sys.sigkill;
      Alcotest.failf "daemon did not come up; log:\n%s"
        (In_channel.with_open_bin log In_channel.input_all))
    else (
      Unix.sleepf 0.05;
      wait ())
  in
  wait ();
  { d_pid = pid; d_sock = sock; d_log = log }

let stop_daemon d =
  Unix.kill d.d_pid Sys.sigterm;
  let _, status = Unix.waitpid [] d.d_pid in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n ->
      Alcotest.failf "drain exited %d; log:\n%s" n
        (In_channel.with_open_bin d.d_log In_channel.input_all)
  | Unix.WSIGNALED n -> Alcotest.failf "daemon killed by signal %d" n
  | Unix.WSTOPPED n -> Alcotest.failf "daemon stopped by signal %d" n);
  Alcotest.(check bool) "socket path cleaned up" false (Sys.file_exists d.d_sock)

let kill_daemon d = try Unix.kill d.d_pid Sys.sigkill with Unix.Unix_error _ -> ()

(* Pull "field":"value" (string) or "field":123 out of a response line
   without a JSON parser on the test side: the line shape itself is
   pinned by the protocol round-trip tests. *)
let field_string line name =
  match Protocol.Json.parse line with
  | Ok j -> (
      match Protocol.Json.member name j with
      | Some (Protocol.Json.Str s) -> Some s
      | Some (Protocol.Json.Num f) -> Some (string_of_int (int_of_float f))
      | _ -> None)
  | Error _ -> None

let test_e2e_chaos_acceptance () =
  let d = start_daemon [ "--domains"; "2"; "--inject"; "serve-worker:raise" ] in
  Fun.protect
    ~finally:(fun () -> kill_daemon d)
    (fun () ->
      let requests =
        [
          (* poisoned: the armed serve-worker fault crashes the first
             worker that picks a job up *)
          {|{"id":"poisoned","file":"suite:expr"}|};
          {|{"id":"clean","file":"suite:expr"}|};
          {|{"id":"conflicted","grammar":"%token plus id\n%start e\n%%\ne : e plus e | id ;","format":"cfg"}|};
          {|{"id":"tight","file":"suite:ada-subset","budget":"fuel=10"}|};
          "this is not json";
          {|{"id":"h","kind":"health"}|};
        ]
      in
      let code, out =
        run_client ([ "call"; "--socket"; d.d_sock ] @ requests)
      in
      let lines =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
      in
      Alcotest.(check int) "exactly one response per request"
        (List.length requests) (List.length lines);
      let status_of id =
        match
          List.filter (fun l -> field_string l "id" = Some id) lines
        with
        | [ l ] -> field_string l "status"
        | [] -> Alcotest.failf "%s: no response" id
        | _ -> Alcotest.failf "%s: more than one response" id
      in
      Alcotest.(check (option string)) "poisoned -> typed internal"
        (Some "internal") (status_of "poisoned");
      Alcotest.(check (option string)) "clean -> ok" (Some "ok")
        (status_of "clean");
      Alcotest.(check (option string)) "conflicts -> verdict"
        (Some "verdict") (status_of "conflicted");
      Alcotest.(check (option string)) "over budget -> budget"
        (Some "budget") (status_of "tight");
      Alcotest.(check (option string)) "malformed line -> bad_request"
        (Some "bad_request") (status_of "");
      Alcotest.(check (option string)) "health answered" (Some "health")
        (status_of "h");
      Alcotest.(check int) "client exit is the worst response" 4 code;
      (* the daemon survived all of it and still serves *)
      let code2, out2 =
        run_client
          [ "call"; "--socket"; d.d_sock; {|{"id":"again","file":"suite:expr"}|} ]
      in
      Alcotest.(check int) "daemon keeps serving after chaos" 0 code2;
      Alcotest.(check bool) "fresh request is clean" true
        (field_string (String.trim out2) "status" = Some "ok");
      stop_daemon d)

let test_e2e_overload_shed () =
  let d = start_daemon [ "--domains"; "1"; "--queue"; "1" ] in
  Fun.protect
    ~finally:(fun () -> kill_daemon d)
    (fun () ->
      let requests =
        {|{"id":"slow","file":"suite:ada-subset"}|}
        :: List.init 8 (fun i ->
               Printf.sprintf {|{"id":"f%d","file":"suite:expr"}|} i)
      in
      let _, out = run_client ([ "call"; "--socket"; d.d_sock ] @ requests) in
      let lines =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
      in
      Alcotest.(check int) "every request answered" (List.length requests)
        (List.length lines);
      let statuses =
        List.filter_map (fun l -> field_string l "status") lines
      in
      Alcotest.(check bool) "some of the burst was shed" true
        (List.mem "overloaded" statuses);
      Alcotest.(check bool) "the slow job itself completed" true
        (List.exists
           (fun l ->
             field_string l "id" = Some "slow"
             && field_string l "status" <> Some "overloaded")
           lines);
      stop_daemon d)

let test_e2e_decode_fault_absorbed () =
  (* @2: the readiness health probe is the daemon's first decode *)
  let d =
    start_daemon [ "--domains"; "1"; "--inject"; "serve-decode:raise@2" ]
  in
  Fun.protect
    ~finally:(fun () -> kill_daemon d)
    (fun () ->
      let code, out =
        run_client
          [
            "call"; "--socket"; d.d_sock;
            {|{"id":"x","file":"suite:expr"}|};
            {|{"id":"y","file":"suite:expr"}|};
          ]
      in
      let lines =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
      in
      Alcotest.(check int) "both lines answered" 2 (List.length lines);
      let statuses = List.filter_map (fun l -> field_string l "status") lines in
      Alcotest.(check bool) "injected decode fault is a typed internal" true
        (List.mem "internal" statuses);
      Alcotest.(check bool) "next line decodes normally" true
        (List.mem "ok" statuses);
      Alcotest.(check int) "worst code reported" 4 code;
      stop_daemon d)

let test_e2e_oversized_line () =
  let d = start_daemon [ "--domains"; "1"; "--max-line"; "512" ] in
  Fun.protect
    ~finally:(fun () -> kill_daemon d)
    (fun () ->
      let big =
        Printf.sprintf {|{"id":"big","grammar":"%s","format":"cfg"}|}
          (String.make 2000 'a')
      in
      let code, out =
        run_client
          [
            "call"; "--socket"; d.d_sock; big;
            {|{"id":"small","file":"suite:expr"}|};
          ]
      in
      let lines =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
      in
      Alcotest.(check int) "both lines answered" 2 (List.length lines);
      let statuses = List.filter_map (fun l -> field_string l "status") lines in
      Alcotest.(check bool) "oversized -> bad_request" true
        (List.mem "bad_request" statuses);
      Alcotest.(check bool) "framing recovers for the next line" true
        (List.mem "ok" statuses);
      Alcotest.(check int) "worst code is the bad_request" 2 code;
      stop_daemon d)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "decode requests" `Quick test_decode_requests;
          Alcotest.test_case "decode rejects hostile lines" `Quick
            test_decode_rejects;
          Alcotest.test_case "encode/decode round-trip" `Quick
            test_encode_roundtrip;
          Alcotest.test_case "status exit codes" `Quick test_response_exits;
        ] );
      ( "retry",
        [
          Alcotest.test_case "deterministic capped backoff" `Quick
            test_retry_deterministic_backoff;
          Alcotest.test_case "run honours policy and reports retries" `Quick
            test_retry_run;
        ] );
      ( "pool",
        [
          Alcotest.test_case "serves and drains" `Quick
            test_pool_serves_and_drains;
          Alcotest.test_case "per-request budgets are isolated" `Quick
            test_pool_per_request_budget;
          Alcotest.test_case "sheds when full" `Quick test_pool_sheds_when_full;
          Alcotest.test_case "supervises a worker crash" `Quick
            test_pool_supervises_crash;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "chaos acceptance" `Quick
            test_e2e_chaos_acceptance;
          Alcotest.test_case "overload shed" `Quick test_e2e_overload_shed;
          Alcotest.test_case "decode fault absorbed" `Quick
            test_e2e_decode_fault_absorbed;
          Alcotest.test_case "oversized line" `Quick test_e2e_oversized_line;
        ] );
    ]
