(* Tests for lib/core: the DeRemer–Pennello computation itself. *)

module Bitset = Lalr_sets.Bitset
module G = Lalr_grammar.Grammar
module Analysis = Lalr_grammar.Analysis
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Boxed = Lalr_baselines.Boxed
module Registry = Lalr_suite.Registry
module Classics = Lalr_suite.Classics
module Randgen = Lalr_suite.Randgen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_strs = Alcotest.(check (list string))

let la_names t ~state ~prod =
  let g = Lalr.grammar t in
  Bitset.elements (Lalr.lookahead t ~state ~prod)
  |> List.map (G.terminal_name g)
  |> List.sort compare

let compute_of name = Lalr.compute (Lr0.build (Lazy.force (Registry.find name).grammar))

(* ------------------------------------------------------------------ *)
(* The dragon 4.34 grammar, end to end by hand                        *)
(* ------------------------------------------------------------------ *)

let assign_t = lazy (compute_of "assign")

(* In the state with kernel { s → l . eq r ; r → l . }, the exact
   look-ahead of r → l is {$}: SLR's FOLLOW(r) = {$, eq} would conflict
   with the shift on eq, LALR(1) does not. The dragon book works this
   exact example. *)
let test_assign_conflict_state () =
  let t = Lazy.force assign_t in
  let a = Lalr.automaton t in
  let g = Lalr.grammar t in
  let l = Option.get (G.find_nonterminal g "l") in
  let q = Lr0.goto_exn a 0 (Lalr_grammar.Symbol.N l) in
  (* q is the critical state: it shifts eq and reduces r → l. *)
  let r_to_l =
    List.find
      (fun pid -> G.nonterminal_name g (G.production g pid).lhs = "r")
      (Lr0.reductions a q)
  in
  check_strs "LA(q, r → l) = {$}" [ "$" ] (la_names t ~state:q ~prod:r_to_l);
  check "lalr1" true (Lalr.is_lalr1 t)

let test_assign_all_las () =
  (* Every reduction's look-ahead, cross-checked against the dragon
     book's LALR table for this grammar. *)
  let t = Lazy.force assign_t in
  let g = Lalr.grammar t in
  let by_prod =
    List.init (Lalr.n_reductions t) (fun r ->
        let state, prod = Lalr.reduction t r in
        let p = G.production g prod in
        ( G.nonterminal_name g p.lhs,
          Array.to_list (Array.map (G.symbol_name g) p.rhs),
          la_names t ~state ~prod ))
  in
  (* l → id occurs in two states; the one reached after eq sees only $. *)
  let las_of lhs rhs =
    List.filter_map
      (fun (l, r, la) -> if l = lhs && r = rhs then Some la else None)
      by_prod
    |> List.sort_uniq compare
  in
  check "l → id has both {$} and {$,eq} instances" true
    (las_of "l" [ "id" ] = [ [ "$" ]; [ "$"; "eq" ] ]
    || las_of "l" [ "id" ] = [ [ "$"; "eq" ] ]);
  check "s → r on $" true (las_of "s" [ "r" ] = [ [ "$" ] ]);
  check "s → l eq r on $" true (las_of "s" [ "l"; "eq"; "r" ] = [ [ "$" ] ])

(* ------------------------------------------------------------------ *)
(* Relations on the expr grammar                                      *)
(* ------------------------------------------------------------------ *)

let expr_t = lazy (compute_of "expr")

let test_expr_dr () =
  (* DR(0, e) = {plus, $}: after shifting e from state 0 we can read +
     or the end marker (which our S' → e $ convention makes an ordinary
     transition — exactly the paper's trick). *)
  let t = Lazy.force expr_t in
  let a = Lalr.automaton t in
  let g = Lalr.grammar t in
  let e = Option.get (G.find_nonterminal g "e") in
  let x = Lr0.find_nt_transition a 0 e in
  let dr_names =
    Bitset.elements (Lalr.dr t x) |> List.map (G.terminal_name g) |> List.sort compare
  in
  check_strs "DR(0,e)" [ "$"; "plus" ] dr_names

let test_expr_follow_chain () =
  (* Follow(0, f) must pick up star (via t), plus and $ (via e):
     includes chains f ← t ← e. *)
  let t = Lazy.force expr_t in
  let a = Lalr.automaton t in
  let g = Lalr.grammar t in
  let f = Option.get (G.find_nonterminal g "f") in
  let x = Lr0.find_nt_transition a 0 f in
  let names =
    Bitset.elements (Lalr.follow t x)
    |> List.map (G.terminal_name g)
    |> List.sort compare
  in
  check_strs "Follow(0,f)" [ "$"; "plus"; "star" ] names

let test_expr_no_reads () =
  (* No nullable nonterminals → reads is empty, Read = DR. *)
  let t = Lazy.force expr_t in
  let st = Lalr.stats t in
  check_int "no reads edges" 0 st.Lalr.reads_edges;
  for x = 0 to st.Lalr.n_nt_transitions - 1 do
    check "Read = DR" true (Bitset.equal (Lalr.read t x) (Lalr.dr t x))
  done

let test_expr_diagnostics_empty () =
  check "no diagnostics" true (Lalr.diagnostics (Lazy.force expr_t) = [])

(* ------------------------------------------------------------------ *)
(* reads: nontrivial on the ε-grammar, cyclic on not-lr-k             *)
(* ------------------------------------------------------------------ *)

let test_eps_grammar_reads () =
  let t = compute_of "expr-ll" in
  let st = Lalr.stats t in
  check "has reads edges" true (st.Lalr.reads_edges > 0);
  check "acyclic reads" true (st.Lalr.reads_sccs = []);
  check "lalr1" true (Lalr.is_lalr1 t)

let test_reads_cycle_detected () =
  let t = compute_of "not-lr-k" in
  check "cycle reported" true
    (List.exists
       (function Lalr.Reads_cycle _ -> true | _ -> false)
       (Lalr.diagnostics t));
  check "not lalr1" false (Lalr.is_lalr1 t)

let test_reduction_index () =
  let t = Lazy.force expr_t in
  for r = 0 to Lalr.n_reductions t - 1 do
    let state, prod = Lalr.reduction t r in
    check_int "find_reduction roundtrip" r
      (Lalr.find_reduction t ~state ~prod)
  done;
  match Lalr.find_reduction t ~state:0 ~prod:1 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "state 0 reduces nothing"

let test_lookback_nonempty () =
  (* Every reduction of a reduced grammar has at least one lookback. *)
  List.iter
    (fun (e : Registry.entry) ->
      let t = Lalr.compute (Lr0.build (Lazy.force e.grammar)) in
      for r = 0 to Lalr.n_reductions t - 1 do
        check "lookback nonempty" true (Lalr.lookback t r <> [])
      done)
    Registry.all

(* ------------------------------------------------------------------ *)
(* Set-inclusion invariants (exact on suite, property on random)      *)
(* ------------------------------------------------------------------ *)

let dr_read_follow_chain t =
  let st = Lalr.stats t in
  let ok = ref true in
  for x = 0 to st.Lalr.n_nt_transitions - 1 do
    if not (Bitset.subset (Lalr.dr t x) (Lalr.read t x)) then ok := false;
    if not (Bitset.subset (Lalr.read t x) (Lalr.follow t x)) then ok := false
  done;
  !ok

let la_subset_follow t =
  let g = Lalr.grammar t in
  let analysis = Lalr.analysis t in
  let ok = ref true in
  for r = 0 to Lalr.n_reductions t - 1 do
    let _, prod = Lalr.reduction t r in
    let lhs = (G.production g prod).lhs in
    if not (Bitset.subset (Lalr.la t r) (Analysis.follow analysis lhs)) then
      ok := false
  done;
  !ok

let test_suite_inclusions () =
  List.iter
    (fun (e : Registry.entry) ->
      let t = Lalr.compute (Lr0.build (Lazy.force e.grammar)) in
      check (e.name ^ ": DR ⊆ Read ⊆ Follow") true (dr_read_follow_chain t);
      check (e.name ^ ": LA ⊆ FOLLOW(lhs)") true (la_subset_follow t))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Byte-identity against the frozen boxed baseline                    *)
(* ------------------------------------------------------------------ *)

(* The data-layout refactor (DESIGN.md §14) is observational-equivalence
   work: CSR relations, the arena Digraph and the packed transition rows
   must produce exactly the sets the boxed implementation did — same
   elements, same edge orders, same reduction numbering. Pin every
   observable against Lalr_baselines.Boxed over the whole suite. *)
let test_boxed_identity () =
  List.iter
    (fun (e : Registry.entry) ->
      let a = Lr0.build (Lazy.force e.grammar) in
      let t = Lalr.compute a in
      let b = Boxed.compute a in
      let nx = Lalr.stats t in
      let nx = nx.Lalr.n_nt_transitions in
      check_int (e.name ^ ": nt transitions") (Boxed.n_nt_transitions b) nx;
      for x = 0 to nx - 1 do
        check (e.name ^ ": DR") true (Bitset.equal (Lalr.dr t x) (Boxed.dr b x));
        check (e.name ^ ": Read") true
          (Bitset.equal (Lalr.read t x) (Boxed.read b x));
        check (e.name ^ ": Follow") true
          (Bitset.equal (Lalr.follow t x) (Boxed.follow b x));
        Alcotest.(check (list int))
          (e.name ^ ": reads row") (Boxed.reads b x) (Lalr.reads t x);
        Alcotest.(check (list int))
          (e.name ^ ": includes row")
          (Boxed.includes b x) (Lalr.includes t x)
      done;
      check_int (e.name ^ ": reductions") (Boxed.n_reductions b)
        (Lalr.n_reductions t);
      for r = 0 to Lalr.n_reductions t - 1 do
        let q, p = Lalr.reduction t r and q', p' = Boxed.reduction b r in
        check_int (e.name ^ ": reduction state") q' q;
        check_int (e.name ^ ": reduction prod") p' p;
        Alcotest.(check (list int))
          (e.name ^ ": lookback row")
          (Boxed.lookback b r) (Lalr.lookback t r);
        check (e.name ^ ": LA") true (Bitset.equal (Lalr.la t r) (Boxed.la b r))
      done)
    Registry.all

let test_mem_stats_shape () =
  (* The packed arrays' reported footprint is fully determined by the
     relation sizes: offsets = rows + 1, cols = edges. *)
  List.iter
    (fun (e : Registry.entry) ->
      let t = Lalr.compute (Lr0.build (Lazy.force e.grammar)) in
      let st = Lalr.stats t in
      let m = st.Lalr.mem in
      check_int (e.name ^ ": reads offsets") (st.Lalr.n_nt_transitions + 1)
        m.Lalr.reads_offsets_words;
      check_int (e.name ^ ": reads cols") st.Lalr.reads_edges
        m.Lalr.reads_cols_words;
      check_int (e.name ^ ": includes offsets") (st.Lalr.n_nt_transitions + 1)
        m.Lalr.includes_offsets_words;
      check_int (e.name ^ ": includes cols") st.Lalr.includes_edges
        m.Lalr.includes_cols_words;
      check_int (e.name ^ ": lookback offsets") (st.Lalr.n_reductions + 1)
        m.Lalr.lookback_offsets_words;
      check_int (e.name ^ ": lookback cols") st.Lalr.lookback_edges
        m.Lalr.lookback_cols_words)
    Registry.all

let prop_boxed_identity_random =
  QCheck.Test.make ~name:"CSR layout ≡ boxed baseline (random)" ~count:60
    (Randgen.arbitrary ()) (fun g ->
      let a = Lr0.build g in
      let t = Lalr.compute a in
      let b = Boxed.compute a in
      let st = Lalr.stats t in
      let nx = st.Lalr.n_nt_transitions in
      let ok = ref (Boxed.n_nt_transitions b = nx) in
      for x = 0 to nx - 1 do
        if
          not
            (Bitset.equal (Lalr.follow t x) (Boxed.follow b x)
            && Lalr.reads t x = Boxed.reads b x
            && Lalr.includes t x = Boxed.includes b x)
        then ok := false
      done;
      if Lalr.n_reductions t <> Boxed.n_reductions b then ok := false
      else
        for r = 0 to Lalr.n_reductions t - 1 do
          if
            not
              (Lalr.reduction t r = Boxed.reduction b r
              && Lalr.lookback t r = Boxed.lookback b r
              && Bitset.equal (Lalr.la t r) (Boxed.la b r))
          then ok := false
        done;
      !ok)

let prop_inclusions_random =
  QCheck.Test.make ~name:"DR ⊆ Read ⊆ Follow and LA ⊆ FOLLOW (random)"
    ~count:150 (Randgen.arbitrary ()) (fun g ->
      let t = Lalr.compute (Lr0.build g) in
      dr_read_follow_chain t && la_subset_follow t)

let prop_la_nonempty_random =
  QCheck.Test.make
    ~name:"every reduction look-ahead is nonempty (reduced grammars)"
    ~count:150 (Randgen.arbitrary ()) (fun g ->
      (* A reduced grammar embeds every production in a sentential form,
         and every sentential form can be extended to end in $. *)
      let t = Lalr.compute (Lr0.build g) in
      let ok = ref true in
      for r = 0 to Lalr.n_reductions t - 1 do
        if Bitset.is_empty (Lalr.la t r) then ok := false
      done;
      !ok)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "core"
    [
      ( "known-grammars",
        [
          Alcotest.test_case "dragon 4.34 conflict state" `Quick
            test_assign_conflict_state;
          Alcotest.test_case "dragon 4.34 all look-aheads" `Quick
            test_assign_all_las;
          Alcotest.test_case "expr DR(0,e)" `Quick test_expr_dr;
          Alcotest.test_case "expr Follow chain" `Quick
            test_expr_follow_chain;
          Alcotest.test_case "expr has no reads edges" `Quick
            test_expr_no_reads;
          Alcotest.test_case "expr has no diagnostics" `Quick
            test_expr_diagnostics_empty;
          Alcotest.test_case "ε-grammar reads edges, acyclic" `Quick
            test_eps_grammar_reads;
          Alcotest.test_case "reads cycle ⇒ not LR(k)" `Quick
            test_reads_cycle_detected;
        ] );
      ( "structure",
        [
          Alcotest.test_case "reduction index roundtrip" `Quick
            test_reduction_index;
          Alcotest.test_case "lookback never empty" `Quick
            test_lookback_nonempty;
          Alcotest.test_case "inclusions on the whole suite" `Quick
            test_suite_inclusions;
        ] );
      ( "layout",
        [
          Alcotest.test_case "byte-identical to the boxed baseline" `Quick
            test_boxed_identity;
          Alcotest.test_case "mem stats match relation shapes" `Quick
            test_mem_stats_shape;
        ] );
      qsuite "props"
        [
          prop_inclusions_random;
          prop_la_nonempty_random;
          prop_boxed_identity_random;
        ];
    ]
