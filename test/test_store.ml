(* The persistent artifact store, exercised against its contract:
   never a silently wrong answer (every damage mode is detected and
   quarantined), never a failure (every store mishap is an ordinary
   miss), and a warm entry seeds the engine with zero recomputation.
   Plus the fault-injection spec machinery and the digest-keyed
   counterexample cache that store-rehydrated grammars rely on. *)

module G = Lalr_grammar.Grammar
module Reader = Lalr_grammar.Reader
module Engine = Lalr_engine.Engine
module Store = Lalr_store.Store
module Budget = Lalr_guard.Budget
module Faultpoint = Lalr_guard.Faultpoint
module Counterexample = Lalr_report.Counterexample
module Classify = Lalr_tables.Classify

let expr_src =
  {|
%token plus times lparen rparen id
%start e
%%
e : e plus t | t ;
t : t times f | f ;
f : lparen e rparen | id ;
|}

let expr () = Reader.of_string ~name:"store-test" expr_src

let dangling_src =
  {|
%token if_ then_ else_ expr other
%start stmt
%%
stmt : if_ expr then_ stmt
     | if_ expr then_ stmt else_ stmt
     | other ;
|}

let dangling () = Reader.of_string ~name:"store-test2" dangling_src

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lalr_store_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  (* a fresh name per test; the store creates it *)
  d

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let force_all e =
  ignore (Engine.tables e);
  ignore (Engine.classification ~with_lr1:false e)

(* Populate a fresh store with the grammar's artifacts and return it
   with the entry path. *)
let populated g =
  let st = Store.create ~dir:(fresh_dir ()) in
  let e = Engine.create ~store:st g in
  force_all e;
  Engine.persist ~force:true e;
  let path = Store.entry_path st g in
  Alcotest.(check bool) "entry written" true (Sys.file_exists path);
  (st, path)

(* ------------------------------------------------------------------ *)
(* Round trip                                                          *)
(* ------------------------------------------------------------------ *)

let test_round_trip () =
  let g = expr () in
  let st, _ = populated g in
  match Store.load st g with
  | None -> Alcotest.fail "freshly written entry did not load"
  | Some b ->
      Alcotest.(check bool)
        "rehydrated grammar is structurally equal" true
        (G.equal_structure b.Store.b_grammar g);
      Alcotest.(check bool)
        "classification travelled" true
        (b.Store.b_classification <> None);
      let v = Option.get b.Store.b_classification in
      Alcotest.(check bool) "verdict preserved" true v.Classify.lalr1;
      let s = Store.stats st in
      Alcotest.(check int) "one hit" 1 s.Store.hits;
      Alcotest.(check int) "one write" 1 s.Store.writes;
      Alcotest.(check int) "no corruption" 0 s.Store.corrupt

let test_warm_engine_recomputes_nothing () =
  let g = expr () in
  let st, _ = populated g in
  let e = Engine.create ~store:st g in
  force_all e;
  List.iter
    (fun (stage : Engine.stage) ->
      if stage.forced then
        Alcotest.(check int)
          (Printf.sprintf "stage %s not recomputed" stage.stage)
          0 stage.misses)
    (Engine.stats e);
  Alcotest.(check int) "store hit" 1 (Store.stats st).Store.hits

(* ------------------------------------------------------------------ *)
(* Damage modes: each one is a counted quarantine + miss, then a clean
   recompute — never a crash, never a served lie.                      *)
(* ------------------------------------------------------------------ *)

let check_damage name damage =
  let g = expr () in
  let st, path = populated g in
  damage path;
  let before = Store.stats st in
  (match Store.load st g with
  | Some _ -> Alcotest.failf "%s: damaged entry was served" name
  | None -> ());
  let s = Store.stats st in
  Alcotest.(check int)
    (name ^ ": quarantined") (before.Store.corrupt + 1) s.Store.corrupt;
  Alcotest.(check int)
    (name ^ ": counted as miss") (before.Store.misses + 1) s.Store.misses;
  Alcotest.(check bool)
    (name ^ ": quarantine file kept") true
    (Sys.file_exists (path ^ ".corrupt"));
  Alcotest.(check bool)
    (name ^ ": entry gone") false (Sys.file_exists path);
  (* the miss recomputes and repopulates *)
  let e = Engine.create ~store:st g in
  force_all e;
  Engine.persist ~force:true e;
  match Store.load st g with
  | None -> Alcotest.failf "%s: recompute did not repopulate" name
  | Some _ -> ()

let test_truncation () =
  check_damage "truncation" (fun path ->
      let raw = read_file path in
      write_file path (String.sub raw 0 (String.length raw / 3)))

let test_bit_flip () =
  check_damage "bit flip" (fun path ->
      let raw = read_file path in
      let b = Bytes.of_string raw in
      let i = Bytes.length b / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
      write_file path (Bytes.to_string b))

let test_version_skew () =
  check_damage "version skew" (fun path ->
      (* the stamp starts right after the 8-byte magic and its 2-byte
         length; damaging it simulates an entry from another build *)
      let raw = read_file path in
      let b = Bytes.of_string raw in
      Bytes.set b 11 (Char.chr (Char.code (Bytes.get b 11) lxor 0x01));
      write_file path (Bytes.to_string b))

let test_wrong_key () =
  (* A structurally valid entry for grammar A sitting at grammar B's
     path passes magic, stamp and checksum — only the rehydrated-key
     check can reject it. *)
  let ga = expr () and gb = dangling () in
  let st = Store.create ~dir:(fresh_dir ()) in
  let ea = Engine.create ~store:st ga in
  force_all ea;
  Engine.persist ~force:true ea;
  let a_path = Store.entry_path st ga in
  let b_path = Store.entry_path st gb in
  write_file b_path (read_file a_path);
  (match Store.load st gb with
  | Some _ -> Alcotest.fail "foreign entry served under the wrong key"
  | None -> ());
  Alcotest.(check int) "quarantined" 1 (Store.stats st).Store.corrupt

let test_store_never_fails () =
  (* Pull the directory out from under a live store: every operation
     must degrade to counted errors and misses, no exception. *)
  let g = expr () in
  let st, path = populated g in
  Sys.remove path;
  let dir = Store.dir st in
  (* leave quarantine leftovers out of the way, then remove the dir *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  Alcotest.(check (option reject)) "load is a miss" None
    (Option.map ignore (Store.load st g));
  let e = Engine.create ~store:st g in
  force_all e;
  Engine.persist ~force:true e;
  let s = Store.stats st in
  Alcotest.(check bool) "save failure counted" true (s.Store.errors >= 1)

let test_skip_small () =
  (* A grammar this tiny computes in well under Store.small_threshold:
     an unforced persist must decline to write, count the skip, and
     leave no entry on disk; ~force:true must write anyway. *)
  let g = expr () in
  let st = Store.create ~dir:(fresh_dir ()) in
  let e = Engine.create ~store:st g in
  force_all e;
  Engine.persist e;
  let path = Store.entry_path st g in
  Alcotest.(check bool) "no entry written" false (Sys.file_exists path);
  let s = Store.stats st in
  Alcotest.(check int) "skip counted" 1 s.Store.skipped_small;
  Alcotest.(check int) "no write" 0 s.Store.writes;
  Alcotest.(check bool)
    "pp_stats reports it" true
    (let rendered = Format.asprintf "%a" Store.pp_stats st in
     let sub = "1 skipped-small" in
     let n = String.length rendered and m = String.length sub in
     let rec has i = i + m <= n && (String.sub rendered i m = sub || has (i + 1)) in
     has 0);
  Engine.persist ~force:true e;
  Alcotest.(check bool) "forced persist writes" true (Sys.file_exists path);
  Alcotest.(check int) "write counted" 1 (Store.stats st).Store.writes

let test_distinct_sources_distinct_entries () =
  (* Same structure read from two source names: diagnostics cite
     different positions, so they must not share an entry. *)
  let g1 = Reader.of_string ~name:"left.cfg" expr_src in
  let g2 = Reader.of_string ~name:"right.cfg" expr_src in
  Alcotest.(check bool)
    "digest equal" true
    (String.equal (G.digest g1) (G.digest g2));
  Alcotest.(check bool)
    "store keys differ" false
    (String.equal (Store.key g1) (Store.key g2))

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let test_spec_errors () =
  let bad spec =
    match Faultpoint.arm spec with
    | Ok () ->
        Faultpoint.disarm ();
        Alcotest.failf "spec %S was accepted" spec
    | Error _ -> ()
  in
  bad "nosuch:raise";
  bad "lr0:corrupt";
  bad "reader:banana";
  bad "lr0:raise@0";
  bad "lr0:raise@x";
  bad "lr0";
  bad "";
  Alcotest.(check bool) "nothing armed after errors" false (Faultpoint.armed ())

let test_fire_once_at_nth_hit () =
  (match Faultpoint.arm "lr0:raise@2" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Faultpoint.check "lr0";
  (* first hit: silent *)
  (match Faultpoint.check "lr0" with
  | () -> Alcotest.fail "second hit did not fire"
  | exception Budget.Internal_error { stage; _ } ->
      Alcotest.(check string) "stage names the site" "lr0" stage);
  Faultpoint.check "lr0";
  (* fired once; third hit silent *)
  Faultpoint.disarm ();
  Alcotest.(check bool) "disarmed" false (Faultpoint.armed ())

let test_store_alias_arms_both () =
  (match Faultpoint.arm "store:corrupt" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "read side" true (Faultpoint.take_corrupt "store-read");
  Alcotest.(check bool)
    "write side" true
    (Faultpoint.take_corrupt "store-write");
  Alcotest.(check bool)
    "consumed once" false
    (Faultpoint.take_corrupt "store-read");
  Faultpoint.disarm ()

let test_injected_write_corruption_detected () =
  let g = expr () in
  let st = Store.create ~dir:(fresh_dir ()) in
  (match Faultpoint.arm "store-write:corrupt" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let e = Engine.create ~store:st g in
  force_all e;
  Engine.persist ~force:true e;
  Faultpoint.disarm ();
  (* the corrupted write must be caught by the next read *)
  (match Store.load st g with
  | Some _ -> Alcotest.fail "corrupted payload served"
  | None -> ());
  Alcotest.(check int) "quarantined" 1 (Store.stats st).Store.corrupt

let test_registry_covers_engine_slots () =
  (* Every engine stage is an injection site with compute semantics —
     the registry cannot silently fall out of sync. *)
  let e = Engine.create (expr ()) in
  List.iter
    (fun (s : Engine.stage) ->
      match Faultpoint.find_site s.stage with
      | Some info ->
          Alcotest.(check bool)
            (s.stage ^ " is a compute site") true
            (info.Faultpoint.si_class = Faultpoint.Compute)
      | None -> Alcotest.failf "engine stage %s is not a fault site" s.stage)
    (Engine.stats e)

(* ------------------------------------------------------------------ *)
(* run_partial                                                         *)
(* ------------------------------------------------------------------ *)

let test_run_partial_marks_incomplete () =
  (match Faultpoint.arm "follow:wall" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let e = Engine.create (expr ()) in
  let p = Engine.run_partial e (fun e -> Engine.classification e) in
  Faultpoint.disarm ();
  (match p.Engine.pr_completeness with
  | Engine.Incomplete (Engine.Budget_exceeded ex) ->
      Alcotest.(check string) "stage" "follow" ex.Budget.ex_stage
  | _ -> Alcotest.fail "expected an incomplete budget failure");
  Alcotest.(check bool) "no value" true (p.Engine.pr_value = None);
  Alcotest.(check (list string))
    "completed prefix" [ "analysis"; "lr0"; "relations" ]
    p.Engine.pr_completed

let test_run_partial_complete () =
  let e = Engine.create (expr ()) in
  let p = Engine.run_partial e (fun e -> Engine.classification e) in
  (match p.Engine.pr_completeness with
  | Engine.Complete -> ()
  | Engine.Incomplete _ -> Alcotest.fail "clean run marked incomplete");
  Alcotest.(check bool) "has value" true (p.Engine.pr_value <> None)

(* ------------------------------------------------------------------ *)
(* The digest-keyed counterexample cache                                *)
(* ------------------------------------------------------------------ *)

let test_yield_cache_shared_by_content () =
  (* Two parses of the same text: physically distinct, structurally
     equal — exactly the shape of a store-rehydrated grammar. The
     memoised yield function must be the same closure for both. *)
  let g1 = Reader.of_string ~name:"one" dangling_src in
  let g2 = Reader.of_string ~name:"two" dangling_src in
  Alcotest.(check bool) "distinct values" false (g1 == g2);
  let f1 = Counterexample.min_yields g1 in
  let f2 = Counterexample.min_yields g2 in
  Alcotest.(check bool) "one cache entry serves both" true (f1 == f2);
  (* and it still answers correctly *)
  Alcotest.(check (list string))
    "yield of stmt" [ "other" ]
    (f2 (Option.get (G.find_nonterminal g2 "stmt")))

let () =
  Alcotest.run "store"
    [
      ( "store",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "warm engine recomputes nothing" `Quick
            test_warm_engine_recomputes_nothing;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "bit flip" `Quick test_bit_flip;
          Alcotest.test_case "version skew" `Quick test_version_skew;
          Alcotest.test_case "wrong key" `Quick test_wrong_key;
          Alcotest.test_case "store never fails" `Quick test_store_never_fails;
          Alcotest.test_case "sub-threshold persist is skipped" `Quick
            test_skip_small;
          Alcotest.test_case "distinct sources, distinct entries" `Quick
            test_distinct_sources_distinct_entries;
        ] );
      ( "faultpoint",
        [
          Alcotest.test_case "spec errors" `Quick test_spec_errors;
          Alcotest.test_case "fire once at nth hit" `Quick
            test_fire_once_at_nth_hit;
          Alcotest.test_case "store alias arms both sides" `Quick
            test_store_alias_arms_both;
          Alcotest.test_case "injected write corruption detected" `Quick
            test_injected_write_corruption_detected;
          Alcotest.test_case "registry covers engine slots" `Quick
            test_registry_covers_engine_slots;
        ] );
      ( "partial",
        [
          Alcotest.test_case "marks incomplete" `Quick
            test_run_partial_marks_incomplete;
          Alcotest.test_case "complete run" `Quick test_run_partial_complete;
        ] );
      ( "counterexample",
        [
          Alcotest.test_case "yield cache shared by content" `Quick
            test_yield_cache_shared_by_content;
        ] );
    ]
