(* Tests for tools/lalr_check: each rule fires on a crafted fixture
   with the right code and location, waivers suppress findings and
   round-trip their reason, waiver hygiene (D006) catches malformed /
   unknown / empty / stale waivers, the contract pins carried over from
   the retired check_raising_mli.sh still hold, and a self-run over the
   real repository reports zero unwaived findings. *)

module Rules = Lalr_check_lib.Rules
module Analyzer = Lalr_check_lib.Analyzer
module Driver = Lalr_check_lib.Driver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let is_infix ~affix hay =
  let nh = String.length hay and na = String.length affix in
  let rec go i = i + na <= nh && (String.sub hay i na = affix || go (i + 1)) in
  na = 0 || go 0

let run ~path src = Analyzer.check_source ~path src

let findings ~path src = (run ~path src).Analyzer.r_findings
let cells ~path src = (run ~path src).Analyzer.r_cells

let codes fs =
  List.map (fun (f : Rules.finding) -> f.Rules.code) fs
  |> List.sort_uniq String.compare

let unwaived fs =
  List.filter (fun (f : Rules.finding) -> f.Rules.waiver = None) fs

let with_code code fs =
  List.filter (fun (f : Rules.finding) -> f.Rules.code = code) fs

let fires ?(path = "lib/fixture.ml") code src =
  with_code code (unwaived (findings ~path src)) <> []

let clean ?(path = "lib/fixture.ml") src =
  unwaived (findings ~path src) = []

(* ------------------------------------------------------------------ *)
(* D001 — module-level mutable state                                   *)
(* ------------------------------------------------------------------ *)

let test_d001_fires () =
  check_bool "ref" true (fires "D001" "let count = ref 0\n");
  check_bool "hashtbl" true (fires "D001" "let tbl = Hashtbl.create 16\n");
  check_bool "array make" true (fires "D001" "let a = Array.make 4 0\n");
  check_bool "array literal" true (fires "D001" "let a = [| 1; 2 |]\n");
  check_bool "buffer" true (fires "D001" "let b = Buffer.create 64\n");
  check_bool "behind let" true
    (fires "D001" "let c = let n = 3 in ref n\n");
  check_bool "mutable record" true
    (fires "D001"
       "type t = { mutable hits : int }\nlet stats = { hits = 0 }\n")

let test_d001_location () =
  match with_code "D001" (findings ~path:"lib/x.ml" "let a = 1\nlet r = ref 0\n")
  with
  | [ f ] ->
      check_int "line" 2 f.Rules.line;
      check_str "file" "lib/x.ml" f.Rules.file;
      check_bool "severity" true (f.Rules.severity = Rules.Error)
  | fs -> Alcotest.failf "expected exactly one D001, got %d" (List.length fs)

let test_d001_not_under_fun () =
  check_bool "inside fun" true (clean "let fresh () = ref 0\n");
  check_bool "inside lazy" true (clean "let l = lazy (ref 0)\n");
  check_bool "immutable record" true
    (clean "type t = { hits : int }\nlet stats = { hits = 0 }\n")

let test_d001_nested_module () =
  check_bool "plain nested struct is still top" true
    (fires "D001" "module M = struct let r = ref 0 end\n");
  check_bool "functor body is per-application" true
    (clean "module F (X : sig end) = struct let r = ref 0 end\n")

let test_d001_sanctioned () =
  let src = "let flag = Atomic.make false\nlet lock = Mutex.create ()\n" in
  check_bool "no finding" true (clean src);
  let cs = cells ~path:"lib/x.ml" src in
  check_int "two cells" 2 (List.length cs);
  check_bool "all safe" true
    (List.for_all (fun c -> c.Rules.c_safe) cs);
  check_bool "kinds" true
    (List.map (fun c -> c.Rules.c_kind) cs = [ "atomic"; "mutex" ])

(* ------------------------------------------------------------------ *)
(* Waivers                                                             *)
(* ------------------------------------------------------------------ *)

let test_waiver_suppresses () =
  let src =
    "let cache = ref [] [@@lalr.allow D001 \"guarded by cache_lock\"]\n"
  in
  let fs = findings ~path:"lib/x.ml" src in
  check_int "no unwaived" 0 (List.length (unwaived fs));
  match with_code "D001" fs with
  | [ f ] ->
      check_bool "reason round-trips" true
        (f.Rules.waiver = Some "guarded by cache_lock")
  | _ -> Alcotest.fail "expected one waived D001"

let test_waiver_inventory_status () =
  let src =
    "let cache = ref [] [@@lalr.allow D001 \"guarded\"]\n\
     let free = Atomic.make 0\n"
  in
  let cs = cells ~path:"lib/x.ml" src in
  check_int "two cells" 2 (List.length cs);
  let cache = List.find (fun c -> c.Rules.c_name = "cache") cs in
  check_bool "waived cell carries reason" true
    (cache.Rules.c_reason = Some "guarded" && not cache.Rules.c_safe)

let test_waiver_file_scope () =
  let src =
    "[@@@lalr.allow D001 \"single-domain tool\"]\n\
     let a = ref 0\nlet b = ref 1\n"
  in
  check_int "both waived" 0 (List.length (unwaived (findings ~path:"lib/x.ml" src)))

let test_waiver_hygiene () =
  (* Empty reason: rejected, and the D001 it would cover stays live. *)
  let fs = findings ~path:"lib/x.ml"
      "let r = ref 0 [@@lalr.allow D001 \"  \"]\n" in
  check_bool "empty reason is D006" true (codes fs = [ "D001"; "D006" ]);
  check_int "nothing waived" 2 (List.length (unwaived fs));
  (* Unknown rule code. *)
  check_bool "unknown code" true
    (fires "D006" "let x = 1 [@@lalr.allow D999 \"whatever\"]\n");
  (* D006 itself cannot be waived. *)
  check_bool "unwaivable D006" true
    (fires "D006" "let x = 1 [@@lalr.allow D006 \"meta\"]\n");
  (* Malformed payload. *)
  check_bool "malformed" true (fires "D006" "let x = 1 [@@lalr.allow]\n")

let test_waiver_stale () =
  let fs = findings ~path:"lib/x.ml"
      "let pure = 1 [@@lalr.allow D001 \"nothing to waive\"]\n" in
  match with_code "D006" fs with
  | [ f ] ->
      check_bool "describes staleness" true
        (f.Rules.waiver = None && is_infix ~affix:"stale" f.Rules.message)
  | _ -> Alcotest.fail "expected one stale-waiver D006"

(* ------------------------------------------------------------------ *)
(* D002 — raising public API                                           *)
(* ------------------------------------------------------------------ *)

let test_d002_exception_without_counterpart () =
  let src = "exception Bad of string\nval f : int -> int\n" in
  check_bool "fires in lib" true (fires ~path:"lib/x/y.mli" "D002" src);
  check_bool "quiet outside lib" true (clean ~path:"bin/y.mli" src)

let test_d002_counterpart_silences () =
  check_bool "option val" true
    (clean ~path:"lib/x/y.mli"
       "exception Bad of string\nval f_opt : int -> int option\n");
  check_bool "result val" true
    (clean ~path:"lib/x/y.mli"
       "exception Bad of string\nval f : int -> (int, string) result\n")

let test_d002_doc_raise () =
  check_bool "@raise doc" true
    (fires ~path:"lib/x/y.mli" "D002"
       "val f : int -> int\n(** Raises [Invalid_argument] on negatives. *)\n")

let test_d002_pins () =
  (* A store.mli that stops documenting the absorption contract. *)
  check_bool "store pin" true
    (fires ~path:"lib/store/store.mli" "D002"
       "type t\nval load : t -> int option\n");
  (* The real store.mli phrasing passes. *)
  check_bool "store pin satisfied" true
    (clean ~path:"lib/store/store.mli"
       "type t\nval load : t -> int option\n(** Never raises. *)\n\
        val save : t -> unit\n(** Never raises. *)\n");
  (* faultpoint.mli must keep arm result-typed and the absorption rule. *)
  check_bool "faultpoint pin" true
    (fires ~path:"lib/guard/faultpoint.mli" "D002"
       "val arm : string -> bool\n");
  check_bool "faultpoint pin satisfied" true
    (clean ~path:"lib/guard/faultpoint.mli"
       "val arm : string -> (unit, string) result\n\
        (** The store absorbs injected faults. *)\n")

(* ------------------------------------------------------------------ *)
(* D003 / D004 / D005                                                  *)
(* ------------------------------------------------------------------ *)

let test_d003 () =
  let src = "let dump v = Marshal.to_string v []\n" in
  check_bool "fires in lib" true (fires ~path:"lib/x/y.ml" "D003" src);
  check_bool "fires in bin" true (fires ~path:"bin/main.ml" "D003" src);
  check_bool "allowed in the store" true
    (clean ~path:"lib/store/store.ml" src)

let test_d004 () =
  check_bool "try with _" true
    (fires "D004" "let f g = try g () with _ -> 0\n");
  check_bool "unre-raised variable" true
    (fires "D004" "let f g = try g () with e -> ignore e; 0\n");
  check_bool "match exception _" true
    (fires "D004" "let f g = match g () with x -> x | exception _ -> 0\n");
  check_bool "specific exception is fine" true
    (clean "let f g = try g () with Not_found -> 0\n");
  check_bool "cleanup and re-raise is fine" true
    (clean "let f g h = try g () with e -> h (); raise e\n");
  check_bool "async re-raise pattern is fine" true
    (clean
       "let f g = match g () with\n\
        | x -> Ok x\n\
        | exception ((Out_of_memory | Stack_overflow) as e) -> raise e\n\
        | exception Not_found -> Error \"missing\"\n")

let test_d005 () =
  let src = "let announce () = print_endline \"done\"\n" in
  check_bool "fires in lib" true (fires ~path:"lib/x/y.ml" "D005" src);
  check_bool "fine in bin" true (clean ~path:"bin/main.ml" src);
  check_bool "formatter output is fine" true
    (clean ~path:"lib/x/y.ml"
       "let announce ppf = Format.fprintf ppf \"done\"\n")

(* ------------------------------------------------------------------ *)
(* Driver pieces                                                       *)
(* ------------------------------------------------------------------ *)

let report_of ~path src =
  let r = run ~path src in
  {
    Driver.findings = r.Analyzer.r_findings;
    cells = r.Analyzer.r_cells;
    failures = [];
  }

let test_exit_codes () =
  check_int "clean is 0" 0 (Driver.exit_code (report_of ~path:"lib/x.ml" "let a = 1\n"));
  check_int "finding is 2" 2
    (Driver.exit_code (report_of ~path:"lib/x.ml" "let r = ref 0\n"));
  check_int "waived finding is 0" 0
    (Driver.exit_code
       (report_of ~path:"lib/x.ml"
          "let r = ref 0 [@@lalr.allow D001 \"test\"]\n"));
  check_int "unreadable is 2" 2
    (Driver.exit_code
       { Driver.findings = []; cells = []; failures = [ ("x.ml", "boom") ] })

let test_json_shape () =
  let json =
    Driver.to_json (report_of ~path:"lib/x.ml" "let r = ref 0\n")
  in
  List.iter
    (fun affix -> check_bool affix true (is_infix ~affix json))
    [
      "\"diagnostics\":"; "\"code\":\"D001\""; "\"severity\":\"error\"";
      "\"file\":\"lib/x.ml\""; "\"line\":1"; "\"waived\":false";
      "\"errors\":1"; "\"waived\":0";
    ]

let test_inventory_shape () =
  let inv =
    Driver.inventory_json
      (report_of ~path:"lib/x.ml"
         "let flag = Atomic.make false\n\
          let r = ref 0 [@@lalr.allow D001 \"test\"]\n")
  in
  List.iter
    (fun affix -> check_bool affix true (is_infix ~affix inv))
    [
      "\"ambient_state\":"; "\"kind\":\"atomic\""; "\"status\":\"safe\"";
      "\"status\":\"waived\""; "\"reason\":\"test\""; "\"cells\":2";
    ]

(* ------------------------------------------------------------------ *)
(* Self-run: the repository must pass its own analyzer                 *)
(* ------------------------------------------------------------------ *)

(* dune runtest runs in _build/default/test; walk up to the source
   root (the directory holding lib/trace/trace.ml is unambiguous). *)
let repo_root () =
  let rec up dir n =
    if n = 0 then None
    else if Sys.file_exists (Filename.concat dir "lib/trace/trace.ml") then
      Some dir
    else up (Filename.dirname dir) (n - 1)
  in
  up (Sys.getcwd ()) 8

let test_self_run () =
  match repo_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let paths =
        List.map (Filename.concat root) [ "lib"; "bin"; "bench" ]
      in
      let r = Driver.scan paths in
      check_int "no unreadable files" 0 (List.length r.Driver.failures);
      (match Driver.unwaived r with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "unwaived finding: %s"
            (Format.asprintf "%a" Rules.pp_finding f));
      check_int "exit code" 0 (Driver.exit_code r);
      (* Every waiver in the tree carries a non-empty reason. *)
      List.iter
        (fun (f : Rules.finding) ->
          match f.Rules.waiver with
          | Some reason ->
              check_bool "non-empty reason" true (String.trim reason <> "")
          | None -> ())
        r.Driver.findings;
      (* The inventory covers the known ambient cells and nothing is
         unwaived. *)
      check_bool "has cells" true (r.Driver.cells <> []);
      List.iter
        (fun (c : Rules.cell) ->
          check_bool
            (Printf.sprintf "%s:%d %s accounted" c.Rules.c_file c.Rules.c_line
               c.Rules.c_name)
            true
            (c.Rules.c_safe || c.Rules.c_reason <> None))
        r.Driver.cells

let () =
  Alcotest.run "lalr_check"
    [
      ( "d001",
        [
          Alcotest.test_case "fires" `Quick test_d001_fires;
          Alcotest.test_case "location" `Quick test_d001_location;
          Alcotest.test_case "not under fun" `Quick test_d001_not_under_fun;
          Alcotest.test_case "nested modules" `Quick test_d001_nested_module;
          Alcotest.test_case "sanctioned primitives" `Quick
            test_d001_sanctioned;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "suppresses and round-trips" `Quick
            test_waiver_suppresses;
          Alcotest.test_case "inventory status" `Quick
            test_waiver_inventory_status;
          Alcotest.test_case "file scope" `Quick test_waiver_file_scope;
          Alcotest.test_case "hygiene" `Quick test_waiver_hygiene;
          Alcotest.test_case "stale" `Quick test_waiver_stale;
        ] );
      ( "d002",
        [
          Alcotest.test_case "exception without counterpart" `Quick
            test_d002_exception_without_counterpart;
          Alcotest.test_case "counterpart silences" `Quick
            test_d002_counterpart_silences;
          Alcotest.test_case "@raise doc" `Quick test_d002_doc_raise;
          Alcotest.test_case "contract pins" `Quick test_d002_pins;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "d003 marshal" `Quick test_d003;
          Alcotest.test_case "d004 catch-all" `Quick test_d004;
          Alcotest.test_case "d005 stdout" `Quick test_d005;
        ] );
      ( "driver",
        [
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "json shape" `Quick test_json_shape;
          Alcotest.test_case "inventory shape" `Quick test_inventory_shape;
        ] );
      ( "self",
        [ Alcotest.test_case "repository passes" `Quick test_self_run ] );
    ]
