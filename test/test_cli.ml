(* End-to-end exit-code contract: lalrgen's five documented codes
   (0 ok / 1 verdict / 2 diagnostics / 3 budget / 4 internal), driven
   through the real binary, plus the batch aggregate rule and the
   --keep-going partial rendering. Deterministic fault injection stands
   in for the failures that are otherwise hard to provoke on demand. *)

let binary =
  lazy
    (List.find Sys.file_exists
       [
         (* dune runtest runs in _build/default/test with the binary
            declared as a dep next door *)
         Filename.concat (Filename.dirname Sys.executable_name) "../bin/lalrgen.exe";
         "../bin/lalrgen.exe";
         "_build/default/bin/lalrgen.exe";
       ])

(* Run the binary, capturing exit code and stdout. stderr is folded
   into stdout so assertions can look at either stream. *)
let run args =
  let cmd =
    Printf.sprintf "%s %s 2>&1"
      (Filename.quote (Lazy.force binary))
      (String.concat " " (List.map Filename.quote args))
  in
  let ic = Unix.open_process_in cmd in
  let out = In_channel.input_all ic in
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n -> Alcotest.failf "killed by signal %d:\n%s" n out
    | Unix.WSTOPPED n -> Alcotest.failf "stopped by signal %d:\n%s" n out
  in
  (code, out)

let check_exit name want (code, out) =
  if code <> want then
    Alcotest.failf "%s: expected exit %d, got %d; output:\n%s" name want code
      out

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains name needle (_, out) =
  if not (contains out needle) then
    Alcotest.failf "%s: output does not mention %S:\n%s" name needle out

let temp_grammar content =
  let path = Filename.temp_file "lalr_cli_" ".cfg" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc content);
  path

let good_grammar () =
  temp_grammar
    {|
%token plus id
%start e
%%
e : e plus id | id ;
|}

(* ------------------------------------------------------------------ *)
(* The five codes                                                      *)
(* ------------------------------------------------------------------ *)

let test_exit_0_success () =
  let r = run [ "classify"; "suite:expr" ] in
  check_exit "clean grammar" 0 r;
  check_contains "clean grammar" "LALR(1)" r

let test_exit_1_verdict () =
  check_exit "not LALR(1)" 1 (run [ "classify"; "suite:lr1-not-lalr" ])

let test_exit_2_diagnostics () =
  check_exit "missing file" 2 (run [ "classify"; "no/such/file.cfg" ]);
  let broken = temp_grammar "%%\n@@nonsense@@\n" in
  check_exit "broken grammar" 2 (run [ "classify"; broken ]);
  Sys.remove broken

let test_exit_3_budget () =
  let g = good_grammar () in
  let r = run [ "classify"; g; "--inject"; "follow:wall" ] in
  Sys.remove g;
  check_exit "injected wall" 3 r;
  check_contains "injected wall" "budget exceeded" r

let test_exit_4_internal () =
  let g = good_grammar () in
  let r = run [ "classify"; g; "--inject"; "la:raise" ] in
  Sys.remove g;
  check_exit "injected raise" 4 r;
  check_contains "injected raise" "internal error" r

let test_reader_corruption_is_diagnostics () =
  let g = good_grammar () in
  let r = run [ "classify"; g; "--inject"; "reader:corrupt" ] in
  Sys.remove g;
  check_exit "injected reader corruption" 2 r

let test_store_injections_are_absorbed () =
  let g = good_grammar () in
  let dir = Filename.temp_file "lalr_cli_cache_" "" in
  Sys.remove dir;
  List.iter
    (fun kind ->
      check_exit
        ("store " ^ kind ^ " absorbed")
        0
        (run [ "exercise"; g; "--cache"; dir; "--inject"; "store:" ^ kind ]))
    [ "raise"; "wall"; "corrupt" ];
  Sys.remove g

(* ------------------------------------------------------------------ *)
(* keep-going                                                          *)
(* ------------------------------------------------------------------ *)

let test_keep_going_partial () =
  let g = good_grammar () in
  let r = run [ "classify"; g; "--keep-going"; "--inject"; "follow:wall" ] in
  Sys.remove g;
  (* same exit code as without --keep-going … *)
  check_exit "keep-going preserves the code" 3 r;
  (* … but the completed prefix is rendered, loudly marked *)
  check_contains "keep-going" "INCOMPLETE" r;
  check_contains "keep-going" "completed stages" r;
  check_contains "keep-going" "relations" r

(* ------------------------------------------------------------------ *)
(* batch                                                               *)
(* ------------------------------------------------------------------ *)

let test_batch_aggregate_and_isolation () =
  let good = good_grammar () in
  let broken = temp_grammar "%%\n@@nonsense@@\n" in
  let r, out =
    run [ "batch"; good; broken; "suite:lr1-not-lalr"; "suite:expr" ]
  in
  Sys.remove good;
  Sys.remove broken;
  (* max(0, 2, 1, 0) — and the jobs after the failing one still ran *)
  check_exit "aggregate is the max" 2 (r, out);
  let json_lines =
    String.split_on_char '\n' out
    |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
  in
  Alcotest.(check int) "one JSON line per job" 4 (List.length json_lines);
  check_contains "good job" "\"status\":\"ok\"" (r, out);
  check_contains "broken job" "\"status\":\"diagnostics\"" (r, out);
  check_contains "verdict job" "\"status\":\"verdict\"" (r, out)

let test_batch_retries_internal_once () =
  (* [la:raise@2] fires on the second forcing of [la] — the second
     job's first attempt. Its retry recomputes cleanly, so the batch
     reports the fault as retried and the job lands on its verdict. *)
  let r, out =
    run [ "batch"; "suite:expr"; "suite:expr"; "--inject"; "la:raise@2" ]
  in
  check_exit "retried to success" 0 (r, out);
  check_contains "retry recorded" "\"retries\":1" (r, out)

let test_batch_all_clean () =
  check_exit "all clean" 0 (run [ "batch"; "suite:expr"; "suite:lr0" ])

let test_batch_line_schema () =
  (* The always-present members of the documented line schema (README
     "Batch mode"), plus the success-only ones on a clean job. *)
  let r = run [ "batch"; "suite:expr" ] in
  check_exit "clean job" 0 r;
  List.iter
    (fun needle -> check_contains "schema member" needle r)
    [
      "\"file\":\"suite:expr\""; "\"exit\":0"; "\"status\":\"ok\"";
      "\"retries\":0"; "\"wall_ms\":"; "\"lalr1\":true";
      "\"lr0_states\":13"; "\"stages\":{"; "\"lr0\":";
    ]

(* ------------------------------------------------------------------ *)
(* tracing                                                             *)
(* ------------------------------------------------------------------ *)

let temp_path suffix =
  let p = Filename.temp_file "lalr_cli_trace_" suffix in
  Sys.remove p;
  p

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_trace_chrome_sink () =
  let out = temp_path ".json" in
  let r = run [ "exercise"; "suite:expr"; "--trace"; out ] in
  check_exit "traced exercise" 0 r;
  let t = read_file out in
  Sys.remove out;
  List.iter
    (fun needle ->
      if not (contains t needle) then
        Alcotest.failf "chrome trace lacks %S:\n%s" needle t)
    [
      "\"traceEvents\":["; "\"displayTimeUnit\":\"ms\"";
      (* engine spans and the end-of-run metrics instant (no reader
         span: suite grammars are built-in, not parsed) *)
      "\"name\":\"engine.lr0\""; "\"name\":\"engine.classification\"";
      "\"name\":\"metrics\""; "\"lr0.states\":13";
    ]

let test_trace_explicit_format () =
  (* FILE:FORMAT overrides the extension: a .json path forced to the
     flat metrics sink. *)
  let out = temp_path ".json" in
  let r = run [ "classify"; "suite:expr"; "--trace"; out ^ ":metrics" ] in
  check_exit "traced classify" 0 r;
  let t = read_file out in
  Sys.remove out;
  if contains t "traceEvents" then
    Alcotest.failf "expected flat metrics, got chrome JSON:\n%s" t;
  List.iter
    (fun needle ->
      if not (contains t needle) then
        Alcotest.failf "metrics sink lacks %S:\n%s" needle t)
    [ "lr0.states 13"; "lalr.includes.edges 10" ]

let test_stats_document () =
  let r = run [ "stats"; "suite:expr" ] in
  check_exit "stats" 0 r;
  (* Structural members next to the gauges recorded on the other code
     path — the consistency CI checks with jq, pinned here on one
     grammar. *)
  List.iter
    (fun needle -> check_contains "stats member" needle r)
    [
      "\"lr0\": {\"states\":13"; "\"reads_edges\":0"; "\"includes_edges\":10";
      "\"lalr1\": true"; "\"lalr.includes.edges\":10"; "\"lr0.states\":13";
    ]

(* ------------------------------------------------------------------ *)
(* call: connection failures name the endpoint and the failure mode    *)
(* ------------------------------------------------------------------ *)

let test_call_no_such_socket () =
  let missing = "/nonexistent/lalr_cli_no_daemon/daemon.sock" in
  let r =
    run [ "call"; "--socket"; missing; {|{"id":"x","kind":"health"}|} ]
  in
  check_exit "call against a missing socket" 4 r;
  check_contains "failure mode named" "no such socket" r;
  check_contains "endpoint named" missing r

let test_call_connection_refused () =
  (* A socket file that exists but has no listener behind it: bind
     without listen yields ECONNREFUSED, the "daemon gone, stale
     socket" shape — the message must differ from "no such socket". *)
  let stale = Filename.temp_file "lalr_cli_stale_" ".sock" in
  Sys.remove stale;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove stale with Sys_error _ -> ())
    (fun () ->
      Unix.bind fd (Unix.ADDR_UNIX stale);
      let r =
        run [ "call"; "--socket"; stale; {|{"id":"x","kind":"health"}|} ]
      in
      check_exit "call against a dead socket" 4 r;
      check_contains "failure mode named" "connection refused" r;
      check_contains "endpoint named" stale r;
      let _, out = r in
      if contains out "no such socket" then
        Alcotest.failf "refused must not read as missing:\n%s" out)

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "0: success" `Quick test_exit_0_success;
          Alcotest.test_case "1: verdict" `Quick test_exit_1_verdict;
          Alcotest.test_case "2: diagnostics" `Quick test_exit_2_diagnostics;
          Alcotest.test_case "3: budget" `Quick test_exit_3_budget;
          Alcotest.test_case "4: internal" `Quick test_exit_4_internal;
          Alcotest.test_case "reader corruption -> 2" `Quick
            test_reader_corruption_is_diagnostics;
          Alcotest.test_case "store injections -> 0" `Quick
            test_store_injections_are_absorbed;
        ] );
      ( "keep-going",
        [ Alcotest.test_case "partial render" `Quick test_keep_going_partial ] );
      ( "batch",
        [
          Alcotest.test_case "aggregate and isolation" `Quick
            test_batch_aggregate_and_isolation;
          Alcotest.test_case "internal fault retried once" `Quick
            test_batch_retries_internal_once;
          Alcotest.test_case "all clean" `Quick test_batch_all_clean;
          Alcotest.test_case "line schema" `Quick test_batch_line_schema;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "chrome sink" `Quick test_trace_chrome_sink;
          Alcotest.test_case "explicit format" `Quick
            test_trace_explicit_format;
          Alcotest.test_case "stats document" `Quick test_stats_document;
        ] );
      ( "call",
        [
          Alcotest.test_case "no such socket" `Quick test_call_no_such_socket;
          Alcotest.test_case "connection refused" `Quick
            test_call_connection_refused;
        ] );
    ]
