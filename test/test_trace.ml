(* The tracing layer against its two contracts: (1) armed, a scripted
   session renders byte-identically in all three sinks under an
   injected clock; (2) disarmed, probes emit nothing and observable
   output elsewhere (Engine.pp_stats) is unchanged by the layer's
   existence. *)

module Trace = Lalr_trace.Trace
module Reader = Lalr_grammar.Reader
module Engine = Lalr_engine.Engine

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* A fake clock ticking 1 ms per read: session t0 consumes the first
   tick, so the first event lands at exactly 1000 µs. *)
let fake_clock () =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := !t +. 0.001;
    v

(* The scripted session every golden below renders: nested spans with
   attributes, counters, a gauge, a small histogram, an instant. *)
let scripted () =
  let s = Trace.start ~clock:(fake_clock ()) () in
  Trace.with_span "outer" (fun () ->
      Trace.count "c";
      Trace.with_span
        ~attrs:(fun () -> [ ("k", Trace.Int 7); ("s", Trace.Str "v\"x") ])
        "inner"
        (fun () ->
          Trace.gauge "g" 2.5;
          Trace.observe "h" 3;
          Trace.observe "h" 3;
          Trace.observe "h" 7);
      Trace.instant "i";
      Trace.count ~n:2 "c");
  Trace.finish s;
  s

(* ------------------------------------------------------------------ *)
(* Golden sinks                                                       *)
(* ------------------------------------------------------------------ *)

let golden_chrome =
  {|{"traceEvents":[
{"name":"outer","ph":"B","ts":1000.000,"pid":1,"tid":1},
{"name":"c","ph":"C","ts":2000.000,"pid":1,"tid":1,"args":{"value":1}},
{"name":"inner","ph":"B","ts":3000.000,"pid":1,"tid":1,"args":{"k":7,"s":"v\"x"}},
{"name":"inner","ph":"E","ts":4000.000,"pid":1,"tid":1},
{"name":"i","ph":"i","s":"t","ts":5000.000,"pid":1,"tid":1},
{"name":"c","ph":"C","ts":6000.000,"pid":1,"tid":1,"args":{"value":3}},
{"name":"outer","ph":"E","ts":7000.000,"pid":1,"tid":1},
{"name":"metrics","ph":"i","s":"g","ts":7000.000,"pid":1,"tid":1,"args":{"c":3,"g":2.5,"h":{"3":2,"7":1}}}
],"displayTimeUnit":"ms"}
|}

let golden_jsonl =
  {|{"ev":"begin","name":"outer","ts_us":1000.000,"depth":0}
{"ev":"count","name":"c","ts_us":2000.000,"total":1}
{"ev":"begin","name":"inner","ts_us":3000.000,"depth":1,"attrs":{"k":7,"s":"v\"x"}}
{"ev":"end","name":"inner","ts_us":4000.000,"depth":1}
{"ev":"instant","name":"i","ts_us":5000.000,"depth":1}
{"ev":"count","name":"c","ts_us":6000.000,"total":3}
{"ev":"end","name":"outer","ts_us":7000.000,"depth":0}
{"ev":"metric","name":"c","kind":"counter","value":3}
{"ev":"metric","name":"g","kind":"gauge","value":2.5}
{"ev":"metric","name":"h","kind":"histogram","value":{"3":2,"7":1}}
|}

let golden_metrics = "c 3\ng 2.5\nh[3] 2\nh[7] 1\n"

let golden_metrics_json =
  {|{"counters":{"c":3},"gauges":{"g":2.5},"histograms":{"h":{"3":2,"7":1}}}|}

let test_golden_chrome () =
  check_str "chrome sink" golden_chrome
    (Trace.to_string (scripted ()) Trace.Chrome)

let test_golden_jsonl () =
  check_str "jsonl sink" golden_jsonl
    (Trace.to_string (scripted ()) Trace.Jsonl)

let test_golden_metrics () =
  check_str "metrics sink" golden_metrics
    (Trace.to_string (scripted ()) Trace.Metrics)

let test_metrics_json () =
  check_str "metrics json" golden_metrics_json
    (Trace.metrics_json (scripted ()))

let test_metric_readback () =
  let s = scripted () in
  Alcotest.(check int) "counter total" 3 (Trace.find_counter s "c");
  Alcotest.(check int) "unknown counter is 0" 0 (Trace.find_counter s "nope");
  Alcotest.(check int) "event count" 7 (Trace.n_events s);
  check "histogram collected" true
    (List.mem_assoc "h" (Trace.metrics s)
    && Trace.metrics s |> List.assoc "h" = Trace.Hist [ (3, 2); (7, 1) ])

(* A histogram keyed by raw observed values is an unbounded-cardinality
   trap for continuous measurements: past [hist_cap] distinct values,
   new ones collapse into one overflow bucket (rendered "overflow"),
   while already-present values keep their exact bucket. *)
let test_histogram_cap () =
  let s = Trace.start ~clock:(fake_clock ()) () in
  for v = 0 to Trace.hist_cap - 1 do
    Trace.observe "cap" v
  done;
  Trace.observe "cap" 100001;
  Trace.observe "cap" 100002;
  Trace.observe "cap" 0;
  Trace.finish s;
  (match List.assoc "cap" (Trace.metrics s) with
  | Trace.Hist buckets ->
      Alcotest.(check int) "value buckets capped (+1 overflow)"
        (Trace.hist_cap + 1) (List.length buckets);
      Alcotest.(check int) "novel values collapsed" 2
        (List.assoc Trace.overflow_bucket buckets);
      Alcotest.(check int) "existing bucket still grows" 2
        (List.assoc 0 buckets)
  | _ -> Alcotest.fail "cap histogram missing");
  let rendered = Trace.to_string s Trace.Metrics in
  check "overflow bucket renders symbolically" true
    (let needle = "cap[overflow] 2" in
     let n = String.length needle and l = String.length rendered in
     let rec scan i = i + n <= l && (String.sub rendered i n = needle || scan (i + 1)) in
     scan 0)

(* ------------------------------------------------------------------ *)
(* Span semantics                                                     *)
(* ------------------------------------------------------------------ *)

let test_span_closes_on_raise () =
  let s = Trace.start ~clock:(fake_clock ()) () in
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Trace.finish s;
  (* Begin + End, balanced, despite the raise. *)
  Alcotest.(check int) "balanced events" 2 (Trace.n_events s)

let test_finish_closes_open_spans () =
  let s = Trace.start ~clock:(fake_clock ()) () in
  (* Simulate a process exiting mid-span: finish must balance it so
     the Chrome rendering stays loadable. *)
  let in_span = ref false in
  (try
     Trace.with_span "outer" (fun () ->
         in_span := true;
         Trace.finish s;
         raise Exit)
   with Exit -> ());
  check "span entered" true !in_span;
  Alcotest.(check int) "begin balanced by forced end" 2 (Trace.n_events s)

(* ------------------------------------------------------------------ *)
(* Disarmed behaviour                                                 *)
(* ------------------------------------------------------------------ *)

let test_disabled_emits_nothing () =
  check "no ambient session" true (Trace.active () = None);
  check "disabled" false (Trace.enabled ());
  (* Probes are no-ops (and must not evaluate attribute thunks). *)
  let thunk_ran = ref false in
  let v =
    Trace.with_span
      ~attrs:(fun () ->
        thunk_ran := true;
        [])
      "dead"
      (fun () -> 42)
  in
  Trace.count "dead";
  Trace.gauge "dead" 1.0;
  Trace.observe "dead" 1;
  Trace.instant "dead";
  Alcotest.(check int) "value passes through" 42 v;
  check "attr thunk not evaluated" false !thunk_ran;
  (* A session armed afterwards has seen none of it. *)
  let s = Trace.start ~clock:(fake_clock ()) () in
  Trace.finish s;
  Alcotest.(check int) "nothing recorded" 0 (Trace.n_events s);
  check "no metrics" true (Trace.metrics s = [])

let expr_src =
  {|
%token plus times lparen rparen id
%start e
%%
e : e plus t | t ;
t : t times f | f ;
f : lparen e rparen | id ;
|}

let render_pp_stats () =
  let g = Reader.of_string ~name:"trace-test" expr_src in
  let e = Engine.create g in
  ignore (Engine.tables e);
  ignore (Engine.classification ~with_lr1:false e);
  Format.asprintf "%a" Engine.pp_stats e

(* Wall times vary run to run; digits are scrubbed so the assertion
   pins the exact layout (stage set, order, column widths) instead. *)
let scrub s = String.map (fun c -> if c >= '0' && c <= '9' then '#' else c) s

let golden_pp_stats_shape =
  "engine timings for <trace-test>:\n\
  \  stage                      wall   miss   hit\n\
  \  analysis                #.### ms      #     #\n\
  \  lr#                     #.### ms      #    ##\n\
  \  relations               #.### ms      #     #\n\
  \  follow                  #.### ms      #     #\n\
  \  la                      #.### ms      #     #\n\
  \  slr                     #.### ms      #     #\n\
  \  nqlalr                  #.### ms      #     #\n\
  \  tables                  #.### ms      #     #\n\
  \  slr_tables              #.### ms      #     #\n\
  \  nqlalr_tables           #.### ms      #     #\n\
  \  classification          #.### ms      #     #\n\
  \  total                   #.### ms"

let test_disabled_pp_stats_unchanged () =
  (* The --timings rendering with tracing disarmed: the pre-PR format,
     down to the column widths — the layer's existence is invisible. *)
  check "disarmed" false (Trace.enabled ());
  check_str "pp_stats shape (disarmed)" golden_pp_stats_shape
    (scrub (render_pp_stats ()));
  (* And arming a session must not change a byte of it either. *)
  let s = Trace.start ~clock:(fake_clock ()) () in
  let armed = scrub (render_pp_stats ()) in
  Trace.finish s;
  check_str "pp_stats shape (armed)" golden_pp_stats_shape armed

(* ------------------------------------------------------------------ *)
(* Format plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let test_format_names () =
  check "chrome" true (Trace.format_of_name "chrome" = Some Trace.Chrome);
  check "jsonl" true (Trace.format_of_name "jsonl" = Some Trace.Jsonl);
  check "metrics" true (Trace.format_of_name "metrics" = Some Trace.Metrics);
  check "unknown" true (Trace.format_of_name "xml" = None);
  check "infer .json" true (Trace.infer_format "t.json" = Trace.Chrome);
  check "infer .jsonl" true (Trace.infer_format "t.jsonl" = Trace.Jsonl);
  check "infer .txt" true (Trace.infer_format "t.txt" = Trace.Metrics);
  check "infer .metrics" true
    (Trace.infer_format "t.metrics" = Trace.Metrics);
  List.iter
    (fun f -> check (Trace.format_name f ^ " round-trips") true
        (Trace.format_of_name (Trace.format_name f) = Some f))
    [ Trace.Chrome; Trace.Jsonl; Trace.Metrics ]

let test_json_escape () =
  check_str "escaping" {|a\"b\\c\n\t\u0001|}
    (Trace.json_escape "a\"b\\c\n\t\x01")

let () =
  Alcotest.run "trace"
    [
      ( "golden",
        [
          Alcotest.test_case "chrome sink" `Quick test_golden_chrome;
          Alcotest.test_case "jsonl sink" `Quick test_golden_jsonl;
          Alcotest.test_case "metrics sink" `Quick test_golden_metrics;
          Alcotest.test_case "metrics json" `Quick test_metrics_json;
          Alcotest.test_case "metric readback" `Quick test_metric_readback;
          Alcotest.test_case "histogram cardinality cap" `Quick
            test_histogram_cap;
        ] );
      ( "spans",
        [
          Alcotest.test_case "closes on raise" `Quick test_span_closes_on_raise;
          Alcotest.test_case "finish closes open spans" `Quick
            test_finish_closes_open_spans;
        ] );
      ( "disarmed",
        [
          Alcotest.test_case "emits nothing" `Quick test_disabled_emits_nothing;
          Alcotest.test_case "pp_stats unchanged" `Quick
            test_disabled_pp_stats_unchanged;
        ] );
      ( "formats",
        [
          Alcotest.test_case "names and inference" `Quick test_format_names;
          Alcotest.test_case "json escaping" `Quick test_json_escape;
        ] );
    ]
