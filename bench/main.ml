(* Benchmark harness — regenerates every timing table and figure of the
   evaluation (see DESIGN.md §3 and EXPERIMENTS.md):

     T1  LR(0) automaton construction cost per language grammar
     T2  relation construction + Digraph solve (Lalr.compute)
     T3  full pipeline: grammar → look-aheads → ACTION/GOTO tables
     T4  method shoot-out: DeRemer–Pennello vs yacc propagation vs
         canonical-LR(1)+merge vs SLR FOLLOW       (the headline table)
     F1  scaling over the synthetic grammar families (time vs |G|)
     F2  speedup of DP over the baselines as size grows
     F3  the Digraph algorithm vs naive fixpoint iteration
     RT  parser-runtime throughput (tokens/s) as a sanity check that
         tables from the exact method drive the parser at full speed

   Each experiment is one Bechamel Test.make (or a Test.make per
   grammar×method cell); after the statistics, the paper-shaped tables
   T1–T5 are printed via Lalr_bench_tables.

   Run with:  dune exec bench/main.exe            (everything)
              dune exec bench/main.exe -- t4 f1   (a subset) *)

open Bechamel
open Toolkit

module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Slr = Lalr_baselines.Slr
module Lr1 = Lalr_baselines.Lr1
module Propagation = Lalr_baselines.Propagation
module Tables = Lalr_tables.Tables
module Driver = Lalr_runtime.Driver
module Sentence = Lalr_runtime.Sentence
module Registry = Lalr_suite.Registry
module Digraph = Lalr_sets.Digraph
module E = Lalr_bench_tables.Experiments
module Engine = Lalr_engine.Engine
module Store = Lalr_store.Store

(* Prebuilt artifacts for benchmark setup come from the shared
   per-language engines (one pipeline per grammar per process); the
   timed thunks themselves stay raw computations. *)
let languages =
  lazy
    (List.map (fun (name, eng) -> (name, Engine.grammar eng)) (E.engines ()))

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let run_tests ~quota_s tests =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"" tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

let estimate results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols -> (
      match Analyze.OLS.estimates ols with
      | Some [ e ] -> e (* nanoseconds per run *)
      | _ -> nan)

let pp_ns ppf ns =
  if Float.is_nan ns then Format.fprintf ppf "n/a"
  else if ns > 1e9 then Format.fprintf ppf "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Format.fprintf ppf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Format.fprintf ppf "%.2f µs" (ns /. 1e3)
  else Format.fprintf ppf "%.0f ns" ns

let section title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* T1 — LR(0) construction                                            *)
(* ------------------------------------------------------------------ *)

let bench_t1 () =
  section "bench T1 — LR(0) automaton construction";
  let tests =
    List.map
      (fun (name, g) ->
        Test.make ~name (Staged.stage (fun () -> Lr0.build g)))
      (Lazy.force languages)
  in
  let results = run_tests ~quota_s:0.5 tests in
  List.iter
    (fun (name, eng) ->
      Format.printf "%-14s %a   (%d states)@." name pp_ns
        (estimate results ("/" ^ name))
        (Lr0.n_states (Engine.lr0 eng)))
    (E.engines ())

(* ------------------------------------------------------------------ *)
(* T2 — relations + Digraph                                           *)
(* ------------------------------------------------------------------ *)

let bench_t2 () =
  section "bench T2 — relations + Digraph solve (Lalr.compute)";
  let prebuilt =
    List.map (fun (name, eng) -> (name, Engine.lr0 eng)) (E.engines ())
  in
  let tests =
    List.map
      (fun (name, a) ->
        Test.make ~name (Staged.stage (fun () -> Lalr.compute a)))
      prebuilt
  in
  let results = run_tests ~quota_s:0.5 tests in
  List.iter
    (fun (name, eng) ->
      let s = Lalr.stats (Engine.lalr eng) in
      Format.printf "%-14s %a   (%d nt transitions, %d+%d edges)@." name
        pp_ns
        (estimate results ("/" ^ name))
        s.Lalr.n_nt_transitions s.Lalr.reads_edges s.Lalr.includes_edges)
    (E.engines ())

(* ------------------------------------------------------------------ *)
(* T3 — full pipeline to tables                                       *)
(* ------------------------------------------------------------------ *)

let bench_t3 () =
  section "bench T3 — grammar → look-aheads → ACTION/GOTO tables";
  let pipeline g () =
    let a = Lr0.build g in
    let t = Lalr.compute a in
    Tables.build ~lookahead:(Lalr.lookahead t) a
  in
  let tests =
    List.map
      (fun (name, g) -> Test.make ~name (Staged.stage (pipeline g)))
      (Lazy.force languages)
  in
  let results = run_tests ~quota_s:0.5 tests in
  List.iter
    (fun (name, _) ->
      Format.printf "%-14s %a@." name pp_ns (estimate results ("/" ^ name)))
    (Lazy.force languages)

(* ------------------------------------------------------------------ *)
(* T4 — the method shoot-out                                          *)
(* ------------------------------------------------------------------ *)

let methods a g =
  [
    ("dp", fun () -> ignore (Sys.opaque_identity (Lalr.compute a)));
    ("prop", fun () -> ignore (Sys.opaque_identity (Propagation.compute a)));
    ( "merge",
      fun () ->
        ignore (Sys.opaque_identity (Lr1.merged_lookaheads (Lr1.build g) a)) );
    ("slr", fun () -> ignore (Sys.opaque_identity (Slr.compute a)));
  ]

let bench_t4 () =
  section "bench T4 — look-ahead methods (the paper's headline comparison)";
  let prebuilt =
    List.map
      (fun (name, eng) -> (name, Engine.grammar eng, Engine.lr0 eng))
      (E.engines ())
  in
  let tests =
    List.concat_map
      (fun (name, g, a) ->
        List.map
          (fun (m, f) -> Test.make ~name:(name ^ ":" ^ m) (Staged.stage f))
          (methods a g))
      prebuilt
  in
  let results = run_tests ~quota_s:0.5 tests in
  Format.printf "%-14s %12s %12s %12s %12s %9s %9s@." "grammar" "DP" "prop"
    "LR1+merge" "SLR" "prop/DP" "merge/DP";
  List.iter
    (fun (name, _, _) ->
      let e m = estimate results ("/" ^ name ^ ":" ^ m) in
      let dp = e "dp" and prop = e "prop" in
      let merge = e "merge" and slr = e "slr" in
      Format.printf "%-14s %12s %12s %12s %12s %8.1fx %8.1fx@." name
        (Format.asprintf "%a" pp_ns dp)
        (Format.asprintf "%a" pp_ns prop)
        (Format.asprintf "%a" pp_ns merge)
        (Format.asprintf "%a" pp_ns slr)
        (prop /. dp) (merge /. dp))
    prebuilt

(* ------------------------------------------------------------------ *)
(* F1/F2 — scaling and speedup over the synthetic families            *)
(* ------------------------------------------------------------------ *)

let bench_f1_f2 () =
  section "bench F1 — scaling (time vs grammar size) / F2 — speedup";
  List.iter
    (fun (family_name, points) ->
      Format.printf "@.family %s:@." family_name;
      Format.printf "%6s %6s %12s %12s %12s %9s %9s@." "n" "|G|" "DP" "prop"
        "LR1+merge" "prop/DP" "merge/DP";
      List.iter
        (fun (n, size, times) ->
          let dp = times.(0) and prop = times.(1) and merge = times.(2) in
          Format.printf "%6d %6d %12s %12s %12s %8.1fx %8.1fx@." n size
            (Format.asprintf "%a" pp_ns (dp *. 1e9))
            (Format.asprintf "%a" pp_ns (prop *. 1e9))
            (Format.asprintf "%a" pp_ns (merge *. 1e9))
            (prop /. dp) (merge /. dp))
        points)
    (E.f1_series ())

(* ------------------------------------------------------------------ *)
(* F3 — Digraph vs naive fixpoint                                     *)
(* ------------------------------------------------------------------ *)

let bench_f3 () =
  section "bench F3 — Digraph traversal vs naive fixpoint iteration";
  (* The Follow computation (includes relation) of each language
     grammar, solved both ways. *)
  let cases =
    List.map
      (fun (name, eng) ->
        let a = Engine.lr0 eng in
        let t = Engine.lalr eng in
        let nx = Lr0.n_nt_transitions a in
        let successors x = Lalr.includes t x in
        let init x = Lalr.read t x in
        (name, nx, successors, init))
      (E.engines ())
  in
  let tests =
    List.concat_map
      (fun (name, nx, successors, init) ->
        [
          Test.make ~name:(name ^ ":digraph")
            (Staged.stage (fun () ->
                 Digraph.ForBitset.run ~n:nx ~successors ~init));
          Test.make ~name:(name ^ ":naive")
            (Staged.stage (fun () ->
                 Digraph.naive_fixpoint ~n:nx ~successors ~init));
        ])
      cases
  in
  let results = run_tests ~quota_s:0.5 tests in
  Format.printf "%-14s %12s %12s %9s@." "grammar" "digraph" "naive" "naive/dg";
  List.iter
    (fun (name, _, _, _) ->
      let dg = estimate results ("/" ^ name ^ ":digraph") in
      let naive = estimate results ("/" ^ name ^ ":naive") in
      Format.printf "%-14s %12s %12s %8.1fx@." name
        (Format.asprintf "%a" pp_ns dg)
        (Format.asprintf "%a" pp_ns naive)
        (naive /. dg))
    cases

(* ------------------------------------------------------------------ *)
(* F4 — LALR(k) fixpoint vs canonical LR(k) (the §8 extension)        *)
(* ------------------------------------------------------------------ *)

let bench_f4 () =
  section
    "bench F4 — LALR(k) relational fixpoint vs canonical LR(k) merge (§8)";
  (* Small/medium grammars only: canonical LR(k) explodes, which is the
     result being demonstrated. *)
  let cases =
    List.map
      (fun name ->
        let g = Lazy.force (Registry.find name).grammar in
        (name, g, Lalr_automaton.Lr0.build g))
      [ "expr"; "expr-ll"; "assign"; "json"; "lalr2" ]
  in
  let tests =
    List.concat_map
      (fun (name, g, a) ->
        List.concat_map
          (fun kk ->
            [
              Test.make
                ~name:(Printf.sprintf "%s:k%d:fix" name kk)
                (Staged.stage (fun () ->
                     Lalr_core.Lalr_k.compute ~k:kk a));
              Test.make
                ~name:(Printf.sprintf "%s:k%d:can" name kk)
                (Staged.stage (fun () ->
                     Lalr_baselines.Lrk.merged_lookaheads
                       (Lalr_baselines.Lrk.build ~k:kk g)
                       a));
            ])
          [ 1; 2; 3 ])
      cases
  in
  let results = run_tests ~quota_s:0.3 tests in
  Format.printf "%-10s %4s %12s %12s %9s@." "grammar" "k" "fixpoint"
    "canonical" "can/fix";
  List.iter
    (fun (name, _, _) ->
      List.iter
        (fun kk ->
          let f = estimate results (Printf.sprintf "/%s:k%d:fix" name kk) in
          let c = estimate results (Printf.sprintf "/%s:k%d:can" name kk) in
          Format.printf "%-10s %4d %12s %12s %8.1fx@." name kk
            (Format.asprintf "%a" pp_ns f)
            (Format.asprintf "%a" pp_ns c)
            (c /. f))
        [ 1; 2; 3 ])
    cases

(* ------------------------------------------------------------------ *)
(* RT — parser throughput                                             *)
(* ------------------------------------------------------------------ *)

let bench_rt () =
  section "bench RT — parser throughput on generated sentences";
  let cases =
    List.filter_map
      (fun (name, eng) ->
        let g = Engine.grammar eng in
        let t = Engine.lalr eng in
        if not (Lalr.is_lalr1 t) then None
        else begin
          let tbl = Engine.tables eng in
          let prep = Sentence.prepare g in
          let rng = Random.State.make [| 17 |] in
          let sentences =
            List.init 50 (fun _ -> Sentence.generate ~max_depth:12 prep rng)
          in
          let total_tokens =
            List.fold_left (fun acc s -> acc + List.length s) 0 sentences
          in
          Some (name, tbl, sentences, total_tokens)
        end)
      (E.engines ())
  in
  let tests =
    List.map
      (fun (name, tbl, sentences, _) ->
        Test.make ~name
          (Staged.stage (fun () ->
               List.iter
                 (fun s -> ignore (Sys.opaque_identity (Driver.accepts tbl s)))
                 sentences)))
      cases
  in
  let results = run_tests ~quota_s:0.5 tests in
  List.iter
    (fun (name, _, _, total_tokens) ->
      let ns = estimate results ("/" ^ name) in
      Format.printf "%-14s %a for %d tokens  (%.1f M tokens/s)@." name pp_ns
        ns total_tokens
        (float_of_int total_tokens /. ns *. 1e3))
    cases

(* ------------------------------------------------------------------ *)
(* ST — the artifact store: cold vs warm cache                        *)
(* ------------------------------------------------------------------ *)

(* Manual best-of-N timing rather than Bechamel: a cold-cache run
   needs a fresh directory per repetition, and the interesting numbers
   (store overhead on a cold run, speedup on a warm one) are
   macro-level wall times, not nanosecond fits. The measured rows are
   also written to BENCH_pr4.json — the start of the perf trajectory
   tracking store overhead and hit-rate benefit per PR. *)
let bench_store () =
  section "bench ST — artifact store: cold vs warm cache";
  let tmp_root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lalr_bench_store_%d" (Unix.getpid ()))
  in
  let counter = ref 0 in
  let pipeline e =
    ignore (Engine.tables e);
    ignore (Engine.classification ~with_lr1:false e)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let reps = 5 in
  let best_of f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t = time f in
      if t < !best then best := t
    done;
    !best
  in
  let rows =
    List.map
      (fun (name, eng) ->
        let g = Engine.grammar eng in
        let no_store =
          best_of (fun () -> pipeline (Engine.create g))
        in
        let cold =
          best_of (fun () ->
              incr counter;
              let store =
                Store.create
                  ~dir:(Printf.sprintf "%s/%s-cold-%d" tmp_root name !counter)
              in
              let e = Engine.create ~store g in
              pipeline e;
              (* Forced: this arm measures the store itself, so the
                 skip-small policy must not dodge the write. *)
              Engine.persist ~force:true e)
        in
        let warm_store =
          Store.create ~dir:(Printf.sprintf "%s/%s-warm" tmp_root name)
        in
        (let e = Engine.create ~store:warm_store g in
         pipeline e;
         Engine.persist ~force:true e);
        let warm =
          best_of (fun () -> pipeline (Engine.create ~store:warm_store g))
        in
        Format.printf
          "%-14s no-store %10s   cold %10s   warm %10s   (%5.1fx warm)@." name
          (Format.asprintf "%a" pp_ns (no_store *. 1e9))
          (Format.asprintf "%a" pp_ns (cold *. 1e9))
          (Format.asprintf "%a" pp_ns (warm *. 1e9))
          (no_store /. warm);
        (name, no_store, cold, warm))
      (E.engines ())
  in
  let oc = open_out "BENCH_pr4.json" in
  Printf.fprintf oc
    "{\n\
    \  \"pr\": 4,\n\
    \  \"experiment\": \"artifact-store-cold-vs-warm\",\n\
    \  \"pipeline\": \"tables + classification (no lr1)\",\n\
    \  \"unit\": \"seconds, best of %d\",\n\
    \  \"grammars\": [\n"
    reps;
  let n = List.length rows in
  List.iteri
    (fun i (name, no_store, cold, warm) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"no_store_s\": %.9f, \"cold_cache_s\": %.9f, \
         \"warm_cache_s\": %.9f, \"warm_speedup\": %.2f}%s\n"
        name no_store cold warm (no_store /. warm)
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Format.printf "@.wrote BENCH_pr4.json (%d grammars)@." n

(* ------------------------------------------------------------------ *)
(* TR — tracing layer: disarmed vs armed overhead                     *)
(* ------------------------------------------------------------------ *)

module Trace = Lalr_trace.Trace

(* Like bench_store, manual best-of-N wall timing: the claim under
   test is macro-level ("the layer costs one ref read when disarmed,
   and arming it stays cheap"), so each row runs the full pipeline
   from a fresh engine with tracing off and on and also refreshes the
   store cold/warm columns under the armed session. The rows go to
   BENCH_pr5.json, continuing the perf trajectory started by
   BENCH_pr4.json. *)
let bench_trace () =
  section "bench TR — tracing: disarmed vs armed pipeline";
  let tmp_root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lalr_bench_trace_%d" (Unix.getpid ()))
  in
  let pipeline e =
    ignore (Engine.tables e);
    ignore (Engine.classification ~with_lr1:false e)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let reps = 5 in
  let best_of f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t = time f in
      if t < !best then best := t
    done;
    !best
  in
  let armed_run f =
    let s = Trace.start () in
    let r = time f in
    Trace.finish s;
    (r, Trace.n_events s)
  in
  let best_armed f =
    let best = ref infinity and events = ref 0 in
    for _ = 1 to reps do
      let t, n = armed_run f in
      if t < !best then begin
        best := t;
        events := n
      end
    done;
    (!best, !events)
  in
  let rows =
    List.map
      (fun (name, eng) ->
        let g = Engine.grammar eng in
        let disarmed = best_of (fun () -> pipeline (Engine.create g)) in
        let armed, events =
          best_armed (fun () -> pipeline (Engine.create g))
        in
        let warm_store =
          Store.create ~dir:(Printf.sprintf "%s/%s-warm" tmp_root name)
        in
        (let e = Engine.create ~store:warm_store g in
         pipeline e;
         Engine.persist ~force:true e);
        let warm =
          best_of (fun () -> pipeline (Engine.create ~store:warm_store g))
        in
        Format.printf
          "%-14s disarmed %10s   armed %10s   (%5.2fx, %3d events)   warm \
           %10s@."
          name
          (Format.asprintf "%a" pp_ns (disarmed *. 1e9))
          (Format.asprintf "%a" pp_ns (armed *. 1e9))
          (armed /. disarmed) events
          (Format.asprintf "%a" pp_ns (warm *. 1e9));
        (name, disarmed, armed, events, warm))
      (E.engines ())
  in
  let oc = open_out "BENCH_pr5.json" in
  Printf.fprintf oc
    "{\n\
    \  \"pr\": 5,\n\
    \  \"experiment\": \"trace-disarmed-vs-armed\",\n\
    \  \"pipeline\": \"tables + classification (no lr1)\",\n\
    \  \"unit\": \"seconds, best of %d\",\n\
    \  \"grammars\": [\n"
    reps;
  let n = List.length rows in
  List.iteri
    (fun i (name, disarmed, armed, events, warm) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"disarmed_s\": %.9f, \"armed_s\": %.9f, \
         \"armed_overhead\": %.3f, \"events\": %d, \"warm_cache_s\": \
         %.9f}%s\n"
        name disarmed armed (armed /. disarmed) events warm
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Format.printf "@.wrote BENCH_pr5.json (%d grammars)@." n

(* ------------------------------------------------------------------ *)
(* LY — data layout: CSR relations + arena Digraph vs the boxed path  *)
(* ------------------------------------------------------------------ *)

module Boxed = Lalr_baselines.Boxed
module Analysis = Lalr_grammar.Analysis

(* Manual wall timing again (the claim is a stage-level ratio, not a
   microbenchmark): each sample loops the thunk enough times to be
   well clear of clock resolution, and the row keeps the best of
   [reps] samples per arm. *)
let layout_reps = 5

let wall_best f =
  let time n =
    (* Level the heap between samples (outside the timed window) so an
       arm is not billed for garbage the previous arm left behind. *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  let once = time 1 in
  let iters = min 1000 (max 1 (int_of_float (ceil (0.01 /. max once 1e-9)))) in
  let best = ref infinity in
  for _ = 1 to layout_reps do
    let t = time iters in
    if t < !best then best := t
  done;
  !best

let bench_layout_rows grammars =
  List.map
    (fun (name, g) ->
      let a = Lr0.build g in
      let an = Analysis.compute g in
      (* Both arms get the prebuilt analysis: the row times relation
         construction proper, not the shared FIRST/nullable pass. *)
      let rel_csr = wall_best (fun () -> Lalr.relations ~analysis:an a) in
      let rel_boxed = wall_best (fun () -> Boxed.relations ~analysis:an a) in
      let r_csr = Lalr.relations ~analysis:an a in
      let r_boxed = Boxed.relations ~analysis:an a in
      let solve_csr = wall_best (fun () -> Lalr.solve_follow r_csr) in
      let solve_boxed = wall_best (fun () -> Boxed.solve_follow r_boxed) in
      let both_csr = rel_csr +. solve_csr in
      let both_boxed = rel_boxed +. solve_boxed in
      let st = Lalr.stats (Lalr.of_stages r_csr (Lalr.solve_follow r_csr)) in
      Format.printf
        "%-14s relations %10s vs %10s (%4.2fx)   solve %10s vs %10s \
         (%4.2fx)   total %4.2fx@."
        name
        (Format.asprintf "%a" pp_ns (rel_boxed *. 1e9))
        (Format.asprintf "%a" pp_ns (rel_csr *. 1e9))
        (rel_boxed /. rel_csr)
        (Format.asprintf "%a" pp_ns (solve_boxed *. 1e9))
        (Format.asprintf "%a" pp_ns (solve_csr *. 1e9))
        (solve_boxed /. solve_csr)
        (both_boxed /. both_csr);
      let stage boxed csr =
        Bench_json.(
          Obj
            [
              ("boxed_s", Sec boxed);
              ("csr_s", Sec csr);
              ("speedup", Ratio (boxed /. csr));
            ])
      in
      Bench_json.(
        Obj
          [
            ("name", Str name);
            ("nt_transitions", Int st.Lalr.n_nt_transitions);
            ("includes_edges", Int st.Lalr.includes_edges);
            ("lookback_edges", Int st.Lalr.lookback_edges);
            ( "stages",
              Obj
                [
                  ("relations", stage rel_boxed rel_csr);
                  ("solve", stage solve_boxed solve_csr);
                  ("relations_plus_solve", stage both_boxed both_csr);
                ] );
          ]))
    grammars

let bench_layout () =
  section "bench LY — data layout: boxed lists vs CSR + arena Digraph";
  let grammars =
    Lazy.force languages
    @ [ ("scaled-10x", Lalr_suite.Scaled.grammar ()) ]
  in
  let rows = bench_layout_rows grammars in
  Bench_json.(
    write "BENCH_pr7.json"
      (Obj
         [
           ("pr", Int 7);
           ("experiment", Str "data-layout-csr-vs-boxed");
           ( "stages",
             Str "relations (construction), solve (two Digraph fixpoints)" );
           ( "unit",
             Str
               (Printf.sprintf "seconds per call, best of %d wall samples"
                  layout_reps) );
           ("grammars", List rows);
         ]));
  Format.printf "@.wrote BENCH_pr7.json (%d grammars)@." (List.length rows)

(* The CI smoke variant: one mid-sized suite grammar, no file write —
   it proves the stage runs and the arms agree on shape, not perf. *)
let bench_layout_smoke () =
  section "bench LY (smoke) — data layout, mini-c only";
  ignore (bench_layout_rows [ ("mini-c", (Registry.find "mini-c").grammar |> Lazy.force) ])

(* ------------------------------------------------------------------ *)
(* Serve — worker-pool throughput at 1/4/8 domains (BENCH_pr8.json)   *)
(* ------------------------------------------------------------------ *)

module G = Lalr_grammar.Grammar
module Reader = Lalr_grammar.Reader
module Pool = Lalr_serve.Pool
module Protocol = Lalr_serve.Protocol
module Metrics = Lalr_trace.Metrics

(* Render a grammar back to the reader's surface syntax so the scaled
   generator's output can travel as an [Inline] request — the pool has
   no entry that accepts a Grammar.t directly, by design (the daemon
   only trusts bytes). Precedence-free grammars only, which the scaled
   family is. *)
let grammar_to_cfg g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "%token";
  for t = 1 to G.n_terminals g - 1 do
    Buffer.add_char buf ' ';
    Buffer.add_string buf (G.terminal_name g t)
  done;
  Printf.bprintf buf "\n%%start %s\n%%%%\n"
    (G.nonterminal_name g g.G.start);
  Array.iter
    (fun (p : G.production) ->
      if p.G.id <> 0 then begin
        Buffer.add_string buf (G.nonterminal_name g p.G.lhs);
        Buffer.add_string buf " :";
        Array.iter
          (fun s ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (G.symbol_name g s))
          p.G.rhs;
        Buffer.add_string buf " ;\n"
      end)
    g.G.productions;
  Buffer.contents buf

let serve_suite_names =
  [ "json"; "mini-pascal"; "mini-c"; "modula2"; "ada-subset"; "algol60" ]

(* [reps] copies of (every language grammar + the scaled-10x grammar
   inline): the same request stream every arm consumes. *)
let serve_workload ~reps scaled_cfg =
  List.concat
    (List.init reps (fun r ->
         List.map
           (fun n ->
             Protocol.Classify
               {
                 id = Printf.sprintf "%s-%d" n r;
                 source = Protocol.File ("suite:" ^ n);
                 budget = None;
                 deadline_ms = None;
                 trace_id = None;
               })
           serve_suite_names
         @ [
             Protocol.Classify
               {
                 id = Printf.sprintf "scaled-10x-%d" r;
                 source =
                   Protocol.Inline { text = scaled_cfg; format = `Cfg };
                 budget = None;
                 deadline_ms = None;
                 trace_id = None;
               };
           ]))

(* The sequential-batch baseline: the same per-request work the pool's
   workers do (load, engine, classification, persist), one request
   after another on the calling domain, no queue, no dispatch. *)
let serve_run_sequential ?store requests =
  List.iter
    (fun (req : Protocol.request) ->
      match req with
      | Protocol.Health _ | Protocol.Metrics _ -> ()
      | Protocol.Classify { source; _ } ->
          let g =
            match source with
            | Protocol.File spec ->
                let name = String.sub spec 6 (String.length spec - 6) in
                Lazy.force (Registry.find name).Registry.grammar
            | Protocol.Inline { text; _ } -> (
                match Reader.of_string_tolerant ~name:"bench" text with
                | Some g, [] -> g
                | _ -> failwith "serve bench: unreadable inline grammar")
          in
          let e = Engine.create ?store g in
          ignore
            (Engine.run_partial e (fun e ->
                 Engine.classification
                   ~with_lr1:(G.n_productions g <= Engine.lr1_limit)
                   e));
          Engine.persist e)
    requests

let serve_run_pool ~domains ?store ?metrics requests =
  let pool =
    Pool.create
      {
        Pool.default_config with
        Pool.domains;
        queue_capacity = List.length requests + 1;
        store;
        metrics;
      }
  in
  let pending = Atomic.make (List.length requests) in
  List.iter
    (fun request ->
      match Pool.submit pool ~request ~respond:(fun _ -> Atomic.decr pending) with
      | `Accepted -> ()
      | `Overloaded | `Draining | `Expired | `Unready ->
          failwith "serve bench: request not admitted")
    requests;
  ignore (Pool.drain pool);
  assert (Atomic.get pending = 0)

(* Physical core count as the OS reports it ([nproc]), for the JSON
   records: [Domain.recommended_domain_count] can be clamped by the
   runtime, and the speedup-bound story should be judged against the
   real machine. Falls back to the runtime's number when [nproc] is
   unavailable. *)
let nproc () =
  let fallback = Domain.recommended_domain_count () in
  match
    let ic = Unix.open_process_in "nproc 2>/dev/null" in
    let line =
      try Some (String.trim (input_line ic)) with End_of_file -> None
    in
    let status = Unix.close_process_in ic in
    match (status, line) with
    | Unix.WEXITED 0, Some l -> int_of_string_opt l
    | _ -> None
  with
  | Some n when n > 0 -> n
  | Some _ | None -> fallback
  | exception (Unix.Unix_error _ | Sys_error _) -> fallback

let serve_samples = 3

let serve_wall f =
  let best = ref infinity in
  for _ = 1 to serve_samples do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    f ();
    let t = Unix.gettimeofday () -. t0 in
    if t < !best then best := t
  done;
  !best

let bench_serve_rows ~reps =
  let scaled_cfg = grammar_to_cfg (Lalr_suite.Scaled.grammar ()) in
  let requests = serve_workload ~reps scaled_cfg in
  let n = List.length requests in
  (* Warm-up: force the registry lazies and level the allocator so the
     first timed arm is not billed for one-time construction. *)
  serve_run_sequential requests;
  let seq = serve_wall (fun () -> serve_run_sequential requests) in
  let arms =
    List.map
      (fun domains ->
        let w = serve_wall (fun () -> serve_run_pool ~domains requests) in
        (domains, w))
      [ 1; 4; 8 ]
  in
  (requests, n, seq, arms)

let bench_serve () =
  section "bench SV — serve pool throughput, 1/4/8 domains vs sequential";
  let reps = 3 in
  let requests, n, seq, arms = bench_serve_rows ~reps in
  Format.printf "sequential: %d requests in %.3fs (%.1f req/s)@." n seq
    (float_of_int n /. seq);
  List.iter
    (fun (d, w) ->
      Format.printf "%d domain(s): %.3fs (%.1f req/s, %.2fx)@." d w
        (float_of_int n /. w) (seq /. w))
    arms;
  (* Warm-store pass at the widest arm: one cold fill, one warm run
     over the same shared store; the hit rate lands in the bench trace
     session's gauges as well as the JSON. *)
  let store_dir = Filename.temp_file "lalr_serve_bench_" "" in
  Sys.remove store_dir;
  let store = Store.create ~dir:store_dir in
  serve_run_pool ~domains:8 ~store requests;
  let cold = Store.stats store in
  let warm_wall =
    serve_wall (fun () -> serve_run_pool ~domains:8 ~store requests)
  in
  let warm = Store.stats store in
  let w_hits = warm.Store.hits - cold.Store.hits in
  let w_misses = warm.Store.misses - cold.Store.misses in
  let hit_rate =
    if w_hits + w_misses = 0 then 0.
    else float_of_int w_hits /. float_of_int (w_hits + w_misses)
  in
  let session = Trace.start () in
  Trace.gauge_int "serve.store.hits" w_hits;
  Trace.gauge_int "serve.store.misses" w_misses;
  Trace.gauge "serve.store.hit_rate" hit_rate;
  Trace.finish session;
  Format.printf
    "warm store (8 domains): %.3fs, hit rate %.2f (%d hits / %d misses)@."
    warm_wall hit_rate w_hits w_misses;
  Format.printf "trace gauges: %s@." (Trace.metrics_json session);
  let cores = nproc () in
  Bench_json.(
    write "BENCH_pr8.json"
      (Obj
         [
           ("pr", Int 8);
           ("experiment", Str "serve-pool-throughput");
           ( "workload",
             Str
               (Printf.sprintf
                  "%d requests: %d x (%s) + %d x scaled-10x inline" n reps
                  (String.concat " " serve_suite_names)
                  reps) );
           ("cores", Int cores);
           ( "note",
             Str
               "throughput arms share one physical machine; speedups are \
                bounded above by the available cores, so judge the 4- and \
                8-domain arms against min(domains, cores)" );
           ("requests", Int n);
           ("sequential_s", Sec seq);
           ( "arms",
             List
               (List.map
                  (fun (d, w) ->
                    Obj
                      [
                        ("domains", Int d);
                        ("wall_s", Sec w);
                        ( "throughput_req_s",
                          Ratio (float_of_int n /. w) );
                        ("speedup_vs_sequential", Ratio (seq /. w));
                        ( "speedup_bound",
                          Int (min d cores) );
                      ])
                  arms) );
           ( "warm_store",
             Obj
               [
                 ("domains", Int 8);
                 ("wall_s", Sec warm_wall);
                 ("hits", Int w_hits);
                 ("misses", Int w_misses);
                 ("hit_rate", Ratio hit_rate);
               ] );
         ]));
  Format.printf "@.wrote BENCH_pr8.json (%d requests, %d cores)@." n cores

(* CI smoke: one rep, pool vs sequential shape only, no file write. *)
let bench_serve_smoke () =
  section "bench SV (smoke) — serve pool, one rep";
  let scaled_cfg = grammar_to_cfg (Lalr_suite.Scaled.grammar ()) in
  let requests = serve_workload ~reps:1 scaled_cfg in
  serve_run_sequential requests;
  serve_run_pool ~domains:2 requests;
  Format.printf "serve smoke: %d requests served@." (List.length requests)

(* ------------------------------------------------------------------ *)
(* Metrics — armed vs disarmed telemetry overhead (BENCH_pr10)        *)
(* ------------------------------------------------------------------ *)

(* The telemetry probes ride the serving hot path (a histogram observe
   and a counter bump per job, GC gauges per dequeue), so the claim
   "always armed" needs a price tag: the same pool workload with
   [metrics = None] (every probe compiled to a [None] branch) vs a live
   registry with one shard per domain. The gate is a hard ceiling on
   the ratio; the reconciliation asserts the armed run's registry
   actually counted every job (an unwired probe would also be fast). *)
let bench_metrics () =
  section "bench MX — metrics overhead, armed vs disarmed pool";
  let scaled_cfg = grammar_to_cfg (Lalr_suite.Scaled.grammar ()) in
  let requests = serve_workload ~reps:2 scaled_cfg in
  let n = List.length requests in
  let cores = nproc () in
  let domains = max 1 (min cores 8) in
  (* Warm-up (disarmed): registry lazies, allocator leveling. *)
  serve_run_pool ~domains requests;
  (* Interleave the arms — disarmed then armed, [serve_samples] pairs,
     best of each — so a machine-load drift across the bench hits both
     arms alike instead of being billed to whichever ran last. *)
  let registry = Metrics.create ~shards:(domains + 1) in
  let disarmed = ref infinity and armed = ref infinity in
  for _ = 1 to serve_samples do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    serve_run_pool ~domains requests;
    let d = Unix.gettimeofday () -. t0 in
    if d < !disarmed then disarmed := d;
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    serve_run_pool ~domains ~metrics:registry requests;
    let a = Unix.gettimeofday () -. t0 in
    if a < !armed then armed := a
  done;
  let disarmed = !disarmed and armed = !armed in
  let ratio = armed /. disarmed in
  (* Reconcile: the armed arm ran [serve_samples] times over the same
     registry, and with no faults armed every dequeued job observes
     queue-wait, then finishes (jobs counter + request histogram)
     exactly once. *)
  let snap = Metrics.snapshot registry in
  let expected_jobs = serve_samples * n in
  let jobs = Metrics.counter_total snap "lalr_serve_pool_jobs_total" in
  let hcount name =
    match Metrics.find snap name with
    | Some v -> Metrics.hist_count v
    | None -> 0
  in
  let req_observed = hcount "lalr_serve_request_seconds" in
  let wait_observed = hcount "lalr_serve_queue_wait_seconds" in
  let exposition = Metrics.to_prometheus snap in
  let parse_ok =
    match Metrics.parse exposition with Ok _ -> true | Error _ -> false
  in
  Format.printf
    "metrics: %d requests x %d samples, %d domains (%d cores)@." n
    serve_samples domains cores;
  Format.printf "disarmed: %.3fs  armed: %.3fs  overhead: %.3fx@." disarmed
    armed ratio;
  Format.printf
    "armed registry: %d jobs, %d request observations, %d queue-wait \
     observations, %d exposition bytes (parse ok: %b)@."
    jobs req_observed wait_observed
    (String.length exposition)
    parse_ok;
  Bench_json.(
    write "BENCH_pr10.json"
      (Obj
         [
           ("pr", Int 10);
           ("experiment", Str "metrics-overhead-armed-vs-disarmed");
           ("cores", Int cores);
           ("domains", Int domains);
           ("requests", Int n);
           ("samples", Int serve_samples);
           ("disarmed_s", Sec disarmed);
           ("armed_s", Sec armed);
           ("overhead_ratio", Ratio ratio);
           ("overhead_gate", Ratio 1.2);
           ("armed_jobs", Int jobs);
           ("expected_jobs", Int expected_jobs);
           ("request_observations", Int req_observed);
           ("queue_wait_observations", Int wait_observed);
           ("exposition_bytes", Int (String.length exposition));
           ("exposition_parse_ok", Int (if parse_ok then 1 else 0));
         ]));
  Format.printf "@.wrote BENCH_pr10.json@.";
  (* Hard gates, after the JSON so a failing run still leaves the
     numbers on disk for the post-mortem. *)
  if jobs <> expected_jobs then
    failwith
      (Printf.sprintf "metrics: armed registry counted %d jobs, expected %d"
         jobs expected_jobs);
  if req_observed <> expected_jobs || wait_observed <> expected_jobs then
    failwith
      (Printf.sprintf
         "metrics: histogram counts (%d request, %d wait) disagree with %d \
          jobs"
         req_observed wait_observed expected_jobs);
  if not parse_ok then failwith "metrics: exposition does not parse back";
  if ratio > 1.2 then
    failwith
      (Printf.sprintf "metrics: armed overhead %.3fx exceeds the 1.2x gate"
         ratio)

(* ------------------------------------------------------------------ *)
(* Soak — deterministic chaos soak against a live daemon (BENCH_pr9)  *)
(* ------------------------------------------------------------------ *)

module Serve = Lalr_serve.Serve
module Client = Lalr_serve.Client
module Breaker = Lalr_guard.Breaker
module Faultpoint = Lalr_guard.Faultpoint
module Retry = Lalr_guard.Retry
module Json = Protocol.Json
module Cls = Lalr_tables.Classify

(* The soak is a bench AND an acceptance gate: it drives a real
   [lalrgen serve] subprocess through >= 500 mixed requests — valid,
   poisoned, over-budget, expired-deadline, near-deadline, health —
   under a seeded, deterministic fault schedule across every serve
   faultpoint site (accept, decode, dispatch, respond, worker, plus
   the in-process client connect site), and asserts the robustness
   invariants the serving stack claims:

   - exactly one typed response per request id, zero duplicates
     (responses eaten by an injected fault are re-requested; the
     resubmission loop must converge);
   - zero hangs: every blocking wait is covered by a watchdog;
   - successful analyses byte-agree with a local engine run on the
     classification triple (status, lalr1, lr0_states);
   - expired deadlines are shed before compute, and deadline_exceeded
     shows up as its own typed status;
   - the breaker trip counter and the daemon restart counter are
     monotone over the whole run;
   - SIGTERM drains cleanly: exit 0 and the socket file removed.

   Seeded via SOAK_SEED (default 42), sized via SOAK_REQUESTS
   (default 560, floor 500). Writes BENCH_pr9.json; the CI step
   re-asserts the headline numbers with jq. *)

(* splitmix64: the same deterministic stream idiom Retry uses for
   jitter — no Random, no wall clock, so one seed pins the whole
   schedule and request mix. *)
let splitmix64 st =
  st := Int64.add !st 0x9E3779B97F4A7C15L;
  let z = !st in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_int st lo hi =
  lo
  + Int64.to_int
      (Int64.rem
         (Int64.shift_right_logical (splitmix64 st) 1)
         (Int64.of_int (hi - lo + 1)))

let soak_ok_grammars = [ "json"; "expr"; "mini-pascal"; "mini-c" ]

(* The request mix, by position: ~60% valid analyses (half of them
   carrying a generous deadline so the happy path exercises deadline
   propagation end to end), plus over-budget, already-expired,
   near-deadline, unreadable-file and health requests. Ids are
   prefix-tagged so the accounting can pivot per class. *)
let soak_request rng i : Protocol.request =
  match i mod 16 with
  | 15 -> Protocol.Health { id = Printf.sprintf "hlt:%d" i }
  | 5 | 13 ->
      Protocol.Classify
        {
          id = Printf.sprintf "bud:%d" i;
          source = Protocol.File "suite:ada-subset";
          budget = Some "fuel=10";
          deadline_ms = None;
          trace_id = None;
        }
  | 6 ->
      Protocol.Classify
        {
          id = Printf.sprintf "exp:%d" i;
          source = Protocol.File "suite:json";
          budget = None;
          deadline_ms = Some (-.float_of_int (rand_int rng 1 50));
          trace_id = None;
        }
  | 7 | 14 ->
      Protocol.Classify
        {
          id = Printf.sprintf "ndl:%d" i;
          source = Protocol.File "suite:ada-subset";
          budget = None;
          deadline_ms = Some 5.;
          trace_id = None;
        }
  | 8 ->
      Protocol.Classify
        {
          id = Printf.sprintf "bad:%d" i;
          source = Protocol.File "/nonexistent/soak.cfg";
          budget = None;
          deadline_ms = None;
          trace_id = None;
        }
  | _ ->
      let name =
        List.nth soak_ok_grammars
          (rand_int rng 0 (List.length soak_ok_grammars - 1))
      in
      Protocol.Classify
        {
          id = Printf.sprintf "ok:%s:%d" name i;
          source = Protocol.File ("suite:" ^ name);
          budget = None;
          deadline_ms =
            (if rand_int rng 0 1 = 0 then Some 600000. else None);
          trace_id = Some (Printf.sprintf "soak-%d" i);
        }

let soak_has_prefix p id =
  String.length id >= String.length p && String.sub id 0 (String.length p) = p

(* The local ground truth the daemon's successful responses must
   byte-agree with: the same engine, run in this process, no budget,
   no chaos. *)
let soak_expected_table () =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun name ->
      let g = Lazy.force (Registry.find name).Registry.grammar in
      let e = Engine.create g in
      let p =
        Engine.run_partial e (fun e ->
            Engine.classification
              ~with_lr1:(G.n_productions g <= Engine.lr1_limit)
              e)
      in
      match p.Engine.pr_value with
      | Some v ->
          Hashtbl.replace tbl name
            ( (if v.Cls.lalr1 then "ok" else "verdict"),
              v.Cls.lalr1,
              Engine.peek_lr0_states e )
      | None -> failwith (Printf.sprintf "soak: local %s run failed" name))
    soak_ok_grammars;
  tbl

let soak_find_binary () =
  let candidates =
    [
      Filename.concat
        (Filename.dirname Sys.executable_name)
        "../bin/lalrgen.exe";
      "_build/default/bin/lalrgen.exe";
      "bin/lalrgen.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some b -> b
  | None -> failwith "soak: cannot find lalrgen.exe (build bin/ first)"

(* Deadline-check overhead: the same in-process pool workload with and
   without a generous per-request deadline. The delta is the cost of
   the admission check, the dequeue re-check and the wall-cap
   intersection on requests whose deadline never actually bites. *)
let soak_deadline_overhead () =
  let requests dl =
    List.init 64 (fun i ->
        Protocol.Classify
          {
            id = Printf.sprintf "ov:%d" i;
            source = Protocol.File "suite:json";
            budget = None;
            deadline_ms = dl;
            trace_id = None;
          })
  in
  serve_run_pool ~domains:2 (requests None);
  let base_s = serve_wall (fun () -> serve_run_pool ~domains:2 (requests None)) in
  let dl_s =
    serve_wall (fun () ->
        serve_run_pool ~domains:2 (requests (Some 600000.)))
  in
  (base_s, dl_s)

let bench_soak () =
  section "bench SOAK — deterministic chaos soak (deadline-aware serving)";
  let seed =
    match Option.bind (Sys.getenv_opt "SOAK_SEED") int_of_string_opt with
    | Some s -> s
    | None -> 42
  in
  let n_requests =
    match Option.bind (Sys.getenv_opt "SOAK_REQUESTS") int_of_string_opt with
    | Some n -> max 500 n
    | None -> 560
  in
  let rng = ref (Int64.of_int seed) in
  Format.printf "seed %d, %d requests@." seed n_requests;

  (* -- deadline-check overhead (in-process, no daemon, no chaos) -- *)
  let base_s, dl_s = soak_deadline_overhead () in
  Format.printf
    "deadline-check overhead: %.3fs base vs %.3fs with deadline (%.3fx)@."
    base_s dl_s (dl_s /. base_s);

  (* -- the fault schedule, drawn from the seed ---------------------- *)
  let inject =
    String.concat ","
      [
        Printf.sprintf "serve-accept:raise@%d" (rand_int rng 2 4);
        Printf.sprintf "serve-decode:raise@%d" (rand_int rng 100 300);
        Printf.sprintf "serve-dispatch:raise@%d" (rand_int rng 50 250);
        Printf.sprintf "serve-respond:raise@%d" (rand_int rng 80 350);
        Printf.sprintf "serve-worker:raise@%d" (rand_int rng 30 150);
        Printf.sprintf "serve-worker:raise@%d" (rand_int rng 160 300);
      ]
  in
  Format.printf "daemon fault schedule: %s@." inject;
  let expected = soak_expected_table () in
  let requests = List.init n_requests (soak_request rng) in

  (* -- live daemon -------------------------------------------------- *)
  let binary = soak_find_binary () in
  let sock = Filename.temp_file "lalr_soak_" ".sock" in
  Sys.remove sock;
  let log = Filename.temp_file "lalr_soak_" ".log" in
  let logfd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process binary
      [|
        binary; "serve"; "--socket"; sock; "--domains"; "2"; "--queue"; "64";
        "--inject"; inject;
      |]
      devnull logfd logfd
  in
  Unix.close devnull;
  Unix.close logfd;
  let dump_log () =
    try
      let ic = open_in log in
      let len = in_channel_length ic in
      seek_in ic (max 0 (len - 4000));
      (try
         while true do
           prerr_endline ("  [daemon] " ^ input_line ic)
         done
       with End_of_file -> ());
      close_in ic
    with Sys_error _ -> ()
  in
  (* Every blocking wait below sits under this watchdog: if the soak
     has not finished inside the cap, the run FAILS — "no hangs" is an
     asserted invariant, not a hope. *)
  let soak_done = Atomic.make false in
  let watchdog =
    Thread.create
      (fun () ->
        let t0 = Unix.gettimeofday () in
        while
          (not (Atomic.get soak_done))
          && Unix.gettimeofday () -. t0 < 240.
        do
          Thread.delay 0.25
        done;
        if not (Atomic.get soak_done) then begin
          prerr_endline "soak: WATCHDOG fired — a wait hung; killing daemon";
          dump_log ();
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          exit 1
        end)
      ()
  in
  (* Readiness: poll until the socket accepts a connection. *)
  let rec wait_ready deadline =
    let ok =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let r =
        try
          Unix.connect fd (Unix.ADDR_UNIX sock);
          true
        with Unix.Unix_error _ -> false
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      r
    in
    if ok then ()
    else if Unix.gettimeofday () > deadline then begin
      dump_log ();
      failwith "soak: daemon did not become ready"
    end
    else begin
      Thread.delay 0.05;
      wait_ready deadline
    end
  in
  wait_ready (Unix.gettimeofday () +. 15.);

  (* -- breaker demo: a dead endpoint must trip and then fast-fail --- *)
  let dead = Filename.temp_file "lalr_soak_dead_" ".sock" in
  Sys.remove dead;
  let trips_before = Breaker.total_trips () in
  let demo =
    Client.create
      ~retry:{ Retry.default with Retry.max_attempts = 1 }
      ~sleep:(fun _ -> ())
      ~breaker:
        (Breaker.create
           ~config:{ Breaker.default with Breaker.failure_threshold = 1 }
           ())
      (Serve.Unix_path dead)
  in
  let health_line id =
    Protocol.encode_request (Protocol.Health { id })
  in
  (match Client.call demo [ health_line "demo" ] with
  | Ok _ -> failwith "soak: dead endpoint answered"
  | Error (Client.Unavailable _) -> ()
  | Error (Client.Breaker_open _) ->
      failwith "soak: breaker open before any failure");
  (match Client.call demo [ health_line "demo2" ] with
  | Error (Client.Breaker_open _) -> ()
  | Ok _ | Error (Client.Unavailable _) ->
      failwith "soak: tripped breaker did not fast-fail");
  if Breaker.total_trips () <= trips_before then
    failwith "soak: breaker trip not counted";

  (* -- client-side chaos: arm the connect-path faultpoint ----------- *)
  (match Faultpoint.arm (Printf.sprintf "serve-client:raise@%d" (rand_int rng 2 3)) with
  | Ok () -> ()
  | Error m -> failwith ("soak: arm: " ^ m));

  (* -- the soak loop ------------------------------------------------ *)
  let client = Client.create (Serve.Unix_path sock) in
  let delivered = Hashtbl.create (2 * n_requests) in
  let id_status = Hashtbl.create (2 * n_requests) in
  let statuses = Hashtbl.create 16 in
  let restarts_samples = ref [] in
  let breaker_samples = ref [] in
  let decode_faults = ref 0 in
  let mismatches = ref 0 in
  let resubmits = ref 0 in
  let bump tbl key =
    Hashtbl.replace tbl key
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let process_line line =
    match Json.parse line with
    | Error m ->
        failwith (Printf.sprintf "soak: unparseable response %S: %s" line m)
    | Ok j -> (
        let id =
          match Json.member "id" j with Some (Json.Str s) -> s | _ -> ""
        in
        let status =
          match Json.member "status" j with
          | Some (Json.Str s) -> s
          | _ -> "?"
        in
        if id = "" then incr decode_faults
        else begin
          bump delivered id;
          bump statuses status;
          if not (Hashtbl.mem id_status id) then
            Hashtbl.replace id_status id status;
          if status = "health" then
            match Json.member "restarts" j with
            | Some (Json.Num r) ->
                restarts_samples := int_of_float r :: !restarts_samples
            | _ -> failwith "soak: health response without restarts"
        end;
        (* Successful analyses must agree with the local engine. *)
        match (String.split_on_char ':' id, status) with
        | [ "ok"; name; _ ], ("ok" | "verdict") -> (
            match Hashtbl.find_opt expected name with
            | None -> ()
            | Some (est, elalr1, elr0) ->
                let lalr1 =
                  match Json.member "lalr1" j with
                  | Some (Json.Bool b) -> Some b
                  | _ -> None
                in
                let lr0 =
                  match Json.member "lr0_states" j with
                  | Some (Json.Num n) -> Some (int_of_float n)
                  | _ -> None
                in
                if
                  not (status = est && lalr1 = Some elalr1 && lr0 = elr0)
                then begin
                  incr mismatches;
                  Format.eprintf
                    "soak: MISMATCH %s: got (%s, %s, %s), expected (%s, %b, \
                     %s)@."
                    id status
                    (match lalr1 with
                    | Some b -> string_of_bool b
                    | None -> "-")
                    (match lr0 with
                    | Some n -> string_of_int n
                    | None -> "-")
                    est elalr1
                    (match elr0 with
                    | Some n -> string_of_int n
                    | None -> "-")
                end)
        | _ -> ())
  in
  let pending = Queue.create () in
  List.iter (fun r -> Queue.add r pending) requests;
  let first_sent = Hashtbl.create (2 * n_requests) in
  let rounds = ref 0 in
  let chunk = ref 0 in
  let t_soak0 = Unix.gettimeofday () in
  while not (Queue.is_empty pending) do
    incr rounds;
    if !rounds > 40 * (n_requests / 16 + 1) then begin
      dump_log ();
      failwith "soak: resubmission loop did not converge"
    end;
    let batch = ref [] in
    while List.length !batch < 16 && not (Queue.is_empty pending) do
      batch := Queue.pop pending :: !batch
    done;
    let batch = List.rev !batch in
    let lines = List.map Protocol.encode_request batch in
    let requeue_missing () =
      List.iter
        (fun r ->
          let id = Protocol.request_id r in
          if not (Hashtbl.mem delivered id) then Queue.add r pending)
        batch
    in
    (match Client.call client lines with
    | Ok responses ->
        List.iter
          (fun r ->
            let id = Protocol.request_id r in
            if Hashtbl.mem first_sent id then incr resubmits
            else Hashtbl.replace first_sent id ())
          batch;
        List.iter process_line responses;
        (* A decode-injected blank response leaves its id unanswered
           even on a "complete" call: re-request it. *)
        requeue_missing ()
    | Error (Client.Breaker_open { retry_after; _ }) ->
        Thread.delay (Float.max 0.05 retry_after +. 0.01);
        List.iter (fun r -> Queue.add r pending) batch
    | Error (Client.Unavailable { partial; _ }) ->
        List.iter
          (fun r ->
            let id = Protocol.request_id r in
            if Hashtbl.mem first_sent id then incr resubmits
            else Hashtbl.replace first_sent id ())
          batch;
        List.iter process_line partial;
        requeue_missing ());
    breaker_samples := Breaker.total_trips () :: !breaker_samples;
    incr chunk;
    (* Periodic forced reconnects keep the accept/probe paths hot. *)
    if !chunk mod 8 = 0 then Client.close client
  done;
  let soak_wall = Unix.gettimeofday () -. t_soak0 in
  Faultpoint.disarm ();

  (* -- final health, then a clean SIGTERM drain --------------------- *)
  (match Client.call client [ health_line "hlt:final" ] with
  | Ok responses -> List.iter process_line responses
  | Error e -> failwith ("soak: final health failed: " ^ Client.error_message e));
  (* Live scrape, while the daemon is still up: the merged exposition
     must parse and reconcile with the client-side per-id accounting
     (gated below, with the other invariants). *)
  let scrape =
    match
      Client.call client
        [ Protocol.encode_request (Protocol.Metrics { id = "hlt:scrape" }) ]
    with
    | Error e ->
        failwith ("soak: metrics scrape failed: " ^ Client.error_message e)
    | Ok [ line ] -> (
        match Json.parse line with
        | Error m -> failwith ("soak: scrape response unparseable: " ^ m)
        | Ok j -> (
            match Json.member "body" j with
            | Some (Json.Str body) -> (
                match Metrics.parse body with
                | Ok snap -> snap
                | Error m ->
                    failwith ("soak: scrape exposition does not parse: " ^ m))
            | _ -> failwith "soak: scrape response without body"))
    | Ok other ->
        failwith
          (Printf.sprintf "soak: scrape returned %d lines"
             (List.length other))
  in
  Client.close client;
  Unix.kill pid Sys.sigterm;
  let _, st = Unix.waitpid [] pid in
  let clean_drain = st = Unix.WEXITED 0 && not (Sys.file_exists sock) in
  Atomic.set soak_done true;
  Thread.join watchdog;
  if not clean_drain then begin
    dump_log ();
    failwith "soak: daemon did not drain cleanly on SIGTERM"
  end;

  (* -- invariants --------------------------------------------------- *)
  let rec is_sorted = function
    | a :: (b :: _ as rest) -> a <= b && is_sorted rest
    | _ -> true
  in
  if not (is_sorted (List.rev !breaker_samples)) then
    failwith "soak: breaker trip counter went backwards";
  if not (is_sorted (List.rev !restarts_samples)) then
    failwith "soak: daemon restart counter went backwards";
  let duplicates =
    Hashtbl.fold (fun _ c acc -> if c > 1 then acc + 1 else acc) delivered 0
  in
  (* [delivered] holds every id that got a response: the n_requests
     soak ids plus the final out-of-loop health probe. *)
  let responses = Hashtbl.length delivered - 1 in
  let expired_shed =
    Hashtbl.fold
      (fun id st acc ->
        if soak_has_prefix "exp:" id && st = "deadline_exceeded" then acc + 1
        else acc)
      id_status 0
  in
  let restarts_final =
    match !restarts_samples with r :: _ -> r | [] -> 0
  in
  let status_count s =
    Option.value ~default:0 (Hashtbl.find_opt statuses s)
  in
  (* Scrape-side accounting. The funnel counts every response by
     status before its socket write ([requests_total]) and failed
     writes again in [responses_dropped_total], so per status
     "delivered" = total - dropped, and every line this client
     actually received was delivered: received <= delivered. Two
     relations are exact, chaos or not, because both sides live in the
     daemon: crash restarts (health counter vs crash counter bumped at
     the same supervisor site) and pool jobs (the jobs counter and the
     request-latency observation share one probe). *)
  let scrape_counter ?labels name =
    match Metrics.find scrape ?labels name with
    | Some (Metrics.Counter n) -> n
    | _ -> 0
  in
  let scrape_gauge name =
    match Metrics.find scrape name with
    | Some (Metrics.Gauge g) -> Some g
    | _ -> None
  in
  let sent_status s =
    scrape_counter ~labels:[ ("status", s) ] "lalr_serve_requests_total"
    - scrape_counter
        ~labels:[ ("status", s) ]
        "lalr_serve_responses_dropped_total"
  in
  let scrape_crashes = scrape_counter "lalr_serve_worker_crashes_total" in
  let scrape_jobs = scrape_counter "lalr_serve_pool_jobs_total" in
  let scrape_req_observed =
    match Metrics.find scrape "lalr_serve_request_seconds" with
    | Some v -> Metrics.hist_count v
    | None -> 0
  in
  let scrape_statuses =
    [
      "ok"; "verdict"; "bad_request"; "budget"; "overloaded";
      "deadline_exceeded"; "internal"; "health"; "metrics";
    ]
  in
  Format.printf
    "soak: %d requests in %.2fs (%.1f req/s), %d resubmits, %d decode \
     faults, %d duplicates, %d mismatches@."
    n_requests soak_wall
    (float_of_int n_requests /. soak_wall)
    !resubmits !decode_faults duplicates !mismatches;
  Format.printf
    "soak: statuses:%s@."
    (Hashtbl.fold
       (fun s c acc -> acc ^ Printf.sprintf " %s=%d" s c)
       statuses "");
  Format.printf
    "soak: expired_shed %d, restarts %d, breaker trips %d, clean drain %b@."
    expired_shed restarts_final (Breaker.total_trips ()) clean_drain;
  Format.printf
    "soak: scrape: %d pool jobs, %d request observations, %d crashes, \
     delivered%s@."
    scrape_jobs scrape_req_observed scrape_crashes
    (List.fold_left
       (fun acc s -> acc ^ Printf.sprintf " %s=%d" s (sent_status s))
       "" scrape_statuses);

  Bench_json.(
    write "BENCH_pr9.json"
      (Obj
         [
           ("pr", Int 9);
           ("experiment", Str "chaos-soak-deadline-serving");
           ("seed", Int seed);
           ("cores", Int (nproc ()));
           ("fault_schedule", Str inject);
           ("requests", Int n_requests);
           ("responses", Int responses);
           ("resubmits", Int !resubmits);
           ("decode_faults", Int !decode_faults);
           ("duplicates", Int duplicates);
           ("mismatches", Int !mismatches);
           ("expired_shed", Int expired_shed);
           ("restarts", Int restarts_final);
           ("breaker_trips", Int (Breaker.total_trips ()));
           ("clean_drain", Int (if clean_drain then 1 else 0));
           ( "statuses",
             Obj
               (List.map
                  (fun s -> (s, Int (status_count s)))
                  [
                    "ok"; "verdict"; "bad_request"; "budget"; "overloaded";
                    "deadline_exceeded"; "internal"; "health";
                  ]) );
           ( "scrape",
             Obj
               [
                 ("pool_jobs", Int scrape_jobs);
                 ("request_observations", Int scrape_req_observed);
                 ("worker_crashes", Int scrape_crashes);
                 ( "delivered",
                   Obj
                     (List.map
                        (fun s -> (s, Int (sent_status s)))
                        scrape_statuses) );
               ] );
           ("soak_wall_s", Sec soak_wall);
           ( "soak_throughput_req_s",
             Ratio (float_of_int n_requests /. soak_wall) );
           ( "deadline_overhead",
             Obj
               [
                 ("baseline_s", Sec base_s);
                 ("with_deadline_s", Sec dl_s);
                 ("overhead_ratio", Ratio (dl_s /. base_s));
               ] );
         ]));
  Format.printf "@.wrote BENCH_pr9.json@.";

  (* Hard gates, after the JSON so a failing run still leaves the
     numbers on disk for the post-mortem. *)
  if responses <> n_requests then
    failwith
      (Printf.sprintf "soak: %d distinct ids answered, expected %d" responses
         n_requests);
  if duplicates > 0 then
    failwith (Printf.sprintf "soak: %d duplicated responses" duplicates);
  if !mismatches > 0 then
    failwith (Printf.sprintf "soak: %d analysis mismatches" !mismatches);
  if expired_shed = 0 then
    failwith "soak: no expired-deadline request was shed";
  if status_count "deadline_exceeded" = 0 then
    failwith "soak: no deadline_exceeded response observed";
  if restarts_final = 0 then
    failwith "soak: worker crash injections produced no restart";
  if scrape_crashes <> restarts_final then
    failwith
      (Printf.sprintf
         "soak: scrape counted %d worker crashes, health reported %d restarts"
         scrape_crashes restarts_final);
  if scrape_req_observed <> scrape_jobs then
    failwith
      (Printf.sprintf
         "soak: scrape latency histogram has %d observations for %d pool jobs"
         scrape_req_observed scrape_jobs);
  List.iter
    (fun s ->
      if sent_status s < status_count s then
        failwith
          (Printf.sprintf
             "soak: scrape delivered %d %s responses, client received %d"
             (sent_status s) s (status_count s)))
    scrape_statuses;
  (match scrape_gauge "lalr_serve_ready" with
  | Some 1.0 -> ()
  | g ->
      failwith
        (Printf.sprintf "soak: scrape ready gauge %s, expected 1"
           (match g with Some v -> string_of_float v | None -> "absent")));
  match scrape_gauge "lalr_serve_workers" with
  | Some 2.0 -> ()
  | g ->
      failwith
        (Printf.sprintf "soak: scrape workers gauge %s, expected 2"
           (match g with Some v -> string_of_float v | None -> "absent"))

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let all =
  [
    ("t1", bench_t1);
    ("t2", bench_t2);
    ("t3", bench_t3);
    ("t4", bench_t4);
    ("f1", bench_f1_f2);
    ("f2", bench_f1_f2);
    ("f3", bench_f3);
    ("f4", bench_f4);
    ("rt", bench_rt);
    ("store", bench_store);
    ("trace", bench_trace);
    ("layout", bench_layout);
    ("layout-smoke", bench_layout_smoke);
    ("serve", bench_serve);
    ("serve-smoke", bench_serve_smoke);
    ("metrics", bench_metrics);
    ("soak", bench_soak);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ ->
        [
          "t1"; "t2"; "t3"; "t4"; "f1"; "f3"; "f4"; "rt"; "store"; "trace";
          "layout";
        ]
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ()
      | None ->
          Format.eprintf "unknown bench %S (want: %s)@." name
            (String.concat ", " (List.map fst all));
          exit 2)
    requested;
  (* The paper-shaped static tables, for the record. *)
  section "paper-shaped tables (also via bin/experiments.exe)";
  E.run_all Format.std_formatter
