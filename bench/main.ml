(* Benchmark harness — regenerates every timing table and figure of the
   evaluation (see DESIGN.md §3 and EXPERIMENTS.md):

     T1  LR(0) automaton construction cost per language grammar
     T2  relation construction + Digraph solve (Lalr.compute)
     T3  full pipeline: grammar → look-aheads → ACTION/GOTO tables
     T4  method shoot-out: DeRemer–Pennello vs yacc propagation vs
         canonical-LR(1)+merge vs SLR FOLLOW       (the headline table)
     F1  scaling over the synthetic grammar families (time vs |G|)
     F2  speedup of DP over the baselines as size grows
     F3  the Digraph algorithm vs naive fixpoint iteration
     RT  parser-runtime throughput (tokens/s) as a sanity check that
         tables from the exact method drive the parser at full speed

   Each experiment is one Bechamel Test.make (or a Test.make per
   grammar×method cell); after the statistics, the paper-shaped tables
   T1–T5 are printed via Lalr_bench_tables.

   Run with:  dune exec bench/main.exe            (everything)
              dune exec bench/main.exe -- t4 f1   (a subset) *)

open Bechamel
open Toolkit

module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Slr = Lalr_baselines.Slr
module Lr1 = Lalr_baselines.Lr1
module Propagation = Lalr_baselines.Propagation
module Tables = Lalr_tables.Tables
module Driver = Lalr_runtime.Driver
module Sentence = Lalr_runtime.Sentence
module Registry = Lalr_suite.Registry
module Digraph = Lalr_sets.Digraph
module E = Lalr_bench_tables.Experiments
module Engine = Lalr_engine.Engine
module Store = Lalr_store.Store

(* Prebuilt artifacts for benchmark setup come from the shared
   per-language engines (one pipeline per grammar per process); the
   timed thunks themselves stay raw computations. *)
let languages =
  lazy
    (List.map (fun (name, eng) -> (name, Engine.grammar eng)) (E.engines ()))

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let run_tests ~quota_s tests =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"" tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

let estimate results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols -> (
      match Analyze.OLS.estimates ols with
      | Some [ e ] -> e (* nanoseconds per run *)
      | _ -> nan)

let pp_ns ppf ns =
  if Float.is_nan ns then Format.fprintf ppf "n/a"
  else if ns > 1e9 then Format.fprintf ppf "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Format.fprintf ppf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Format.fprintf ppf "%.2f µs" (ns /. 1e3)
  else Format.fprintf ppf "%.0f ns" ns

let section title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* T1 — LR(0) construction                                            *)
(* ------------------------------------------------------------------ *)

let bench_t1 () =
  section "bench T1 — LR(0) automaton construction";
  let tests =
    List.map
      (fun (name, g) ->
        Test.make ~name (Staged.stage (fun () -> Lr0.build g)))
      (Lazy.force languages)
  in
  let results = run_tests ~quota_s:0.5 tests in
  List.iter
    (fun (name, eng) ->
      Format.printf "%-14s %a   (%d states)@." name pp_ns
        (estimate results ("/" ^ name))
        (Lr0.n_states (Engine.lr0 eng)))
    (E.engines ())

(* ------------------------------------------------------------------ *)
(* T2 — relations + Digraph                                           *)
(* ------------------------------------------------------------------ *)

let bench_t2 () =
  section "bench T2 — relations + Digraph solve (Lalr.compute)";
  let prebuilt =
    List.map (fun (name, eng) -> (name, Engine.lr0 eng)) (E.engines ())
  in
  let tests =
    List.map
      (fun (name, a) ->
        Test.make ~name (Staged.stage (fun () -> Lalr.compute a)))
      prebuilt
  in
  let results = run_tests ~quota_s:0.5 tests in
  List.iter
    (fun (name, eng) ->
      let s = Lalr.stats (Engine.lalr eng) in
      Format.printf "%-14s %a   (%d nt transitions, %d+%d edges)@." name
        pp_ns
        (estimate results ("/" ^ name))
        s.Lalr.n_nt_transitions s.Lalr.reads_edges s.Lalr.includes_edges)
    (E.engines ())

(* ------------------------------------------------------------------ *)
(* T3 — full pipeline to tables                                       *)
(* ------------------------------------------------------------------ *)

let bench_t3 () =
  section "bench T3 — grammar → look-aheads → ACTION/GOTO tables";
  let pipeline g () =
    let a = Lr0.build g in
    let t = Lalr.compute a in
    Tables.build ~lookahead:(Lalr.lookahead t) a
  in
  let tests =
    List.map
      (fun (name, g) -> Test.make ~name (Staged.stage (pipeline g)))
      (Lazy.force languages)
  in
  let results = run_tests ~quota_s:0.5 tests in
  List.iter
    (fun (name, _) ->
      Format.printf "%-14s %a@." name pp_ns (estimate results ("/" ^ name)))
    (Lazy.force languages)

(* ------------------------------------------------------------------ *)
(* T4 — the method shoot-out                                          *)
(* ------------------------------------------------------------------ *)

let methods a g =
  [
    ("dp", fun () -> ignore (Sys.opaque_identity (Lalr.compute a)));
    ("prop", fun () -> ignore (Sys.opaque_identity (Propagation.compute a)));
    ( "merge",
      fun () ->
        ignore (Sys.opaque_identity (Lr1.merged_lookaheads (Lr1.build g) a)) );
    ("slr", fun () -> ignore (Sys.opaque_identity (Slr.compute a)));
  ]

let bench_t4 () =
  section "bench T4 — look-ahead methods (the paper's headline comparison)";
  let prebuilt =
    List.map
      (fun (name, eng) -> (name, Engine.grammar eng, Engine.lr0 eng))
      (E.engines ())
  in
  let tests =
    List.concat_map
      (fun (name, g, a) ->
        List.map
          (fun (m, f) -> Test.make ~name:(name ^ ":" ^ m) (Staged.stage f))
          (methods a g))
      prebuilt
  in
  let results = run_tests ~quota_s:0.5 tests in
  Format.printf "%-14s %12s %12s %12s %12s %9s %9s@." "grammar" "DP" "prop"
    "LR1+merge" "SLR" "prop/DP" "merge/DP";
  List.iter
    (fun (name, _, _) ->
      let e m = estimate results ("/" ^ name ^ ":" ^ m) in
      let dp = e "dp" and prop = e "prop" in
      let merge = e "merge" and slr = e "slr" in
      Format.printf "%-14s %12s %12s %12s %12s %8.1fx %8.1fx@." name
        (Format.asprintf "%a" pp_ns dp)
        (Format.asprintf "%a" pp_ns prop)
        (Format.asprintf "%a" pp_ns merge)
        (Format.asprintf "%a" pp_ns slr)
        (prop /. dp) (merge /. dp))
    prebuilt

(* ------------------------------------------------------------------ *)
(* F1/F2 — scaling and speedup over the synthetic families            *)
(* ------------------------------------------------------------------ *)

let bench_f1_f2 () =
  section "bench F1 — scaling (time vs grammar size) / F2 — speedup";
  List.iter
    (fun (family_name, points) ->
      Format.printf "@.family %s:@." family_name;
      Format.printf "%6s %6s %12s %12s %12s %9s %9s@." "n" "|G|" "DP" "prop"
        "LR1+merge" "prop/DP" "merge/DP";
      List.iter
        (fun (n, size, times) ->
          let dp = times.(0) and prop = times.(1) and merge = times.(2) in
          Format.printf "%6d %6d %12s %12s %12s %8.1fx %8.1fx@." n size
            (Format.asprintf "%a" pp_ns (dp *. 1e9))
            (Format.asprintf "%a" pp_ns (prop *. 1e9))
            (Format.asprintf "%a" pp_ns (merge *. 1e9))
            (prop /. dp) (merge /. dp))
        points)
    (E.f1_series ())

(* ------------------------------------------------------------------ *)
(* F3 — Digraph vs naive fixpoint                                     *)
(* ------------------------------------------------------------------ *)

let bench_f3 () =
  section "bench F3 — Digraph traversal vs naive fixpoint iteration";
  (* The Follow computation (includes relation) of each language
     grammar, solved both ways. *)
  let cases =
    List.map
      (fun (name, eng) ->
        let a = Engine.lr0 eng in
        let t = Engine.lalr eng in
        let nx = Lr0.n_nt_transitions a in
        let successors x = Lalr.includes t x in
        let init x = Lalr.read t x in
        (name, nx, successors, init))
      (E.engines ())
  in
  let tests =
    List.concat_map
      (fun (name, nx, successors, init) ->
        [
          Test.make ~name:(name ^ ":digraph")
            (Staged.stage (fun () ->
                 Digraph.ForBitset.run ~n:nx ~successors ~init));
          Test.make ~name:(name ^ ":naive")
            (Staged.stage (fun () ->
                 Digraph.naive_fixpoint ~n:nx ~successors ~init));
        ])
      cases
  in
  let results = run_tests ~quota_s:0.5 tests in
  Format.printf "%-14s %12s %12s %9s@." "grammar" "digraph" "naive" "naive/dg";
  List.iter
    (fun (name, _, _, _) ->
      let dg = estimate results ("/" ^ name ^ ":digraph") in
      let naive = estimate results ("/" ^ name ^ ":naive") in
      Format.printf "%-14s %12s %12s %8.1fx@." name
        (Format.asprintf "%a" pp_ns dg)
        (Format.asprintf "%a" pp_ns naive)
        (naive /. dg))
    cases

(* ------------------------------------------------------------------ *)
(* F4 — LALR(k) fixpoint vs canonical LR(k) (the §8 extension)        *)
(* ------------------------------------------------------------------ *)

let bench_f4 () =
  section
    "bench F4 — LALR(k) relational fixpoint vs canonical LR(k) merge (§8)";
  (* Small/medium grammars only: canonical LR(k) explodes, which is the
     result being demonstrated. *)
  let cases =
    List.map
      (fun name ->
        let g = Lazy.force (Registry.find name).grammar in
        (name, g, Lalr_automaton.Lr0.build g))
      [ "expr"; "expr-ll"; "assign"; "json"; "lalr2" ]
  in
  let tests =
    List.concat_map
      (fun (name, g, a) ->
        List.concat_map
          (fun kk ->
            [
              Test.make
                ~name:(Printf.sprintf "%s:k%d:fix" name kk)
                (Staged.stage (fun () ->
                     Lalr_core.Lalr_k.compute ~k:kk a));
              Test.make
                ~name:(Printf.sprintf "%s:k%d:can" name kk)
                (Staged.stage (fun () ->
                     Lalr_baselines.Lrk.merged_lookaheads
                       (Lalr_baselines.Lrk.build ~k:kk g)
                       a));
            ])
          [ 1; 2; 3 ])
      cases
  in
  let results = run_tests ~quota_s:0.3 tests in
  Format.printf "%-10s %4s %12s %12s %9s@." "grammar" "k" "fixpoint"
    "canonical" "can/fix";
  List.iter
    (fun (name, _, _) ->
      List.iter
        (fun kk ->
          let f = estimate results (Printf.sprintf "/%s:k%d:fix" name kk) in
          let c = estimate results (Printf.sprintf "/%s:k%d:can" name kk) in
          Format.printf "%-10s %4d %12s %12s %8.1fx@." name kk
            (Format.asprintf "%a" pp_ns f)
            (Format.asprintf "%a" pp_ns c)
            (c /. f))
        [ 1; 2; 3 ])
    cases

(* ------------------------------------------------------------------ *)
(* RT — parser throughput                                             *)
(* ------------------------------------------------------------------ *)

let bench_rt () =
  section "bench RT — parser throughput on generated sentences";
  let cases =
    List.filter_map
      (fun (name, eng) ->
        let g = Engine.grammar eng in
        let t = Engine.lalr eng in
        if not (Lalr.is_lalr1 t) then None
        else begin
          let tbl = Engine.tables eng in
          let prep = Sentence.prepare g in
          let rng = Random.State.make [| 17 |] in
          let sentences =
            List.init 50 (fun _ -> Sentence.generate ~max_depth:12 prep rng)
          in
          let total_tokens =
            List.fold_left (fun acc s -> acc + List.length s) 0 sentences
          in
          Some (name, tbl, sentences, total_tokens)
        end)
      (E.engines ())
  in
  let tests =
    List.map
      (fun (name, tbl, sentences, _) ->
        Test.make ~name
          (Staged.stage (fun () ->
               List.iter
                 (fun s -> ignore (Sys.opaque_identity (Driver.accepts tbl s)))
                 sentences)))
      cases
  in
  let results = run_tests ~quota_s:0.5 tests in
  List.iter
    (fun (name, _, _, total_tokens) ->
      let ns = estimate results ("/" ^ name) in
      Format.printf "%-14s %a for %d tokens  (%.1f M tokens/s)@." name pp_ns
        ns total_tokens
        (float_of_int total_tokens /. ns *. 1e3))
    cases

(* ------------------------------------------------------------------ *)
(* ST — the artifact store: cold vs warm cache                        *)
(* ------------------------------------------------------------------ *)

(* Manual best-of-N timing rather than Bechamel: a cold-cache run
   needs a fresh directory per repetition, and the interesting numbers
   (store overhead on a cold run, speedup on a warm one) are
   macro-level wall times, not nanosecond fits. The measured rows are
   also written to BENCH_pr4.json — the start of the perf trajectory
   tracking store overhead and hit-rate benefit per PR. *)
let bench_store () =
  section "bench ST — artifact store: cold vs warm cache";
  let tmp_root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lalr_bench_store_%d" (Unix.getpid ()))
  in
  let counter = ref 0 in
  let pipeline e =
    ignore (Engine.tables e);
    ignore (Engine.classification ~with_lr1:false e)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let reps = 5 in
  let best_of f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t = time f in
      if t < !best then best := t
    done;
    !best
  in
  let rows =
    List.map
      (fun (name, eng) ->
        let g = Engine.grammar eng in
        let no_store =
          best_of (fun () -> pipeline (Engine.create g))
        in
        let cold =
          best_of (fun () ->
              incr counter;
              let store =
                Store.create
                  ~dir:(Printf.sprintf "%s/%s-cold-%d" tmp_root name !counter)
              in
              let e = Engine.create ~store g in
              pipeline e;
              (* Forced: this arm measures the store itself, so the
                 skip-small policy must not dodge the write. *)
              Engine.persist ~force:true e)
        in
        let warm_store =
          Store.create ~dir:(Printf.sprintf "%s/%s-warm" tmp_root name)
        in
        (let e = Engine.create ~store:warm_store g in
         pipeline e;
         Engine.persist ~force:true e);
        let warm =
          best_of (fun () -> pipeline (Engine.create ~store:warm_store g))
        in
        Format.printf
          "%-14s no-store %10s   cold %10s   warm %10s   (%5.1fx warm)@." name
          (Format.asprintf "%a" pp_ns (no_store *. 1e9))
          (Format.asprintf "%a" pp_ns (cold *. 1e9))
          (Format.asprintf "%a" pp_ns (warm *. 1e9))
          (no_store /. warm);
        (name, no_store, cold, warm))
      (E.engines ())
  in
  let oc = open_out "BENCH_pr4.json" in
  Printf.fprintf oc
    "{\n\
    \  \"pr\": 4,\n\
    \  \"experiment\": \"artifact-store-cold-vs-warm\",\n\
    \  \"pipeline\": \"tables + classification (no lr1)\",\n\
    \  \"unit\": \"seconds, best of %d\",\n\
    \  \"grammars\": [\n"
    reps;
  let n = List.length rows in
  List.iteri
    (fun i (name, no_store, cold, warm) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"no_store_s\": %.9f, \"cold_cache_s\": %.9f, \
         \"warm_cache_s\": %.9f, \"warm_speedup\": %.2f}%s\n"
        name no_store cold warm (no_store /. warm)
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Format.printf "@.wrote BENCH_pr4.json (%d grammars)@." n

(* ------------------------------------------------------------------ *)
(* TR — tracing layer: disarmed vs armed overhead                     *)
(* ------------------------------------------------------------------ *)

module Trace = Lalr_trace.Trace

(* Like bench_store, manual best-of-N wall timing: the claim under
   test is macro-level ("the layer costs one ref read when disarmed,
   and arming it stays cheap"), so each row runs the full pipeline
   from a fresh engine with tracing off and on and also refreshes the
   store cold/warm columns under the armed session. The rows go to
   BENCH_pr5.json, continuing the perf trajectory started by
   BENCH_pr4.json. *)
let bench_trace () =
  section "bench TR — tracing: disarmed vs armed pipeline";
  let tmp_root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lalr_bench_trace_%d" (Unix.getpid ()))
  in
  let pipeline e =
    ignore (Engine.tables e);
    ignore (Engine.classification ~with_lr1:false e)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let reps = 5 in
  let best_of f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t = time f in
      if t < !best then best := t
    done;
    !best
  in
  let armed_run f =
    let s = Trace.start () in
    let r = time f in
    Trace.finish s;
    (r, Trace.n_events s)
  in
  let best_armed f =
    let best = ref infinity and events = ref 0 in
    for _ = 1 to reps do
      let t, n = armed_run f in
      if t < !best then begin
        best := t;
        events := n
      end
    done;
    (!best, !events)
  in
  let rows =
    List.map
      (fun (name, eng) ->
        let g = Engine.grammar eng in
        let disarmed = best_of (fun () -> pipeline (Engine.create g)) in
        let armed, events =
          best_armed (fun () -> pipeline (Engine.create g))
        in
        let warm_store =
          Store.create ~dir:(Printf.sprintf "%s/%s-warm" tmp_root name)
        in
        (let e = Engine.create ~store:warm_store g in
         pipeline e;
         Engine.persist ~force:true e);
        let warm =
          best_of (fun () -> pipeline (Engine.create ~store:warm_store g))
        in
        Format.printf
          "%-14s disarmed %10s   armed %10s   (%5.2fx, %3d events)   warm \
           %10s@."
          name
          (Format.asprintf "%a" pp_ns (disarmed *. 1e9))
          (Format.asprintf "%a" pp_ns (armed *. 1e9))
          (armed /. disarmed) events
          (Format.asprintf "%a" pp_ns (warm *. 1e9));
        (name, disarmed, armed, events, warm))
      (E.engines ())
  in
  let oc = open_out "BENCH_pr5.json" in
  Printf.fprintf oc
    "{\n\
    \  \"pr\": 5,\n\
    \  \"experiment\": \"trace-disarmed-vs-armed\",\n\
    \  \"pipeline\": \"tables + classification (no lr1)\",\n\
    \  \"unit\": \"seconds, best of %d\",\n\
    \  \"grammars\": [\n"
    reps;
  let n = List.length rows in
  List.iteri
    (fun i (name, disarmed, armed, events, warm) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"disarmed_s\": %.9f, \"armed_s\": %.9f, \
         \"armed_overhead\": %.3f, \"events\": %d, \"warm_cache_s\": \
         %.9f}%s\n"
        name disarmed armed (armed /. disarmed) events warm
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Format.printf "@.wrote BENCH_pr5.json (%d grammars)@." n

(* ------------------------------------------------------------------ *)
(* LY — data layout: CSR relations + arena Digraph vs the boxed path  *)
(* ------------------------------------------------------------------ *)

module Boxed = Lalr_baselines.Boxed
module Analysis = Lalr_grammar.Analysis

(* Manual wall timing again (the claim is a stage-level ratio, not a
   microbenchmark): each sample loops the thunk enough times to be
   well clear of clock resolution, and the row keeps the best of
   [reps] samples per arm. *)
let layout_reps = 5

let wall_best f =
  let time n =
    (* Level the heap between samples (outside the timed window) so an
       arm is not billed for garbage the previous arm left behind. *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  let once = time 1 in
  let iters = min 1000 (max 1 (int_of_float (ceil (0.01 /. max once 1e-9)))) in
  let best = ref infinity in
  for _ = 1 to layout_reps do
    let t = time iters in
    if t < !best then best := t
  done;
  !best

let bench_layout_rows grammars =
  List.map
    (fun (name, g) ->
      let a = Lr0.build g in
      let an = Analysis.compute g in
      (* Both arms get the prebuilt analysis: the row times relation
         construction proper, not the shared FIRST/nullable pass. *)
      let rel_csr = wall_best (fun () -> Lalr.relations ~analysis:an a) in
      let rel_boxed = wall_best (fun () -> Boxed.relations ~analysis:an a) in
      let r_csr = Lalr.relations ~analysis:an a in
      let r_boxed = Boxed.relations ~analysis:an a in
      let solve_csr = wall_best (fun () -> Lalr.solve_follow r_csr) in
      let solve_boxed = wall_best (fun () -> Boxed.solve_follow r_boxed) in
      let both_csr = rel_csr +. solve_csr in
      let both_boxed = rel_boxed +. solve_boxed in
      let st = Lalr.stats (Lalr.of_stages r_csr (Lalr.solve_follow r_csr)) in
      Format.printf
        "%-14s relations %10s vs %10s (%4.2fx)   solve %10s vs %10s \
         (%4.2fx)   total %4.2fx@."
        name
        (Format.asprintf "%a" pp_ns (rel_boxed *. 1e9))
        (Format.asprintf "%a" pp_ns (rel_csr *. 1e9))
        (rel_boxed /. rel_csr)
        (Format.asprintf "%a" pp_ns (solve_boxed *. 1e9))
        (Format.asprintf "%a" pp_ns (solve_csr *. 1e9))
        (solve_boxed /. solve_csr)
        (both_boxed /. both_csr);
      let stage boxed csr =
        Bench_json.(
          Obj
            [
              ("boxed_s", Sec boxed);
              ("csr_s", Sec csr);
              ("speedup", Ratio (boxed /. csr));
            ])
      in
      Bench_json.(
        Obj
          [
            ("name", Str name);
            ("nt_transitions", Int st.Lalr.n_nt_transitions);
            ("includes_edges", Int st.Lalr.includes_edges);
            ("lookback_edges", Int st.Lalr.lookback_edges);
            ( "stages",
              Obj
                [
                  ("relations", stage rel_boxed rel_csr);
                  ("solve", stage solve_boxed solve_csr);
                  ("relations_plus_solve", stage both_boxed both_csr);
                ] );
          ]))
    grammars

let bench_layout () =
  section "bench LY — data layout: boxed lists vs CSR + arena Digraph";
  let grammars =
    Lazy.force languages
    @ [ ("scaled-10x", Lalr_suite.Scaled.grammar ()) ]
  in
  let rows = bench_layout_rows grammars in
  Bench_json.(
    write "BENCH_pr7.json"
      (Obj
         [
           ("pr", Int 7);
           ("experiment", Str "data-layout-csr-vs-boxed");
           ( "stages",
             Str "relations (construction), solve (two Digraph fixpoints)" );
           ( "unit",
             Str
               (Printf.sprintf "seconds per call, best of %d wall samples"
                  layout_reps) );
           ("grammars", List rows);
         ]));
  Format.printf "@.wrote BENCH_pr7.json (%d grammars)@." (List.length rows)

(* The CI smoke variant: one mid-sized suite grammar, no file write —
   it proves the stage runs and the arms agree on shape, not perf. *)
let bench_layout_smoke () =
  section "bench LY (smoke) — data layout, mini-c only";
  ignore (bench_layout_rows [ ("mini-c", (Registry.find "mini-c").grammar |> Lazy.force) ])

(* ------------------------------------------------------------------ *)
(* Serve — worker-pool throughput at 1/4/8 domains (BENCH_pr8.json)   *)
(* ------------------------------------------------------------------ *)

module G = Lalr_grammar.Grammar
module Reader = Lalr_grammar.Reader
module Pool = Lalr_serve.Pool
module Protocol = Lalr_serve.Protocol

(* Render a grammar back to the reader's surface syntax so the scaled
   generator's output can travel as an [Inline] request — the pool has
   no entry that accepts a Grammar.t directly, by design (the daemon
   only trusts bytes). Precedence-free grammars only, which the scaled
   family is. *)
let grammar_to_cfg g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "%token";
  for t = 1 to G.n_terminals g - 1 do
    Buffer.add_char buf ' ';
    Buffer.add_string buf (G.terminal_name g t)
  done;
  Printf.bprintf buf "\n%%start %s\n%%%%\n"
    (G.nonterminal_name g g.G.start);
  Array.iter
    (fun (p : G.production) ->
      if p.G.id <> 0 then begin
        Buffer.add_string buf (G.nonterminal_name g p.G.lhs);
        Buffer.add_string buf " :";
        Array.iter
          (fun s ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (G.symbol_name g s))
          p.G.rhs;
        Buffer.add_string buf " ;\n"
      end)
    g.G.productions;
  Buffer.contents buf

let serve_suite_names =
  [ "json"; "mini-pascal"; "mini-c"; "modula2"; "ada-subset"; "algol60" ]

(* [reps] copies of (every language grammar + the scaled-10x grammar
   inline): the same request stream every arm consumes. *)
let serve_workload ~reps scaled_cfg =
  List.concat
    (List.init reps (fun r ->
         List.map
           (fun n ->
             Protocol.Classify
               {
                 id = Printf.sprintf "%s-%d" n r;
                 source = Protocol.File ("suite:" ^ n);
                 budget = None;
               })
           serve_suite_names
         @ [
             Protocol.Classify
               {
                 id = Printf.sprintf "scaled-10x-%d" r;
                 source =
                   Protocol.Inline { text = scaled_cfg; format = `Cfg };
                 budget = None;
               };
           ]))

(* The sequential-batch baseline: the same per-request work the pool's
   workers do (load, engine, classification, persist), one request
   after another on the calling domain, no queue, no dispatch. *)
let serve_run_sequential ?store requests =
  List.iter
    (fun (req : Protocol.request) ->
      match req with
      | Protocol.Health _ -> ()
      | Protocol.Classify { source; _ } ->
          let g =
            match source with
            | Protocol.File spec ->
                let name = String.sub spec 6 (String.length spec - 6) in
                Lazy.force (Registry.find name).Registry.grammar
            | Protocol.Inline { text; _ } -> (
                match Reader.of_string_tolerant ~name:"bench" text with
                | Some g, [] -> g
                | _ -> failwith "serve bench: unreadable inline grammar")
          in
          let e = Engine.create ?store g in
          ignore
            (Engine.run_partial e (fun e ->
                 Engine.classification
                   ~with_lr1:(G.n_productions g <= Engine.lr1_limit)
                   e));
          Engine.persist e)
    requests

let serve_run_pool ~domains ?store requests =
  let pool =
    Pool.create
      {
        Pool.default_config with
        Pool.domains;
        queue_capacity = List.length requests + 1;
        store;
      }
  in
  let pending = Atomic.make (List.length requests) in
  List.iter
    (fun request ->
      match Pool.submit pool ~request ~respond:(fun _ -> Atomic.decr pending) with
      | `Accepted -> ()
      | `Overloaded | `Draining -> failwith "serve bench: request not admitted")
    requests;
  ignore (Pool.drain pool);
  assert (Atomic.get pending = 0)

let serve_samples = 3

let serve_wall f =
  let best = ref infinity in
  for _ = 1 to serve_samples do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    f ();
    let t = Unix.gettimeofday () -. t0 in
    if t < !best then best := t
  done;
  !best

let bench_serve_rows ~reps =
  let scaled_cfg = grammar_to_cfg (Lalr_suite.Scaled.grammar ()) in
  let requests = serve_workload ~reps scaled_cfg in
  let n = List.length requests in
  (* Warm-up: force the registry lazies and level the allocator so the
     first timed arm is not billed for one-time construction. *)
  serve_run_sequential requests;
  let seq = serve_wall (fun () -> serve_run_sequential requests) in
  let arms =
    List.map
      (fun domains ->
        let w = serve_wall (fun () -> serve_run_pool ~domains requests) in
        (domains, w))
      [ 1; 4; 8 ]
  in
  (requests, n, seq, arms)

let bench_serve () =
  section "bench SV — serve pool throughput, 1/4/8 domains vs sequential";
  let reps = 3 in
  let requests, n, seq, arms = bench_serve_rows ~reps in
  Format.printf "sequential: %d requests in %.3fs (%.1f req/s)@." n seq
    (float_of_int n /. seq);
  List.iter
    (fun (d, w) ->
      Format.printf "%d domain(s): %.3fs (%.1f req/s, %.2fx)@." d w
        (float_of_int n /. w) (seq /. w))
    arms;
  (* Warm-store pass at the widest arm: one cold fill, one warm run
     over the same shared store; the hit rate lands in the bench trace
     session's gauges as well as the JSON. *)
  let store_dir = Filename.temp_file "lalr_serve_bench_" "" in
  Sys.remove store_dir;
  let store = Store.create ~dir:store_dir in
  serve_run_pool ~domains:8 ~store requests;
  let cold = Store.stats store in
  let warm_wall =
    serve_wall (fun () -> serve_run_pool ~domains:8 ~store requests)
  in
  let warm = Store.stats store in
  let w_hits = warm.Store.hits - cold.Store.hits in
  let w_misses = warm.Store.misses - cold.Store.misses in
  let hit_rate =
    if w_hits + w_misses = 0 then 0.
    else float_of_int w_hits /. float_of_int (w_hits + w_misses)
  in
  let session = Trace.start () in
  Trace.gauge_int "serve.store.hits" w_hits;
  Trace.gauge_int "serve.store.misses" w_misses;
  Trace.gauge "serve.store.hit_rate" hit_rate;
  Trace.finish session;
  Format.printf
    "warm store (8 domains): %.3fs, hit rate %.2f (%d hits / %d misses)@."
    warm_wall hit_rate w_hits w_misses;
  Format.printf "trace gauges: %s@." (Trace.metrics_json session);
  let cores = Domain.recommended_domain_count () in
  Bench_json.(
    write "BENCH_pr8.json"
      (Obj
         [
           ("pr", Int 8);
           ("experiment", Str "serve-pool-throughput");
           ( "workload",
             Str
               (Printf.sprintf
                  "%d requests: %d x (%s) + %d x scaled-10x inline" n reps
                  (String.concat " " serve_suite_names)
                  reps) );
           ("cores", Int cores);
           ( "note",
             Str
               "throughput arms share one physical machine; speedups are \
                bounded above by the available cores, so judge the 4- and \
                8-domain arms against min(domains, cores)" );
           ("requests", Int n);
           ("sequential_s", Sec seq);
           ( "arms",
             List
               (List.map
                  (fun (d, w) ->
                    Obj
                      [
                        ("domains", Int d);
                        ("wall_s", Sec w);
                        ( "throughput_req_s",
                          Ratio (float_of_int n /. w) );
                        ("speedup_vs_sequential", Ratio (seq /. w));
                        ( "speedup_bound",
                          Int (min d cores) );
                      ])
                  arms) );
           ( "warm_store",
             Obj
               [
                 ("domains", Int 8);
                 ("wall_s", Sec warm_wall);
                 ("hits", Int w_hits);
                 ("misses", Int w_misses);
                 ("hit_rate", Ratio hit_rate);
               ] );
         ]));
  Format.printf "@.wrote BENCH_pr8.json (%d requests, %d cores)@." n cores

(* CI smoke: one rep, pool vs sequential shape only, no file write. *)
let bench_serve_smoke () =
  section "bench SV (smoke) — serve pool, one rep";
  let scaled_cfg = grammar_to_cfg (Lalr_suite.Scaled.grammar ()) in
  let requests = serve_workload ~reps:1 scaled_cfg in
  serve_run_sequential requests;
  serve_run_pool ~domains:2 requests;
  Format.printf "serve smoke: %d requests served@." (List.length requests)

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let all =
  [
    ("t1", bench_t1);
    ("t2", bench_t2);
    ("t3", bench_t3);
    ("t4", bench_t4);
    ("f1", bench_f1_f2);
    ("f2", bench_f1_f2);
    ("f3", bench_f3);
    ("f4", bench_f4);
    ("rt", bench_rt);
    ("store", bench_store);
    ("trace", bench_trace);
    ("layout", bench_layout);
    ("layout-smoke", bench_layout_smoke);
    ("serve", bench_serve);
    ("serve-smoke", bench_serve_smoke);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ ->
        [
          "t1"; "t2"; "t3"; "t4"; "f1"; "f3"; "f4"; "rt"; "store"; "trace";
          "layout";
        ]
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ()
      | None ->
          Format.eprintf "unknown bench %S (want: %s)@." name
            (String.concat ", " (List.map fst all));
          exit 2)
    requested;
  (* The paper-shaped static tables, for the record. *)
  section "paper-shaped tables (also via bin/experiments.exe)";
  E.run_all Format.std_formatter
