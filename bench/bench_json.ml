(* Tiny JSON emitter for the BENCH_pr*.json result files, so every
   bench stage writes its rows through one tool-produced serializer
   instead of hand-interpolated Printf templates. Values only — no
   parsing — and just the shapes the bench tables need. *)

type t =
  | Int of int
  | Sec of float  (** seconds, 9 decimals — the timing unit *)
  | Ratio of float  (** speedups and overheads, 3 decimals *)
  | Str of string
  | Obj of (string * t) list
  | List of t list

let rec emit buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Sec s -> Buffer.add_string buf (Printf.sprintf "%.9f" s)
  | Ratio r -> Buffer.add_string buf (Printf.sprintf "%.3f" r)
  | Str s -> Buffer.add_string buf (Printf.sprintf "%S" s)
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "%S: " k);
          emit buf v)
        fields;
      Buffer.add_char buf '}'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          emit buf v)
        items;
      Buffer.add_char buf ']'

(* Top level rendered one field per line (the committed files are
   diffed by humans); nested values stay compact. *)
let write path = function
  | Obj fields ->
      let oc = open_out path in
      output_string oc "{\n";
      let n = List.length fields in
      List.iteri
        (fun i (k, v) ->
          let tail = if i = n - 1 then "" else "," in
          match v with
          | List (_ :: _ as items) ->
              (* Row lists get one row per line: the committed files
                 are diffed by humans. *)
              Printf.fprintf oc "  %S: [\n" k;
              let m = List.length items in
              List.iteri
                (fun j item ->
                  let buf = Buffer.create 256 in
                  emit buf item;
                  Printf.fprintf oc "    %s%s\n" (Buffer.contents buf)
                    (if j = m - 1 then "" else ","))
                items;
              Printf.fprintf oc "  ]%s\n" tail
          | _ ->
              let buf = Buffer.create 256 in
              emit buf v;
              Printf.fprintf oc "  %S: %s%s\n" k (Buffer.contents buf) tail)
        fields;
      output_string oc "}\n";
      close_out oc
  | v ->
      let oc = open_out path in
      let buf = Buffer.create 256 in
      emit buf v;
      output_string oc (Buffer.contents buf);
      output_string oc "\n";
      close_out oc
