(** Conflict counterexamples: a concrete input prefix that drives the
    parser into a conflicted state.

    For a conflict in state [q] on terminal [t], the example is the
    shortest symbol path from state 0 to [q] (BFS over the automaton)
    with every nonterminal expanded to its minimal terminal yield,
    followed by [t]. On the dangling-else grammar this produces

    {v if expr then other . else v}

    — the minimal input that puts the parser in front of the choice.
    (It reaches the conflicted state, not necessarily a sentence where
    both actions can still succeed: full feasible-counterexample search
    à la Menhir is out of scope.) *)

type example = {
  prefix : string list;  (** terminal names consumed before the choice *)
  at : string;  (** the conflicted terminal *)
  state : int;
}

val min_yield : Grammar.t -> int -> string list
(** A minimal-length terminal string derivable from the nonterminal.
    Raises [Invalid_argument] on an unproductive nonterminal. The
    underlying fixpoint is memoised per grammar {e content}
    ({!Grammar.digest}, a small mutex-guarded size-capped cache, safe
    to query from any domain), so repeated queries are O(answer) —
    including across structurally equal copies of the grammar, such as
    one rehydrated from the artifact store. *)

val min_yields : Grammar.t -> int -> string list
(** The memoised yield function itself: two structurally equal
    grammars return the {e physically} same function (the regression
    oracle for the digest-keyed cache). Same raising behaviour as
    {!min_yield}. *)

val min_yield_opt : Grammar.t -> int -> string list option
(** Non-raising {!min_yield}: [None] on an unproductive
    nonterminal. *)

val shortest_prefix : Lalr_automaton.Lr0.t -> int -> Symbol.t list
(** Shortest (in symbols) transition path from state 0 to the state.
    Raises [Invalid_argument] for unreachable states (cannot happen on
    states of a built automaton). *)

val conflict : Lalr_tables.Tables.t -> Lalr_tables.Tables.conflict -> example

val pp : Format.formatter -> example -> unit
(** [if expr then if expr then other . else   (state 7)]. *)

val conflict_of :
  Lalr_engine.Engine.t -> Lalr_tables.Tables.conflict -> example
(** {!conflict} against the engine's memoized exact-LALR table. *)
