module Bitset = Lalr_sets.Bitset
module Lr0 = Lalr_automaton.Lr0
module Item = Lalr_automaton.Item
module Lalr = Lalr_core.Lalr
module Tables = Lalr_tables.Tables
module Classify = Lalr_tables.Classify

let grammar_summary ppf g =
  Format.fprintf ppf "@[<v>%a@," Grammar.pp g;
  Format.fprintf ppf
    "%d terminals (incl. $), %d nonterminals (incl. start'), %d productions \
     (incl. augmented), grammar size |G| = %d@]@."
    (Grammar.n_terminals g)
    (Grammar.n_nonterminals g)
    (Grammar.n_productions g)
    (Grammar.symbols_count g)

let pp_term_set g ppf set =
  Bitset.pp
    ~pp_elt:(fun ppf t -> Format.pp_print_string ppf (Grammar.terminal_name g t))
    ppf set

let automaton ?lookaheads ppf (a : Lr0.t) =
  let g = Lr0.grammar a in
  let tbl = Lr0.items a in
  Format.fprintf ppf "@[<v>";
  for s = 0 to Lr0.n_states a - 1 do
    let st = Lr0.state a s in
    Format.fprintf ppf "state %d" s;
    (match st.accessing with
    | Some sym -> Format.fprintf ppf "  (accessed on %s)" (Grammar.symbol_name g sym)
    | None -> ());
    Format.fprintf ppf "@,";
    let kernel = Array.to_list st.kernel in
    Array.iter
      (fun item ->
        Format.fprintf ppf "    %s%a@,"
          (if List.mem item kernel then "" else ". ")
          (Item.pp tbl) item)
      st.items;
    List.iter
      (fun (sym, target) ->
        Format.fprintf ppf "    %s → shift to state %d@,"
          (Grammar.symbol_name g sym)
          target)
      (Lr0.transitions a s);
    List.iter
      (fun pid ->
        Format.fprintf ppf "    reduce by %a"
          (Grammar.pp_production g)
          (Grammar.production g pid);
        (match lookaheads with
        | Some la ->
            Format.fprintf ppf "  on %a" (pp_term_set g)
              (Lalr.lookahead la ~state:s ~prod:pid)
        | None -> ());
        Format.fprintf ppf "@,")
      (Lr0.reductions a s);
    Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"

let relations ppf t =
  Format.fprintf ppf "%a" Lalr.pp t;
  let st = Lalr.stats t in
  Format.fprintf ppf
    "@.%d nonterminal transitions; |DR| = %d, reads edges = %d, includes \
     edges = %d, lookback edges = %d; %d reductions, Σ|LA| = %d@."
    st.Lalr.n_nt_transitions st.Lalr.dr_total st.Lalr.reads_edges
    st.Lalr.includes_edges st.Lalr.lookback_edges st.Lalr.n_reductions
    st.Lalr.la_total;
  List.iter
    (fun d ->
      match d with
      | Lalr.Reads_cycle members ->
          Format.fprintf ppf
            "reads cycle through %d transitions: the grammar is not LR(k) \
             for any k@."
            (List.length members)
      | Lalr.Includes_cycle members ->
          Format.fprintf ppf
            "includes cycle through %d transitions (Follow sets shared)@."
            (List.length members))
    (Lalr.diagnostics t)

let conflicts ppf tables =
  let g = Lr0.grammar (Tables.automaton tables) in
  match Tables.unresolved_conflicts tables with
  | [] ->
      let resolved =
        List.length (Tables.conflicts tables)
      in
      if resolved = 0 then Format.fprintf ppf "no conflicts@."
      else
        Format.fprintf ppf "no unresolved conflicts (%d settled by precedence)@."
          resolved
  | l ->
      Format.fprintf ppf "%d shift/reduce, %d reduce/reduce:@."
        (Tables.n_shift_reduce tables)
        (Tables.n_reduce_reduce tables);
      List.iter
        (fun c ->
          Format.fprintf ppf "  %a@." (Tables.pp_conflict g) c;
          Format.fprintf ppf "    reached on: %a@." Counterexample.pp
            (Counterexample.conflict tables c))
        l

let classification ppf (v : Classify.verdict) =
  Format.fprintf ppf "@[<v>%a@," Classify.pp v;
  Format.fprintf ppf "LR(0):    %b@," v.lr0;
  Format.fprintf ppf "SLR(1):   %b (%d s/r, %d r/r conflicts)@," v.slr1
    v.slr_sr_conflicts v.slr_rr_conflicts;
  Format.fprintf ppf "LALR(1):  %b (%d s/r, %d r/r conflicts)@," v.lalr1
    v.lalr_sr_conflicts v.lalr_rr_conflicts;
  Format.fprintf ppf "NQLALR:   %b (%d s/r, %d r/r conflicts)@," v.nqlalr1
    v.nq_sr_conflicts v.nq_rr_conflicts;
  if v.lr1_states > 0 then
    Format.fprintf ppf "LR(1):    %b (%d states vs %d LALR states)@," v.lr1
      v.lr1_states v.lr0_states;
  if v.not_lr_k then
    Format.fprintf ppf "not LR(k) for any k (reads relation is cyclic)@,";
  Format.fprintf ppf "@]"

(* The full `lalrgen report` body, engine-mediated: every artifact is a
   memoized slot, so a front end that also classifies or lints the same
   engine pays for the automaton and relations once. *)
let report ?(dump_states = false) ppf eng =
  let module Eng = Lalr_engine.Engine in
  grammar_summary ppf (Eng.grammar eng);
  let a = Eng.lr0 eng in
  let t = Eng.lalr eng in
  relations ppf t;
  conflicts ppf (Eng.tables eng);
  if dump_states || Lr0.n_states a <= 60 then automaton ~lookaheads:t ppf a
  else
    Format.fprintf ppf
      "(%d states: pass --dump-states for the full automaton)@."
      (Lr0.n_states a)
