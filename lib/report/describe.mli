(** Human-readable reports, in the tradition of yacc's [y.output] and
    menhir's [--explain]: per-state item sets, actions, look-ahead sets
    annotated onto reductions, conflicts, and the paper's relations for
    those who want to see [reads]/[includes] on their grammar. *)

val grammar_summary : Format.formatter -> Grammar.t -> unit
(** Counts plus the production listing. *)

val automaton :
  ?lookaheads:Lalr_core.Lalr.t ->
  Format.formatter ->
  Lalr_automaton.Lr0.t ->
  unit
(** All states with items and transitions; when [lookaheads] is given,
    each reduction is annotated with its LALR(1) look-ahead set. *)

val relations : Format.formatter -> Lalr_core.Lalr.t -> unit
(** The DR/reads/includes/Follow tables and the look-ahead sets, plus
    any cycle diagnostics. *)

val conflicts : Format.formatter -> Lalr_tables.Tables.t -> unit
(** Conflict report with per-state item context. Prints a "no
    conflicts" line when clean. *)

val classification : Format.formatter -> Lalr_tables.Classify.verdict -> unit
(** Multi-line version of {!Lalr_tables.Classify.pp} with the conflict
    counts of every method. *)

val report :
  ?dump_states:bool -> Format.formatter -> Lalr_engine.Engine.t -> unit
(** The whole [lalrgen report] output — summary, relations, conflicts,
    automaton (elided above 60 states unless [dump_states]) — drawn
    from the engine's memoized slots. *)
