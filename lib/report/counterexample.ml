module Lr0 = Lalr_automaton.Lr0
module Tables = Lalr_tables.Tables

type example = { prefix : string list; at : string; state : int }

(* Minimal terminal yield per nonterminal, by the usual fixpoint on
   yield length. Memoised per grammar (physical equality) below, so
   per-conflict callers — lint runs one query per conflict — pay the
   fixpoint once. *)
let compute_min_yields (g : Grammar.t) =
  let n = Grammar.n_nonterminals g in
  let infinity = max_int / 2 in
  let len = Array.make n infinity in
  let yield = Array.make n [] in
  let sat_add a b = if a >= infinity || b >= infinity then infinity else a + b in
  let rhs_len (rhs : Symbol.t array) =
    Array.fold_left
      (fun acc s ->
        match s with
        | Symbol.T _ -> sat_add acc 1
        | Symbol.N m -> sat_add acc len.(m))
      0 rhs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (p : Grammar.production) ->
        let l = rhs_len p.rhs in
        if l < len.(p.lhs) then begin
          len.(p.lhs) <- l;
          yield.(p.lhs) <-
            Array.to_list p.rhs
            |> List.concat_map (function
                 | Symbol.T t -> [ Grammar.terminal_name g t ]
                 | Symbol.N m -> yield.(m));
          changed := true
        end)
      g.productions
  done;
  fun nt ->
    if len.(nt) >= infinity then
      invalid_arg
        (Printf.sprintf "Counterexample.min_yield: %s is unproductive"
           (Grammar.nonterminal_name g nt))
    else yield.(nt)

(* A small move-to-front cache keyed by content digest: a yield is a
   function of grammar structure alone, so two structurally equal
   grammars — the caller's copy and the one rehydrated from the
   artifact store, say — must share an entry. Physical equality would
   miss there, recomputing the fixpoint for every store-served
   grammar.

   The cache is process-global (lint queries it once per conflict from
   whichever domain runs the job), so it is mutex-guarded and strictly
   size-capped: lookups promote the hit to the front, insertions evict
   from the tail, and the list can never exceed [cache_limit] entries.
   The fixpoint itself runs outside the lock; a losing racer adopts the
   winner's entry so structurally equal grammars still share one
   physical function. *)
let cache_lock = Mutex.create ()

let cache : (string * (int -> string list)) list ref =
  ref []
[@@lalr.allow
  D001 "mutex-guarded: every read/write of [cache] holds [cache_lock]"]

let cache_limit = 8

let min_yields g =
  let key = Grammar.digest g in
  (* Under [cache_lock]: find the entry and move it to the front. *)
  let find_and_promote () =
    match List.find_opt (fun (k, _) -> String.equal k key) !cache with
    | Some (_, f) ->
        cache :=
          (key, f)
          :: List.filter (fun (k, _) -> not (String.equal k key)) !cache;
        Some f
    | None -> None
  in
  match Mutex.protect cache_lock find_and_promote with
  | Some f -> f
  | None -> (
      let f = compute_min_yields g in
      Mutex.protect cache_lock (fun () ->
          match find_and_promote () with
          | Some winner -> winner
          | None ->
              let survivors =
                List.filteri (fun i _ -> i < cache_limit - 1) !cache
              in
              cache := (key, f) :: survivors;
              f))

let min_yield g nt = min_yields g nt

let min_yield_opt g nt =
  match min_yields g nt with
  | ys -> Some ys
  | exception Invalid_argument _ -> None

let shortest_prefix (a : Lr0.t) target =
  let n = Lr0.n_states a in
  let prev = Array.make n None in
  let visited = Array.make n false in
  visited.(0) <- true;
  let q = Queue.create () in
  Queue.add 0 q;
  let found = ref (target = 0) in
  while (not !found) && not (Queue.is_empty q) do
    let s = Queue.pop q in
    List.iter
      (fun (sym, t) ->
        if not visited.(t) then begin
          visited.(t) <- true;
          prev.(t) <- Some (s, sym);
          if t = target then found := true;
          Queue.add t q
        end)
      (Lr0.transitions a s)
  done;
  if not (!found || target = 0) then
    invalid_arg "Counterexample.shortest_prefix: unreachable state";
  let rec walk s acc =
    match prev.(s) with
    | None -> acc
    | Some (p, sym) -> walk p (sym :: acc)
  in
  walk target []

let conflict tables (c : Tables.conflict) =
  let a = Tables.automaton tables in
  let g = Lr0.grammar a in
  let yields = min_yields g in
  let prefix =
    shortest_prefix a c.Tables.state
    |> List.concat_map (function
         | Symbol.T t -> [ Grammar.terminal_name g t ]
         | Symbol.N n -> yields n)
  in
  {
    prefix;
    at = Grammar.terminal_name g c.Tables.terminal;
    state = c.Tables.state;
  }

let pp ppf e =
  Format.fprintf ppf "%s . %s   (state %d)"
    (String.concat " " e.prefix)
    e.at e.state

let conflict_of eng = conflict (Lalr_engine.Engine.tables eng)
