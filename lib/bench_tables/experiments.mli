(** The paper's tables, regenerated.

    Each [tN] function computes the rows for one experiment of the
    index in DESIGN.md and prints them as an aligned text table;
    [run_all] emits every static table. Timing-based experiments (T4,
    F1–F3) live in [bench/main.ml] on top of Bechamel; T4's
    single-shot wall-clock variant is {!t4_wallclock} so the
    experiments binary can print a complete set without the Bechamel
    dependency. *)

val t1 : Format.formatter -> unit
(** T1 — grammar suite statistics: terminals, nonterminals,
    productions, |G|, LR(0) states, nonterminal transitions. *)

val t2 : Format.formatter -> unit
(** T2 — relation sizes: Σ|DR|, reads/includes/lookback edge counts,
    nontrivial SCCs of reads and includes. *)

val t3 : Format.formatter -> unit
(** T3 — look-ahead statistics: reductions, Σ|LA|, average |LA|,
    default-reduction states, propagation passes and edges (the yacc
    baseline's work measure). *)

val t4_wallclock : ?repeats:int -> Format.formatter -> unit
(** T4 — method timing (single-shot wall clock, median of [repeats],
    default 5): DeRemer–Pennello vs yacc propagation vs LR(1)-merge vs
    SLR, per language grammar, with speedup factors. The statistically
    careful version is bench target [t4]. *)

val t5 : Format.formatter -> unit
(** T5 — parser-class comparison: LR(0)/SLR/LALR/NQLALR/LR(1) verdicts,
    conflict counts per method, LALR vs canonical state counts. *)

val f1_series :
  unit -> (string * (int * int * float array) list) list
(** F1 — scaling data: for each family, a list of
    [(parameter, grammar size |G|, times)] where [times] is the
    per-method median seconds array in the order
    [dp; propagation; lr1_merge; slr]. Printed by the bench binary. *)

val run_all : Format.formatter -> unit
(** T1, T2, T3, T5 and the wall-clock T4. *)

val engines : unit -> (string * Lalr_engine.Engine.t) list
(** The per-language {!Lalr_engine.Engine}s every table draws from —
    one per grammar per process, so e.g. [run_all] builds each LR(0)
    automaton and relation set once. Also the benchmark harness's
    source of prebuilt artifacts. *)

val timings : Format.formatter -> unit
(** Per-grammar engine stage timings ([Engine.pp_stats]) accumulated
    over whatever tables have run in this process. *)

val t6 : Format.formatter -> unit
(** T6 — ACTION-table compression statistics: dense entries vs packed
    comb slots, exact and yacc modes. A reproduction-era metric (table
    size drove LALR adoption as much as generation time). *)
