module Bitset = Lalr_sets.Bitset
module Lr0 = Lalr_automaton.Lr0
module Lalr = Lalr_core.Lalr
module Slr = Lalr_baselines.Slr
module Lr1 = Lalr_baselines.Lr1
module Propagation = Lalr_baselines.Propagation
module Nqlalr = Lalr_baselines.Nqlalr
module Tables = Lalr_tables.Tables
module Classify = Lalr_tables.Classify
module Registry = Lalr_suite.Registry
module Family = Lalr_suite.Family
module Engine = Lalr_engine.Engine

(* ------------------------------------------------------------------ *)
(* Table rendering                                                    *)
(* ------------------------------------------------------------------ *)

let print_table ppf ~title ~header rows =
  let ncols = List.length header in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let pad i s = Printf.sprintf "%-*s" widths.(i) s in
  let rule =
    String.concat "-+-"
      (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  Format.fprintf ppf "@.%s@.%s@." title (String.make (String.length title) '=');
  Format.fprintf ppf "%s@."
    (String.concat " | " (List.mapi pad header));
  Format.fprintf ppf "%s@." rule;
  List.iter
    (fun row ->
      Format.fprintf ppf "%s@." (String.concat " | " (List.mapi pad row)))
    rows

(* One engine per language grammar, shared by every table of a process:
   T1's automaton is T2's, T2's relations are T3's, and so on — each
   stage of the pipeline is paid exactly once per grammar no matter how
   many experiments run. *)
let engines_l =
  lazy
    (List.map
       (fun (e : Registry.entry) -> (e.name, Engine.create (Lazy.force e.grammar)))
       Registry.languages)

let engines () = Lazy.force engines_l

(* ------------------------------------------------------------------ *)
(* T1                                                                 *)
(* ------------------------------------------------------------------ *)

let t1 ppf =
  let rows =
    List.map
      (fun (name, eng) ->
        let g = Engine.grammar eng in
        let a = Engine.lr0 eng in
        let states, kernel_items, transitions = Lr0.size_report a in
        [
          name;
          string_of_int (Grammar.n_terminals g - 1);
          string_of_int (Grammar.n_nonterminals g - 1);
          string_of_int (Grammar.n_productions g - 1);
          string_of_int (Grammar.symbols_count g);
          string_of_int states;
          string_of_int kernel_items;
          string_of_int transitions;
          string_of_int (Lr0.n_nt_transitions a);
        ])
      (engines ())
  in
  print_table ppf ~title:"T1 — grammar suite statistics"
    ~header:
      [
        "grammar"; "terms"; "nonterms"; "prods"; "|G|"; "LR0 states";
        "kernel items"; "transitions"; "nt transitions";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* T2                                                                 *)
(* ------------------------------------------------------------------ *)

let t2 ppf =
  let rows =
    List.map
      (fun (name, eng) ->
        let s = Lalr.stats (Engine.lalr eng) in
        [
          name;
          string_of_int s.Lalr.n_nt_transitions;
          string_of_int s.Lalr.dr_total;
          string_of_int s.Lalr.reads_edges;
          string_of_int s.Lalr.includes_edges;
          string_of_int s.Lalr.lookback_edges;
          string_of_int (List.length s.Lalr.reads_sccs);
          string_of_int (List.length s.Lalr.includes_sccs);
        ])
      (engines ())
  in
  print_table ppf ~title:"T2 — relation sizes"
    ~header:
      [
        "grammar"; "nt trans"; "Σ|DR|"; "reads"; "includes"; "lookback";
        "reads cycles"; "includes cycles";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* T3                                                                 *)
(* ------------------------------------------------------------------ *)

let t3 ppf =
  let rows =
    List.map
      (fun (name, eng) ->
        let s = Lalr.stats (Engine.lalr eng) in
        let ps = Propagation.stats (Engine.propagation eng) in
        let tbl = Engine.tables eng in
        let defaults =
          Array.fold_left
            (fun acc d -> if d >= 0 then acc + 1 else acc)
            0
            (Tables.default_reductions tbl)
        in
        let avg =
          if s.Lalr.n_reductions = 0 then 0.
          else float_of_int s.Lalr.la_total /. float_of_int s.Lalr.n_reductions
        in
        [
          name;
          string_of_int s.Lalr.n_reductions;
          string_of_int s.Lalr.la_total;
          Printf.sprintf "%.2f" avg;
          string_of_int defaults;
          string_of_int ps.Propagation.spontaneous;
          string_of_int ps.Propagation.propagate_edges;
          string_of_int ps.Propagation.passes;
        ])
      (engines ())
  in
  print_table ppf ~title:"T3 — look-ahead set statistics"
    ~header:
      [
        "grammar"; "reductions"; "Σ|LA|"; "avg |LA|"; "default-red states";
        "yacc spont."; "yacc prop. edges"; "yacc passes";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Timing helpers                                                     *)
(* ------------------------------------------------------------------ *)

let median a =
  let a = Array.copy a in
  Array.sort compare a;
  a.(Array.length a / 2)

let time_once f =
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  Unix.gettimeofday () -. t0

let time_median ~repeats f =
  median (Array.init repeats (fun _ -> time_once f))

(* The four methods, each timed end-to-end from a prebuilt LR(0)
   automaton (LR(1)-merge builds its own machine — that IS its cost).
   The timed thunks are the raw computations on purpose: the engine
   memoizes around them, never inside them. *)
let method_times_on ~repeats a g =
  let dp = time_median ~repeats (fun () -> Lalr.compute a) in
  let prop = time_median ~repeats (fun () -> Propagation.compute a) in
  let merge =
    time_median ~repeats (fun () ->
        Lr1.merged_lookaheads (Lr1.build g) a)
  in
  let slr = time_median ~repeats (fun () -> Slr.compute a) in
  (dp, prop, merge, slr)

let method_times ~repeats g = method_times_on ~repeats (Lr0.build g) g

let t4_wallclock ?(repeats = 5) ppf =
  let rows =
    List.map
      (fun (name, eng) ->
        let dp, prop, merge, slr =
          method_times_on ~repeats (Engine.lr0 eng) (Engine.grammar eng)
        in
        [
          name;
          Printf.sprintf "%.3f" (dp *. 1e3);
          Printf.sprintf "%.3f" (prop *. 1e3);
          Printf.sprintf "%.3f" (merge *. 1e3);
          Printf.sprintf "%.3f" (slr *. 1e3);
          Printf.sprintf "%.1fx" (prop /. dp);
          Printf.sprintf "%.1fx" (merge /. dp);
        ])
      (engines ())
  in
  print_table ppf
    ~title:
      (Printf.sprintf
         "T4 — look-ahead computation time (ms, median of %d; from a built \
          LR(0) machine)"
         repeats)
    ~header:
      [
        "grammar"; "DeRemer-Pennello"; "yacc propagation"; "LR(1)+merge";
        "SLR FOLLOW"; "prop/DP"; "merge/DP";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* T5                                                                 *)
(* ------------------------------------------------------------------ *)

let t5 ppf =
  let b v = if v then "yes" else "no" in
  let rows =
    List.map
      (fun (name, eng) ->
        let v = Engine.classification eng in
        [
          name;
          b v.Classify.lr0;
          Printf.sprintf "%s (%d/%d)" (b v.Classify.slr1)
            v.Classify.slr_sr_conflicts v.Classify.slr_rr_conflicts;
          Printf.sprintf "%s (%d/%d)" (b v.Classify.lalr1)
            v.Classify.lalr_sr_conflicts v.Classify.lalr_rr_conflicts;
          Printf.sprintf "%s (%d/%d)" (b v.Classify.nqlalr1)
            v.Classify.nq_sr_conflicts v.Classify.nq_rr_conflicts;
          b v.Classify.lr1;
          string_of_int v.Classify.lr0_states;
          (if v.Classify.lr1_states > 0 then string_of_int v.Classify.lr1_states
           else "-");
        ])
      (engines ())
  in
  print_table ppf
    ~title:"T5 — parser classes and conflicts (s/r / r/r per method)"
    ~header:
      [
        "grammar"; "LR(0)"; "SLR(1)"; "LALR(1)"; "NQLALR"; "LR(1)";
        "LALR states"; "LR(1) states";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* F1                                                                 *)
(* ------------------------------------------------------------------ *)

let f1_series () =
  let series family params =
    List.map
      (fun n ->
        let g = family n in
        let dp, prop, merge, slr = method_times ~repeats:3 g in
        (n, Grammar.symbols_count g, [| dp; prop; merge; slr |]))
      params
  in
  [
    ("expr-levels", series Family.expr_levels [ 2; 4; 8; 16; 32; 64 ]);
    ("statement-lists", series Family.statement_lists [ 2; 4; 8; 16; 32 ]);
    ("nullable-chain", series Family.nullable_chain [ 2; 4; 8; 16; 24 ]);
  ]

(* ------------------------------------------------------------------ *)
(* T6                                                                 *)
(* ------------------------------------------------------------------ *)

let t6 ppf =
  let module Compact = Lalr_tables.Compact in
  let rows =
    List.map
      (fun (name, eng) ->
        let tbl = Engine.tables eng in
        let exact = Compact.stats (Compact.compress tbl) in
        let yacc = Compact.stats (Compact.compress ~mode:Compact.Yacc tbl) in
        [
          name;
          string_of_int exact.Compact.dense_entries;
          string_of_int exact.Compact.packed_entries;
          Printf.sprintf "%.1fx" exact.Compact.compression_ratio;
          string_of_int yacc.Compact.packed_entries;
          string_of_int yacc.Compact.default_states;
          Printf.sprintf "%.1fx" yacc.Compact.compression_ratio;
        ])
      (engines ())
  in
  print_table ppf
    ~title:
      "T6 — ACTION table compression (comb/row-displacement, per \
       DESIGN.md extension)"
    ~header:
      [
        "grammar"; "dense entries"; "exact packed"; "exact ratio";
        "yacc packed"; "yacc defaults"; "yacc ratio";
      ]
    rows

let run_all ppf =
  t1 ppf;
  t2 ppf;
  t3 ppf;
  t4_wallclock ppf;
  t5 ppf;
  t6 ppf

let timings ppf =
  Format.fprintf ppf "@.engine stage timings (per-grammar, cumulative over \
                      all tables run so far)@.";
  List.iter
    (fun (_, eng) -> Format.fprintf ppf "%a@." Engine.pp_stats eng)
    (engines ())
