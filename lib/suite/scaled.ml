(* A deterministic LCG step (the Numerical Recipes 64-bit multiplier,
   which fits OCaml's 63-bit int) with an output xorshift: good enough
   scrambling for picking structure parameters, no dependence on
   [Random]'s global state (the grammar for a given seed must never
   drift). *)
let mix st =
  st := ((!st * 2862933555777941757) + 3037000493) land max_int;
  let z = !st in
  (z lxor (z lsr 29)) land max_int

let pick st lo hi = lo + (mix st mod (hi - lo + 1))

let default_seed = 0xd09e
(* 180 units lands the default grammar at 11941 nonterminal
   transitions — 10.07x mini-c's 1186, the suite's largest. *)
let default_units = 180

let grammar ?(seed = default_seed) ?(units = default_units) () =
  if units < 1 then invalid_arg "Scaled.grammar: need units >= 1";
  let st = ref seed in
  let rules = ref [] in
  let terminals = ref [ "lparen"; "rparen"; "semi"; "comma"; "id"; "num" ] in
  let term t = terminals := t :: !terminals in
  let rule lhs rhs = rules := (lhs, rhs, None) :: !rules in
  (* Top level: a keyword-dispatched statement language. Every unit's
     statements open with that unit's own keyword, so the dispatch
     stays conflict-free no matter how the units' internals vary. *)
  rule "s" [ "stmts" ];
  rule "stmts" [ "stmt" ];
  rule "stmts" [ "stmts"; "stmt" ];
  for u = 1 to units do
    let p fmt = Printf.sprintf fmt u in
    let kw = p "kw%d" in
    let expr = p "e%d_" in
    let args = p "args%d" in
    let opt k = Printf.sprintf "opt%d_%d" u k in
    term kw;
    rule "stmt" [ kw; "lparen"; expr ^ "0"; "rparen"; "semi" ];
    (* An operator-precedence expression tower: [levels] chained
       nonterminals, each with a unit-local operator terminal. This is
       where most states and nonterminal transitions come from. *)
    let levels = pick st 3 8 in
    for i = 0 to levels - 1 do
      let lower = if i = levels - 1 then p "atom%d" else expr ^ string_of_int (i + 1) in
      let op = Printf.sprintf "op%d_%d" u i in
      term op;
      rule (expr ^ string_of_int i) [ expr ^ string_of_int i; op; lower ];
      rule (expr ^ string_of_int i) [ lower ]
    done;
    rule (p "atom%d") [ "id" ];
    rule (p "atom%d") [ "num" ];
    rule (p "atom%d") [ "lparen"; expr ^ "0"; "rparen" ];
    (* A call form with a nullable-suffix parameter list: [width]
       trailing optional slots make the suffix nullable at every
       position, multiplying includes edges (the Follow load). Each
       slot gets its own separator terminal — a shared one would make
       the slot sequence ambiguous. *)
    rule (p "atom%d") [ kw; "lparen"; args; "rparen" ];
    let width = pick st 2 5 in
    rule args [];
    rule args ((expr ^ "0") :: List.init width (fun k -> opt (k + 1)));
    for k = 1 to width do
      let sep = Printf.sprintf "sep%d_%d" u k in
      term sep;
      rule (opt k) [];
      rule (opt k) [ sep; expr ^ "0" ]
    done
  done;
  Grammar.make
    ~name:(Printf.sprintf "scaled-%x-%d" seed units)
    ~terminals:(List.rev !terminals)
    ~start:"s" ~rules:(List.rev !rules) ()
