type expectation = {
  lr0 : bool;
  slr1 : bool;
  lalr1 : bool;
  lr1 : bool;
  lalr_sr : int;
  lalr_rr : int;
  not_lr_k : bool;
}

type entry = {
  name : string;
  grammar : Grammar.t Lazy.t;
  expected : expectation;
  description : string;
}

let exp ?(lr0 = false) ?(slr1 = false) ?(lalr1 = false) ?(lr1 = false)
    ?(lalr_sr = 0) ?(lalr_rr = 0) ?(not_lr_k = false) () =
  { lr0; slr1; lalr1; lr1; lalr_sr; lalr_rr; not_lr_k }

let classics =
  [
    {
      name = "lr0";
      grammar = Classics.lr0;
      expected = exp ~lr0:true ~slr1:true ~lalr1:true ~lr1:true ();
      description = "a bottom-of-hierarchy LR(0) list grammar";
    };
    {
      name = "expr";
      grammar = Classics.expr;
      expected = exp ~slr1:true ~lalr1:true ~lr1:true ();
      description = "dragon-book unambiguous expression grammar";
    };
    {
      name = "expr-prec";
      grammar = Classics.expr_prec;
      expected = exp ~lalr_sr:0 ();
      description =
        "ambiguous expression grammar fully disambiguated by precedence";
    };
    {
      name = "expr-ll";
      grammar = Classics.expr_ll;
      expected = exp ~slr1:true ~lalr1:true ~lr1:true ();
      description = "ε-heavy LL(1) expression grammar (dragon 4.28)";
    };
    {
      name = "assign";
      grammar = Classics.assign;
      expected = exp ~lalr1:true ~lr1:true ();
      description = "LALR(1) but not SLR(1) (dragon 4.34)";
    };
    {
      name = "lr1-not-lalr";
      grammar = Classics.lr1_not_lalr;
      expected = exp ~lr1:true ~lalr_rr:2 ();
      description = "LR(1) but not LALR(1): core merge creates r/r";
    };
    {
      name = "not-lr-k";
      grammar = Classics.not_lr_k;
      expected = exp ~not_lr_k:true ~lalr_sr:2 ();
      description = "reads cycle: not LR(k) for any k";
    };
    {
      name = "dangling-else";
      grammar = Classics.dangling_else;
      expected = exp ~lalr_sr:1 ();
      description = "the shift/reduce conflict everyone knows";
    };
    {
      name = "ambiguous";
      grammar = Classics.ambiguous;
      expected = exp ~lalr_sr:5 ~lalr_rr:1 ~not_lr_k:true ();
      description = "s → s s | a | ε: hopelessly ambiguous";
    };
    {
      name = "nqlalr-gap";
      grammar = Classics.nqlalr_gap;
      expected = exp ~lalr1:true ~lr1:true ();
      description =
        "LALR(1)-clean but NQLALR reports a spurious r/r (paper §7)";
    };
    {
      name = "lalr2";
      grammar = Classics.lalr2;
      expected = exp ~lalr_rr:1 ();
      description = "LALR(2) but not LALR(1): r/r that a 2-token window fixes";
    };
    {
      name = "right-nullable";
      grammar = Classics.right_nullable;
      expected = exp ~slr1:true ~lalr1:true ~lr1:true ();
      description = "nullable suffixes stressing the includes relation";
    };
  ]

let languages =
  [
    {
      name = "json";
      grammar = Json.grammar;
      expected = exp ~lr0:true ~slr1:true ~lalr1:true ~lr1:true ();
      description = "RFC 8259 JSON";
    };
    {
      name = "mini-pascal";
      grammar = Mini_pascal.grammar;
      expected = exp ~lalr1:true ~lr1:true ();
      description = "Pascal subset (Jensen–Wirth lineage)";
    };
    {
      name = "mini-c";
      grammar = Mini_c.grammar;
      expected = exp ~lalr_sr:1 ();
      description = "ANSI-C-style subset, dangling else left in";
    };
    {
      name = "modula2";
      grammar = Modula2.grammar;
      expected = exp ~slr1:true ~lalr1:true ~lr1:true ();
      description = "Modula-2 subset — designed for easy parsing, lands SLR(1)";
    };
    {
      name = "ada-subset";
      grammar = Ada_subset.grammar;
      expected = exp ~lalr1:true ~lr1:true ();
      description = "Ada 83 subset (the paper's era stress test)";
    };
    {
      name = "algol60";
      grammar = Algol60.grammar;
      expected = exp ~lalr1:true ~lr1:true ();
      description = "ALGOL 60 subset from the Revised Report";
    };
  ]

let all = classics @ languages

let find name = List.find (fun e -> e.name = name) all
let find_opt name = List.find_opt (fun e -> e.name = name) all
