(** A seeded, scale-calibrated grammar for the data-layout bench.

    The curated suite tops out at mini-c (1186 nonterminal
    transitions) — small enough that the relations+solve hot path
    finishes in microseconds and layout effects drown in noise. This
    generator builds a keyword-dispatched statement language out of
    [units] independent blocks, each a pseudo-randomly parameterised
    operator-precedence expression tower with a nullable-suffix call
    form; the defaults are calibrated to roughly 10× mini-c.

    Deterministic: the same [seed] and [units] always produce the same
    grammar (an internal splitmix step, not [Random]), so benchmark
    runs are comparable across sessions. The result is conflict-free
    LALR(1) by construction (each unit is fenced by its own keyword). *)

val default_seed : int

val default_units : int
(** Calibrated so the default grammar lands near 10× mini-c's
    nonterminal-transition count (see the size-band pin in
    [test/test_suite.ml]). *)

(** Raises [Invalid_argument] when [units < 1]. *)
val grammar : ?seed:int -> ?units:int -> unit -> Grammar.t
[@@lalr.allow
  D002
    "bench-calibration knob: units < 1 is a programmer error at a \
     bench/test call site, not a recoverable condition — Invalid_argument \
     is the whole contract"]
