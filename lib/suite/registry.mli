(** The benchmark-suite registry: every curated grammar with its
    expected classification, for tests and the experiment tables.

    Expected values were cross-validated by three independent
    look-ahead computations (DeRemer–Pennello, canonical-LR(1) merging,
    yacc-style propagation) and frozen here; a change in any method that
    breaks agreement fails the suite tests. *)

type expectation = {
  lr0 : bool;
  slr1 : bool;
  lalr1 : bool;
  lr1 : bool;
  lalr_sr : int;  (** unresolved shift/reduce under exact LALR(1) sets *)
  lalr_rr : int;
  not_lr_k : bool;  (** reads-cycle diagnostic expected *)
}

type entry = {
  name : string;
  grammar : Grammar.t Lazy.t;
  expected : expectation;
  description : string;
}

val all : entry list
(** Every curated grammar, small classics first, languages last. *)

val languages : entry list
(** The realistic language grammars only (json, mini-pascal, mini-c,
    ada-subset, algol60) — the T1–T5 workload. *)

val find : string -> entry
(** Raises [Not_found]. *)

val find_opt : string -> entry option
