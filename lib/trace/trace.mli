(** Structured tracing and metrics — the observability backbone.

    The paper's claim is {e efficiency}: the Digraph/SCC solver makes
    look-ahead computation effectively linear in the sizes of the
    [reads]/[includes]/[lookback] relations. Wall-clock timings alone
    cannot check a complexity argument; this layer records the
    quantities the argument is about — relation cardinalities, SCC
    structure, traversal stack depth, set-union operation counts —
    alongside a span tree of where the time went.

    {2 The disarmed-cost contract}

    Tracing is ambient and off by default, following the
    {!Lalr_guard.Faultpoint} pattern: every probe ({!with_span},
    {!count}, {!gauge}, {!observe}, {!instant}) starts with a single
    read of one domain-local cell and returns immediately when no
    session is armed. No allocation, no closure evaluation, no clock
    read.
    Attribute thunks are only called while a session is armed.
    Instrumented code therefore stays in the hot path unconditionally;
    [bench/main.exe -- trace] measures the armed and disarmed costs.

    {2 Sessions}

    {!start} arms one per-domain session; {!finish} closes any spans
    still
    open and disarms it. Probes fired while no session is armed are
    lost by design. The clock is injectable so tests produce
    byte-deterministic output; the default is [Unix.gettimeofday]
    (best available without extra dependencies — used only for
    intra-process durations, never compared across processes).

    {2 Sinks}

    One recording serves three formats:
    - {!Chrome}: trace-event JSON ([{"traceEvents":[...]}]), loadable
      in Perfetto / [chrome://tracing]; spans as B/E pairs, counters
      as C samples, instants as i events.
    - {!Jsonl}: one JSON object per line — span begin/end, instants,
      counter samples, then one [metric] line per final key.
    - {!Metrics}: a flat, sorted [key value] text dump (histograms as
      [key\[bucket\] count] lines). *)

type value = Int of int | Float of float | Str of string | Bool of bool
type attr = string * value

type format = Chrome | Jsonl | Metrics

val format_of_name : string -> format option
(** ["chrome"], ["jsonl"] or ["metrics"]. *)

val format_name : format -> string

val infer_format : string -> format
(** From a file name: [.jsonl] → Jsonl, [.txt]/[.metrics] → Metrics,
    anything else (canonically [.json]) → Chrome. *)

type session

val default_clock : unit -> float
(** [Unix.gettimeofday], in seconds. *)

val start : ?clock:(unit -> float) -> unit -> session
(** Arms the calling domain's session (replacing any armed one). All
    probes on this domain record into it until {!finish}; each domain
    has its own session slot (the serve model: one session per
    worker). *)

val finish : session -> unit
(** Emits End events for spans still open (in LIFO order), then
    disarms the session if it is the armed one. Idempotent. *)

val active : unit -> session option
val enabled : unit -> bool

(** {2 Probes} — each is one domain-local read when no session is
    armed. *)

val with_span : ?attrs:(unit -> attr list) -> string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a named span. Nesting is the dynamic call
    nesting; the End event is emitted even when the thunk raises. *)

val instant : ?attrs:(unit -> attr list) -> string -> unit
(** A point event (e.g. a faultpoint firing, a store quarantine). *)

val count : ?n:int -> string -> unit
(** Adds [n] (default 1) to a cumulative counter, and records a
    counter sample event carrying the new total. *)

val gauge : string -> float -> unit
(** Sets a gauge to an absolute value (last write wins). *)

val gauge_int : string -> int -> unit

val observe : string -> int -> unit
(** Adds one sample to a histogram (exact bucket per distinct value —
    for small {e discrete} distributions, e.g. SCC sizes). Cardinality
    is capped: after {!hist_cap} distinct buckets, previously unseen
    values collapse into one overflow bucket that every sink renders
    as ["overflow"] (sorted last). Continuous measurements (latencies)
    belong in {!Metrics.observe}'s fixed-boundary histograms. *)

val hist_cap : int
(** Maximum distinct exact buckets per histogram (64). *)

val overflow_bucket : int
(** The sentinel bucket ([max_int]) absorbing values first seen after
    the cap; {!metrics} reports it like any other bucket. *)

(** {2 Reading a session back} *)

type metric =
  | Counter of int
  | Gauge of float
  | Hist of (int * int) list  (** (bucket value, sample count), sorted *)

val metrics : session -> (string * metric) list
(** Final metric values, sorted by key. *)

val find_counter : session -> string -> int
(** 0 when the counter never fired. *)

val n_events : session -> int
(** Recorded event count (span begins/ends, instants, counter
    samples) — 0 proves a code path emitted nothing. *)

val write : session -> format -> out_channel -> unit
(** Renders the session in the given format. Call after {!finish} (an
    unfinished session may have unbalanced spans in Chrome output). *)

val to_string : session -> format -> string

val metrics_json : session -> string
(** The metrics alone as one JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{"k":{"bucket":n}}}] —
    the ["metrics"] member of [lalrgen stats] output. *)

val json_escape : string -> string
(** Shared JSON string escaping (also used by the CLI emitters). *)
