(* Sharded, mergeable metrics registry (DESIGN.md §17).

   One shard per writer domain; values inside a shard are Atomics so
   the owning domain updates them without taking a lock once the cell
   exists. The shard mutex guards only the Hashtbl *structure*:
   registration (adding a cell) and snapshot iteration. The unlocked
   [Hashtbl.find_opt] on the probe fast path is sound because on a
   single-writer shard only the owner adds cells (and does so under
   the mutex, which the scraping thread also holds while iterating);
   a shard written by several sys-threads of one domain must have its
   cells pre-registered (see the .mli contract — lib/serve does this
   for the listener shard). *)

type labels = (string * string) list

let canon_labels = function
  | [] -> []
  | [ _ ] as l -> l
  | l -> List.sort (fun (a, _) (b, _) -> compare a b) l

type hist = {
  boundaries : float array;  (* ascending; +Inf bucket is implicit *)
  buckets : int Atomic.t array;  (* length boundaries + 1; per-bucket *)
  sum_ns : int Atomic.t;  (* sum of observations, integer nanoseconds *)
}

type cell =
  | Counter_cell of int Atomic.t
  | Gauge_cell of float Atomic.t
  | Hist_cell of hist

type shard = {
  mu : Mutex.t;
  cells : (string * labels, cell) Hashtbl.t;
}

type t = { shards : shard array }

(* Prometheus client_golang's default latency boundaries, in seconds:
   a good SLO ladder from 0.5ms to 10s. A function returning a fresh
   array — not a module-level array a caller could mutate under every
   histogram at once (and a D001 inventory cell if it were). Only
   called when a histogram cell is first created, never per probe. *)
let default_boundaries () =
  [| 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5;
     1.0; 2.5; 5.0; 10.0 |]

let new_shard () = { mu = Mutex.create (); cells = Hashtbl.create 64 }

let create ~shards =
  { shards = Array.init (max 1 shards) (fun _ -> new_shard ()) }

let n_shards t = Array.length t.shards

let shard t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg
      (Printf.sprintf "Metrics.shard: %d out of range (%d shards)" i
         (Array.length t.shards))
  else t.shards.(i)

let cell_of shard name labels make =
  let key = (name, labels) in
  match Hashtbl.find_opt shard.cells key with
  | Some c -> c
  | None ->
      Mutex.lock shard.mu;
      let c =
        match Hashtbl.find_opt shard.cells key with
        | Some c -> c
        | None ->
            let c = make () in
            Hashtbl.add shard.cells key c;
            c
      in
      Mutex.unlock shard.mu;
      c

(* Probes are total: a kind clash (observing into a name registered as
   a counter) drops the sample rather than raising — telemetry must
   never take the serving path down. *)

let inc shard ?(labels = []) ?(n = 1) name =
  match
    cell_of shard name (canon_labels labels) (fun () ->
        Counter_cell (Atomic.make 0))
  with
  | Counter_cell c -> ignore (Atomic.fetch_and_add c n)
  | _ -> ()

let set_gauge shard ?(labels = []) name v =
  match
    cell_of shard name (canon_labels labels) (fun () ->
        Gauge_cell (Atomic.make 0.))
  with
  | Gauge_cell g -> Atomic.set g v
  | _ -> ()

(* Round to nearest, not truncate: the exposition writer prints sums
   as exact decimal nanoseconds, and the parser comes back through a
   float — rounding makes write→parse the identity for any sum below
   ~2^51 ns (weeks of accumulated latency). *)
let ns_of_seconds v =
  let x = v *. 1e9 in
  if Float.is_nan x then 0
  else if x >= 4.0e18 then max_int
  else if x <= -4.0e18 then min_int
  else int_of_float (Float.round x)

let observe shard ?(labels = []) ?boundaries name v =
  match
    cell_of shard name (canon_labels labels) (fun () ->
        let boundaries =
          match boundaries with
          | Some b -> b
          | None -> default_boundaries ()
        in
        Hist_cell
          {
            boundaries;
            buckets =
              Array.init (Array.length boundaries + 1) (fun _ -> Atomic.make 0);
            sum_ns = Atomic.make 0;
          })
  with
  | Hist_cell h ->
      let n = Array.length h.boundaries in
      let i = ref 0 in
      while !i < n && not (v <= h.boundaries.(!i)) do incr i done;
      ignore (Atomic.fetch_and_add h.buckets.(!i) 1);
      ignore (Atomic.fetch_and_add h.sum_ns (ns_of_seconds v))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Ambient shard                                                      *)
(* ------------------------------------------------------------------ *)

(* Domain-local, mirroring [Trace.current]: each worker domain arms
   its own shard, so ambient probes from engine-adjacent code land in
   the right place without threading a handle. One DLS read when no
   shard is armed — the Faultpoint/Trace disarmed-cost discipline. *)
let ambient_shard : shard option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_ambient s = Domain.DLS.set ambient_shard s
let ambient () = Domain.DLS.get ambient_shard

let ainc ?labels ?n name =
  match Domain.DLS.get ambient_shard with
  | None -> ()
  | Some s -> inc s ?labels ?n name

let aset_gauge ?labels name v =
  match Domain.DLS.get ambient_shard with
  | None -> ()
  | Some s -> set_gauge s ?labels name v

let aobserve ?labels ?boundaries name v =
  match Domain.DLS.get ambient_shard with
  | None -> ()
  | Some s -> observe s ?labels ?boundaries name v

(* ------------------------------------------------------------------ *)
(* Snapshots and merge                                                *)
(* ------------------------------------------------------------------ *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { boundaries : float array; counts : int array; sum_ns : int }

type sample = { name : string; labels : labels; value : value }
type snapshot = sample list

let sample_key s = (s.name, s.labels)

let sort_snapshot snap =
  List.sort (fun a b -> compare (sample_key a) (sample_key b)) snap

let snapshot_of_shard shard =
  Mutex.lock shard.mu;
  let out =
    Hashtbl.fold
      (fun (name, labels) cell acc ->
        let value =
          match cell with
          | Counter_cell c -> Counter (Atomic.get c)
          | Gauge_cell g -> Gauge (Atomic.get g)
          | Hist_cell h ->
              Histogram
                {
                  boundaries = Array.copy h.boundaries;
                  counts = Array.map Atomic.get h.buckets;
                  sum_ns = Atomic.get h.sum_ns;
                }
        in
        { name; labels; value } :: acc)
      shard.cells []
  in
  Mutex.unlock shard.mu;
  sort_snapshot out

(* Pointwise combine. Counters and histogram buckets/sums are integer
   additions, so the merge is exactly associative and commutative with
   the empty snapshot as identity (the property tests pin this).
   Gauges add too — distinct sources must carry a distinguishing label
   (e.g. worker="3") if a sum across shards is not the value wanted.
   A kind or boundary clash keeps the left operand: registries keep
   one kind per name, so this only triggers on snapshots from
   different schema versions. *)
let combine_value a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Histogram h1, Histogram h2 when h1.boundaries = h2.boundaries ->
      Histogram
        {
          boundaries = h1.boundaries;
          counts = Array.map2 ( + ) h1.counts h2.counts;
          sum_ns = h1.sum_ns + h2.sum_ns;
        }
  | a, _ -> a

let merge snaps =
  let tbl = Hashtbl.create 128 in
  List.iter
    (fun snap ->
      List.iter
        (fun s ->
          let key = sample_key s in
          match Hashtbl.find_opt tbl key with
          | None -> Hashtbl.add tbl key s.value
          | Some v -> Hashtbl.replace tbl key (combine_value v s.value))
        snap)
    snaps;
  sort_snapshot
    (Hashtbl.fold
       (fun (name, labels) value acc -> { name; labels; value } :: acc)
       tbl [])

let snapshot t =
  merge (Array.to_list (Array.map snapshot_of_shard t.shards))

(* ------------------------------------------------------------------ *)
(* Reading a snapshot                                                 *)
(* ------------------------------------------------------------------ *)

let find snap ?(labels = []) name =
  let labels = canon_labels labels in
  List.find_map
    (fun s -> if s.name = name && s.labels = labels then Some s.value else None)
    snap

let counter_total snap name =
  List.fold_left
    (fun acc s ->
      match s.value with
      | Counter n when s.name = name -> acc + n
      | _ -> acc)
    0 snap

let hist_count = function
  | Histogram h -> Array.fold_left ( + ) 0 h.counts
  | _ -> 0

(* Rank-based estimate with linear interpolation inside the bucket;
   observations in the +Inf bucket clamp to the last finite boundary
   (the standard Prometheus histogram_quantile behaviour). *)
let quantile snap ?labels name q =
  match find snap ?labels name with
  | Some (Histogram h) ->
      let total = Array.fold_left ( + ) 0 h.counts in
      if total = 0 then None
      else
        let nb = Array.length h.boundaries in
        let target = q *. float_of_int total in
        let rec walk i cum =
          if i >= Array.length h.counts then
            Some (if nb = 0 then 0. else h.boundaries.(nb - 1))
          else
            let cum' = cum + h.counts.(i) in
            if float_of_int cum' >= target && h.counts.(i) > 0 then
              let lo = if i = 0 then 0. else h.boundaries.(i - 1) in
              let hi =
                if i < nb then h.boundaries.(i)
                else if nb = 0 then 0.
                else h.boundaries.(nb - 1)
              in
              let frac =
                (target -. float_of_int cum) /. float_of_int h.counts.(i)
              in
              Some (lo +. ((hi -. lo) *. Float.max 0. (Float.min 1. frac)))
            else walk (i + 1) cum'
        in
        walk 0 0
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                         *)
(* ------------------------------------------------------------------ *)

(* Byte-deterministic: samples sorted by (name, labels), label keys
   sorted at registration, one fixed float format. *)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let fmt_sum_ns ns =
  let sign = if ns < 0 then "-" else "" in
  let ns = abs ns in
  Printf.sprintf "%s%d.%09d" sign (ns / 1_000_000_000) (ns mod 1_000_000_000)

let sanitize_name name =
  let s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  if s = "" then "_"
  else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let escape_label_value v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels labels =
  if labels = [] then ""
  else
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) ->
              Printf.sprintf "%s=\"%s\"" (sanitize_name k)
                (escape_label_value v))
            labels))

let type_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let to_prometheus snap =
  let snap = sort_snapshot snap in
  let buf = Buffer.create 4096 in
  let last_typed = ref "" in
  List.iter
    (fun s ->
      let name = sanitize_name s.name in
      if name <> !last_typed then begin
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name (type_name s.value));
        last_typed := name
      end;
      match s.value with
      | Counter n ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (render_labels s.labels) n)
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (render_labels s.labels)
               (fmt_float g))
      | Histogram h ->
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let le =
                if i < Array.length h.boundaries then
                  fmt_float h.boundaries.(i)
                else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (render_labels (s.labels @ [ ("le", le) ]))
                   !cum))
            h.counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (render_labels s.labels)
               (fmt_sum_ns h.sum_ns));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (render_labels s.labels)
               !cum))
    snap;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Exposition parser                                                  *)
(* ------------------------------------------------------------------ *)

(* Enough of the text format to round-trip our own writer and to let
   [lalrgen top] consume a scrape: # TYPE comments, label sets with
   escaped values, histogram reconstruction from _bucket/_sum/_count
   series. Returns [Error] on structurally broken lines rather than
   guessing. *)

exception Parse_error of string

let parse_value s =
  match String.lowercase_ascii s with
  | "+inf" | "inf" -> infinity
  | "-inf" -> neg_infinity
  | "nan" -> nan
  | _ -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> raise (Parse_error (Printf.sprintf "bad sample value %S" s)))

let parse_labels line start =
  (* [start] points just after '{'. Returns (labels, index after '}'). *)
  let n = String.length line in
  let labels = ref [] in
  let i = ref start in
  let fail msg = raise (Parse_error (Printf.sprintf "%s in %S" msg line)) in
  let rec skip_ws () = if !i < n && line.[!i] = ' ' then (incr i; skip_ws ()) in
  let rec loop () =
    skip_ws ();
    if !i >= n then fail "unterminated label set"
    else if line.[!i] = '}' then incr i
    else begin
      let kstart = !i in
      while !i < n && line.[!i] <> '=' do incr i done;
      if !i >= n then fail "label without '='";
      let key = String.trim (String.sub line kstart (!i - kstart)) in
      incr i;
      if !i >= n || line.[!i] <> '"' then fail "label value not quoted";
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= n then fail "unterminated label value"
        else begin
          (match line.[!i] with
          | '\\' ->
              if !i + 1 >= n then fail "dangling escape"
              else begin
                (match line.[!i + 1] with
                | 'n' -> Buffer.add_char buf '\n'
                | '\\' -> Buffer.add_char buf '\\'
                | '"' -> Buffer.add_char buf '"'
                | c -> Buffer.add_char buf c);
                incr i
              end
          | '"' -> closed := true
          | c -> Buffer.add_char buf c);
          incr i
        end
      done;
      labels := (key, Buffer.contents buf) :: !labels;
      skip_ws ();
      if !i < n && line.[!i] = ',' then begin incr i; loop () end
      else if !i < n && line.[!i] = '}' then incr i
      else fail "expected ',' or '}' after label"
    end
  in
  loop ();
  (List.rev !labels, !i)

let parse_sample_line line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && line.[!i] <> '{' && line.[!i] <> ' ' do incr i done;
  let name = String.sub line 0 !i in
  if name = "" then raise (Parse_error (Printf.sprintf "empty name in %S" line));
  let labels, rest =
    if !i < n && line.[!i] = '{' then parse_labels line (!i + 1) else ([], !i)
  in
  let value = parse_value (String.trim (String.sub line rest (n - rest))) in
  (name, labels, value)

let strip_suffix name suf =
  if Filename.check_suffix name suf then
    Some (String.sub name 0 (String.length name - String.length suf))
  else None

let parse text =
  try
    let types = Hashtbl.create 16 in
    let raw = ref [] in
    String.split_on_char '\n' text
    |> List.iter (fun line ->
           let line = String.trim line in
           if line = "" then ()
           else if String.length line > 0 && line.[0] = '#' then begin
             match String.split_on_char ' ' line with
             | "#" :: "TYPE" :: name :: kind :: _ ->
                 Hashtbl.replace types name kind
             | _ -> ()  (* HELP and arbitrary comments: ignored *)
           end
           else raw := parse_sample_line line :: !raw);
    let raw = List.rev !raw in
    let typed name = Hashtbl.find_opt types name in
    (* Histogram series: group by (base name, labels-minus-le). *)
    let hist_base name =
      (* _bucket/_sum/_count of a name declared "# TYPE base histogram" *)
      let check suf =
        match strip_suffix name suf with
        | Some base when typed base = Some "histogram" -> Some base
        | _ -> None
      in
      match check "_bucket" with
      | Some b -> Some (b, `Bucket)
      | None -> (
          match check "_sum" with
          | Some b -> Some (b, `Sum)
          | None -> (
              match check "_count" with
              | Some b -> Some (b, `Count)
              | None -> None))
    in
    let hists = Hashtbl.create 16 in
    let plain = ref [] in
    List.iter
      (fun (name, labels, v) ->
        match hist_base name with
        | None -> plain := (name, labels, v) :: !plain
        | Some (base, part) ->
            let key_labels =
              canon_labels (List.filter (fun (k, _) -> k <> "le") labels)
            in
            let key = (base, key_labels) in
            let buckets, sum =
              match Hashtbl.find_opt hists key with
              | Some x -> x
              | None ->
                  let x = (ref [], ref 0) in
                  Hashtbl.add hists key x;
                  x
            in
            (match part with
            | `Bucket ->
                let le =
                  match List.assoc_opt "le" labels with
                  | Some le -> parse_value le
                  | None ->
                      raise
                        (Parse_error
                           (Printf.sprintf "%s_bucket without le label" base))
                in
                buckets := (le, v) :: !buckets
            | `Sum -> sum := ns_of_seconds v
            | `Count -> ()  (* redundant with the +Inf bucket *)))
      raw;
    let hist_samples =
      Hashtbl.fold
        (fun (name, labels) (buckets, sum) acc ->
          let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !buckets in
          let finite = List.filter (fun (le, _) -> le < infinity) sorted in
          let boundaries = Array.of_list (List.map fst finite) in
          (* de-cumulate; the +Inf bucket must close the series *)
          let cum = Array.of_list (List.map snd sorted) in
          let counts =
            Array.mapi
              (fun i c ->
                let prev = if i = 0 then 0. else cum.(i - 1) in
                int_of_float (c -. prev))
              cum
          in
          let counts =
            if List.exists (fun (le, _) -> le = infinity) sorted then counts
            else Array.append counts [| 0 |]
          in
          { name; labels; value = Histogram { boundaries; counts; sum_ns = !sum } }
          :: acc)
        hists []
    in
    let plain_samples =
      List.rev_map
        (fun (name, labels, v) ->
          let value =
            match typed name with
            | Some "counter" -> Counter (int_of_float v)
            | _ -> Gauge v
          in
          { name; labels = canon_labels labels; value })
        !plain
    in
    Ok (sort_snapshot (hist_samples @ plain_samples))
  with Parse_error msg -> Error msg
