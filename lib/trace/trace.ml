type value = Int of int | Float of float | Str of string | Bool of bool
type attr = string * value

type format = Chrome | Jsonl | Metrics

let format_of_name = function
  | "chrome" -> Some Chrome
  | "jsonl" -> Some Jsonl
  | "metrics" -> Some Metrics
  | _ -> None

let format_name = function
  | Chrome -> "chrome"
  | Jsonl -> "jsonl"
  | Metrics -> "metrics"

let infer_format file =
  if Filename.check_suffix file ".jsonl" then Jsonl
  else if Filename.check_suffix file ".txt" then Metrics
  else if Filename.check_suffix file ".metrics" then Metrics
  else Chrome

(* Events keep the raw clock reading; sinks subtract t0 at write time
   so timestamps are microseconds since the session started. *)
type ev =
  | Begin of { name : string; ts : float; depth : int; attrs : attr list }
  | End of { name : string; ts : float; depth : int }
  | Inst of { name : string; ts : float; depth : int; attrs : attr list }
  | Sample of { name : string; ts : float; total : int }

type metric =
  | Counter of int
  | Gauge of float
  | Hist of (int * int) list

type session = {
  clock : unit -> float;
  t0 : float;
  mutable events : ev list;  (* newest first *)
  mutable n_events : int;
  mutable open_spans : string list;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  hists : (string, (int, int) Hashtbl.t) Hashtbl.t;
}

(* The whole armed state behind one domain-local cell — the Faultpoint
   discipline: every probe is a single DLS read when tracing is off.
   Domain-local (not a shared ref, not an Atomic) because a session's
   interior (events list, counter tables) is single-writer by design:
   each domain arms and records its own session, which is exactly the
   per-worker model the serve daemon needs. *)
let current : session option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let get_current () = Domain.DLS.get current
let set_current v = Domain.DLS.set current v

let default_clock = Unix.gettimeofday

let start ?(clock = default_clock) () =
  let s =
    {
      clock;
      t0 = clock ();
      events = [];
      n_events = 0;
      open_spans = [];
      counters = Hashtbl.create 64;
      gauges = Hashtbl.create 64;
      hists = Hashtbl.create 16;
    }
  in
  set_current (Some s);
  s

let active () = get_current ()
let enabled () = get_current () <> None

let push s ev =
  s.events <- ev :: s.events;
  s.n_events <- s.n_events + 1

let finish s =
  List.iter
    (fun name ->
      push s (End { name; ts = s.clock (); depth = List.length s.open_spans - 1 });
      s.open_spans <- List.tl s.open_spans)
    s.open_spans;
  s.open_spans <- [];
  match get_current () with
  | Some c when c == s -> set_current None
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Probes                                                             *)
(* ------------------------------------------------------------------ *)

let with_span ?attrs name f =
  match get_current () with
  | None -> f ()
  | Some s ->
      let at = match attrs with None -> [] | Some g -> g () in
      let depth = List.length s.open_spans in
      push s (Begin { name; ts = s.clock (); depth; attrs = at });
      s.open_spans <- name :: s.open_spans;
      Fun.protect f ~finally:(fun () ->
          (* After [finish] (e.g. an at_exit flush that ran inside this
             span) the session is sealed: the forced End was already
             emitted, so this unwind must not add another. *)
          match get_current () with
          | Some c when c == s ->
              (match s.open_spans with
              | top :: tl when top == name || top = name ->
                  s.open_spans <- tl
              | other -> s.open_spans <- List.filter (fun n -> n <> name) other);
              push s (End { name; ts = s.clock (); depth })
          | _ -> ())

let instant ?attrs name =
  match get_current () with
  | None -> ()
  | Some s ->
      let at = match attrs with None -> [] | Some g -> g () in
      push s
        (Inst { name; ts = s.clock (); depth = List.length s.open_spans;
                attrs = at })

let count ?(n = 1) name =
  match get_current () with
  | None -> ()
  | Some s ->
      let cell =
        match Hashtbl.find_opt s.counters name with
        | Some c -> c
        | None ->
            let c = ref 0 in
            Hashtbl.add s.counters name c;
            c
      in
      cell := !cell + n;
      push s (Sample { name; ts = s.clock (); total = !cell })

let gauge name v =
  match get_current () with
  | None -> ()
  | Some s -> Hashtbl.replace s.gauges name v

let gauge_int name v = gauge name (float_of_int v)

(* Exact buckets are for small discrete distributions (SCC sizes,
   stack depths). A continuous measurement would mint one bucket per
   distinct value and grow without bound in a long-lived daemon, so
   cardinality is capped: once a histogram holds [hist_cap] distinct
   buckets, unseen values collapse into one overflow bucket (rendered
   as "overflow" by every sink; [max_int] sorts it last). Continuous
   latencies belong in [Metrics.observe]'s fixed-boundary histograms. *)
let hist_cap = 64
let overflow_bucket = max_int

let observe name v =
  match get_current () with
  | None -> ()
  | Some s ->
      let h =
        match Hashtbl.find_opt s.hists name with
        | Some h -> h
        | None ->
            let h = Hashtbl.create 8 in
            Hashtbl.add s.hists name h;
            h
      in
      let v =
        if Hashtbl.mem h v || Hashtbl.length h < hist_cap then v
        else overflow_bucket
      in
      Hashtbl.replace h v
        (1 + Option.value (Hashtbl.find_opt h v) ~default:0)

(* ------------------------------------------------------------------ *)
(* Reading back                                                       *)
(* ------------------------------------------------------------------ *)

let metrics s =
  let out = ref [] in
  Hashtbl.iter (fun k c -> out := (k, Counter !c) :: !out) s.counters;
  Hashtbl.iter (fun k v -> out := (k, Gauge v) :: !out) s.gauges;
  Hashtbl.iter
    (fun k h ->
      let buckets = Hashtbl.fold (fun v n acc -> (v, n) :: acc) h [] in
      out := (k, Hist (List.sort compare buckets)) :: !out)
    s.hists;
  List.sort (fun (a, _) (b, _) -> compare a b) !out

let find_counter s name =
  match Hashtbl.find_opt s.counters name with Some c -> !c | None -> 0

let n_events s = s.n_events

(* ------------------------------------------------------------------ *)
(* Sinks                                                              *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g would be exact but ugly; %g loses nothing we care about (walls
   in seconds, integral gauges) and keeps the files small and stable. *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let bucket_label b =
  if b = overflow_bucket then "overflow" else string_of_int b

let value_json = function
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> string_of_bool b

let attrs_json attrs =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (value_json v))
       attrs)

let us s ts = (ts -. s.t0) *. 1e6

(* Chrome trace-event format: one JSON object per event in the
   traceEvents array. B/E pairs carry nesting; counter samples become
   C events (one track per counter name); instants are i events. *)
let buf_chrome s buf =
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let evs = List.rev s.events in
  let hist_json buckets =
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map (fun (b, n) -> Printf.sprintf "\"%s\":%d" (bucket_label b) n) buckets))
  in
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (match ev with
        | Begin { name; ts; attrs; _ } ->
            Printf.sprintf
              "{\"name\":\"%s\",\"ph\":\"B\",\"ts\":%.3f,\"pid\":1,\"tid\":1%s}"
              (json_escape name) (us s ts)
              (if attrs = [] then ""
               else Printf.sprintf ",\"args\":{%s}" (attrs_json attrs))
        | End { name; ts; _ } ->
            Printf.sprintf
              "{\"name\":\"%s\",\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,\"tid\":1}"
              (json_escape name) (us s ts)
        | Inst { name; ts; attrs; _ } ->
            Printf.sprintf
              "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\
               \"tid\":1%s}"
              (json_escape name) (us s ts)
              (if attrs = [] then ""
               else Printf.sprintf ",\"args\":{%s}" (attrs_json attrs))
        | Sample { name; ts; total } ->
            Printf.sprintf
              "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\
               \"args\":{\"value\":%d}}"
              (json_escape name) (us s ts) total))
    evs;
  (* Final metric values as one trailing instant so a Chrome trace is
     self-contained: gauges and histograms have no per-sample events. *)
  let m = metrics s in
  if m <> [] then begin
    if evs <> [] then Buffer.add_string buf ",\n";
    let last_ts =
      match s.events with
      | [] -> 0.
      | (Begin { ts; _ } | End { ts; _ } | Inst { ts; _ } | Sample { ts; _ })
        :: _ ->
          us s ts
    in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":\"metrics\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":1,\
          \"tid\":1,\"args\":{%s}}"
         last_ts
         (String.concat ","
            (List.map
               (fun (k, v) ->
                 Printf.sprintf "\"%s\":%s" (json_escape k)
                   (match v with
                   | Counter n -> string_of_int n
                   | Gauge g -> json_float g
                   | Hist buckets -> hist_json buckets))
               m)))
  end;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let buf_jsonl s buf =
  let hist_json buckets =
    String.concat ","
      (List.map (fun (b, n) -> Printf.sprintf "\"%s\":%d" (bucket_label b) n) buckets)
  in
  let line l =
    Buffer.add_string buf l;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun ev ->
      line
        (match ev with
        | Begin { name; ts; depth; attrs } ->
            Printf.sprintf
              "{\"ev\":\"begin\",\"name\":\"%s\",\"ts_us\":%.3f,\"depth\":%d%s}"
              (json_escape name) (us s ts) depth
              (if attrs = [] then ""
               else Printf.sprintf ",\"attrs\":{%s}" (attrs_json attrs))
        | End { name; ts; depth } ->
            Printf.sprintf
              "{\"ev\":\"end\",\"name\":\"%s\",\"ts_us\":%.3f,\"depth\":%d}"
              (json_escape name) (us s ts) depth
        | Inst { name; ts; depth; attrs } ->
            Printf.sprintf
              "{\"ev\":\"instant\",\"name\":\"%s\",\"ts_us\":%.3f,\
               \"depth\":%d%s}"
              (json_escape name) (us s ts) depth
              (if attrs = [] then ""
               else Printf.sprintf ",\"attrs\":{%s}" (attrs_json attrs))
        | Sample { name; ts; total } ->
            Printf.sprintf
              "{\"ev\":\"count\",\"name\":\"%s\",\"ts_us\":%.3f,\"total\":%d}"
              (json_escape name) (us s ts) total))
    (List.rev s.events);
  List.iter
    (fun (k, v) ->
      line
        (match v with
        | Counter n ->
            Printf.sprintf
              "{\"ev\":\"metric\",\"name\":\"%s\",\"kind\":\"counter\",\
               \"value\":%d}"
              (json_escape k) n
        | Gauge g ->
            Printf.sprintf
              "{\"ev\":\"metric\",\"name\":\"%s\",\"kind\":\"gauge\",\
               \"value\":%s}"
              (json_escape k) (json_float g)
        | Hist buckets ->
            Printf.sprintf
              "{\"ev\":\"metric\",\"name\":\"%s\",\"kind\":\"histogram\",\
               \"value\":{%s}}"
              (json_escape k) (hist_json buckets)))
    (metrics s)

let buf_metrics s buf =
  List.iter
    (fun (k, v) ->
      match v with
      | Counter n -> Buffer.add_string buf (Printf.sprintf "%s %d\n" k n)
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "%s %s\n" k (json_float g))
      | Hist buckets ->
          List.iter
            (fun (b, n) ->
              Buffer.add_string buf
                (Printf.sprintf "%s[%s] %d\n" k (bucket_label b) n))
            buckets)
    (metrics s)

let to_string s fmt =
  let buf = Buffer.create 4096 in
  (match fmt with
  | Chrome -> buf_chrome s buf
  | Jsonl -> buf_jsonl s buf
  | Metrics -> buf_metrics s buf);
  Buffer.contents buf

let write s fmt oc = output_string oc (to_string s fmt)


let metrics_json s =
  let m = metrics s in
  let pick f =
    List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (f v)) m
  in
  let counters =
    pick (function Counter n -> Some (string_of_int n) | _ -> None)
  in
  let gauges = pick (function Gauge g -> Some (json_float g) | _ -> None) in
  let hists =
    pick (function
      | Hist buckets ->
          Some
            (Printf.sprintf "{%s}"
               (String.concat ","
                  (List.map (fun (b, n) -> Printf.sprintf "\"%s\":%d" (bucket_label b) n)
                     buckets)))
      | _ -> None)
  in
  let obj fields =
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) v)
            fields))
  in
  obj
    [
      ("counters", obj counters);
      ("gauges", obj gauges);
      ("histograms", obj hists);
    ]
