(** Sharded, mergeable live metrics — the scrapeable half of the
    observability layer (DESIGN.md §17).

    {!Trace} records {e per-run} sessions flushed to files at exit;
    a long-running daemon needs {e live} telemetry it can answer
    queries from while serving. This module provides it: a registry of
    monotone counters, gauges and fixed-boundary latency histograms,
    sharded so that each writer domain updates its own shard without
    taking a lock on the hot path, with an associative merge applied
    only at scrape time.

    {2 Shards and the locking contract}

    A {!shard} is a hash table of cells guarded by a mutex, where each
    cell's value is an [Atomic]. The mutex is held only to {e add} a
    cell (first use of a (name, labels) pair) and to iterate for a
    {!snapshot_of_shard}; updating an existing cell is a lock-free
    atomic op. The probe fast path reads the table {e without} the
    mutex, which is sound only under the single-writer discipline:

    - a shard owned by one domain (the serve workers) may register
      cells lazily — only the owner adds, and both adds and scrape
      iteration hold the mutex;
    - a shard written by several sys-threads of one domain (the serve
      listener's shard, written by reader threads) must have every
      (name, labels) pair {e pre-registered} before the threads start
      (register by issuing the probe once with a zero delta).

    Probes are total: a kind clash (e.g. {!observe} on a name
    registered as a counter) drops the sample rather than raising.

    {2 Merge semantics}

    Counters and histogram buckets/sums merge by integer addition, so
    {!merge} is exactly associative and commutative with the empty
    snapshot as identity — scraping N shards gives byte-identical
    output regardless of merge order (the property tests in
    [test_metrics] pin this). Gauges also {e add}: per-source gauges
    must carry a distinguishing label (e.g. [worker="3"]) when a
    cross-shard sum is not the value wanted.

    {2 Fixed boundaries}

    Histograms bucket by fixed boundaries fixed at registration
    (default {!default_boundaries}, a 0.5ms–10s latency ladder),
    unlike {!Trace.observe}'s capped exact-value buckets: cardinality
    is bounded regardless of traffic, and same-boundary histograms
    from different shards merge bucket-wise. Sums are kept in integer
    nanoseconds so merging never loses precision to float rounding. *)

type labels = (string * string) list
(** Label pairs; canonicalised (sorted by key) at probe time, so
    [\[("a","1");("b","2")\]] and its permutation are one series. *)

type shard
type t

val default_boundaries : unit -> float array
(** [0.0005; 0.001; …; 10.0] seconds (client_golang's default
    latency ladder). A fresh array per call — callers own their copy;
    nothing shared to mutate. *)

val create : shards:int -> t
(** A registry of [max 1 shards] shards. The serve daemon uses
    [domains + 1]: shard 0 for the listener, shard [i+1] owned by
    worker [i]. Shards survive worker restarts, keeping counters
    monotone across domain respawns. *)

val n_shards : t -> int

val shard : t -> int -> shard
(** Raises [Invalid_argument] out of range. *)

(** {2 Probes} *)

val inc : shard -> ?labels:labels -> ?n:int -> string -> unit
(** Adds [n] (default 1) to a monotone counter. [~n:0] registers the
    series without counting — the pre-registration idiom for
    multi-thread shards. *)

val set_gauge : shard -> ?labels:labels -> string -> float -> unit
(** Sets a gauge (last write wins). *)

val observe :
  shard -> ?labels:labels -> ?boundaries:float array -> string -> float -> unit
(** Adds one observation (in seconds for latencies) to a histogram.
    [boundaries] is consulted only on first registration of the
    series; callers must use consistent boundaries for a name across
    shards or the merge keeps only one side. *)

(** {2 Ambient shard}

    Domain-local, mirroring {!Trace}'s armed session: a worker domain
    arms its own shard once and ambient probes from anywhere on that
    domain land in it. Each [a*] probe is one DLS read when no shard
    is armed. *)

val set_ambient : shard option -> unit
val ambient : unit -> shard option
val ainc : ?labels:labels -> ?n:int -> string -> unit
val aset_gauge : ?labels:labels -> string -> float -> unit
val aobserve : ?labels:labels -> ?boundaries:float array -> string -> float -> unit

(** {2 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { boundaries : float array; counts : int array; sum_ns : int }
      (** [counts] has [length boundaries + 1] entries — per-bucket
          (not cumulative), the last being the +Inf bucket. [sum_ns]
          is the observation sum in integer nanoseconds. *)

type sample = { name : string; labels : labels; value : value }

type snapshot = sample list
(** Sorted by (name, labels); a plain immutable value, so snapshots
    compare with [=] and merge without touching live shards. *)

val snapshot_of_shard : shard -> snapshot
(** Takes the shard mutex for the iteration; concurrent probe updates
    land either side of the atomic reads. *)

val snapshot : t -> snapshot
(** [merge] of all shards' snapshots. *)

val merge : snapshot list -> snapshot
(** Pointwise combine: counters add, histogram buckets/sums add when
    boundaries agree, gauges add. Associative and commutative with
    [[]] as identity (exact — all int arithmetic except gauges). *)

(** {2 Reading a snapshot} *)

val find : snapshot -> ?labels:labels -> string -> value option
val counter_total : snapshot -> string -> int
(** Sum of a counter across all its label sets (0 when absent). *)

val hist_count : value -> int
(** Total observations ([Histogram] only; 0 otherwise). *)

val quantile : snapshot -> ?labels:labels -> string -> float -> float option
(** Rank-based quantile estimate from histogram buckets with linear
    interpolation inside the bucket; +Inf-bucket ranks clamp to the
    last finite boundary. [None] when the series is absent or empty. *)

(** {2 Prometheus text exposition} *)

val to_prometheus : snapshot -> string
(** Byte-deterministic text exposition: [# TYPE] comments, sorted
    samples, histograms as cumulative [_bucket{le="…"}] series plus
    [_sum]/[_count], label values escaped, one fixed float format.
    The +Inf bucket always equals [_count]. *)

val parse : string -> (snapshot, string) result
(** Parses a text exposition back into a snapshot (round-trips
    {!to_prometheus}; tolerates HELP lines and unknown comments).
    Histograms are reconstructed from [_bucket]/[_sum] series of
    names declared [# TYPE … histogram]. Used by [lalrgen top] and
    the scrape-reconciliation checks. *)
