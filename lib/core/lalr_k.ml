module Kstring = Lalr_sets.Kstring
module KSet = Kstring.Set
module Lr0 = Lalr_automaton.Lr0
module Budget = Lalr_guard.Budget

type t = {
  k : int;
  automaton : Lr0.t;
  follow : KSet.t array;  (* per nonterminal transition *)
  la : (int * int, KSet.t) Hashtbl.t;  (* (state, prod) -> LA_k *)
  shift_strings : KSet.t array;  (* per state: k-continuations via shifts *)
}

let k t = t.k
let automaton t = t.automaton
let follow t x = t.follow.(x)

let lookahead t ~state ~prod =
  match Hashtbl.find_opt t.la (state, prod) with
  | Some s -> s
  | None -> raise Not_found

let compute ~k (a : Lr0.t) =
  if k < 1 then invalid_arg "Lalr_k.compute: k must be >= 1";
  Budget.with_stage "lalr_k" @@ fun () ->
  let g = Lr0.grammar a in
  let firstk = Firstk.compute ~k g in
  let nx = Lr0.n_nt_transitions a in
  let follow = Array.make nx KSet.empty in
  (* Edges: follow.(target) ⊇ label ⊕k follow.(source); kept as reverse
     adjacency from source to its dependents. *)
  let deps = Array.make nx [] in
  for x' = 0 to nx - 1 do
    let p', b = Lr0.nt_transition a x' in
    Array.iter
      (fun pid ->
        let prod = Grammar.production g pid in
        let state = ref p' in
        Array.iteri
          (fun i sym ->
            (match sym with
            | Symbol.N c ->
                let x = Lr0.find_nt_transition a !state c in
                let label = Firstk.sentence firstk prod.rhs ~from:(i + 1) in
                deps.(x') <- (label, x) :: deps.(x')
            | Symbol.T _ -> ());
            state := Lr0.goto_exn a !state sym)
          prod.rhs)
      (Grammar.productions_of g b)
  done;
  (* Seed: production 0 is S' → S $; the context of S' is the empty
     string, so Follow_k(0, S) starts as FIRSTk("$") = {[$]}. *)
  let x0 = Lr0.find_nt_transition a 0 g.start in
  follow.(x0) <- KSet.singleton [ 0 ];
  (* Worklist iteration to the least fixpoint. *)
  let queue = Queue.create () in
  let queued = Array.make nx false in
  let push x =
    if not queued.(x) then begin
      queued.(x) <- true;
      Queue.add x queue
    end
  in
  for x = 0 to nx - 1 do
    push x
  done;
  let partial () =
    Printf.sprintf "Follow_%d fixpoint in progress over %d transitions" k nx
  in
  while not (Queue.is_empty queue) do
    Budget.burn ();
    let x' = Queue.pop queue in
    queued.(x') <- false;
    let src = follow.(x') in
    if not (KSet.is_empty src) then
      List.iter
        (fun (label, x) ->
          Budget.burn ();
          let contribution = Kstring.concat_sets k label src in
          let merged = KSet.union follow.(x) contribution in
          if not (KSet.equal merged follow.(x)) then begin
            Budget.count_items ~partial
              (KSet.cardinal merged - KSet.cardinal follow.(x));
            follow.(x) <- merged;
            push x
          end)
        deps.(x')
  done;
  (* LA_k by lookback, and shift strings by the same walks. *)
  let la = Hashtbl.create 256 in
  for q = 0 to Lr0.n_states a - 1 do
    List.iter
      (fun pid -> Hashtbl.replace la (q, pid) KSet.empty)
      (Lr0.reductions a q)
  done;
  let shift_strings = Array.make (Lr0.n_states a) KSet.empty in
  let add_shift state set =
    shift_strings.(state) <- KSet.union shift_strings.(state) set
  in
  let walk_production ctx p0 (prod : Grammar.production) =
    let state = ref p0 in
    Array.iteri
      (fun i sym ->
        (match sym with
        | Symbol.T _ ->
            (* Item [B → ω₁..ωᵢ₋₁ . ωᵢ ...] with a terminal after the
               dot: its k-continuations are FIRSTk(ωᵢ..) ⊕k ctx. *)
            let strings =
              Kstring.concat_sets k
                (Firstk.sentence firstk prod.rhs ~from:i)
                ctx
            in
            add_shift !state strings
        | Symbol.N _ -> ());
        state := Lr0.goto_exn a !state sym)
      prod.rhs;
    !state
  in
  for x = 0 to nx - 1 do
    let p, aa = Lr0.nt_transition a x in
    Array.iter
      (fun pid ->
        if pid <> 0 then begin
          let prod = Grammar.production g pid in
          let q = walk_production follow.(x) p prod in
          match Hashtbl.find_opt la (q, pid) with
          | Some set -> Hashtbl.replace la (q, pid) (KSet.union set follow.(x))
          | None ->
              Budget.broken_invariant ~stage:"lalr_k"
                (Printf.sprintf
                   "state %d reached by walking production %d from a \
                    nonterminal transition lacks its final item"
                   q pid)
        end)
      (Grammar.productions_of g aa)
  done;
  (* Production 0's walk (context ε) contributes the $-shift strings. *)
  ignore (walk_production Kstring.epsilon 0 (Grammar.production g 0));
  { k; automaton = a; follow; la; shift_strings }

let is_lalr_k t =
  let a = t.automaton in
  let ok = ref true in
  for q = 0 to Lr0.n_states a - 1 do
    let reds = Lr0.reductions a q in
    if reds <> [] then begin
      let seen = ref t.shift_strings.(q) in
      List.iter
        (fun pid ->
          let set = lookahead t ~state:q ~prod:pid in
          if not (KSet.is_empty (KSet.inter set !seen)) then ok := false;
          seen := KSet.union !seen set)
        reds
    end
  done;
  !ok

let smallest_k ?(limit = 3) a =
  let rec go k =
    if k > limit then None
    else if is_lalr_k (compute ~k a) then Some k
    else go (k + 1)
  in
  go 1
