module Bitset = Lalr_sets.Bitset
module Csr = Lalr_sets.Csr
module Digraph = Lalr_sets.Digraph
module Lr0 = Lalr_automaton.Lr0
module Budget = Lalr_guard.Budget
module Trace = Lalr_trace.Trace

type diagnostic = Reads_cycle of int list | Includes_cycle of int list

type mem = {
  reads_offsets_words : int;
  reads_cols_words : int;
  includes_offsets_words : int;
  includes_cols_words : int;
  lookback_offsets_words : int;
  lookback_cols_words : int;
  reduction_index_words : int;
}

type stats = {
  n_nt_transitions : int;
  dr_total : int;
  reads_edges : int;
  includes_edges : int;
  lookback_edges : int;
  n_reductions : int;
  la_total : int;
  reads_sccs : int list list;
  includes_sccs : int list list;
  reads_unions : int;
  includes_unions : int;
  reads_max_depth : int;
  includes_max_depth : int;
  mem : mem;
}

type t = {
  automaton : Lr0.t;
  analysis : Analysis.t;
  dr : Bitset.t array;
  reads : Csr.t;
  read : Bitset.t array;
  includes : Csr.t;
  follow : Bitset.t array;
  (* Reductions: dense numbering of (state, production) pairs, grouped
     by state — reduction_offsets.(q) .. reduction_offsets.(q+1) - 1
     index state q's rows of reduction_pairs. *)
  reduction_pairs : (int * int) array;
  reduction_offsets : int array;
  lookback : Csr.t;  (* reduction index -> nt transition indices *)
  la : Bitset.t array;
  diagnostics : diagnostic list;
  stats : stats;
}

let automaton t = t.automaton
let grammar t = Lr0.grammar t.automaton
let analysis t = t.analysis

(* ------------------------------------------------------------------ *)
(* Stage 1 — relation construction                                    *)
(* ------------------------------------------------------------------ *)

type relations = {
  r_automaton : Lr0.t;
  r_analysis : Analysis.t;
  r_dr : Bitset.t array;
  r_reads : Csr.t;
  r_includes : Csr.t;
  r_lookback : Csr.t;
  r_reduction_pairs : (int * int) array;
  r_reduction_offsets : int array;
}

(* The dense reduction index: state q's reductions are the contiguous
   rows offsets.(q) .. offsets.(q+1) - 1 of [pairs]; a state reduces a
   handful of productions at most, so the probe is a short scan. *)
let find_reduction_opt ~offsets ~pairs ~state ~prod =
  if state < 0 || state + 1 >= Array.length offsets then None
  else begin
    let found = ref (-1) in
    let stop = offsets.(state + 1) - 1 in
    let i = ref offsets.(state) in
    while !found < 0 && !i <= stop do
      if snd pairs.(!i) = prod then found := !i;
      incr i
    done;
    if !found < 0 then None else Some !found
  end

let relations ?analysis (a : Lr0.t) =
  Budget.with_stage "relations" @@ fun () ->
  let g = Lr0.grammar a in
  let analysis =
    match analysis with Some an -> an | None -> Analysis.compute g
  in
  let n_term = Grammar.n_terminals g in
  let nx = Lr0.n_nt_transitions a in

  (* DR(p,A) = { t | goto(goto(p,A), t) defined }, and
     reads(p,A) = { (r,C) | r = goto(p,A), goto(r,C) defined, C nullable }.
     Each relation is accumulated as an edge stream and laid out as
     two-pass counted CSR; [~rev] picks the per-row order the replaced
     cons-accumulated lists had, keeping every downstream walk
     byte-compatible. *)
  let dr = Array.init nx (fun _ -> Bitset.create n_term) in
  let reads_b = Csr.create_builder ~edges_hint:nx nx in
  for x = 0 to nx - 1 do
    Budget.burn ();
    let r = Lr0.nt_transition_target a x in
    let drx = dr.(x) in
    Lr0.iter_t_transitions a r (fun t _ -> Bitset.add drx t);
    Lr0.iter_n_transitions a r (fun c _ ->
        if Analysis.nullable analysis c then
          Csr.add reads_b ~src:x ~dst:(Lr0.find_nt_transition a r c))
  done;
  let reads = Csr.build ~rev:true reads_b in

  (* includes: for each nonterminal transition (p',B) and production
     B → ω, walk ω from p'; at each nonterminal position i with nullable
     suffix, (state_before_ω_i, ω_i) includes (p',B). *)
  let includes_b = Csr.create_builder ~edges_hint:(2 * nx) nx in
  for x' = 0 to nx - 1 do
    Budget.burn ();
    let p', b = Lr0.nt_transition a x' in
    Array.iter
      (fun pid ->
        Budget.burn ();
        let prod = Grammar.production g pid in
        let len = Array.length prod.rhs in
        let state = ref p' in
        for i = 0 to len - 1 do
          (match prod.rhs.(i) with
          | Symbol.N c
            when Analysis.nullable_sentence analysis prod.rhs ~from:(i + 1)
                   ~upto:len ->
              let x = Lr0.find_nt_transition a !state c in
              Csr.add includes_b ~src:x ~dst:x'
          | Symbol.N _ | Symbol.T _ -> ());
          state := Lr0.goto_exn a !state prod.rhs.(i)
        done)
      (Grammar.productions_of g b)
  done;
  let includes = Csr.build includes_b in

  (* Reductions and lookback. A reduction is a (state q, production
     A → ω) with the final item in q; production 0 is excluded (accept).
     lookback(q, A→ω) = { (p,A) | p --ω--> q }: enumerate from the (p,A)
     side so each pair is found by walking ω from p. *)
  let n_states = Lr0.n_states a in
  let reduction_offsets = Array.make (n_states + 1) 0 in
  let n_red = ref 0 in
  for q = 0 to n_states - 1 do
    reduction_offsets.(q) <- !n_red;
    n_red := !n_red + List.length (Lr0.reductions a q)
  done;
  reduction_offsets.(n_states) <- !n_red;
  let reduction_pairs = Array.make !n_red (0, 0) in
  for q = 0 to n_states - 1 do
    List.iteri
      (fun i pid -> reduction_pairs.(reduction_offsets.(q) + i) <- (q, pid))
      (Lr0.reductions a q)
  done;
  let lookback_b =
    Csr.create_builder ~edges_hint:(2 * !n_red) ~n_cols:(max nx 1) !n_red
  in
  for x = 0 to nx - 1 do
    Budget.burn ();
    let p, aa = Lr0.nt_transition a x in
    Array.iter
      (fun pid ->
        let prod = Grammar.production g pid in
        if pid <> 0 then begin
          let q = Lr0.traverse a p prod.rhs ~from:0 in
          match
            find_reduction_opt ~offsets:reduction_offsets
              ~pairs:reduction_pairs ~state:q ~prod:pid
          with
          | Some r -> Csr.add lookback_b ~src:r ~dst:x
          | None ->
              (* q must contain the final item of pid. *)
              Budget.broken_invariant ~stage:"relations"
                (Printf.sprintf
                   "lookback: state %d reached by walking production %d from \
                    nonterminal transition %d lacks the final item"
                   q pid x)
        end)
      (Grammar.productions_of g aa)
  done;
  let lookback = Csr.build ~rev:true lookback_b in
  (* The relation cardinalities — the sizes the paper's complexity
     bound is linear in — and the words each packed array holds. The
     folds only run while a session is armed. *)
  if Trace.enabled () then begin
    Trace.gauge_int "lalr.nt_transitions" nx;
    Trace.gauge_int "lalr.dr.total"
      (Array.fold_left (fun acc s -> acc + Bitset.cardinal s) 0 dr);
    Trace.gauge_int "lalr.reads.edges" (Csr.n_edges reads);
    Trace.gauge_int "lalr.includes.edges" (Csr.n_edges includes);
    Trace.gauge_int "lalr.lookback.edges" (Csr.n_edges lookback);
    Trace.gauge_int "lalr.reductions" !n_red;
    let mem_gauges name rel =
      Trace.gauge_int
        (Printf.sprintf "lalr.mem.%s.offsets_words" name)
        (Csr.offsets_words rel);
      Trace.gauge_int
        (Printf.sprintf "lalr.mem.%s.cols_words" name)
        (Csr.cols_words rel)
    in
    mem_gauges "reads" reads;
    mem_gauges "includes" includes;
    mem_gauges "lookback" lookback;
    Trace.gauge_int "lalr.mem.reduction_index.words"
      (Array.length reduction_offsets)
  end;
  {
    r_automaton = a;
    r_analysis = analysis;
    r_dr = dr;
    r_reads = reads;
    r_includes = includes;
    r_lookback = lookback;
    r_reduction_pairs = reduction_pairs;
    r_reduction_offsets = reduction_offsets;
  }

(* ------------------------------------------------------------------ *)
(* Stage 2 — the two Digraph fixpoints                                *)
(* ------------------------------------------------------------------ *)

type follow_sets = {
  f_read : Bitset.t array;
  f_follow : Bitset.t array;
  f_reads_sccs : int list list;
  f_includes_sccs : int list list;
  f_reads_digraph : Digraph.stats;
  f_includes_digraph : Digraph.stats;
}

(* Emit one Digraph run's structural profile: the solver internals the
   paper's linearity argument is about. Nothing here runs disarmed. *)
let trace_digraph relation (st : Digraph.stats) =
  let key suffix = Printf.sprintf "lalr.%s.%s" relation suffix in
  Trace.gauge_int (key "unions") st.Digraph.unions;
  Trace.gauge_int (key "max_stack_depth") st.Digraph.max_stack_depth;
  Trace.gauge_int (key "sccs") (List.length st.Digraph.nontrivial_sccs);
  List.iter
    (fun scc -> Trace.observe (key "scc_size") (List.length scc))
    st.Digraph.nontrivial_sccs

let solve_follow r =
  let read, read_stats =
    Trace.with_span "lalr.solve.read" (fun () ->
        Digraph.ForBitset.run_csr ~graph:r.r_reads
          ~init:(fun x -> r.r_dr.(x)))
  in
  let follow, follow_stats =
    Trace.with_span "lalr.solve.follow" (fun () ->
        Digraph.ForBitset.run_csr ~graph:r.r_includes
          ~init:(fun x -> read.(x)))
  in
  trace_digraph "reads" read_stats;
  trace_digraph "includes" follow_stats;
  {
    f_read = read;
    f_follow = follow;
    f_reads_sccs = read_stats.Digraph.nontrivial_sccs;
    f_includes_sccs = follow_stats.Digraph.nontrivial_sccs;
    f_reads_digraph = read_stats;
    f_includes_digraph = follow_stats;
  }

(* ------------------------------------------------------------------ *)
(* Stage 3 — look-ahead union, diagnostics, assembly                  *)
(* ------------------------------------------------------------------ *)

let of_stages r f =
  let g = Lr0.grammar r.r_automaton in
  let n_term = Grammar.n_terminals g in
  let n_red = Array.length r.r_reduction_pairs in
  (* LA(q, A→ω) = ⋃ Follow over lookback. *)
  let la =
    Array.init n_red (fun i ->
        let acc = Bitset.create n_term in
        Csr.iter_row r.r_lookback i (fun x ->
            ignore (Bitset.union_into ~into:acc f.f_follow.(x)));
        acc)
  in
  let diagnostics =
    List.map (fun c -> Reads_cycle c) f.f_reads_sccs
    @ List.map (fun c -> Includes_cycle c) f.f_includes_sccs
  in
  let stats =
    {
      n_nt_transitions = Array.length r.r_dr;
      dr_total =
        Array.fold_left (fun acc s -> acc + Bitset.cardinal s) 0 r.r_dr;
      reads_edges = Csr.n_edges r.r_reads;
      includes_edges = Csr.n_edges r.r_includes;
      lookback_edges = Csr.n_edges r.r_lookback;
      n_reductions = n_red;
      la_total = Array.fold_left (fun acc s -> acc + Bitset.cardinal s) 0 la;
      reads_sccs = f.f_reads_sccs;
      includes_sccs = f.f_includes_sccs;
      reads_unions = f.f_reads_digraph.Digraph.unions;
      includes_unions = f.f_includes_digraph.Digraph.unions;
      reads_max_depth = f.f_reads_digraph.Digraph.max_stack_depth;
      includes_max_depth = f.f_includes_digraph.Digraph.max_stack_depth;
      mem =
        {
          reads_offsets_words = Csr.offsets_words r.r_reads;
          reads_cols_words = Csr.cols_words r.r_reads;
          includes_offsets_words = Csr.offsets_words r.r_includes;
          includes_cols_words = Csr.cols_words r.r_includes;
          lookback_offsets_words = Csr.offsets_words r.r_lookback;
          lookback_cols_words = Csr.cols_words r.r_lookback;
          reduction_index_words = Array.length r.r_reduction_offsets;
        };
    }
  in
  (* The LA union itself performs exactly one set union per lookback
     edge; its output volume is the remaining quantity of interest. *)
  Trace.gauge_int "lalr.la.total" stats.la_total;
  {
    automaton = r.r_automaton;
    analysis = r.r_analysis;
    dr = r.r_dr;
    reads = r.r_reads;
    read = f.f_read;
    includes = r.r_includes;
    follow = f.f_follow;
    reduction_pairs = r.r_reduction_pairs;
    reduction_offsets = r.r_reduction_offsets;
    lookback = r.r_lookback;
    la;
    diagnostics;
    stats;
  }

let compute (a : Lr0.t) =
  let r = relations a in
  of_stages r (solve_follow r)

let dr t x = t.dr.(x)
let read t x = t.read.(x)
let follow t x = t.follow.(x)
let reads t x = Csr.row_list t.reads x
let includes t x = Csr.row_list t.includes x
let reads_csr t = t.reads
let includes_csr t = t.includes
let lookback_csr t = t.lookback
let n_reductions t = Array.length t.reduction_pairs
let reduction t r = t.reduction_pairs.(r)

let find_reduction t ~state ~prod =
  match
    find_reduction_opt ~offsets:t.reduction_offsets ~pairs:t.reduction_pairs
      ~state ~prod
  with
  | Some r -> r
  | None -> raise Not_found

let lookback t r = Csr.row_list t.lookback r
let la t r = t.la.(r)
let lookahead t ~state ~prod = t.la.(find_reduction t ~state ~prod)
let diagnostics t = t.diagnostics
let stats t = t.stats

let is_lalr1 t =
  let a = t.automaton in
  let n_term = Grammar.n_terminals (grammar t) in
  let ok = ref true in
  for q = 0 to Lr0.n_states a - 1 do
    let reds = Lr0.reductions a q in
    if reds <> [] then begin
      (* Terminals shiftable from q. *)
      let shiftable = Bitset.create n_term in
      Lr0.iter_t_transitions a q (fun tt _ -> Bitset.add shiftable tt);
      let seen = Bitset.create n_term in
      ignore (Bitset.union_into ~into:seen shiftable);
      List.iter
        (fun pid ->
          let set = lookahead t ~state:q ~prod:pid in
          if not (Bitset.disjoint set seen) then ok := false;
          ignore (Bitset.union_into ~into:seen set))
        reds
    end
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Provenance: why is a terminal in LA(q, A→ω)?                       *)
(* ------------------------------------------------------------------ *)

type trace = {
  t_terminal : int;
  t_reduction : int;
  t_lookback : int;
  t_includes_path : int list;
  t_reads_path : int list;
  t_dr : int;
}

(* Last element in O(n) — the provenance paths below need their final
   node, and [List.nth l (length l - 1)] walks the spine twice per
   lookup (quadratic when a caller chains these on long paths). *)
let rec last = function
  | [] -> invalid_arg "Lalr.last: empty path"
  | [ x ] -> x
  | _ :: tl -> last tl

(* Shortest path (BFS) from [start] to a node satisfying [hit];
   returns the node list including both endpoints. Successor scans
   walk the relation's CSR row directly. *)
let bfs_path ~graph ~start ~hit =
  if hit start then Some [ start ]
  else begin
    let n = Csr.n_rows graph in
    let prev = Array.make n (-2) in
    prev.(start) <- -1;
    let q = Queue.create () in
    Queue.add start q;
    let found = ref None in
    while !found = None && not (Queue.is_empty q) do
      let u = Queue.pop q in
      Csr.iter_row graph u (fun v ->
          if !found = None && prev.(v) = -2 then begin
            prev.(v) <- u;
            if hit v then found := Some v else Queue.add v q
          end)
    done;
    match !found with
    | None -> None
    | Some v ->
        let rec walk v acc =
          if prev.(v) = -1 then v :: acc else walk prev.(v) (v :: acc)
        in
        Some (walk v [])
  end

let trace t ~state ~prod ~terminal =
  match
    find_reduction_opt ~offsets:t.reduction_offsets ~pairs:t.reduction_pairs
      ~state ~prod
  with
  | None -> None
  | Some r ->
      let rec try_lookbacks = function
        | [] -> None
        | x :: rest ->
            if not (Bitset.mem t.follow.(x) terminal) then try_lookbacks rest
            else begin
              (* Follow(x) = ⋃ Read over includes*-successors, and
                 Read(y) = ⋃ DR over reads*-successors, so both BFS
                 searches must succeed once the membership test above
                 passes. *)
              match
                bfs_path ~graph:t.includes ~start:x
                  ~hit:(fun y -> Bitset.mem t.read.(y) terminal)
              with
              | None -> try_lookbacks rest
              | Some inc_path -> (
                  let y = last inc_path in
                  match
                    bfs_path ~graph:t.reads ~start:y
                      ~hit:(fun z -> Bitset.mem t.dr.(z) terminal)
                  with
                  | None -> try_lookbacks rest
                  | Some reads_path ->
                      Some
                        {
                          t_terminal = terminal;
                          t_reduction = r;
                          t_lookback = x;
                          t_includes_path = List.tl inc_path;
                          t_reads_path = List.tl reads_path;
                          t_dr = last reads_path;
                        })
            end
      in
      try_lookbacks (Csr.row_list t.lookback r)

let pp_nt_transition t ppf x =
  let p, a = Lr0.nt_transition t.automaton x in
  Format.fprintf ppf "(%d, %s)" p (Grammar.nonterminal_name (grammar t) a)

let pp_trace t ppf tr =
  let g = grammar t in
  let q, pid = t.reduction_pairs.(tr.t_reduction) in
  let term = Grammar.terminal_name g tr.t_terminal in
  Format.fprintf ppf "@[<v>'%s' ∈ LA(%d, %a):@," term q
    (Grammar.pp_production g) (Grammar.production g pid);
  Format.fprintf ppf "  lookback  (%d, %a) ⇝ %a@," q
    (Grammar.pp_production g) (Grammar.production g pid)
    (pp_nt_transition t) tr.t_lookback;
  (match tr.t_includes_path with
  | [] -> ()
  | path ->
      Format.fprintf ppf "  includes  %a" (pp_nt_transition t) tr.t_lookback;
      List.iter
        (fun x -> Format.fprintf ppf " → %a" (pp_nt_transition t) x)
        path;
      Format.fprintf ppf "@,");
  (match tr.t_reads_path with
  | [] -> ()
  | path ->
      let first =
        match tr.t_includes_path with
        | [] -> tr.t_lookback
        | l -> last l
      in
      Format.fprintf ppf "  reads     %a" (pp_nt_transition t) first;
      List.iter
        (fun x -> Format.fprintf ppf " → %a" (pp_nt_transition t) x)
        path;
      Format.fprintf ppf "@,");
  let p, a = Lr0.nt_transition t.automaton tr.t_dr in
  Format.fprintf ppf "  DR        '%s' ∈ DR%a — shiftable in state %d@]" term
    (pp_nt_transition t) tr.t_dr
    (Lr0.goto_exn t.automaton p (Symbol.N a))

let pp ppf t =
  let g = grammar t in
  let pp_term ppf tt = Format.pp_print_string ppf (Grammar.terminal_name g tt) in
  let pp_set = Bitset.pp ~pp_elt:pp_term in
  Format.fprintf ppf "@[<v>";
  for x = 0 to Lr0.n_nt_transitions t.automaton - 1 do
    Format.fprintf ppf "%a: DR=%a Read=%a Follow=%a" (pp_nt_transition t) x
      pp_set t.dr.(x) pp_set t.read.(x) pp_set t.follow.(x);
    if Csr.degree t.reads x > 0 then begin
      Format.fprintf ppf " reads:";
      Csr.iter_row t.reads x (fun y ->
          Format.fprintf ppf " %a" (pp_nt_transition t) y)
    end;
    if Csr.degree t.includes x > 0 then begin
      Format.fprintf ppf " includes:";
      Csr.iter_row t.includes x (fun y ->
          Format.fprintf ppf " %a" (pp_nt_transition t) y)
    end;
    Format.fprintf ppf "@,"
  done;
  Array.iteri
    (fun r (q, pid) ->
      Format.fprintf ppf "LA(%d, %a) = %a@," q
        (Grammar.pp_production g)
        (Grammar.production g pid)
        pp_set t.la.(r))
    t.reduction_pairs;
  Format.fprintf ppf "@]"
