(** The DeRemer–Pennello LALR(1) look-ahead computation.

    Implements the paper's pipeline on a prebuilt LR(0) automaton:

    + [DR(p,A)] — direct read symbols of each nonterminal transition;
    + [reads] — nullable-nonterminal read edges; [Read] via {!Digraph};
    + [includes] — production-suffix-nullable edges; [Follow] via
      {!Digraph};
    + [lookback] — from reductions to nonterminal transitions;
    + [LA(q, A → ω)] — union of [Follow] over [lookback].

    Nonterminal transitions are indexed by {!Lalr_automaton.Lr0}'s dense
    numbering; reductions (pairs of a state and a production whose final
    item it contains) get their own dense numbering here. *)

module Bitset = Lalr_sets.Bitset
module Csr = Lalr_sets.Csr

type diagnostic =
  | Reads_cycle of int list
      (** A nontrivial cycle in [reads] (members are nonterminal
          transition indices). The paper's Theorem 6.1: the grammar is
          not LR(k) for any k. *)
  | Includes_cycle of int list
      (** A nontrivial cycle in [includes]. The look-ahead sets are
          still computed (members of the SCC share a [Follow] set); the
          grammar may or may not be LR(1). *)

type mem = {
  reads_offsets_words : int;
  reads_cols_words : int;
  includes_offsets_words : int;
  includes_cols_words : int;
  lookback_offsets_words : int;
  lookback_cols_words : int;
  reduction_index_words : int;
}
(** Words held by each packed relation array (CSR [offsets]/[cols] per
    relation, plus the dense per-state reduction index) — the
    memory-footprint half of the data-layout story, reported by
    [lalrgen stats] and cross-checked against the [lalr.mem.*] trace
    gauges in CI. *)

type stats = {
  n_nt_transitions : int;
  dr_total : int;  (** Σ |DR(p,A)| *)
  reads_edges : int;
  includes_edges : int;
  lookback_edges : int;
  n_reductions : int;  (** reduction (state, production) pairs *)
  la_total : int;  (** Σ |LA| over all reductions *)
  reads_sccs : int list list;  (** nontrivial SCCs of [reads] *)
  includes_sccs : int list list;
  reads_unions : int;
      (** set unions performed by the [Read] Digraph run *)
  includes_unions : int;
      (** set unions performed by the [Follow] Digraph run *)
  reads_max_depth : int;  (** peak Digraph stack depth, [Read] run *)
  includes_max_depth : int;  (** peak Digraph stack depth, [Follow] run *)
  mem : mem;
}

type t

val compute : Lalr_automaton.Lr0.t -> t
(** Runs the full computation. Cost: two {!Digraph} runs plus one pass
    over the grammar per relation. Equivalent to
    [of_stages r (solve_follow r)] with [r = relations a]. *)

(** {2 Staged construction}

    {!compute} decomposed, so a memoizing pipeline
    ([Lalr_engine.Engine]) can force — and observe — each stage at most
    once per grammar:

    + {!relations} — pure relation construction: [DR], [reads],
      [includes], [lookback] and the dense reduction numbering;
    + {!solve_follow} — the two {!Digraph} fixpoints: [Read] over
      [reads], then [Follow] over [includes];
    + {!of_stages} — the look-ahead union over [lookback], plus
      diagnostics and stats, assembled into a {!t}. *)

type relations = {
  r_automaton : Lalr_automaton.Lr0.t;
  r_analysis : Analysis.t;
  r_dr : Bitset.t array;  (** per nonterminal transition; owned *)
  r_reads : Csr.t;  (** successor transition indices, CSR rows *)
  r_includes : Csr.t;
  r_lookback : Csr.t;  (** reduction index → transitions *)
  r_reduction_pairs : (int * int) array;  (** [(state, production)] *)
  r_reduction_offsets : int array;
      (** dense per-state index: state [q]'s reductions are rows
          [r_reduction_offsets.(q) .. r_reduction_offsets.(q+1) - 1]
          of [r_reduction_pairs] *)
}
(** The paper's four relations over one LR(0) automaton, as a
    first-class value: each relation is two packed int arrays
    ({!Csr.t}), the layout both Digraph fixpoints stream through. All
    arrays are owned by the record (and by any {!t} later assembled
    from it): treat as read-only. *)

val relations : ?analysis:Analysis.t -> Lalr_automaton.Lr0.t -> relations
(** Stage 1. [?analysis] must be the analysis of the automaton's
    grammar when supplied (a memoizing caller passes its cached copy);
    it is recomputed otherwise. *)

type follow_sets = {
  f_read : Bitset.t array;
  f_follow : Bitset.t array;
  f_reads_sccs : int list list;  (** nontrivial SCCs found in [reads] *)
  f_includes_sccs : int list list;
  f_reads_digraph : Lalr_sets.Digraph.stats;
      (** full solver profile of the [Read] run (unions, stack depth) *)
  f_includes_digraph : Lalr_sets.Digraph.stats;
}

val solve_follow : relations -> follow_sets
(** Stage 2: the two Digraph runs. *)

val of_stages : relations -> follow_sets -> t
(** Stage 3: cheap relative to the others — one bitset union per
    lookback edge. The resulting {!t} shares the stage arrays. *)

val automaton : t -> Lalr_automaton.Lr0.t
val grammar : t -> Grammar.t
val analysis : t -> Analysis.t

val dr : t -> int -> Bitset.t
(** [DR] of a nonterminal transition index. Owned by [t]; copy before
    mutating (applies to all set accessors below). *)

val read : t -> int -> Bitset.t
val follow : t -> int -> Bitset.t

val reads : t -> int -> int list
(** Successor transition indices under the [reads] relation (a fresh
    list — the boundary conversion from the CSR row). *)

val includes : t -> int -> int list

val reads_csr : t -> Csr.t
(** The packed relations themselves, for zero-copy consumers (bench,
    provenance tooling). Owned by [t]: read-only. *)

val includes_csr : t -> Csr.t
val lookback_csr : t -> Csr.t

(** {2 Reductions and their look-ahead sets} *)

val n_reductions : t -> int

val reduction : t -> int -> int * int
(** [(state, production)] of a reduction index. *)

val find_reduction : t -> state:int -> prod:int -> int
(** Raises [Not_found] if that state does not reduce that production. *)

val lookback : t -> int -> int list
(** Nonterminal transition indices related to a reduction index by
    [lookback]. *)

val la : t -> int -> Bitset.t
(** The look-ahead set of a reduction index. *)

val lookahead : t -> state:int -> prod:int -> Bitset.t
(** Convenience: [la] ∘ [find_reduction]. *)

val diagnostics : t -> diagnostic list
val stats : t -> stats

(** {2 Provenance}

    A static explanation of one look-ahead membership
    [t ∈ LA(q, A → ω)]: the chain

    {v lookback → includes* → reads* → DR v}

    through which the terminal is injected, rendered like a taint path.
    The paths are shortest (BFS over each relation); in an SCC every
    member shares the set, so the exhibited path is one witness among
    possibly many. *)

type trace = {
  t_terminal : int;
  t_reduction : int;  (** reduction index *)
  t_lookback : int;  (** nonterminal transition the chain starts from *)
  t_includes_path : int list;
      (** successive transitions reached via [includes] (excluding
          [t_lookback]); empty if the terminal is already in [Read] *)
  t_reads_path : int list;
      (** successive transitions reached via [reads]; empty if already
          in [DR] *)
  t_dr : int;  (** final transition with [t ∈ DR] *)
}

val trace : t -> state:int -> prod:int -> terminal:int -> trace option
(** [trace t ~state ~prod ~terminal] explains why [terminal] is in the
    look-ahead set of that reduction. [None] if the pair is not a
    reduction or the terminal is not in its look-ahead set. *)

val pp_trace : t -> Format.formatter -> trace -> unit
(** Multi-line rendering of the chain with states and symbol names. *)

val is_lalr1 : t -> bool
(** No LALR(1) conflicts: in every state, reduction look-aheads are
    pairwise disjoint and disjoint from the shiftable terminals. (Accept
    on [$] in the accept state is not a conflict.) *)

val pp_nt_transition : t -> Format.formatter -> int -> unit
(** [(state, A)]. *)

val pp : Format.formatter -> t -> unit
(** Dump of all relations and look-ahead sets, for debugging and the
    CLI's [--explain] output. *)
