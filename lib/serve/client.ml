module Budget = Lalr_guard.Budget
module Breaker = Lalr_guard.Breaker
module Faultpoint = Lalr_guard.Faultpoint
module Retry = Lalr_guard.Retry

type t = {
  endpoint : Serve.endpoint;
  retry : Retry.policy;
  sleep : float -> unit;
  breaker : Breaker.t;
  mutable conn : (Unix.file_descr * in_channel * out_channel) option;
}

type error =
  | Breaker_open of { endpoint : Serve.endpoint; retry_after : float }
  | Unavailable of {
      endpoint : Serve.endpoint;
      reason : string;
      partial : string list;
    }

(* A write to a connection the daemon already dropped raises EPIPE
   instead of killing the whole process — the retry layer depends on
   seeing the exception. Mirrors what [Serve.run] does server-side. *)
let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ())

let create ?(retry = Retry.default) ?(sleep = Unix.sleepf) ?breaker endpoint =
  Lazy.force ignore_sigpipe;
  let breaker =
    match breaker with Some b -> b | None -> Breaker.create ()
  in
  { endpoint; retry; sleep; breaker; conn = None }

let endpoint t = t.endpoint
let breaker t = t.breaker

(* The messages the CLI surfaces verbatim: always name the endpoint,
   and distinguish "nothing at that path" from "something is there but
   not accepting" — the operator's next move differs. *)
let connect_failure endpoint e =
  let ep = Serve.endpoint_to_string endpoint in
  match (endpoint, e) with
  | Serve.Unix_path p, Unix.ENOENT ->
      Printf.sprintf "no such socket %s (is the daemon running?)" p
  | Serve.Unix_path p, Unix.ECONNREFUSED ->
      Printf.sprintf
        "connection refused on socket %s (daemon gone? stale socket file?)" p
  | Serve.Tcp _, Unix.ECONNREFUSED ->
      Printf.sprintf "connection refused on %s (is the daemon listening?)" ep
  | _, e -> Printf.sprintf "cannot connect to %s: %s" ep (Unix.error_message e)

let teardown (fd, ic, oc) =
  close_out_noerr oc;
  close_in_noerr ic;
  (try Unix.close fd with Unix.Unix_error _ -> ())

let close t =
  match t.conn with
  | None -> ()
  | Some c ->
      t.conn <- None;
      teardown c

let probe_id = "__client_probe__"

(* One fresh, health-checked connection. The probe round-trip proves
   the daemon at the other end actually answers the protocol — a
   half-dead socket (bound but not serving) fails here, before the
   caller's requests are committed to it. *)
let connect_once t =
  Faultpoint.check "serve-client";
  let connect_fd fd addr =
    try
      Unix.connect fd addr;
      fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  let fd =
    match t.endpoint with
    | Serve.Unix_path path ->
        connect_fd
          (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0)
          (Unix.ADDR_UNIX path)
    | Serve.Tcp { host; port } ->
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found | Invalid_argument _ ->
              failwith (Printf.sprintf "cannot resolve host %S" host))
        in
        connect_fd
          (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0)
          (Unix.ADDR_INET (addr, port))
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  try
    output_string oc
      (Protocol.encode_request (Protocol.Health { id = probe_id }) ^ "\n");
    flush oc;
    let line = input_line ic in
    (match Protocol.Json.parse line with
    | Ok j
      when Protocol.Json.member "status" j = Some (Protocol.Json.Str "health")
      ->
        ()
    | Ok _ -> failwith "health probe answered with a non-health response"
    | Error m ->
        failwith (Printf.sprintf "health probe answered garbage: %s" m));
    (fd, ic, oc)
  with e ->
    teardown (fd, ic, oc);
    raise e

exception Attempt_failed of { reason : string; received : string list }

let ensure_conn t =
  match t.conn with
  | Some c -> c
  | None -> (
      match connect_once t with
      | c ->
          t.conn <- Some c;
          c
      | exception Unix.Unix_error (e, _, _) ->
          raise
            (Attempt_failed
               { reason = connect_failure t.endpoint e; received = [] })
      | exception (Failure m | Sys_error m) ->
          raise (Attempt_failed { reason = m; received = [] })
      | exception End_of_file ->
          raise
            (Attempt_failed
               {
                 reason =
                   Printf.sprintf "%s closed the connection during the \
                                   health probe"
                     (Serve.endpoint_to_string t.endpoint);
                 received = [];
               })
      | exception Budget.Internal_error { stage; invariant } ->
          (* The armed serve-client faultpoint: a stand-in for any
             client-side transport invariant break; absorbed into the
             same retry/reconnect path as a real one. *)
          raise
            (Attempt_failed
               {
                 reason =
                   Printf.sprintf "internal error in stage '%s': %s" stage
                     invariant;
                 received = [];
               }))

(* One attempt: send every request line, then read exactly one
   response line per request. On any transport failure the connection
   is torn down (the next attempt reconnects) and the responses that
   DID arrive ride along in the failure — the caller may have
   side-effected on them already, so they are delivered, never
   silently dropped. *)
let attempt t lines =
  let ((_, ic, oc) as conn) = ensure_conn t in
  let received = ref [] in
  try
    List.iter
      (fun l ->
        output_string oc l;
        output_char oc '\n')
      lines;
    flush oc;
    List.iter
      (fun _ -> received := input_line ic :: !received)
      lines;
    Ok (List.rev !received)
  with
  | (End_of_file | Sys_error _ | Unix.Unix_error _) as e ->
      t.conn <- None;
      teardown conn;
      let reason =
        match e with
        | End_of_file ->
            Printf.sprintf
              "%s closed the connection before all responses arrived"
              (Serve.endpoint_to_string t.endpoint)
        | Sys_error m ->
            Printf.sprintf "%s: %s" (Serve.endpoint_to_string t.endpoint) m
        | Unix.Unix_error (err, _, _) ->
            Printf.sprintf "%s: %s"
              (Serve.endpoint_to_string t.endpoint)
              (Unix.error_message err)
        | _ -> "connection failure"
      in
      Error (reason, List.rev !received)

let call t lines =
  match Breaker.acquire t.breaker with
  | Breaker.Reject retry_after ->
      Error (Breaker_open { endpoint = t.endpoint; retry_after })
  | Breaker.Proceed | Breaker.Probe -> (
      let result, _retries =
        Retry.run ~policy:t.retry ~sleep:t.sleep
          ~retryable:(function
            (* Only an attempt that failed before ANY response arrived
               is safe to replay: once a response is in, the daemon has
               done (some of) the work and a resend would double-submit
               the whole batch. *)
            | Error (_, received) -> received = []
            | Ok _ -> false)
          (fun ~attempt:_ ->
            match attempt t lines with
            | r -> r
            | exception Attempt_failed { reason; received } ->
                Error (reason, received))
      in
      match result with
      | Ok responses ->
          Breaker.success t.breaker;
          Ok responses
      | Error (reason, partial) ->
          Breaker.failure t.breaker;
          Error (Unavailable { endpoint = t.endpoint; reason; partial }))

(* Trace-context propagation, client side. Stamping re-encodes only
   lines that decode as a Classify with no trace_id yet; everything
   else (health/metrics, already-stamped lines, deliberately
   malformed chaos input) passes through byte-identical — stamping
   must never change what the daemon sees beyond the one field. *)
let stamp_trace_ids ~prefix lines =
  List.mapi
    (fun i line ->
      match Protocol.decode_request line with
      | Ok
          (Protocol.Classify
             { id; source; budget; deadline_ms; trace_id = None }) ->
          Protocol.encode_request
            (Protocol.Classify
               {
                 id;
                 source;
                 budget;
                 deadline_ms;
                 trace_id = Some (Printf.sprintf "%s-%d" prefix i);
               })
      | _ -> line)
    lines

let trace_ids lines =
  List.filter_map
    (fun line ->
      match Protocol.decode_request line with
      | Ok (Protocol.Classify { trace_id = Some t; _ }) -> Some t
      | _ -> None)
    lines

let error_message = function
  | Breaker_open { endpoint; retry_after } ->
      Printf.sprintf
        "circuit breaker open for %s; next probe allowed in %.0f ms"
        (Serve.endpoint_to_string endpoint)
        (Float.max 0. retry_after *. 1e3)
  | Unavailable { reason; _ } -> reason
