module Budget = Lalr_guard.Budget
module Faultpoint = Lalr_guard.Faultpoint
module Store = Lalr_store.Store
module Trace = Lalr_trace.Trace
module Metrics = Lalr_trace.Metrics

type endpoint = Unix_path of string | Tcp of { host : string; port : int }

let parse_endpoint s =
  if s = "" then Error "empty endpoint"
  else
    match String.rindex_opt s ':' with
    | Some i ->
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        let host = if host = "" then "127.0.0.1" else host in
        if String.contains host '/' then Ok (Unix_path s)
        else (
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 -> Ok (Tcp { host; port = p })
          | Some p -> Error (Printf.sprintf "port %d out of range" p)
          | None -> Error (Printf.sprintf "bad port %S" port))
    | None -> (
        match int_of_string_opt s with
        | Some p when p > 0 && p < 65536 ->
            Ok (Tcp { host = "127.0.0.1"; port = p })
        | Some p -> Error (Printf.sprintf "port %d out of range" p)
        | None -> Ok (Unix_path s))

let endpoint_to_string = function
  | Unix_path p -> p
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

type config = {
  endpoint : endpoint;
  pool : Pool.config;
  max_line : int;
  trace_file : string option;
  access_log : string option;
  on_ready : string -> unit;
}

let default_max_line = 1 lsl 20

let default_config =
  {
    endpoint = Unix_path "lalrgen.sock";
    pool = Pool.default_config;
    max_line = default_max_line;
    trace_file = None;
    access_log = None;
    on_ready = ignore;
  }

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

type conn = {
  c_fd : Unix.file_descr;
  c_wmu : Mutex.t;  (* serialises response lines onto the fd *)
  c_pending : int Atomic.t;  (* admitted jobs not yet responded to *)
  c_eof : bool Atomic.t;
  c_closed : bool Atomic.t;  (* logically closed: no further writes *)
  c_reader_done : bool Atomic.t;
  c_freed : bool Atomic.t;  (* fd returned to the kernel *)
}

type srv = {
  cfg : config;
  pool : Pool.t;
  registry : Metrics.t;  (* shards: 0 = this layer, i+1 = worker i *)
  mshard : Metrics.shard;  (* shard 0; series pre-registered in run *)
  access : out_channel option;
  access_mu : Mutex.t;  (* one access-log line at a time, any thread *)
  probe_mu : Mutex.t;
      (* the main domain's trace session is shared by every reader
         thread (sessions are domain-local, threads are not) *)
  conns_mu : Mutex.t;
  mutable conns : conn list;  (* guarded by conns_mu *)
  mutable threads : Thread.t list;  (* guarded by conns_mu *)
  draining : bool Atomic.t;
}

(* Serve-layer trace probe, safe from any reader thread. Worker
   domains have their own sessions and never come through here. *)
let probe srv f =
  Mutex.lock srv.probe_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock srv.probe_mu) f

(* fd lifetime: a connection is closed in two steps. [close_conn]
   closes it LOGICALLY — shutdown(2) wakes the peer (EOF) and the
   reader, and no new write starts — but the descriptor itself is
   returned to the kernel only once nothing can still touch it: the
   reader thread has exited and every admitted job has responded.
   Closing earlier would free the fd number while late responders
   still hold it; the very next accept(2) reuses that number and a
   stale write would land INSIDE another client's response stream. *)
let free_fd conn =
  if
    Atomic.get conn.c_closed
    && Atomic.get conn.c_reader_done
    && Atomic.get conn.c_pending = 0
    && not (Atomic.exchange conn.c_freed true)
  then try Unix.close conn.c_fd with Unix.Unix_error _ -> ()

let close_conn srv conn =
  if not (Atomic.exchange conn.c_closed true) then begin
    (try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    Mutex.lock srv.conns_mu;
    srv.conns <- List.filter (fun c -> c != conn) srv.conns;
    Mutex.unlock srv.conns_mu
  end;
  free_fd conn

let close_if_done srv conn =
  if Atomic.get conn.c_eof && Atomic.get conn.c_pending = 0 then
    close_conn srv conn
  else free_fd conn

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

(* One JSON line per response attempt — the documented access-log
   schema (README "Observability"): ts, id, status, exit, sent, and
   for pool jobs wall/queue timings, worker, retries, deadline slack
   and the client trace_id. Flushed per line so a tail (or the CI
   validator) sees requests as they finish. *)
let access_line srv response ~sent =
  match srv.access with
  | None -> ()
  | Some oc ->
      let esc = Trace.json_escape in
      let b = Buffer.create 160 in
      Printf.bprintf b
        "{\"ts\":%.6f,\"id\":\"%s\",\"status\":\"%s\",\"exit\":%d,\"sent\":%b"
        (Unix.gettimeofday ())
        (esc (Protocol.response_id response))
        (Protocol.response_status_label response)
        (Protocol.response_exit response)
        sent;
      (match response with
      | Protocol.Job r ->
          Printf.bprintf b ",\"wall_ms\":%.3f,\"queue_ms\":%.3f,\"retries\":%d"
            r.Protocol.r_wall_ms r.Protocol.r_queue_ms r.Protocol.r_retries;
          (match r.Protocol.r_worker with
          | Some w -> Printf.bprintf b ",\"worker\":%d" w
          | None -> ());
          (match r.Protocol.r_slack_ms with
          | Some s -> Printf.bprintf b ",\"deadline_slack_ms\":%.3f" s
          | None -> ());
          (match r.Protocol.r_trace_id with
          | Some t -> Printf.bprintf b ",\"trace_id\":\"%s\"" (esc t)
          | None -> ())
      | Protocol.Health _ | Protocol.Metrics_snapshot _ -> ());
      Buffer.add_char b '}';
      Buffer.add_char b '\n';
      Mutex.lock srv.access_mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock srv.access_mu)
        (fun () ->
          try
            output_string oc (Buffer.contents b);
            flush oc
          with Sys_error _ -> ())

(* The response writer: the daemon's last chance to fail a request.
   Any failure here (dead peer, armed serve-respond injection) is
   absorbed — the response is dropped and counted, the connection is
   closed, the daemon keeps serving.

   This is also the telemetry funnel: EVERY response — pool jobs,
   inline health/metrics answers, bad_request, shed, supervisor crash
   responses — goes through here exactly once.
   [lalr_serve_requests_total{status=…}] counts each BEFORE the write:
   the increment must already be visible to any scrape a client issues
   after receiving the response (counting afterwards would let the
   scrape race ahead of the responder thread). A failed write then
   also lands in [lalr_serve_responses_dropped_total{status=…}], so
   responses actually delivered reconcile exactly as
   total − dropped, per status. *)
let send srv conn response =
  let status = Protocol.response_status_label response in
  Metrics.inc srv.mshard
    ~labels:[ ("status", status) ]
    "lalr_serve_requests_total";
  let ok =
    (not (Atomic.get conn.c_closed))
    && (try
          Faultpoint.check "serve-respond";
          let line = Protocol.encode_response response ^ "\n" in
          Mutex.lock conn.c_wmu;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock conn.c_wmu)
            (fun () -> write_all conn.c_fd line);
          true
        with _ -> false)
  in
  if not ok then
    Metrics.inc srv.mshard
      ~labels:[ ("status", status) ]
      "lalr_serve_responses_dropped_total";
  access_line srv response ~sent:ok;
  probe srv (fun () ->
      if ok then Trace.count "serve.responses"
      else begin
        Trace.count "serve.responses.dropped";
        close_conn srv conn
      end)
[@@lalr.allow
  D004
    "socket boundary: a response write can fail for reasons the daemon \
     must survive (peer gone, fd shut during drain, armed serve-respond \
     injection); the drop is counted and the connection closed rather \
     than letting one dead client kill the process"]

let plain_response id status detail =
  Protocol.Job
    {
      Protocol.r_id = id;
      r_status = status;
      r_detail = detail;
      r_lalr1 = None;
      r_wall_ms = 0.;
      r_queue_ms = 0.;
      r_retries = 0;
      r_worker = None;
      r_slack_ms = None;
      r_trace_id = None;
      r_stages = [];
      r_lr0_states = None;
      r_completed = [];
    }

let bad_request_response id detail = plain_response id Protocol.Bad_request detail

(* Mangle a line the way the serve-decode corrupt injection documents:
   flip a byte in the middle so the decoder must reject it cleanly. *)
let corrupt_line line =
  if String.length line = 0 then "\255"
  else begin
    let b = Bytes.of_string line in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
    Bytes.to_string b
  end

(* Answer a metrics scrape inline (never queued, like health):
   refresh the point-in-time gauges, then merge every shard into one
   deterministic exposition. Merging at scrape time is the design
   point — scrapes pay the iteration cost, request hot paths never
   wait on a scrape (DESIGN.md §17). *)
let scrape srv =
  let h = Pool.health srv.pool ~id:"scrape" in
  Metrics.set_gauge srv.mshard "lalr_serve_uptime_seconds"
    h.Protocol.h_uptime_s;
  Metrics.set_gauge srv.mshard "lalr_serve_queue_depth"
    (float_of_int h.Protocol.h_queue_depth);
  Metrics.set_gauge srv.mshard "lalr_serve_queue_capacity"
    (float_of_int h.Protocol.h_queue_capacity);
  Metrics.set_gauge srv.mshard "lalr_serve_ready"
    (if h.Protocol.h_ready then 1. else 0.);
  Metrics.set_gauge srv.mshard "lalr_serve_workers"
    (float_of_int (List.length h.Protocol.h_workers));
  Metrics.to_prometheus (Metrics.snapshot srv.registry)

let handle_line srv conn line =
  probe srv (fun () -> Trace.count "serve.lines");
  let decoded =
    try
      Faultpoint.check "serve-decode";
      let line =
        if Faultpoint.take_corrupt "serve-decode" then corrupt_line line
        else line
      in
      `Decoded (Protocol.decode_request line)
    with
    | Budget.Internal_error { stage; invariant } ->
        `Fault
          (plain_response "" Protocol.Internal
             (Printf.sprintf "internal error in stage '%s': %s" stage
                invariant))
    | Budget.Exceeded ex ->
        `Fault
          (plain_response "" Protocol.Budget
             (Format.asprintf "%a" Budget.pp_exceeded ex))
  in
  match decoded with
  | `Fault response -> send srv conn response
  | `Decoded (Error msg) ->
      probe srv (fun () -> Trace.count "serve.bad_request");
      send srv conn (bad_request_response "" msg)
  | `Decoded (Ok (Protocol.Health { id })) ->
      send srv conn (Protocol.Health (Pool.health srv.pool ~id))
  | `Decoded (Ok (Protocol.Metrics { id })) ->
      send srv conn
        (Protocol.Metrics_snapshot { Protocol.m_id = id; m_body = scrape srv })
  | `Decoded (Ok (Protocol.Classify _ as request)) -> (
      let id = Protocol.request_id request in
      Atomic.incr conn.c_pending;
      let respond response =
        send srv conn response;
        Atomic.decr conn.c_pending;
        close_if_done srv conn
      in
      match Pool.submit srv.pool ~request ~respond with
      | `Accepted -> ()
      | `Overloaded ->
          probe srv (fun () -> Trace.count "serve.shed");
          respond
            (Protocol.shed_response ~id
               ~queue_capacity:srv.cfg.pool.Pool.queue_capacity)
      | `Draining ->
          probe srv (fun () -> Trace.count "serve.shed");
          respond
            (plain_response id Protocol.Overloaded
               "draining: server is shutting down")
      | `Expired ->
          probe srv (fun () -> Trace.count "serve.deadline_expired");
          respond
            (plain_response id Protocol.Deadline_exceeded
               "deadline already expired at admission (deadline_ms <= 0); \
                shed before compute")
      | `Unready ->
          probe srv (fun () -> Trace.count "serve.unready");
          respond
            (plain_response id Protocol.Internal
               "worker pool unready: crash-loop backstop tripped (too many \
                worker restarts in the window); retry after the window \
                drains")
      | exception Budget.Internal_error { stage; invariant } ->
          respond
            (plain_response id Protocol.Internal
               (Printf.sprintf "internal error in stage '%s': %s" stage
                  invariant))
      | exception Budget.Exceeded ex ->
          respond
            (plain_response id Protocol.Budget
               (Format.asprintf "%a" Budget.pp_exceeded ex)))

(* Per-connection reader: newline framing with a byte cap. An
   over-long line answers bad_request once and is discarded up to the
   next newline; a truncated final line (EOF mid-line) answers
   bad_request and closes. *)
let reader srv conn () =
  let chunk = Bytes.create 8192 in
  let acc = Buffer.create 256 in
  let discarding = ref false in
  let overflow () =
    Buffer.clear acc;
    discarding := true;
    probe srv (fun () -> Trace.count "serve.oversized");
    send srv conn
      (bad_request_response ""
         (Printf.sprintf "request line exceeds %d bytes" srv.cfg.max_line))
  in
  let feed n =
    for i = 0 to n - 1 do
      match Bytes.get chunk i with
      | '\n' ->
          if !discarding then discarding := false
          else begin
            let line = Buffer.contents acc in
            Buffer.clear acc;
            handle_line srv conn line
          end
      | c ->
          if not !discarding then
            if Buffer.length acc >= srv.cfg.max_line then overflow ()
            else Buffer.add_char acc c
    done
  in
  let rec loop () =
    let n = try Unix.read conn.c_fd chunk 0 8192 with Unix.Unix_error _ -> 0 in
    if n > 0 then begin
      feed n;
      loop ()
    end
  in
  loop ();
  if Buffer.length acc > 0 && not !discarding then
    send srv conn (bad_request_response "" "truncated request line (no newline before EOF)");
  Atomic.set conn.c_eof true;
  Atomic.set conn.c_reader_done true;
  close_if_done srv conn

(* ------------------------------------------------------------------ *)
(* Listener                                                            *)
(* ------------------------------------------------------------------ *)

let setup_listener endpoint =
  match endpoint with
  | Unix_path path -> (
      (* A leftover socket file from a dead daemon is stale iff nothing
         answers on it; only then is unlinking it safe. *)
      (if Sys.file_exists path then
         let probe_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         let live =
           try
             Unix.connect probe_fd (Unix.ADDR_UNIX path);
             true
           with Unix.Unix_error _ -> false
         in
         (try Unix.close probe_fd with Unix.Unix_error _ -> ());
         if live then failwith (Printf.sprintf "%s: already in use" path)
         else try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        Ok fd
      with
      | Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
      | Failure m ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error m)
  | Tcp { host; port } -> (
      match
        try Some (Unix.inet_addr_of_string host)
        with Failure _ -> (
          try Some (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found | Invalid_argument _ -> None)
      with
      | None -> Error (Printf.sprintf "cannot resolve host %S" host)
      | Some addr -> (
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          try
            Unix.setsockopt fd Unix.SO_REUSEADDR true;
            Unix.bind fd (Unix.ADDR_INET (addr, port));
            Unix.listen fd 64;
            Ok fd
          with Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error
              (Printf.sprintf "%s:%d: %s" host port (Unix.error_message e))))

let setup_listener endpoint =
  try setup_listener endpoint with Failure m -> Error m

(* ------------------------------------------------------------------ *)
(* The daemon                                                          *)
(* ------------------------------------------------------------------ *)

let write_trace_file path session =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Trace.write session (Trace.infer_format path) oc)

(* Every status label [send] can emit; pre-registered on shard 0 so
   the multi-thread fast path never mutates the table (the Metrics
   contract), and so a scrape always exposes the full series set. *)
let status_labels =
  [ "ok"; "verdict"; "bad_request"; "budget"; "overloaded";
    "deadline_exceeded"; "internal"; "health"; "metrics" ]

let preregister mshard =
  List.iter
    (fun s ->
      Metrics.inc mshard ~n:0
        ~labels:[ ("status", s) ]
        "lalr_serve_requests_total";
      Metrics.inc mshard ~n:0
        ~labels:[ ("status", s) ]
        "lalr_serve_responses_dropped_total")
    status_labels;
  List.iter
    (fun g -> Metrics.set_gauge mshard g 0.)
    [ "lalr_serve_uptime_seconds"; "lalr_serve_queue_depth";
      "lalr_serve_queue_capacity"; "lalr_serve_ready"; "lalr_serve_workers" ]

let open_access_log = function
  | None -> Ok None
  | Some path -> (
      match open_out_gen [ Open_creat; Open_append; Open_wronly ] 0o644 path with
      | oc -> Ok (Some oc)
      | exception Sys_error m -> Error m)

let run cfg =
  let cfg =
    if cfg.trace_file <> None && not cfg.pool.Pool.trace then
      { cfg with pool = { cfg.pool with Pool.trace = true } }
    else cfg
  in
  (* The daemon is always armed for live telemetry: a registry with
     one shard per worker plus shard 0 for this layer (callers may
     inject a pre-built one; bench does, to share handles). *)
  let registry =
    match cfg.pool.Pool.metrics with
    | Some m -> m
    | None -> Metrics.create ~shards:(max 1 cfg.pool.Pool.domains + 1)
  in
  let cfg =
    { cfg with pool = { cfg.pool with Pool.metrics = Some registry } }
  in
  let mshard = Metrics.shard registry 0 in
  preregister mshard;
  match open_access_log cfg.access_log with
  | Error m -> Error m
  | Ok access -> (
  match setup_listener cfg.endpoint with
  | Error m ->
      Option.iter close_out_noerr access;
      Error m
  | Ok listen_fd ->
      let main_session =
        if cfg.trace_file <> None then Some (Trace.start ()) else None
      in
      let pool = Pool.create cfg.pool in
      let srv =
        {
          cfg;
          pool;
          registry;
          mshard;
          access;
          access_mu = Mutex.create ();
          probe_mu = Mutex.create ();
          conns_mu = Mutex.create ();
          conns = [];
          threads = [];
          draining = Atomic.make false;
        }
      in
      (* Self-pipe: the signal handler writes one byte, the select
         loop wakes and starts the drain on its own thread — no
         daemon logic ever runs inside a signal handler. *)
      let pipe_rd, pipe_wr = Unix.pipe () in
      let request_shutdown _ =
        if not (Atomic.exchange srv.draining true) then
          try ignore (Unix.write pipe_wr (Bytes.of_string "x") 0 1)
          with Unix.Unix_error _ -> ()
      in
      let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_shutdown) in
      let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle request_shutdown) in
      let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      cfg.on_ready
        (Printf.sprintf "lalrgen serve: listening on %s (%d domains, queue %d)"
           (endpoint_to_string cfg.endpoint)
           cfg.pool.Pool.domains cfg.pool.Pool.queue_capacity);
      (* Accept loop: select on the listener and the self-pipe, so a
         signal interrupts the wait immediately. *)
      let rec accept_loop () =
        if not (Atomic.get srv.draining) then begin
          (match Unix.select [ listen_fd; pipe_rd ] [] [] (-1.) with
          | readable, _, _ ->
              if List.mem listen_fd readable && not (Atomic.get srv.draining)
              then begin
                try
                  Faultpoint.check "serve-accept";
                  let fd, _ = Unix.accept listen_fd in
                  let conn =
                    {
                      c_fd = fd;
                      c_wmu = Mutex.create ();
                      c_pending = Atomic.make 0;
                      c_eof = Atomic.make false;
                      c_closed = Atomic.make false;
                      c_reader_done = Atomic.make false;
                      c_freed = Atomic.make false;
                    }
                  in
                  Mutex.lock srv.conns_mu;
                  srv.conns <- conn :: srv.conns;
                  let t = Thread.create (reader srv conn) () in
                  srv.threads <- t :: srv.threads;
                  Mutex.unlock srv.conns_mu;
                  probe srv (fun () -> Trace.count "serve.accepted")
                with
                | Unix.Unix_error _ ->
                    probe srv (fun () -> Trace.count "serve.accept.absorbed")
                | Budget.Internal_error _ | Budget.Exceeded _ ->
                    probe srv (fun () -> Trace.count "serve.accept.absorbed")
              end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ();
      (* ---- drain ---- *)
      probe srv (fun () -> Trace.instant "serve.drain");
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (match cfg.endpoint with
      | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
      | Tcp _ -> ());
      (* Unblock every reader: no new requests can arrive, responses
         for what was already admitted still go out. *)
      Mutex.lock srv.conns_mu;
      let open_conns = srv.conns in
      Mutex.unlock srv.conns_mu;
      List.iter
        (fun c ->
          try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
          with Unix.Unix_error _ -> ())
        open_conns;
      let worker_sessions = Pool.drain pool in
      let threads =
        Mutex.lock srv.conns_mu;
        let ts = srv.threads in
        Mutex.unlock srv.conns_mu;
        ts
      in
      List.iter Thread.join threads;
      probe srv (fun () ->
          let h = Pool.health pool ~id:"drain" in
          Trace.gauge_int "serve.queue.depth" h.Protocol.h_queue_depth;
          Trace.gauge_int "serve.completed" h.Protocol.h_completed;
          Trace.gauge_int "serve.restarts" h.Protocol.h_restarts;
          Trace.gauge_int "serve.shed" h.Protocol.h_shed;
          Trace.gauge_int "serve.deadline_expired" h.Protocol.h_deadline_expired;
          Trace.gauge_int "serve.ready" (if h.Protocol.h_ready then 1 else 0);
          match h.Protocol.h_store with
          | None -> ()
          | Some s ->
              Trace.gauge_int "serve.store.hits" s.Store.hits;
              Trace.gauge_int "serve.store.misses" s.Store.misses;
              let total = s.Store.hits + s.Store.misses in
              if total > 0 then
                Trace.gauge "serve.store.hit_rate"
                  (float_of_int s.Store.hits /. float_of_int total));
      (* Flush trace sinks: the main-loop session to the named file,
         each worker's session next to it. *)
      (match (cfg.trace_file, main_session) with
      | Some path, Some session ->
          Trace.finish session;
          write_trace_file path session;
          Array.iteri
            (fun i s ->
              match s with
              | Some s -> write_trace_file (Printf.sprintf "%s.w%d" path i) s
              | None -> ())
            worker_sessions
      | _ -> ());
      (* Close whatever connections are still open (their peers will
         see EOF after the last response). *)
      Mutex.lock srv.conns_mu;
      let leftovers = srv.conns in
      Mutex.unlock srv.conns_mu;
      List.iter (fun c -> close_conn srv c) leftovers;
      (try Unix.close pipe_rd with Unix.Unix_error _ -> ());
      (try Unix.close pipe_wr with Unix.Unix_error _ -> ());
      Option.iter close_out_noerr access;
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigpipe prev_pipe;
      Ok ())
