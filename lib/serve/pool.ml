module G = Lalr_grammar.Grammar
module Reader = Lalr_grammar.Reader
module Menhir_reader = Lalr_grammar.Menhir_reader
module Engine = Lalr_engine.Engine
module Classify = Lalr_tables.Classify
module Budget = Lalr_guard.Budget
module Faultpoint = Lalr_guard.Faultpoint
module Retry = Lalr_guard.Retry
module Registry = Lalr_suite.Registry
module Store = Lalr_store.Store
module Trace = Lalr_trace.Trace
module Metrics = Lalr_trace.Metrics

type config = {
  domains : int;
  queue_capacity : int;
  default_budget : string option;
  store : Store.t option;
  trace : bool;
  metrics : Metrics.t option;
  retry : Retry.policy;
  sleep : float -> unit;
  now : unit -> float;
  crash_window : float;
  crash_threshold : int;
}

let default_config =
  {
    domains = 1;
    queue_capacity = 64;
    default_budget = None;
    store = None;
    trace = false;
    metrics = None;
    retry = Retry.default;
    sleep = Unix.sleepf;
    now = Unix.gettimeofday;
    crash_window = 10.;
    crash_threshold = 5;
  }

(* Registry layout: shard 0 belongs to the serve/listener layer (and
   the supervisor threads, which share the main domain); shard i+1 is
   owned by worker domain i. Shards outlive worker incarnations, so
   counters stay monotone across crash restarts. *)
let worker_shard cfg i =
  Option.map (fun m -> Metrics.shard m (i + 1)) cfg.metrics

let pool_shard cfg = Option.map (fun m -> Metrics.shard m 0) cfg.metrics

type job = {
  jb_request : Protocol.request;
  jb_respond : Protocol.response -> unit;
  jb_deadline : float option;
      (* absolute, anchored at admission: now + deadline_ms/1e3 *)
  jb_admitted : float;  (* cfg.now at admission, for queue-wait *)
}

type worker = {
  w_id : int;
  w_alive : bool Atomic.t;
  w_jobs : int Atomic.t;  (* completed by the current incarnation *)
  w_current : job option Atomic.t;
  w_session : Trace.session option Atomic.t;  (* set on clean exit *)
}

type t = {
  cfg : config;
  mu : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable draining : bool;  (* guarded by mu *)
  mutable drained : Trace.session option array option;  (* guarded by mu *)
  restart_log : float Queue.t;
      (* crash times inside the sliding window, oldest first; guarded
         by mu (pushed by supervisor threads, pruned by everyone) *)
  workers : worker array;
  mutable supervisors : Thread.t array;  (* written once in create *)
  started_at : float;
  restarts : int Atomic.t;
  shed : int Atomic.t;
  expired : int Atomic.t;  (* answered deadline_exceeded *)
  completed : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Crash-loop backstop                                                 *)
(* ------------------------------------------------------------------ *)

(* A crash-looping pool still makes progress (each respawn consumes
   its job), but admitting fresh work into one trades every request
   for a domain spawn. The backstop: count respawns inside a sliding
   window; past the threshold the pool reports itself unready and
   refuses NEW admissions fast (typed [internal] at the serve layer)
   until the window drains. Already-admitted work keeps its
   one-response guarantee — respawning is never conditional. *)

let prune_restarts_locked t ~now =
  while
    (not (Queue.is_empty t.restart_log))
    && now -. Queue.peek t.restart_log > t.cfg.crash_window
  do
    ignore (Queue.pop t.restart_log)
  done

let ready_locked t ~now =
  prune_restarts_locked t ~now;
  Queue.length t.restart_log < t.cfg.crash_threshold

let ready t =
  let now = t.cfg.now () in
  Mutex.lock t.mu;
  let r = ready_locked t ~now in
  Mutex.unlock t.mu;
  r

(* ------------------------------------------------------------------ *)
(* The per-job computation (typed outcomes only)                       *)
(* ------------------------------------------------------------------ *)

let job_response id status detail : Protocol.job_response =
  {
    r_id = id;
    r_status = status;
    r_detail = detail;
    r_lalr1 = None;
    r_wall_ms = 0.;
    r_queue_ms = 0.;
    r_retries = 0;
    r_worker = None;
    r_slack_ms = None;
    r_trace_id = None;
    r_stages = [];
    r_lr0_states = None;
    r_completed = [];
  }

(* Registry grammars are memoized lazies shared by every worker
   domain, and [Lazy.force] is not domain-safe — two domains racing on
   the first force of the same entry is undefined. The force is
   serialised here; after the first one the critical section is a
   memo read. *)
let suite_mu = Mutex.create ()

let load_source = function
  | Protocol.File spec ->
      if String.length spec > 6 && String.sub spec 0 6 = "suite:" then
        let name = String.sub spec 6 (String.length spec - 6) in
        let g =
          Mutex.lock suite_mu;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock suite_mu)
            (fun () -> Lazy.force (Registry.find name).grammar)
        in
        (Some g, [])
      else if Filename.check_suffix spec ".mly" then
        Menhir_reader.of_file_tolerant spec
      else Reader.of_file_tolerant spec
  | Protocol.Inline { text; format = `Cfg } ->
      Reader.of_string_tolerant ~name:"request" text
  | Protocol.Inline { text; format = `Mly } ->
      Menhir_reader.of_string_tolerant ~name:"request" text

(* One isolated attempt, the serve twin of batch's [attempt]: every
   outcome is data. Exceptions that models as typed failures are
   mapped here; anything else escapes to the worker boundary and is a
   crash (supervised). [deadline] is absolute: the remaining time is
   re-measured per attempt (retries eat into the same deadline) and
   intersected into the wall cap, so in-flight work self-terminates
   when the client's deadline passes. *)
let attempt_job t id source budget_spec ~deadline : Protocol.job_response =
  let fresh_budget () =
    match budget_spec with
    | None -> Ok None
    | Some s -> (
        match Budget.of_spec s with
        | Ok b -> Ok (Some b)
        | Error m -> Error (Printf.sprintf "invalid budget spec: %s" m))
  in
  match fresh_budget () with
  | Error m -> job_response id Protocol.Bad_request m
  | Ok budget -> (
      let remaining = Option.map (fun d -> d -. t.cfg.now ()) deadline in
      match remaining with
      | Some r when r <= 0. ->
          job_response id Protocol.Deadline_exceeded
            (Printf.sprintf
               "deadline expired %.1fms before the attempt started; shed \
                before compute"
               (-.r *. 1e3))
      | _ -> (
          (* deadline_bound: a Wall_clock trip under this budget means
             the DEADLINE ran out, not the client's own wall cap — the
             response must say deadline_exceeded, not budget. *)
          let budget, deadline_bound =
            match (remaining, budget) with
            | None, b -> (b, false)
            | Some r, None -> (Some (Budget.create ~wall:r ()), true)
            | Some r, Some b ->
                let bound =
                  match Budget.cap b Budget.Wall_clock with
                  | None -> true
                  | Some w -> r < w
                in
                (Some (Budget.intersect_wall b ~remaining:r), bound)
          in
          let budget_status (ex : Budget.exceeded) =
            if deadline_bound && ex.Budget.ex_resource = Budget.Wall_clock
            then Protocol.Deadline_exceeded
            else Protocol.Budget
          in
          match load_source source with
          | exception Not_found ->
              job_response id Protocol.Bad_request "no such suite grammar"
          | exception Sys_error msg -> job_response id Protocol.Bad_request msg
          | exception Invalid_argument msg ->
              job_response id Protocol.Bad_request msg
          | exception Budget.Exceeded ex ->
              job_response id (budget_status ex)
                (Format.asprintf "%a" Budget.pp_exceeded ex)
          | exception Budget.Internal_error { stage; invariant } ->
              job_response id Protocol.Internal
                (Printf.sprintf "internal error in stage '%s': %s" stage
                   invariant)
          | Some g, [] -> (
              let e = Engine.create ?budget ?store:t.cfg.store g in
              let p =
                Engine.run_partial e (fun e ->
                    Engine.classification
                      ~with_lr1:(G.n_productions g <= Engine.lr1_limit)
                      e)
              in
              Engine.persist e;
              let stages =
                List.filter_map
                  (fun (s : Engine.stage) ->
                    if s.Engine.forced then Some (s.Engine.stage, s.Engine.wall)
                    else None)
                  (Engine.stats e)
              in
              let lr0_states = Engine.peek_lr0_states e in
              match (p.Engine.pr_value, p.Engine.pr_completeness) with
              | Some v, _ ->
                  let lalr1 = v.Classify.lalr1 in
                  {
                    (job_response id
                       (if lalr1 then Protocol.Ok_ else Protocol.Verdict)
                       "")
                    with
                    r_lalr1 = Some lalr1;
                    r_stages = stages;
                    r_lr0_states = lr0_states;
                    r_completed = [];
                  }
              | None, Engine.Complete ->
                  job_response id Protocol.Internal
                    "run_partial: no value yet complete"
              | None, Engine.Incomplete failure ->
                  {
                    (job_response id
                       (match failure with
                       | Engine.Budget_exceeded ex -> budget_status ex
                       | Engine.Internal_error _ -> Protocol.Internal)
                       (Format.asprintf "%a" Engine.pp_failure failure))
                    with
                    r_stages = stages;
                    r_lr0_states = lr0_states;
                    r_completed = p.Engine.pr_completed;
                  })
          | g_opt, errors ->
              let detail =
                match errors with
                | e :: _ -> Format.asprintf "%a" Reader.pp_error e
                | [] ->
                    if g_opt = None then "unreadable grammar" else "no grammar"
              in
              job_response id Protocol.Bad_request detail))

(* Per-worker runtime gauges, refreshed after every job. The ambient
   check first: when metrics are disarmed [Gc.quick_stat] is never
   called (the armed-overhead bench compares exactly this path). *)
let sample_gc w =
  match Metrics.ambient () with
  | None -> ()
  | Some _ ->
      let s = Gc.quick_stat () in
      let labels = [ ("worker", string_of_int w.w_id) ] in
      Metrics.aset_gauge ~labels "lalr_serve_gc_minor_collections"
        (float_of_int s.Gc.minor_collections);
      Metrics.aset_gauge ~labels "lalr_serve_gc_major_collections"
        (float_of_int s.Gc.major_collections);
      Metrics.aset_gauge ~labels "lalr_serve_gc_heap_words"
        (float_of_int s.Gc.heap_words)

let run_job t w job : Protocol.response =
  match job.jb_request with
  | Protocol.Health { id } | Protocol.Metrics { id } ->
      (* Health/metrics never enter the queue (serve answers them
         inline); reaching a worker with one is a wiring bug, reported
         as such rather than silently misclassified. *)
      Protocol.Job
        (job_response id Protocol.Internal
           "inline-answerable request reached the pool")
  | Protocol.Classify { id; source; budget; deadline_ms = _; trace_id } -> (
      let dequeued = t.cfg.now () in
      let queue_s = Float.max 0. (dequeued -. job.jb_admitted) in
      let queue_ms = queue_s *. 1e3 in
      Metrics.aobserve "lalr_serve_queue_wait_seconds" queue_s;
      let worker_label () = [ ("worker", string_of_int w.w_id) ] in
      let finish_metrics (r : Protocol.job_response) =
        Metrics.ainc "lalr_serve_pool_jobs_total";
        Metrics.aobserve "lalr_serve_request_seconds"
          (Float.max 0. (t.cfg.now () -. job.jb_admitted));
        (match r.Protocol.r_slack_ms with
        | Some slack_ms ->
            Metrics.aset_gauge ~labels:(worker_label ())
              "lalr_serve_deadline_slack_seconds" (slack_ms /. 1e3)
        | None -> ());
        sample_gc w
      in
      (* Dequeue re-check: the wait in the queue may have consumed the
         whole deadline. Shed before any compute — no engine, no
         budget parse, no retries. *)
      let late =
        match job.jb_deadline with
        | Some d ->
            let past = dequeued -. d in
            if past > 0. then Some past else None
        | None -> None
      in
      match late with
      | Some past ->
          let r =
            {
              (job_response id Protocol.Deadline_exceeded
                 (Printf.sprintf
                    "deadline expired while queued (%.1fms past); shed before \
                     compute"
                    (past *. 1e3)))
              with
              Protocol.r_queue_ms = queue_ms;
              Protocol.r_worker = Some w.w_id;
              Protocol.r_slack_ms = Some (-.past *. 1e3);
              Protocol.r_trace_id = trace_id;
            }
          in
          Atomic.incr t.expired;
          Trace.count "serve.requests";
          Trace.count
            ("serve.status." ^ Protocol.status_name r.Protocol.r_status);
          finish_metrics r;
          Protocol.Job r
      | None ->
          let budget_spec =
            match budget with Some _ -> budget | None -> t.cfg.default_budget
          in
          let t0 = Unix.gettimeofday () in
          let r, retries =
            Retry.run ~policy:t.cfg.retry ~sleep:t.cfg.sleep
              ~retryable:(fun (o : Protocol.job_response) ->
                o.Protocol.r_status = Protocol.Internal)
              (fun ~attempt ->
                Trace.with_span
                  ~attrs:(fun () ->
                    let base =
                      [ ("id", Trace.Str id); ("attempt", Trace.Int attempt) ]
                    in
                    match trace_id with
                    | Some tid -> ("trace_id", Trace.Str tid) :: base
                    | None -> base)
                  "serve.request"
                  (fun () ->
                    attempt_job t id source budget_spec
                      ~deadline:job.jb_deadline))
          in
          let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
          Metrics.aobserve "lalr_serve_compute_seconds" (wall_ms /. 1e3);
          if r.Protocol.r_status = Protocol.Deadline_exceeded then
            Atomic.incr t.expired;
          Trace.count "serve.requests";
          Trace.count
            ("serve.status." ^ Protocol.status_name r.Protocol.r_status);
          if retries > 0 then begin
            Trace.count ~n:retries "serve.retries";
            Metrics.ainc ~n:retries "lalr_serve_retries_total"
          end;
          let slack_ms =
            Option.map
              (fun d -> (d -. t.cfg.now ()) *. 1e3)
              job.jb_deadline
          in
          let r =
            {
              r with
              Protocol.r_wall_ms = wall_ms;
              Protocol.r_queue_ms = queue_ms;
              Protocol.r_retries = retries;
              Protocol.r_worker = Some w.w_id;
              Protocol.r_slack_ms = slack_ms;
              Protocol.r_trace_id = trace_id;
            }
          in
          finish_metrics r;
          Protocol.Job r)

(* ------------------------------------------------------------------ *)
(* Worker domains and supervision                                      *)
(* ------------------------------------------------------------------ *)

let take_job t =
  Mutex.lock t.mu;
  let rec wait () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.draining then None
    else begin
      Condition.wait t.nonempty t.mu;
      wait ()
    end
  in
  let j = wait () in
  Mutex.unlock t.mu;
  j

let rec worker_loop t w =
  match take_job t with
  | None -> ()
  | Some job ->
      Atomic.set w.w_current (Some job);
      (* The crash site: deliberately OUTSIDE the typed per-job
         boundary, so an armed serve-worker raise escapes, kills this
         domain, and exercises the supervisor's restart path. *)
      Faultpoint.check "serve-worker";
      let response = run_job t w job in
      (* Clear the in-flight marker BEFORE responding: if the respond
         callback itself dies (a broken connection absorbed too late),
         the supervisor must not answer this job a second time. *)
      Atomic.set w.w_current None;
      Atomic.incr w.w_jobs;
      Atomic.incr t.completed;
      job.jb_respond response;
      worker_loop t w

let worker_body t w () =
  Atomic.set w.w_alive true;
  Atomic.set w.w_jobs 0;
  (* Arm this domain's metrics shard: ambient probes in [run_job] (and
     anything below it) land in shard w_id+1 without a handle. The
     shard itself persists across incarnations. *)
  Metrics.set_ambient (worker_shard t.cfg w.w_id);
  let session = if t.cfg.trace then Some (Trace.start ()) else None in
  match worker_loop t w with
  | () ->
      Option.iter
        (fun s ->
          Trace.finish s;
          Atomic.set w.w_session (Some s))
        session;
      `Done
  | exception exn ->
      Atomic.set w.w_alive false;
      `Crashed (Printexc.to_string exn)
[@@lalr.allow
  D004
    "supervision boundary: the worker domain converts ANY escaping \
     exception into a `Crashed value so the supervisor thread can \
     respond for the in-flight job and restart the domain — \
     re-raising would abort the whole daemon, which is exactly what \
     supervision exists to prevent"]

let rec supervise t w =
  let d = Domain.spawn (worker_body t w) in
  match Domain.join d with
  | `Done -> ()
  | `Crashed msg ->
      Atomic.incr t.restarts;
      (* Supervisor threads share the main domain; their counters go
         to shard 0, pre-registered in [create] (the multi-thread
         shard contract). *)
      (match pool_shard t.cfg with
      | Some sh -> Metrics.inc sh "lalr_serve_worker_crashes_total"
      | None -> ());
      let now = t.cfg.now () in
      Mutex.lock t.mu;
      Queue.push now t.restart_log;
      prune_restarts_locked t ~now;
      Mutex.unlock t.mu;
      (match Atomic.exchange w.w_current None with
      | Some job ->
          Atomic.incr t.completed;
          (match pool_shard t.cfg with
          | Some sh -> Metrics.inc sh "lalr_serve_worker_crash_responses_total"
          | None -> ());
          let trace_id =
            match job.jb_request with
            | Protocol.Classify { trace_id; _ } -> trace_id
            | _ -> None
          in
          job.jb_respond
            (Protocol.Job
               {
                 (job_response
                    (Protocol.request_id job.jb_request)
                    Protocol.Internal
                    (Printf.sprintf "worker %d crashed: %s (domain restarted)"
                       w.w_id msg))
                 with
                 Protocol.r_retries = 0;
                 Protocol.r_worker = Some w.w_id;
                 Protocol.r_trace_id = trace_id;
               })
      | None -> ());
      (* Unconditional respawn: while draining, the fresh incarnation
         exits as soon as the queue is empty, so a crash during drain
         still finishes the admitted work. A persistent crash loop
         makes progress anyway — each crash consumes its job; the
         readiness backstop above only stops NEW admissions. *)
      supervise t w

let create cfg =
  let cfg =
    {
      cfg with
      domains = max 1 cfg.domains;
      queue_capacity = max 1 cfg.queue_capacity;
      crash_threshold = max 1 cfg.crash_threshold;
      crash_window = Float.max 1e-3 cfg.crash_window;
    }
  in
  let workers =
    Array.init cfg.domains (fun i ->
        {
          w_id = i;
          w_alive = Atomic.make false;
          w_jobs = Atomic.make 0;
          w_current = Atomic.make None;
          w_session = Atomic.make None;
        })
  in
  let t =
    {
      cfg;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      draining = false;
      drained = None;
      restart_log = Queue.create ();
      workers;
      supervisors = [||];
      started_at = Unix.gettimeofday ();
      restarts = Atomic.make 0;
      shed = Atomic.make 0;
      expired = Atomic.make 0;
      completed = Atomic.make 0;
    }
  in
  (* Shard 0 is written by several sys-threads (supervisors here,
     reader threads in serve), so its series must exist before any of
     them start — the Metrics pre-registration contract. *)
  (match pool_shard cfg with
  | Some sh ->
      Metrics.inc sh ~n:0 "lalr_serve_worker_crashes_total";
      Metrics.inc sh ~n:0 "lalr_serve_worker_crash_responses_total"
  | None -> ());
  t.supervisors <-
    Array.map (fun w -> Thread.create (fun () -> supervise t w) ()) workers;
  t

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let submit t ~request ~respond =
  Faultpoint.check "serve-dispatch";
  match request with
  | Protocol.Classify { deadline_ms = Some ms; _ } when ms <= 0. ->
      (* Already expired on arrival: shed before any compute, before
         even touching the queue lock. *)
      Atomic.incr t.expired;
      `Expired
  | _ ->
      let deadline =
        match request with
        | Protocol.Classify { deadline_ms = Some ms; _ } ->
            Some (t.cfg.now () +. (ms /. 1e3))
        | _ -> None
      in
      let now = t.cfg.now () in
      Mutex.lock t.mu;
      if t.draining then begin
        Mutex.unlock t.mu;
        Atomic.incr t.shed;
        `Draining
      end
      else if not (ready_locked t ~now) then begin
        Mutex.unlock t.mu;
        Atomic.incr t.shed;
        `Unready
      end
      else if Queue.length t.queue >= t.cfg.queue_capacity then begin
        Mutex.unlock t.mu;
        Atomic.incr t.shed;
        `Overloaded
      end
      else begin
        Queue.push
          {
            jb_request = request;
            jb_respond = respond;
            jb_deadline = deadline;
            jb_admitted = now;
          }
          t.queue;
        Condition.signal t.nonempty;
        Mutex.unlock t.mu;
        `Accepted
      end

let depth t =
  Mutex.lock t.mu;
  let d = Queue.length t.queue in
  Mutex.unlock t.mu;
  d

let health t ~id : Protocol.health_response =
  {
    h_id = id;
    h_uptime_s = Unix.gettimeofday () -. t.started_at;
    h_pid = Unix.getpid ();
    h_version = Protocol.version;
    h_ready = ready t;
    h_queue_depth = depth t;
    h_queue_capacity = t.cfg.queue_capacity;
    h_workers =
      Array.to_list
        (Array.map
           (fun w ->
             {
               Protocol.w_id = w.w_id;
               w_alive = Atomic.get w.w_alive;
               w_jobs = Atomic.get w.w_jobs;
             })
           t.workers);
    h_restarts = Atomic.get t.restarts;
    h_shed = Atomic.get t.shed;
    h_deadline_expired = Atomic.get t.expired;
    h_completed = Atomic.get t.completed;
    h_store = Option.map Store.stats t.cfg.store;
  }

let drain t =
  Mutex.lock t.mu;
  match t.drained with
  | Some sessions ->
      Mutex.unlock t.mu;
      sessions
  | None ->
      t.draining <- true;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mu;
      Array.iter Thread.join t.supervisors;
      let sessions = Array.map (fun w -> Atomic.get w.w_session) t.workers in
      Mutex.lock t.mu;
      t.drained <- Some sessions;
      Mutex.unlock t.mu;
      sessions
