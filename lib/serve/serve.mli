(** The [lalrgen serve] daemon front end: sockets, line framing,
    signals, drain.

    {!run} owns the listener (Unix-domain path or TCP), a reader
    thread per accepted connection, and one {!Pool.t}. Its robustness
    contract complements the pool's:

    - {b every decoded line gets exactly one response line} — decode
      failures and oversized/truncated lines answer [bad_request],
      admission refusals answer [overloaded] (queue full, draining),
      [deadline_exceeded] (the request arrived already expired) or
      [internal] (crash-loop backstop: the pool reports itself
      unready), and only admitted jobs reach the pool (which owns the
      rest of the exactly-once guarantee);
    - {b the outer loops absorb their own faults} — an accept error, a
      response write onto a dead connection, or an armed
      [serve-accept]/[serve-respond] injection is counted in the trace
      metrics and the daemon keeps serving; nothing at the socket
      boundary can take the process down;
    - {b SIGTERM/SIGINT drain}: stop accepting, shut the read side of
      open connections, answer anything still admitted, join every
      worker domain, flush trace sinks, return [Ok ()] (process exit
      0). A second signal during drain is ignored — drain is already
      in progress and idempotent.

    Faultpoint sites exercised here: [serve-accept] (accept loop,
    absorbed), [serve-decode] (raise/wall → typed [internal]/[budget]
    response for that line; corrupt → the line is mangled before
    decoding, yielding a natural [bad_request]), [serve-dispatch]
    (admission, typed response), [serve-respond] (response writer,
    response dropped + counted). [serve-worker] lives in {!Pool}. *)

type endpoint =
  | Unix_path of string  (** Unix-domain stream socket at this path *)
  | Tcp of { host : string; port : int }

val parse_endpoint : string -> (endpoint, string) result
(** ["HOST:PORT"] or bare ["PORT"] (host 127.0.0.1) → {!Tcp};
    anything else is a filesystem path → {!Unix_path}. *)

val endpoint_to_string : endpoint -> string

type config = {
  endpoint : endpoint;
  pool : Pool.config;
  max_line : int;  (** request-line byte cap; beyond it: [bad_request] *)
  trace_file : string option;
      (** main-loop session → this path; worker sessions →
          [path ^ ".wN"]. Format inferred from the extension. Forces
          [pool.trace] on. *)
  access_log : string option;
      (** append one JSON line per response to this file (created
          0644): [{"ts":…,"id":…,"status":…,"exit":…,"sent":…}] plus,
          for pool jobs, [wall_ms]/[queue_ms]/[retries] and optional
          [worker]/[deadline_slack_ms]/[trace_id] — the schema README
          "Observability" documents. Flushed per line; write failures
          are absorbed (logging never takes a request down). *)
  on_ready : string -> unit;
      (** called once, listening, with a human-readable "listening
          on ..." line — the CLI prints it (library code never touches
          stdout) *)
}

val default_config : config
(** [Unix_path "lalrgen.sock"], {!Pool.default_config},
    {!default_max_line}, no trace, no access log, silent [on_ready]. *)

val default_max_line : int
(** 1 MiB. *)

val run : config -> (unit, string) result
(** Binds, listens, serves until SIGTERM/SIGINT, drains, cleans up the
    socket path. [Error] only for setup failures (path/port in use,
    bad host, unwritable access log) — once [on_ready] has fired, the
    result is [Ok ()]. Installs handlers for SIGTERM/SIGINT and
    ignores SIGPIPE for the process.

    Live telemetry is always armed: a {!Lalr_trace.Metrics} registry
    with one shard per worker domain plus one for this layer (reusing
    [pool.metrics] when the caller pre-built it). A [metrics] request
    is answered inline with the merged Prometheus exposition; every
    response is counted by status in [lalr_serve_requests_total] at
    the single writer funnel — incremented before the write, so a
    scrape issued after a response arrives always sees it — with
    failed writes also landing in
    [lalr_serve_responses_dropped_total]. Responses actually delivered
    therefore reconcile exactly with client-side per-id accounting as
    [requests_total - responses_dropped_total], per status. *)
