(** A resilient, persistent client for the [lalrgen serve] protocol.

    One {!t} owns at most one live connection to the daemon and is
    reused across {!call}s ([lalrgen call] and
    [lalrgen batch --via-serve] both drive one). Resilience layers,
    outermost first:

    - {b circuit breaker} ({!Lalr_guard.Breaker}): consulted before
      any transport work; while open, {!call} fails fast in-process
      ({!Breaker_open}) instead of hammering a dead endpoint. A
      successful call closes it, a failed one feeds it;
    - {b retry with backoff} ({!Lalr_guard.Retry}): an attempt that
      failed {e before any response line arrived} is replayed on a
      fresh connection — an attempt that already received responses is
      NOT (the daemon has done the work; a resend would
      double-submit). The partial responses ride along in the error;
    - {b health-checked reconnect}: every fresh connection round-trips
      a [health] probe before the caller's requests are committed to
      it, so a half-dead socket fails cleanly at connect time.

    Connection failures carry operator-grade messages that always name
    the endpoint and distinguish "no such socket" (nothing at that
    path) from "connection refused" (something there, not accepting).

    The client-side faultpoint site [serve-client] fires inside the
    connect path: a fire-once raise is absorbed by the retry layer,
    repeated firings trip the breaker — exactly the failure ladder a
    real dead daemon walks. Not thread-safe: one [t] per thread. *)

type t

type error =
  | Breaker_open of { endpoint : Serve.endpoint; retry_after : float }
      (** shed locally without touching the network; [retry_after] is
          the seconds until the breaker allows a probe *)
  | Unavailable of {
      endpoint : Serve.endpoint;
      reason : string;
      partial : string list;
          (** response lines that DID arrive before the failure — the
              caller must deliver them (the daemon already did the
              work), then treat the rest as failed *)
    }

val create :
  ?retry:Lalr_guard.Retry.policy ->
  ?sleep:(float -> unit) ->
  ?breaker:Lalr_guard.Breaker.t ->
  Serve.endpoint ->
  t
(** No connection is opened until the first {!call}. [retry] defaults
    to {!Lalr_guard.Retry.default}, [sleep] to [Unix.sleepf], and
    [breaker] to a fresh {!Lalr_guard.Breaker.create} — pass a shared
    one to pool breaker state across clients. The first [create] also
    sets [SIGPIPE] to ignore (process-wide, like [Serve.run]): a write
    to a connection the daemon dropped must raise, not kill the
    process, for the retry layer to see it. *)

val call : t -> string list -> (string list, error) result
(** [call t lines] sends each request line and reads exactly one
    response line per request, in order. [Ok] is the full response
    list. On [Error] the connection is torn down (a later [call]
    reconnects and re-probes). *)

val close : t -> unit
(** Drops the live connection, if any. The [t] stays usable. *)

val endpoint : t -> Serve.endpoint

val breaker : t -> Lalr_guard.Breaker.t
(** The breaker in use (for tests and metrics). *)

val stamp_trace_ids : prefix:string -> string list -> string list
(** Trace-context propagation: re-encodes each line that decodes as a
    [Classify] carrying no [trace_id] with ["PREFIX-<index>"] (the
    line's position in the list). Lines that already carry one, are
    not classify requests, or do not decode pass through
    byte-identical. The daemon stamps the id onto the request's span
    tree in the worker trace session and echoes it in the response
    and access log — grep the [FILE.wN] trace files for it. *)

val trace_ids : string list -> string list
(** The [trace_id]s present in a list of request lines, in order —
    what [lalrgen call] echoes when responses go missing, so a lost
    or slow request can be found server-side. *)

val error_message : error -> string
(** One operator-grade line, endpoint included. *)

val connect_failure : Serve.endpoint -> Unix.error -> string
(** The message for a failed connect: ["no such socket PATH (is the
    daemon running?)"] for [ENOENT] on a Unix path, ["connection
    refused on ..."] for [ECONNREFUSED], a generic
    endpoint-qualified message otherwise. Exposed for the CLI tests
    that pin the wording. *)
