let max_depth = 32

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  (* Recursive descent over a string cursor. Depth is threaded
     explicitly so adversarial nesting fails fast instead of burning
     the real stack; everything else is a plain linear scan. *)
  type cursor = { s : string; mutable i : int }

  let error fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

  let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

  let skip_ws c =
    while
      c.i < String.length c.s
      && (match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      c.i <- c.i + 1
    done

  let expect c ch =
    match peek c with
    | Some x when x = ch -> c.i <- c.i + 1
    | Some x -> error "expected '%c' at byte %d, got '%c'" ch c.i x
    | None -> error "expected '%c' at byte %d, got end of line" ch c.i

  let literal c word v =
    let n = String.length word in
    if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
      c.i <- c.i + n;
      v
    end
    else error "bad literal at byte %d" c.i

  let hex_digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> error "bad \\u escape digit '%c'" ch

  (* Encode a code point as UTF-8; surrogate pairs are combined by the
     caller. Lone surrogates become U+FFFD rather than an error — the
     decoder's job is to be total, not to police Unicode. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end

  let parse_hex4 c =
    if c.i + 4 > String.length c.s then error "truncated \\u escape";
    let v =
      (hex_digit c.s.[c.i] lsl 12)
      lor (hex_digit c.s.[c.i + 1] lsl 8)
      lor (hex_digit c.s.[c.i + 2] lsl 4)
      lor hex_digit c.s.[c.i + 3]
    in
    c.i <- c.i + 4;
    v

  let parse_string c =
    expect c '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if c.i >= String.length c.s then error "unterminated string";
      let ch = c.s.[c.i] in
      c.i <- c.i + 1;
      match ch with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if c.i >= String.length c.s then error "unterminated escape";
          let e = c.s.[c.i] in
          c.i <- c.i + 1;
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              let hi = parse_hex4 c in
              if hi >= 0xD800 && hi <= 0xDBFF then
                (* high surrogate: look for the pair *)
                if
                  c.i + 1 < String.length c.s
                  && c.s.[c.i] = '\\'
                  && c.s.[c.i + 1] = 'u'
                then begin
                  c.i <- c.i + 2;
                  let lo = parse_hex4 c in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    add_utf8 buf
                      (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
                  else add_utf8 buf 0xFFFD
                end
                else add_utf8 buf 0xFFFD
              else if hi >= 0xDC00 && hi <= 0xDFFF then add_utf8 buf 0xFFFD
              else add_utf8 buf hi
          | _ -> error "bad escape '\\%c'" e);
          go ())
      | c when Char.code c < 0x20 -> error "unescaped control byte in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()

  let parse_number c =
    let start = c.i in
    let is_num_char ch =
      match ch with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while c.i < String.length c.s && is_num_char c.s.[c.i] do
      c.i <- c.i + 1
    done;
    let tok = String.sub c.s start (c.i - start) in
    match float_of_string_opt tok with
    | Some f when Float.is_finite f -> Num f
    | _ -> error "bad number %S at byte %d" tok start

  let rec parse_value c depth =
    if depth > max_depth then error "nesting deeper than %d" max_depth;
    skip_ws c;
    match peek c with
    | None -> error "empty input"
    | Some '{' ->
        c.i <- c.i + 1;
        skip_ws c;
        if peek c = Some '}' then begin
          c.i <- c.i + 1;
          Obj []
        end
        else
          let rec fields acc =
            skip_ws c;
            let k = parse_string c in
            skip_ws c;
            expect c ':';
            let v = parse_value c (depth + 1) in
            skip_ws c;
            match peek c with
            | Some ',' ->
                c.i <- c.i + 1;
                fields ((k, v) :: acc)
            | Some '}' ->
                c.i <- c.i + 1;
                Obj (List.rev ((k, v) :: acc))
            | _ -> error "expected ',' or '}' at byte %d" c.i
          in
          fields []
    | Some '[' ->
        c.i <- c.i + 1;
        skip_ws c;
        if peek c = Some ']' then begin
          c.i <- c.i + 1;
          List []
        end
        else
          let rec items acc =
            let v = parse_value c (depth + 1) in
            skip_ws c;
            match peek c with
            | Some ',' ->
                c.i <- c.i + 1;
                items (v :: acc)
            | Some ']' ->
                c.i <- c.i + 1;
                List (List.rev (v :: acc))
            | _ -> error "expected ',' or ']' at byte %d" c.i
          in
          items []
    | Some '"' -> Str (parse_string c)
    | Some 't' -> literal c "true" (Bool true)
    | Some 'f' -> literal c "false" (Bool false)
    | Some 'n' -> literal c "null" Null
    | Some ('-' | '0' .. '9') -> parse_number c
    | Some ch -> error "unexpected '%c' at byte %d" ch c.i

  let parse s =
    let c = { s; i = 0 } in
    match
      let v = parse_value c 0 in
      skip_ws c;
      if c.i <> String.length s then error "trailing garbage at byte %d" c.i;
      v
    with
    | v -> Ok v
    | exception Bad m -> Error m

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type source =
  | File of string
  | Inline of { text : string; format : [ `Cfg | `Mly ] }

type request =
  | Classify of {
      id : string;
      source : source;
      budget : string option;
      deadline_ms : float option;
      trace_id : string option;
    }
  | Health of { id : string }
  | Metrics of { id : string }

let request_id = function
  | Classify { id; _ } | Health { id } | Metrics { id } -> id

let known_fields =
  [ "id"; "kind"; "file"; "grammar"; "format"; "budget"; "deadline_ms";
    "trace_id" ]

let decode_request line =
  match Json.parse line with
  | Error m -> Error m
  | Ok (Json.Obj fields as j) -> (
      match
        List.find_opt (fun (k, _) -> not (List.mem k known_fields)) fields
      with
      | Some (k, _) ->
          Error
            (Printf.sprintf "unknown field %S (known: %s)" k
               (String.concat ", " known_fields))
      | None -> (
          let id =
            match Json.member "id" j with
            | Some (Json.Str s) -> Ok s
            | Some (Json.Num f) when Float.is_integer f ->
                Ok (string_of_int (int_of_float f))
            | None -> Ok ""
            | Some _ -> Error "field \"id\" must be a string or an integer"
          in
          let kind =
            match Json.member "kind" j with
            | Some (Json.Str s) -> Ok s
            | None -> Ok "classify"
            | Some _ -> Error "field \"kind\" must be a string"
          in
          match (id, kind) with
          | Error m, _ | _, Error m -> Error m
          | Ok id, Ok "health" -> Ok (Health { id })
          | Ok id, Ok "metrics" -> Ok (Metrics { id })
          | Ok id, Ok "classify" -> (
              let budget =
                match Json.member "budget" j with
                | Some (Json.Str s) -> Ok (Some s)
                | None -> Ok None
                | Some _ -> Error "field \"budget\" must be a string"
              in
              (* Any finite number decodes — a non-positive deadline is
                 a VALID request that the pool sheds as
                 deadline_exceeded at admission, not a protocol
                 error. *)
              let deadline_ms =
                match Json.member "deadline_ms" j with
                | Some (Json.Num f) -> Ok (Some f)
                | None -> Ok None
                | Some _ ->
                    Error "field \"deadline_ms\" must be a number (milliseconds)"
              in
              let source =
                match
                  (Json.member "file" j, Json.member "grammar" j,
                   Json.member "format" j)
                with
                | Some (Json.Str f), None, None -> Ok (File f)
                | Some _, Some _, _ ->
                    Error "fields \"file\" and \"grammar\" are exclusive"
                | Some _, None, Some _ ->
                    Error "field \"format\" only applies to \"grammar\""
                | Some _, None, None -> Error "field \"file\" must be a string"
                | None, Some (Json.Str text), fmt -> (
                    match fmt with
                    | None | Some (Json.Str "cfg") ->
                        Ok (Inline { text; format = `Cfg })
                    | Some (Json.Str "mly") ->
                        Ok (Inline { text; format = `Mly })
                    | Some _ ->
                        Error "field \"format\" must be \"cfg\" or \"mly\"")
                | None, Some _, _ ->
                    Error "field \"grammar\" must be a string"
                | None, None, _ ->
                    Error "a classify request needs \"file\" or \"grammar\""
              in
              let trace_id =
                match Json.member "trace_id" j with
                | Some (Json.Str s) -> Ok (Some s)
                | None -> Ok None
                | Some _ -> Error "field \"trace_id\" must be a string"
              in
              match (budget, deadline_ms, source, trace_id) with
              | Error m, _, _, _
              | _, Error m, _, _
              | _, _, Error m, _
              | _, _, _, Error m ->
                  Error m
              | Ok budget, Ok deadline_ms, Ok source, Ok trace_id ->
                  Ok (Classify { id; source; budget; deadline_ms; trace_id }))
          | Ok _, Ok k ->
              Error
                (Printf.sprintf
                   "unknown kind %S (expected \"classify\", \"health\" or \
                    \"metrics\")" k)))
  | Ok _ -> Error "request line must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let esc = Lalr_trace.Trace.json_escape

let encode_request = function
  | Health { id } -> Printf.sprintf "{\"id\":\"%s\",\"kind\":\"health\"}" (esc id)
  | Metrics { id } ->
      Printf.sprintf "{\"id\":\"%s\",\"kind\":\"metrics\"}" (esc id)
  | Classify { id; source; budget; deadline_ms; trace_id } ->
      let b = Buffer.create 64 in
      Printf.bprintf b "{\"id\":\"%s\",\"kind\":\"classify\"" (esc id);
      (match source with
      | File f -> Printf.bprintf b ",\"file\":\"%s\"" (esc f)
      | Inline { text; format } ->
          Printf.bprintf b ",\"grammar\":\"%s\",\"format\":\"%s\"" (esc text)
            (match format with `Cfg -> "cfg" | `Mly -> "mly"));
      (match budget with
      | Some s -> Printf.bprintf b ",\"budget\":\"%s\"" (esc s)
      | None -> ());
      (match deadline_ms with
      | Some ms -> Printf.bprintf b ",\"deadline_ms\":%.3f" ms
      | None -> ());
      (match trace_id with
      | Some t -> Printf.bprintf b ",\"trace_id\":\"%s\"" (esc t)
      | None -> ());
      Buffer.add_char b '}';
      Buffer.contents b

type status =
  | Ok_
  | Verdict
  | Bad_request
  | Budget
  | Overloaded
  | Deadline_exceeded
  | Internal
  | Health_ok

let status_name = function
  | Ok_ -> "ok"
  | Verdict -> "verdict"
  | Bad_request -> "bad_request"
  | Budget -> "budget"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Internal -> "internal"
  | Health_ok -> "health"

let status_exit = function
  | Ok_ | Health_ok -> 0
  | Verdict -> 1
  | Bad_request -> 2
  | Budget | Overloaded | Deadline_exceeded -> 3
  | Internal -> 4

type job_response = {
  r_id : string;
  r_status : status;
  r_detail : string;
  r_lalr1 : bool option;
  r_wall_ms : float;
  r_queue_ms : float;
  r_retries : int;
  r_worker : int option;
  r_slack_ms : float option;
  r_trace_id : string option;
  r_stages : (string * float) list;
  r_lr0_states : int option;
  r_completed : string list;
}

type worker_health = { w_id : int; w_alive : bool; w_jobs : int }

(* The daemon's protocol/schema version, reported by [health] so a
   fleet can tell which response members to expect; the binary uses
   the same string for [--version]. *)
let version = "1.0.0"

type health_response = {
  h_id : string;
  h_uptime_s : float;
  h_pid : int;
  h_version : string;
  h_ready : bool;
  h_queue_depth : int;
  h_queue_capacity : int;
  h_workers : worker_health list;
  h_restarts : int;
  h_shed : int;
  h_deadline_expired : int;
  h_completed : int;
  h_store : Lalr_store.Store.stats option;
}

type metrics_response = { m_id : string; m_body : string }

type response =
  | Job of job_response
  | Health of health_response
  | Metrics_snapshot of metrics_response

let response_id = function
  | Job r -> r.r_id
  | Health h -> h.h_id
  | Metrics_snapshot m -> m.m_id

let response_exit = function
  | Job r -> status_exit r.r_status
  | Health _ | Metrics_snapshot _ -> 0

(* The label the access log and the requests_total counter use: the
   wire status string for jobs, the kind for inline answers. *)
let response_status_label = function
  | Job r -> status_name r.r_status
  | Health _ -> "health"
  | Metrics_snapshot _ -> "metrics"

(* Field order mirrors the batch line (README "Serving" documents
   both tables side by side); optional members are simply absent. *)
let encode_job r =
  let b = Buffer.create 128 in
  Printf.bprintf b
    "{\"id\":\"%s\",\"status\":\"%s\",\"exit\":%d,\"retries\":%d,\"wall_ms\":%.3f,\"queue_ms\":%.3f"
    (esc r.r_id) (status_name r.r_status) (status_exit r.r_status) r.r_retries
    r.r_wall_ms r.r_queue_ms;
  (match r.r_worker with
  | Some w -> Printf.bprintf b ",\"worker\":%d" w
  | None -> ());
  (match r.r_slack_ms with
  | Some s -> Printf.bprintf b ",\"deadline_slack_ms\":%.3f" s
  | None -> ());
  (match r.r_trace_id with
  | Some t -> Printf.bprintf b ",\"trace_id\":\"%s\"" (esc t)
  | None -> ());
  (match r.r_lalr1 with
  | Some v -> Printf.bprintf b ",\"lalr1\":%b" v
  | None -> ());
  (match r.r_lr0_states with
  | Some n -> Printf.bprintf b ",\"lr0_states\":%d" n
  | None -> ());
  if r.r_stages <> [] then begin
    Printf.bprintf b ",\"stages\":{";
    List.iteri
      (fun i (name, wall) ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "\"%s\":%.3f" (esc name) (wall *. 1e3))
      r.r_stages;
    Buffer.add_char b '}'
  end;
  if r.r_detail <> "" then
    Printf.bprintf b ",\"detail\":\"%s\"" (esc r.r_detail);
  if r.r_completed <> [] then begin
    Printf.bprintf b ",\"completed\":[";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "\"%s\"" (esc s))
      r.r_completed;
    Buffer.add_char b ']'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let encode_health h =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "{\"id\":\"%s\",\"status\":\"health\",\"exit\":0,\"uptime_s\":%.3f,\"uptime_ms\":%.0f,\"pid\":%d,\"version\":\"%s\",\"ready\":%b,\"queue_depth\":%d,\"queue_capacity\":%d,\"restarts\":%d,\"shed\":%d,\"deadline_expired\":%d,\"completed\":%d,\"workers\":["
    (esc h.h_id) h.h_uptime_s
    (h.h_uptime_s *. 1e3)
    h.h_pid (esc h.h_version) h.h_ready h.h_queue_depth h.h_queue_capacity
    h.h_restarts h.h_shed h.h_deadline_expired h.h_completed;
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"id\":%d,\"alive\":%b,\"jobs\":%d}" w.w_id w.w_alive
        w.w_jobs)
    h.h_workers;
  Buffer.add_char b ']';
  (match h.h_store with
  | Some (s : Lalr_store.Store.stats) ->
      Printf.bprintf b
        ",\"store\":{\"hits\":%d,\"misses\":%d,\"corrupt\":%d,\"writes\":%d,\"errors\":%d}"
        s.hits s.misses s.corrupt s.writes s.errors
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let encode_metrics m =
  Printf.sprintf "{\"id\":\"%s\",\"status\":\"metrics\",\"exit\":0,\"body\":\"%s\"}"
    (esc m.m_id) (esc m.m_body)

let encode_response = function
  | Job r -> encode_job r
  | Health h -> encode_health h
  | Metrics_snapshot m -> encode_metrics m

let shed_response ~id ~queue_capacity =
  Job
    {
      r_id = id;
      r_status = Overloaded;
      r_detail =
        Printf.sprintf "admission queue full (capacity %d); retry later"
          queue_capacity;
      r_lalr1 = None;
      r_wall_ms = 0.;
      r_queue_ms = 0.;
      r_retries = 0;
      r_worker = None;
      r_slack_ms = None;
      r_trace_id = None;
      r_stages = [];
      r_lr0_states = None;
      r_completed = [];
    }
