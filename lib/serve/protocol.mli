(** The [lalrgen serve] wire protocol: newline-delimited JSON.

    One request per line in, exactly one response line out per request
    — the invariant the chaos acceptance test pins. The response line
    schema deliberately mirrors the [lalrgen batch] output line
    (status/exit/lalr1/wall_ms/retries/stages/...), so a fleet can
    move from batch files to the daemon without changing its result
    parser; requests carry the same grammar specs batch accepts
    ([suite:NAME], a path) plus an inline form for clients that never
    touch the server's filesystem.

    {2 Request line}

    {v
    {"id":"r1","kind":"classify","file":"suite:expr","budget":"wall=500ms"}
    {"id":"r2","kind":"classify","grammar":"%token a\n%start s\n%%\ns : a ;","format":"cfg"}
    {"id":"r3","kind":"health"}
    v}

    [id] (string or integer, echoed back verbatim) defaults to [""];
    [kind] defaults to ["classify"]; [budget] is a
    {!Lalr_guard.Budget.of_spec} string and overrides the server
    default for this request only; [deadline_ms] (a number, optional)
    is the client's remaining deadline in milliseconds — expired work
    is shed with [deadline_exceeded] before any compute, and the
    remainder is intersected into the request's wall cap. Unknown
    fields are rejected, not ignored — a typo like ["buget"] must not
    silently analyse with no deadline.

    {2 Decoder hardening}

    The decoder is the daemon's outermost trust boundary, so it is
    total: any byte sequence returns [Ok] or [Error], never an
    exception and never unbounded work. Enforced limits: input length
    (the caller's [max_bytes], pre-checked by the connection reader),
    nesting depth ({!max_depth}) and token count, so a 1 MB line of
    ["[[[[..."] costs linear time and constant stack. The fuzz harness
    drives random, truncated and mutated lines through
    {!decode_request} and asserts exactly this contract. *)

(** {2 JSON values}

    A minimal total JSON parser (the container ships no JSON library;
    the decoder is also the fuzz target, so owning it is the point). *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  (** Total; rejects trailing garbage, depth beyond {!max_depth},
      malformed escapes, and unterminated constructs, each with a
      one-line reason. *)

  val member : string -> t -> t option
  (** Object field lookup; [None] on non-objects too. *)
end

val max_depth : int
(** Nesting depth cap for {!Json.parse} (32). *)

(** {2 Requests} *)

type source =
  | File of string  (** a path or [suite:NAME] — batch's grammar spec *)
  | Inline of { text : string; format : [ `Cfg | `Mly ] }

type request =
  | Classify of {
      id : string;
      source : source;
      budget : string option;
      deadline_ms : float option;
          (** remaining time the client grants this request, in
              milliseconds, measured from the moment the daemon admits
              it (relative, because client and server clocks need not
              agree). Non-positive means already expired: the pool
              sheds it with [deadline_exceeded] before any compute. *)
      trace_id : string option;
          (** opaque client correlation token: echoed in the response,
              stamped on the request's span tree in the worker's trace
              session, and written to the access log — the handle that
              joins a slow client call to the daemon's [FILE.wN] trace
              files. *)
    }
  | Health of { id : string }
  | Metrics of { id : string }
      (** live-telemetry scrape: answered inline (never queued, like
          [health]) with a merged Prometheus text exposition of every
          shard — see {!Metrics_snapshot}. *)

val request_id : request -> string

val decode_request : string -> (request, string) result
(** One line (without the newline) to one request. The [Error] string
    is the [detail] of the [bad_request] response. Total. *)

val encode_request : request -> string
(** The canonical one-line encoding (used by [lalrgen call] and the
    tests; [decode_request (encode_request r)] round-trips). *)

(** {2 Responses} *)

type status =
  | Ok_  (** analysed, LALR(1)-clean — exit 0 *)
  | Verdict  (** analysed, conflicts — exit 1 *)
  | Bad_request  (** undecodable or unreadable request — exit 2 *)
  | Budget  (** per-request budget tripped — exit 3 *)
  | Overloaded  (** admission queue full, request shed — exit 3 *)
  | Deadline_exceeded
      (** the request's [deadline_ms] passed — shed at admission or
          dequeue, or the in-flight wall trip was deadline-bound —
          exit 3 *)
  | Internal  (** broken invariant or worker crash — exit 4 *)
  | Health_ok  (** health report — exit 0 *)

val status_name : status -> string
(** ["ok"], ["verdict"], ["bad_request"], ["budget"], ["overloaded"],
    ["deadline_exceeded"], ["internal"], ["health"]. *)

val status_exit : status -> int
(** The batch-compatible per-request exit code carried in the
    response ([overloaded] and [deadline_exceeded] share 3 with
    [budget]: all mean "not now, resource pressure", and the status
    string disambiguates). *)

type job_response = {
  r_id : string;
  r_status : status;
  r_detail : string;  (** "" when there is nothing to say *)
  r_lalr1 : bool option;
  r_wall_ms : float;
  r_queue_ms : float;
      (** admission → dequeue wait (0 for responses never queued) *)
  r_retries : int;  (** internal-fault retries burned by this request *)
  r_worker : int option;  (** worker domain that computed the answer *)
  r_slack_ms : float option;
      (** deadline remaining at completion (negative: finished late) *)
  r_trace_id : string option;  (** echoed from the request *)
  r_stages : (string * float) list;  (** forced engine stages, seconds *)
  r_lr0_states : int option;
  r_completed : string list;  (** on failure: stages that finished *)
}

type worker_health = {
  w_id : int;
  w_alive : bool;
  w_jobs : int;  (** jobs completed by the current incarnation *)
}

val version : string
(** Daemon protocol/schema version, reported in [health] lines
    ([version] member) and used for the binary's [--version]. *)

type health_response = {
  h_id : string;
  h_uptime_s : float;
      (** also emitted as [uptime_ms] (rounded) for collectors that
          want integer milliseconds *)
  h_pid : int;
  h_version : string;  (** {!version} of the answering daemon *)
  h_ready : bool;
      (** [false] while the crash-loop backstop holds: too many worker
          respawns inside the sliding window — new work is refused
          fast with a typed [internal] until the window drains *)
  h_queue_depth : int;
  h_queue_capacity : int;
  h_workers : worker_health list;
  h_restarts : int;  (** worker domains restarted after a crash *)
  h_shed : int;  (** requests refused with [overloaded] or unready *)
  h_deadline_expired : int;
      (** requests answered [deadline_exceeded] (admission, dequeue or
          in-flight) *)
  h_completed : int;
  h_store : Lalr_store.Store.stats option;
}

type metrics_response = {
  m_id : string;
  m_body : string;
      (** a complete Prometheus text exposition ({!Lalr_trace.Metrics.
          to_prometheus} of all shards merged at scrape time), carried
          as one JSON string member *)
}

type response =
  | Job of job_response
  | Health of health_response
  | Metrics_snapshot of metrics_response

val response_id : response -> string
val response_exit : response -> int

val response_status_label : response -> string
(** The status string the access log and the
    [lalr_serve_requests_total{status=…}] counter label use: the wire
    status for jobs, ["health"]/["metrics"] for inline answers. *)

val encode_response : response -> string
(** One line, no trailing newline. Field order is fixed and documented
    in README "Serving". *)

val shed_response : id:string -> queue_capacity:int -> response
(** The canned [overloaded] line (built without touching the pool, so
    shedding stays allocation-light under pressure). *)
