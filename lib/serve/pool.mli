(** The multicore analysis pool: OCaml 5 Domains behind a bounded
    admission queue, with supervision, deadlines and a crash-loop
    backstop.

    One pool owns [domains] worker domains, one shared bounded job
    queue, and (optionally) one shared artifact store. The robustness
    contract, in order of importance:

    + {b exactly one response per admitted job} — the worker responds
      with a typed outcome; if the worker domain {e crashes}
      mid-request (an exception escaping the per-job boundary, e.g. an
      armed [serve-worker] faultpoint), its supervisor responds
      [internal] for the in-flight job and {b restarts the domain} —
      one poisoned request never takes down the fleet, and a
      persistent crash loop still drains the queue one job per
      respawn;
    + {b bounded admission} — {!submit} refuses ([`Overloaded]) when
      the queue is at capacity, and ([`Unready]) while the crash-loop
      backstop holds; the caller turns those into typed [overloaded]
      and [internal] responses. There is no unbounded backlog
      anywhere;
    + {b deadline propagation} — a request carrying [deadline_ms] is
      shed {e before any compute} when already expired: at admission
      ([`Expired], without touching the queue lock) and again at
      dequeue (queue wait may have eaten the deadline). In-flight, the
      remaining deadline is intersected into the request's wall cap
      ({!Lalr_guard.Budget.intersect_wall}) per attempt — retries eat
      into the same deadline — so running work self-terminates; a
      deadline-bound wall trip is reported [deadline_exceeded], a
      client-cap trip stays [budget];
    + {b per-job isolation} — every job runs under its own fresh
      {!Lalr_guard.Budget.t} (the request's [budget] spec, or the pool
      default), behind {!Lalr_engine.Engine.run_partial}; transient
      internal faults are retried through {!Lalr_guard.Retry} with
      capped exponential backoff;
    + {b graceful drain} — {!drain} stops admission, lets the workers
      finish (or deadline-out, via their budgets) everything already
      admitted, then joins every domain. Idempotent.

    Supervision runs on sys-threads of the {e calling} domain (one per
    worker slot, blocked in [Domain.join]), so a worker crash is
    noticed immediately without polling. Every crash is also logged
    into a sliding window ([crash_window] seconds): once
    [crash_threshold] respawns accumulate inside it, {!ready} turns
    false and {!submit} fails fast with [`Unready] — a poisoned
    workload cannot convert the daemon into a domain-spawn treadmill.
    The window drains by itself, so readiness self-heals; respawning
    is never conditional (admitted work keeps its one-response
    guarantee).

    When [trace] is set, each worker domain arms its own
    {!Lalr_trace.Trace} session for its lifetime (sessions are
    domain-local by design — "one session per worker" is the model the
    trace layer documents) and {!drain} hands the finished sessions
    back, one per worker slot that exited cleanly; a crashed
    incarnation's session is lost, which the restart counter
    records.

    When [metrics] is set, every dequeued job additionally records
    queue-wait / compute / total-latency fixed-boundary histograms,
    a per-worker deadline-slack gauge and GC gauges into the worker
    domain's own {!Lalr_trace.Metrics} shard (lock-free updates, no
    cross-domain contention), and the supervisors count crashes into
    shard 0; the serve layer merges all shards when answering a
    [metrics] scrape. *)

type config = {
  domains : int;  (** worker domains; >= 1 (clamped) *)
  queue_capacity : int;  (** admission bound; >= 1 (clamped) *)
  default_budget : string option;
      (** {!Lalr_guard.Budget.of_spec} string applied to requests that
          carry none; validated per job (a bad default yields typed
          [bad_request] responses, never a crash) *)
  store : Lalr_store.Store.t option;  (** shared artifact store *)
  trace : bool;  (** arm a per-worker trace session *)
  metrics : Lalr_trace.Metrics.t option;
      (** live-telemetry registry; must have [domains + 1] shards
          (shard 0 for the caller/supervisors, shard i+1 armed as
          worker i's ambient shard — shards survive restarts so
          counters stay monotone). [None] disarms every per-request
          probe (the armed-overhead bench's baseline). *)
  retry : Lalr_guard.Retry.policy;  (** internal-fault retry policy *)
  sleep : float -> unit;
      (** backoff sleep in seconds, injectable for deterministic
          tests; default [Unix.sleepf] *)
  now : unit -> float;
      (** the clock used for deadlines and the crash window,
          injectable for deterministic tests; default
          [Unix.gettimeofday] *)
  crash_window : float;
      (** sliding window for the crash-loop backstop, seconds;
          clamped positive *)
  crash_threshold : int;
      (** respawns inside the window that flip {!ready} to false;
          >= 1 (clamped) *)
}

val default_config : config
(** 1 domain, capacity 64, no budget, no store, no trace, no metrics,
    {!Lalr_guard.Retry.default}, [Unix.sleepf], [Unix.gettimeofday],
    10 s crash window, threshold 5. *)

type t

val create : config -> t
(** Spawns the worker domains and their supervisor threads; returns
    once all are running. *)

val submit :
  t ->
  request:Protocol.request ->
  respond:(Protocol.response -> unit) ->
  [ `Accepted | `Overloaded | `Draining | `Expired | `Unready ]
(** Admits a [Classify] request (a [Health] request is answered by
    {!health} without entering the queue; submitting one is a
    programmer error answered as [internal]). [respond] is called
    exactly once, from a worker domain or a supervisor thread; it must
    not raise (the serve layer's responders absorb their own I/O
    failures). Every refusal means the job was NOT admitted and
    [respond] will never be called — the caller sheds with the typed
    response: [`Overloaded]/[`Draining] as [overloaded], [`Expired]
    (the request arrived with [deadline_ms <= 0]) as
    [deadline_exceeded], [`Unready] (crash-loop backstop) as
    [internal]. *)

val ready : t -> bool
(** False while the crash-loop backstop holds (>= [crash_threshold]
    respawns inside the last [crash_window] seconds). Self-healing:
    turns true again once the window slides past the burst. *)

val depth : t -> int
(** Current queue depth (for the [serve.queue.depth] gauge). *)

val health : t -> id:string -> Protocol.health_response
(** Liveness and load snapshot: readiness, queue depth/capacity,
    per-worker alive flag and jobs completed,
    restart/shed/deadline-expired/completed counters, store stats when
    a store is attached. *)

val drain : t -> Lalr_trace.Trace.session option array
(** Stops admission, waits for every admitted job to be responded to,
    joins all worker domains and supervisor threads. Returns the
    per-slot finished trace sessions ([None] without [trace], or for a
    slot whose last incarnation crashed). Idempotent: later calls
    return the same sessions. *)
